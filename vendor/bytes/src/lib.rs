//! In-tree subset of the `bytes` crate (no-network build environment).
//!
//! Provides [`BytesMut`] as a uniquely-owned, growable byte buffer. The
//! zero-copy split/freeze machinery of the real crate is not needed by
//! this workspace — packets are moved whole between pipeline stages, so a
//! plain `Vec<u8>` representation has identical semantics.

use std::borrow::{Borrow, BorrowMut};
use std::fmt;
use std::ops::{Deref, DerefMut};

/// A uniquely-owned, growable buffer of bytes.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with room for `capacity` bytes.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            vec: Vec::with_capacity(capacity),
        }
    }

    /// Creates a buffer of `len` zero bytes.
    pub fn zeroed(len: usize) -> Self {
        Self { vec: vec![0; len] }
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Current capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.vec.capacity()
    }

    /// Appends `extend` to the buffer.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.vec.extend_from_slice(extend);
    }

    /// Resizes the buffer in place, filling new space with `value`.
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.vec.resize(new_len, value);
    }

    /// Shortens the buffer to `len` bytes; no-op if already shorter.
    pub fn truncate(&mut self, len: usize) {
        self.vec.truncate(len);
    }

    /// Clears the buffer.
    pub fn clear(&mut self) {
        self.vec.clear();
    }

    /// Consumes the buffer, yielding the underlying vector.
    pub fn into_vec(self) -> Vec<u8> {
        self.vec
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.vec
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.vec
    }
}

impl AsMut<[u8]> for BytesMut {
    fn as_mut(&mut self) -> &mut [u8] {
        &mut self.vec
    }
}

impl Borrow<[u8]> for BytesMut {
    fn borrow(&self) -> &[u8] {
        &self.vec
    }
}

impl BorrowMut<[u8]> for BytesMut {
    fn borrow_mut(&mut self) -> &mut [u8] {
        &mut self.vec
    }
}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> Self {
        Self { vec: src.to_vec() }
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(vec: Vec<u8>) -> Self {
        Self { vec }
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(buf: BytesMut) -> Self {
        buf.vec
    }
}

impl FromIterator<u8> for BytesMut {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Self {
            vec: iter.into_iter().collect(),
        }
    }
}

impl Extend<u8> for BytesMut {
    fn extend<I: IntoIterator<Item = u8>>(&mut self, iter: I) {
        self.vec.extend(iter);
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in &self.vec {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_and_index() {
        let mut b = BytesMut::zeroed(4);
        assert_eq!(b.len(), 4);
        assert_eq!(&b[..], &[0, 0, 0, 0]);
        b[1] = 7;
        assert_eq!(b[1], 7);
    }

    #[test]
    fn from_slice_roundtrip() {
        let b = BytesMut::from(&[1u8, 2, 3][..]);
        assert_eq!(b.into_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn extend_and_truncate() {
        let mut b = BytesMut::new();
        b.extend_from_slice(&[1, 2, 3]);
        b.truncate(2);
        assert_eq!(&b[..], &[1, 2]);
    }
}
