//! `&'static str` as a strategy: a small regex-subset generator.
//!
//! Upstream treats string literals as full regexes. This subset covers
//! the pattern shapes the workspace's tests use — `.`, character classes
//! like `[a-z0-9]`, literal characters, and the quantifiers `*`, `+`,
//! `?`, `{m}`, `{m,n}` — which is enough for patterns such as `".*"` and
//! `"[a-z]{0,6}"`. Unsupported syntax panics at generation time so a
//! typo fails loudly instead of silently generating literals.

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Upper repetition bound substituted for unbounded quantifiers.
const STAR_MAX: usize = 8;

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

#[derive(Debug, Clone)]
enum Atom {
    /// `.` — any char except newline.
    AnyChar,
    /// A literal character (possibly escaped).
    Literal(char),
    /// `[a-z0-9_]` — ranges and single chars.
    Class(Vec<(char, char)>),
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let atom = match c {
            '.' => Atom::AnyChar,
            '[' => {
                let mut ranges = Vec::new();
                loop {
                    let lo = match chars.next() {
                        Some(']') => break,
                        Some('\\') => chars.next().expect("dangling escape in class"),
                        Some(ch) => ch,
                        None => panic!("unterminated character class in {pattern:?}"),
                    };
                    if chars.peek() == Some(&'-') {
                        chars.next();
                        match chars.next() {
                            Some(']') => {
                                // Trailing '-' is a literal.
                                ranges.push((lo, lo));
                                ranges.push(('-', '-'));
                                break;
                            }
                            Some(hi) => ranges.push((lo, hi)),
                            None => panic!("unterminated character class in {pattern:?}"),
                        }
                    } else {
                        ranges.push((lo, lo));
                    }
                }
                assert!(!ranges.is_empty(), "empty character class in {pattern:?}");
                Atom::Class(ranges)
            }
            '\\' => Atom::Literal(chars.next().expect("dangling escape")),
            '(' | ')' | '|' | '^' | '$' => {
                panic!("regex feature {c:?} not supported by the vendored proptest subset")
            }
            other => Atom::Literal(other),
        };
        let (lo, hi) = match chars.peek() {
            Some('*') => {
                chars.next();
                (0, STAR_MAX)
            }
            Some('+') => {
                chars.next();
                (1, STAR_MAX)
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for ch in chars.by_ref() {
                    if ch == '}' {
                        break;
                    }
                    spec.push(ch);
                }
                match spec.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().expect("bad {m,n} quantifier"),
                        n.trim().parse().expect("bad {m,n} quantifier"),
                    ),
                    None => {
                        let m = spec.trim().parse().expect("bad {m} quantifier");
                        (m, m)
                    }
                }
            }
            _ => (1, 1),
        };
        let reps = rng.gen_range(lo..=hi);
        for _ in 0..reps {
            out.push(sample_atom(&atom, rng));
        }
    }
    out
}

fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Literal(c) => *c,
        Atom::AnyChar => loop {
            // Mostly printable ASCII, sometimes any scalar value, never
            // newline (regex `.` semantics).
            let c = if rng.gen_bool(0.85) {
                char::from(rng.gen_range(0x20u8..0x7F))
            } else {
                match char::from_u32(rng.gen_range(0u32..=0x10FFFF)) {
                    Some(c) => c,
                    None => continue,
                }
            };
            if c != '\n' {
                return c;
            }
        },
        Atom::Class(ranges) => {
            let (lo, hi) = ranges[rng.gen_range(0..ranges.len())];
            let (lo, hi) = (lo as u32, hi as u32);
            assert!(lo <= hi, "inverted range in character class");
            loop {
                if let Some(c) = char::from_u32(rng.gen_range(lo..=hi)) {
                    return c;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn rng() -> TestRng {
        TestRng::from_seed(99)
    }

    #[test]
    fn dot_star_varies_length() {
        let mut r = rng();
        let lens: Vec<usize> = (0..50)
            .map(|_| ".*".generate(&mut r).chars().count())
            .collect();
        assert!(lens.contains(&0));
        assert!(lens.iter().any(|&l| l > 2));
        assert!(lens.iter().all(|&l| l <= STAR_MAX));
    }

    #[test]
    fn class_with_counted_quantifier() {
        let mut r = rng();
        for _ in 0..100 {
            let s = "[a-z]{0,6}".generate(&mut r);
            assert!(s.len() <= 6);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn literals_and_escapes() {
        let mut r = rng();
        assert_eq!("abc".generate(&mut r), "abc");
        assert_eq!(r"a\.b".generate(&mut r), "a.b");
    }

    #[test]
    fn exact_repetition() {
        let mut r = rng();
        let s = "[0-9]{4}".generate(&mut r);
        assert_eq!(s.len(), 4);
        assert!(s.chars().all(|c| c.is_ascii_digit()));
    }
}
