//! Collection strategies: [`vec`].

use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length bound for generated collections; converted from `usize`
/// (exact length), `Range<usize>`, or `RangeInclusive<usize>`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        Self {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range");
        Self {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// `Vec<T>` strategy with a length drawn from `size` and elements from
/// `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy produced by [`vec`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
