//! Deterministic case runner: fixed per-test seed sequence, no
//! persistence file, no shrinking.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Per-test configuration; mirrors the used subset of
/// `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for Config {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl Config {
    /// A config running `cases` generated cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A failed test case (produced by `prop_assert*`).
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Records a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// The generator handed to strategies while producing one test case.
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeds the generator for one case.
    pub fn from_seed(seed: u64) -> Self {
        Self(StdRng::seed_from_u64(seed))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Runs every case of one property test.
pub struct TestRunner {
    config: Config,
}

impl TestRunner {
    /// Builds a runner for `config`.
    pub fn new(config: Config) -> Self {
        Self { config }
    }

    /// Runs `f` once per case with a deterministic seed derived from the
    /// test name and case index; panics (failing the `#[test]`) on the
    /// first case `f` rejects.
    pub fn run<F>(self, name: &str, mut f: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let base = fnv1a(name.as_bytes());
        for case in 0..self.config.cases {
            // SplitMix-style stream separation so consecutive cases are
            // decorrelated even though the sequence is fixed.
            let seed = base ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let mut rng = TestRng::from_seed(seed);
            if let Err(e) = f(&mut rng) {
                panic!(
                    "proptest '{name}' failed at case {case}/{total} (seed {seed:#018x}): {e}",
                    total = self.config.cases,
                );
            }
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}
