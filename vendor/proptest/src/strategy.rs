//! The [`Strategy`] trait and its combinators.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use rand::Rng;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type. Mirrors the used subset of
/// `proptest::strategy::Strategy`, minus shrinking: `generate` produces a
/// full value directly instead of a value tree.
pub trait Strategy {
    /// The type this strategy produces.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Discards generated values failing `pred` (regenerating in place;
    /// `reason` is reported if the filter almost never accepts).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            reason,
            pred,
        }
    }

    /// Builds a recursive strategy: `recurse` receives the
    /// strategy-so-far and wraps it one level deeper, up to `depth`
    /// levels. `_desired_size` / `_expected_branch_size` are accepted for
    /// upstream signature compatibility; size is bounded here by `depth`
    /// plus whatever collection bounds `recurse` itself uses.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let mut strat = self.boxed();
        for _ in 0..depth {
            // Leaves keep the larger weight so expected tree size stays
            // finite even at full depth.
            strat =
                Union::new_weighted(vec![(2, strat.clone()), (1, recurse(strat).boxed())]).boxed();
        }
        strat
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe generation, used behind [`BoxedStrategy`].
trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<V>(Rc<dyn DynStrategy<V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        Self(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_dyn(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    source: S,
    reason: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        // Upstream rejects the whole case; without shrinking it is
        // simpler and equivalent to resample locally.
        for _ in 0..1000 {
            let v = self.source.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({:?}) rejected 1000 consecutive values",
            self.reason
        );
    }
}

/// Chooses among branch strategies, optionally weighted; produced by
/// [`prop_oneof!`](crate::prop_oneof).
pub struct Union<V> {
    branches: Vec<(u32, BoxedStrategy<V>)>,
    total_weight: u64,
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Self {
            branches: self.branches.clone(),
            total_weight: self.total_weight,
        }
    }
}

impl<V> Union<V> {
    /// Uniform choice among `branches`.
    pub fn new(branches: Vec<BoxedStrategy<V>>) -> Self {
        Self::new_weighted(branches.into_iter().map(|b| (1, b)).collect())
    }

    /// Weighted choice among `branches`.
    pub fn new_weighted(branches: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        assert!(!branches.is_empty(), "prop_oneof! needs at least one arm");
        let total_weight = branches.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "prop_oneof! weights sum to zero");
        Self {
            branches,
            total_weight,
        }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.gen_range(0..self.total_weight);
        for (w, strat) in &self.branches {
            let w = u64::from(*w);
            if pick < w {
                return strat.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weighted pick exceeded total weight")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
