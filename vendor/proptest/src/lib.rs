//! In-tree subset of `proptest` (no-network build environment).
//!
//! Implements the property-testing surface this workspace's tests use:
//!
//! - the [`proptest!`] macro (with `#![proptest_config(...)]`);
//! - [`prelude::any`] for primitives, ranges and tuples as strategies,
//!   [`strategy::Just`], string strategies from simple regex literals;
//! - combinators: `prop_map`, `prop_filter`, `prop_recursive`, `boxed`,
//!   [`prop_oneof!`] (weighted and unweighted), [`collection::vec`];
//! - [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`].
//!
//! Differences from upstream: **no shrinking** (a failing case reports its
//! seed and values but is not minimized) and a fixed deterministic seed
//! sequence per test (reproducible without a persistence file).

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The glob-import surface used by tests: `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Runs the statements of one generated test case; used by the
/// [`proptest!`] expansion. Kept public for macro hygiene.
#[doc(hidden)]
pub mod __internal {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{Config, TestCaseError, TestRng, TestRunner};
}

/// Declares property tests. Mirrors upstream syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn it_holds(x in 0u32..100, v in proptest::collection::vec(any::<u8>(), 0..8)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::__internal::Config = $cfg;
                let __runner = $crate::__internal::TestRunner::new(__config);
                __runner.run(stringify!($name), |__rng| {
                    $(
                        let $arg = $crate::__internal::Strategy::generate(&($strat), __rng);
                    )+
                    let mut __case = || -> ::std::result::Result<(), $crate::__internal::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    __case()
                });
            }
        )*
    };
}

/// Fails the current test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current test case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&($left), &($right));
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` != `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&($left), &($right));
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` != `{:?}`: {}",
            __l,
            __r,
            format!($($fmt)+)
        );
    }};
}

/// Fails the current test case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&($left), &($right));
        $crate::prop_assert!(*__l != *__r, "assertion failed: `{:?}` == `{:?}`", __l, __r);
    }};
}

/// Picks one of several strategies per generated value. Supports the
/// upstream weighted (`w => strat`) and unweighted forms.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
