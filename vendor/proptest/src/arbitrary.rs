//! `any::<T>()` — default strategies for primitive types.

use std::marker::PhantomData;

use rand::{Rng, RngCore};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy; mirrors the used subset
/// of `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    /// Draws one value from the type's full domain.
    fn arb(rng: &mut TestRng) -> Self;
}

/// Returns the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy produced by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arb(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arb(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arb(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    /// Uniform over bit patterns — includes subnormals, infinities and
    /// NaN, matching upstream's edge-case bias more closely than a
    /// uniform `[0, 1)` draw would.
    fn arb(rng: &mut TestRng) -> Self {
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for f32 {
    fn arb(rng: &mut TestRng) -> Self {
        f32::from_bits(rng.next_u32())
    }
}

impl Arbitrary for char {
    fn arb(rng: &mut TestRng) -> Self {
        // Bias toward ASCII (most code paths), with the occasional
        // arbitrary scalar value for UTF-8 edge coverage.
        if rng.gen_bool(0.8) {
            return char::from(rng.gen_range(0x20u8..0x7F));
        }
        loop {
            if let Some(c) = char::from_u32(rng.gen_range(0u32..=0x10FFFF)) {
                return c;
            }
        }
    }
}
