//! In-tree subset of `crossbeam` (no-network build environment).
//!
//! Provides [`channel::bounded`]: a bounded multi-producer/multi-consumer
//! queue with the blocking, timeout, and non-blocking send/receive surface
//! the SFI channel layer uses. Built on `Mutex` + `Condvar` rather than
//! the real crate's lock-free ring — same semantics, adequate throughput
//! for this workspace's experiments (the measured hot paths batch many
//! packets per queue operation precisely so per-op queue cost amortizes).

pub mod channel;
