//! Bounded MPMC channels.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Error from [`Sender::try_send`]: the value is handed back.
#[derive(PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The queue is at capacity.
    Full(T),
    /// Every receiver is gone.
    Disconnected(T),
}

/// Error from [`Sender::send_timeout`]: the value is handed back.
#[derive(PartialEq, Eq)]
pub enum SendTimeoutError<T> {
    /// The queue stayed full for the whole timeout.
    Timeout(T),
    /// Every receiver is gone.
    Disconnected(T),
}

/// Error from [`Sender::send`]: every receiver is gone.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error from [`Receiver::recv`]: the queue is empty and every sender is
/// gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error from [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message queued right now.
    Empty,
    /// The queue is empty and every sender is gone.
    Disconnected,
}

impl<T> fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => write!(f, "Full(..)"),
            TrySendError::Disconnected(_) => write!(f, "Disconnected(..)"),
        }
    }
}

impl<T> fmt::Debug for SendTimeoutError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SendTimeoutError::Timeout(_) => write!(f, "Timeout(..)"),
            SendTimeoutError::Disconnected(_) => write!(f, "Disconnected(..)"),
        }
    }
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> Shared<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The sending half; cloneable (multi-producer).
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half; cloneable (multi-consumer).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates a bounded channel with room for `capacity` messages.
///
/// # Panics
///
/// Panics on `capacity == 0`; rendezvous channels are not part of this
/// subset (no caller in the workspace uses them).
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    assert!(
        capacity > 0,
        "rendezvous (zero-capacity) channels unsupported"
    );
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::with_capacity(capacity),
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        capacity,
    });
    (
        Sender {
            shared: shared.clone(),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Sends `value`, blocking while the queue is full.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.lock();
        loop {
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            if state.queue.len() < self.shared.capacity {
                state.queue.push_back(value);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            state = self
                .shared
                .not_full
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Sends `value`, blocking at most `timeout` while the queue is full.
    pub fn send_timeout(&self, value: T, timeout: Duration) -> Result<(), SendTimeoutError<T>> {
        let deadline = Instant::now() + timeout;
        let mut state = self.shared.lock();
        loop {
            if state.receivers == 0 {
                return Err(SendTimeoutError::Disconnected(value));
            }
            if state.queue.len() < self.shared.capacity {
                state.queue.push_back(value);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(SendTimeoutError::Timeout(value));
            }
            let (guard, _timed_out) = self
                .shared
                .not_full
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            state = guard;
        }
    }

    /// Sends without blocking; fails with the value when full.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut state = self.shared.lock();
        if state.receivers == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if state.queue.len() >= self.shared.capacity {
            return Err(TrySendError::Full(value));
        }
        state.queue.push_back(value);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// True when no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.lock().senders += 1;
        Self {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.lock();
        state.senders -= 1;
        if state.senders == 0 {
            // Receivers blocked on an empty queue must observe the
            // disconnect.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Receives the next message, blocking until one arrives or every
    /// sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.lock();
        loop {
            if let Some(v) = state.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self
                .shared
                .not_empty
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Receives the next message, blocking at most `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, TryRecvError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.shared.lock();
        loop {
            if let Some(v) = state.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if state.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(TryRecvError::Empty);
            }
            let (guard, _timed_out) = self
                .shared
                .not_empty
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            state = guard;
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.shared.lock();
        if let Some(v) = state.queue.pop_front() {
            self.shared.not_full.notify_one();
            return Ok(v);
        }
        if state.senders == 0 {
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// True when no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.lock().receivers += 1;
        Self {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.lock();
        state.receivers -= 1;
        if state.receivers == 0 {
            // Senders blocked on a full queue must observe the disconnect.
            self.shared.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let (tx, rx) = bounded(4);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn try_send_full_and_try_recv_empty() {
        let (tx, rx) = bounded(1);
        tx.try_send(1).unwrap();
        assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_on_receiver_drop() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert!(matches!(tx.try_send(1), Err(TrySendError::Disconnected(1))));
        assert!(matches!(
            tx.send_timeout(2, Duration::from_millis(1)),
            Err(SendTimeoutError::Disconnected(2))
        ));
    }

    #[test]
    fn disconnect_on_sender_drop_drains_first() {
        let (tx, rx) = bounded(2);
        tx.send(9).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(9));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_timeout_expires() {
        let (tx, _rx) = bounded(1);
        tx.send(1).unwrap();
        let err = tx.send_timeout(2, Duration::from_millis(10));
        assert!(matches!(err, Err(SendTimeoutError::Timeout(2))));
    }

    #[test]
    fn cross_thread_handoff() {
        let (tx, rx) = bounded(2);
        let t = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        t.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }
}
