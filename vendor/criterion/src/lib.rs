//! In-tree subset of `criterion` (no-network build environment).
//!
//! Same macro/API surface as upstream for the calls this workspace's
//! benches make — `criterion_group!`, `criterion_main!`,
//! `Criterion::benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Throughput`, `Bencher::iter`, `black_box` — but a much
//! simpler measurement core: warm up briefly, size the iteration count to
//! a ~100 ms sampling window, take several samples, and report the median
//! ns/iteration (plus throughput when configured). No statistical
//! regression testing, plotting, or baseline storage.

use std::time::{Duration, Instant};

/// Opaque value barrier; re-exported like `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group; mirrors
/// `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            text: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            text: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { text: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { text: s }
    }
}

/// Units processed per iteration, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements (packets, ops, ...) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    /// Median nanoseconds per iteration, filled in by [`Bencher::iter`].
    median_ns: f64,
}

impl Bencher {
    /// Measures `routine`: warmup, auto-sized samples, median.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup + pilot estimate.
        let pilot_start = Instant::now();
        let mut pilot_iters = 0u64;
        while pilot_start.elapsed() < Duration::from_millis(20) {
            black_box(routine());
            pilot_iters += 1;
        }
        let per_iter = pilot_start.elapsed().as_nanos() as f64 / pilot_iters as f64;

        // Size each sample at ~10 ms, take 9 samples (~90 ms total).
        let iters_per_sample = ((10_000_000.0 / per_iter.max(1.0)) as u64).clamp(1, 10_000_000);
        let mut samples = Vec::with_capacity(9);
        for _ in 0..9 {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            samples.push(start.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = samples[samples.len() / 2];
    }
}

fn run_one(label: &str, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        median_ns: f64::NAN,
    };
    f(&mut bencher);
    let ns = bencher.median_ns;
    let time = if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else {
        format!("{:.3} ms", ns / 1_000_000.0)
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  ({:.3} Melem/s)", n as f64 / ns * 1_000.0)
        }
        Some(Throughput::Bytes(n)) => {
            format!(
                "  ({:.3} MiB/s)",
                n as f64 / ns * 1_000_000_000.0 / (1 << 20) as f64
            )
        }
        None => String::new(),
    };
    println!("{label:<50} {time:>12}/iter{rate}");
}

/// Top-level benchmark driver; mirrors `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, None, &mut f);
        self
    }
}

/// A named set of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used for derived rates.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Shortens the sampling; accepted for upstream compatibility (the
    /// shim's windows are already short).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for upstream compatibility; the shim's measurement
    /// window is fixed.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(
            &format!("{}/{}", self.name, id.text),
            self.throughput,
            &mut f,
        );
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &format!("{}/{}", self.name, id.text),
            self.throughput,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group (no-op beyond upstream API parity).
    pub fn finish(self) {}
}

/// Declares a group-runner function from benchmark functions; mirrors
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given groups; mirrors
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
