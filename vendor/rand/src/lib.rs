//! In-tree subset of the `rand` crate (no-network build environment).
//!
//! Provides the deterministic-seeding surface the traffic generator and
//! experiments use: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen`] / [`Rng::gen_range`]
//! over the primitive types. `StdRng` here is xoshiro256++ seeded through
//! SplitMix64 — statistically strong for simulation workloads and fully
//! reproducible run-to-run, which is all the workspace requires (nothing
//! here is cryptographic).

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Extension methods over any [`RngCore`]; mirrors `rand::Rng`.
pub trait Rng: RngCore {
    /// Generates a value of a [`Standard`]-distributed type (`f64` in
    /// `[0, 1)`, integers over their full range, `bool` fair).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Generates a value uniformly in `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// True with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types seedable from a `u64`; mirrors `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed, expanding it to the
    /// full state size deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types with a default sampling distribution; mirrors
/// `rand::distributions::Standard` coverage for primitives.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly; mirrors
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Uniform draw from `[0, span)` by widening multiply — unbiased enough
/// for simulation (bias < 2^-64 per draw).
#[inline]
fn uniform_below<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_below(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Only reachable for the full u64/i64 domain.
                    return rng.next_u64() as $t;
                }
                let off = uniform_below(rng, span as u64);
                (start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Named generators; mirrors `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 state expansion, per the xoshiro authors'
            // recommendation — avoids the all-zero state for any seed.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// A `StdRng` seeded from system entropy (address-space layout and time);
/// mirrors `rand::thread_rng` loosely. Prefer explicit seeds in
/// experiments.
pub fn thread_rng() -> rngs::StdRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let t = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let stack_probe = &t as *const _ as u64;
    rngs::StdRng::seed_from_u64(t ^ stack_probe.rotate_left(32))
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u16..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(1024..=u16::MAX);
            assert!(w >= 1024);
            let x = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean} far from 0.5");
    }

    #[test]
    fn small_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
