//! In-tree subset of `parking_lot` (no-network build environment).
//!
//! Wraps `std::sync` primitives with the two `parking_lot` behaviors this
//! workspace relies on:
//!
//! 1. **no lock poisoning** — a panic while a lock is held (routine in the
//!    SFI fault-injection paths, where panics are caught at domain
//!    boundaries) must not wedge the lock for every later user;
//! 2. **guard-returning `lock()`/`read()`/`write()`** — no `Result`
//!    unwrapping at call sites.

use std::sync::{self, PoisonError};

/// A mutual-exclusion lock that does not poison on panic.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock that does not poison on panic.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire a shared read lock without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire an exclusive write lock without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_does_not_poison() {
        let m = std::sync::Arc::new(Mutex::new(1));
        let m2 = m.clone();
        let _ = std::panic::catch_unwind(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        });
        assert_eq!(*m.lock(), 1, "lock usable after a panic while held");
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1 + *r2, 10);
        }
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn try_lock_contention() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
