//! SFI-isolated packet pipelines — the integration §3 evaluates.
//!
//! "We use our SFI library to isolate every pipeline component in a
//! separate protection domain, replacing function calls with remote
//! invocations." An [`IsolatedPipeline`] holds one protection domain per
//! stage; a batch *moves* into each stage's domain through its
//! [`RRef`] and moves out with the return value — zero copies, enforced
//! by ownership.
//!
//! Fault handling follows the paper: a panicking stage unwinds to the
//! invocation boundary, its domain's reference table is cleared, and the
//! registered recovery function rebuilds the operator from its factory.
//! The caller sees `Err(RpcError::Fault)` for that batch (the batch
//! itself is lost with the domain — it had been moved in) and calls
//! [`IsolatedPipeline::heal`] to pick up the recovered stage's fresh
//! remote reference, making the failure transparent from then on.

use parking_lot::Mutex;
use rbs_netfx::batch::PacketBatch;
use rbs_netfx::pipeline::Operator;
use rbs_sfi::{Domain, DomainManager, RRef, RpcError};
use std::sync::Arc;

/// A boxed, domain-residing pipeline stage.
pub type BoxedOperator = Box<dyn Operator + Send>;

/// A factory rebuilding a stage's operator after a fault.
pub type OperatorFactory = Arc<dyn Fn() -> BoxedOperator + Send + Sync>;

struct IsolatedStage {
    domain: Domain,
    rref: RRef<BoxedOperator>,
    /// Recovery deposits the replacement reference here; [`heal`]
    /// collects it. Kept out of the data path so remote invocation cost
    /// (the quantity Figure 2 measures) stays untouched.
    mailbox: Arc<Mutex<Option<RRef<BoxedOperator>>>>,
}

/// A pipeline whose every stage runs in its own protection domain.
pub struct IsolatedPipeline {
    manager: DomainManager,
    stages: Vec<IsolatedStage>,
}

impl IsolatedPipeline {
    /// An empty isolated pipeline with its own domain manager.
    pub fn new() -> Self {
        Self {
            manager: DomainManager::new(),
            stages: Vec::new(),
        }
    }

    /// Uses an existing manager (so callers can apply policies/quotas).
    pub fn with_manager(manager: DomainManager) -> Self {
        Self {
            manager,
            stages: Vec::new(),
        }
    }

    /// An empty isolated pipeline whose stage domains run on the given
    /// isolation backend (see [`rbs_sfi::IsolationBackend`]). The
    /// default [`BackendKind::TypedSfi`](rbs_sfi::BackendKind::TypedSfi)
    /// is the paper's zero-cost model; the others charge each remote
    /// invocation per their cost models.
    pub fn with_backend(kind: rbs_sfi::BackendKind) -> Self {
        Self::with_manager(DomainManager::with_backend_kind(kind))
    }

    /// Appends a stage: creates a protection domain named `name`, builds
    /// the operator inside it from `factory`, exports it as an [`RRef`],
    /// and registers recovery so a faulted stage rebuilds itself.
    pub fn add_stage(
        &mut self,
        name: &str,
        factory: impl Fn() -> BoxedOperator + Send + Sync + 'static,
    ) -> Result<(), rbs_sfi::domain::DomainError> {
        let factory: OperatorFactory = Arc::new(factory);
        let domain = self.manager.create_domain(name)?;
        let rref = domain
            .execute(|| RRef::new(&domain, factory()))
            .expect("a fresh domain accepts execute");
        let mailbox: Arc<Mutex<Option<RRef<BoxedOperator>>>> = Arc::new(Mutex::new(None));
        {
            let mailbox = Arc::clone(&mailbox);
            let factory = Arc::clone(&factory);
            domain.set_recovery(move |d: &Domain| {
                let fresh = RRef::new(d, factory());
                *mailbox.lock() = Some(fresh);
            });
        }
        self.stages.push(IsolatedStage {
            domain,
            rref,
            mailbox,
        });
        Ok(())
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// True when the pipeline has no stages.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// The stages' domains (for stats and lifecycle inspection).
    pub fn domains(&self) -> Vec<&Domain> {
        self.stages.iter().map(|s| &s.domain).collect()
    }

    /// The manager owning the stage domains.
    pub fn manager(&self) -> &DomainManager {
        &self.manager
    }

    /// Runs one batch to completion through every stage via remote
    /// invocation. The batch moves across each domain boundary; on a
    /// stage fault it is lost inside the failed domain and the error is
    /// surfaced ("return an error code to the caller").
    pub fn run_batch(&mut self, batch: PacketBatch) -> Result<PacketBatch, RpcError> {
        let mut current = batch;
        for stage in &mut self.stages {
            current = stage
                .rref
                .invoke_mut_named("process", move |op| op.process(current))?;
        }
        Ok(current)
    }

    /// Collects replacement references deposited by stage recovery.
    /// Returns how many stages were healed.
    pub fn heal(&mut self) -> usize {
        let mut healed = 0;
        for stage in &mut self.stages {
            if let Some(fresh) = stage.mailbox.lock().take() {
                stage.rref = fresh;
                healed += 1;
            }
        }
        healed
    }

    /// Convenience wrapper: run a batch, and if a stage faulted, heal
    /// the pipeline so the *next* batch flows again. The faulted batch
    /// is still reported as an error — SFI contains faults, it does not
    /// resurrect in-flight data.
    pub fn run_batch_healing(&mut self, batch: PacketBatch) -> Result<PacketBatch, RpcError> {
        match self.run_batch(batch) {
            Ok(b) => Ok(b),
            Err(e) => {
                self.heal();
                Err(e)
            }
        }
    }
}

impl Default for IsolatedPipeline {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbs_netfx::headers::ethernet::MacAddr;
    use rbs_netfx::operators::{NullFilter, PanicAfter, TtlDecrement};
    use rbs_netfx::packet::Packet;
    use rbs_sfi::DomainState;
    use std::net::Ipv4Addr;

    fn batch(n: usize) -> PacketBatch {
        (0..n)
            .map(|i| {
                Packet::build_udp(
                    MacAddr::ZERO,
                    MacAddr::ZERO,
                    Ipv4Addr::new(10, 0, 0, 1),
                    Ipv4Addr::new(10, 0, 0, 2),
                    1000 + i as u16,
                    80,
                    16,
                )
            })
            .collect()
    }

    fn null_pipeline(stages: usize) -> IsolatedPipeline {
        let mut p = IsolatedPipeline::new();
        for i in 0..stages {
            p.add_stage(&format!("null-{i}"), || Box::new(NullFilter::new()))
                .unwrap();
        }
        p
    }

    #[test]
    fn batches_flow_through_isolated_stages() {
        let mut p = null_pipeline(5);
        assert_eq!(p.len(), 5);
        let out = p.run_batch(batch(16)).unwrap();
        assert_eq!(out.len(), 16);
        for d in p.domains() {
            assert_eq!(d.stats().invocations(), 2, "execute + one process call");
        }
    }

    #[test]
    fn stages_actually_process() {
        let mut p = IsolatedPipeline::new();
        p.add_stage("ttl", || Box::new(TtlDecrement::new()))
            .unwrap();
        let out = p.run_batch(batch(4)).unwrap();
        assert!(out.iter().all(|pk| pk.ipv4().unwrap().ttl() == 63));
    }

    #[test]
    fn fault_loses_batch_then_heals() {
        let mut p = IsolatedPipeline::new();
        p.add_stage("flaky", || Box::new(PanicAfter::new(2)))
            .unwrap();
        p.add_stage("null", || Box::new(NullFilter::new())).unwrap();

        assert!(p.run_batch(batch(1)).is_ok());
        assert!(p.run_batch(batch(1)).is_ok());
        // Third batch trips the injected fault.
        let err = p.run_batch(batch(1)).unwrap_err();
        assert!(matches!(err, RpcError::Fault { .. }));
        // Recovery already ran inside the fault path; the domain is
        // active again and the mailbox holds a fresh reference.
        assert_eq!(p.domains()[0].state(), DomainState::Active);
        assert_eq!(p.heal(), 1);
        // Traffic flows again (the factory built a fresh PanicAfter(2)).
        assert!(p.run_batch(batch(1)).is_ok());
    }

    /// A factory whose first-built operator faults on its first batch;
    /// rebuilt instances are healthy — "re-initialize the domain from
    /// clean state".
    fn faulty_once_factory() -> impl Fn() -> super::BoxedOperator + Send + Sync + 'static {
        let built = std::sync::atomic::AtomicUsize::new(0);
        move || -> super::BoxedOperator {
            if built.fetch_add(1, std::sync::atomic::Ordering::SeqCst) == 0 {
                Box::new(PanicAfter::new(0))
            } else {
                Box::new(NullFilter::new())
            }
        }
    }

    #[test]
    fn run_batch_healing_auto_collects() {
        let mut p = IsolatedPipeline::new();
        p.add_stage("flaky", faulty_once_factory()).unwrap();
        assert!(p.run_batch_healing(batch(1)).is_err());
        // Healed inline: next batch is fine.
        assert!(p.run_batch_healing(batch(1)).is_ok());
    }

    #[test]
    fn other_stages_unaffected_by_one_fault() {
        let mut p = IsolatedPipeline::new();
        p.add_stage("a", || Box::new(NullFilter::new())).unwrap();
        p.add_stage("flaky", faulty_once_factory()).unwrap();
        p.add_stage("c", || Box::new(NullFilter::new())).unwrap();
        let _ = p.run_batch_healing(batch(1));
        assert_eq!(p.domains()[0].state(), DomainState::Active);
        assert_eq!(p.domains()[2].state(), DomainState::Active);
        assert_eq!(
            p.domains()[2].stats().invocations(),
            1,
            "stage c never saw the batch"
        );
        assert!(p.run_batch(batch(3)).is_ok());
    }

    #[test]
    fn generation_counts_recoveries() {
        let mut p = IsolatedPipeline::new();
        p.add_stage("flaky", || Box::new(PanicAfter::new(0)))
            .unwrap();
        for round in 1..=3u64 {
            assert!(p.run_batch_healing(batch(1)).is_err());
            assert_eq!(p.domains()[0].generation(), round);
        }
        assert_eq!(p.domains()[0].stats().faults(), 3);
        assert_eq!(p.domains()[0].stats().recoveries(), 3);
    }

    #[test]
    fn empty_pipeline_is_identity() {
        let mut p = IsolatedPipeline::new();
        assert!(p.is_empty());
        let out = p.run_batch(batch(2)).unwrap();
        assert_eq!(out.len(), 2);
    }
}
