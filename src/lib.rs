//! # rust-beyond-safety
//!
//! A reproduction of *System Programming in Rust: Beyond Safety* (HotOS '17).
//!
//! The paper argues that Rust's linear type system enables capabilities that go
//! beyond memory safety and that are impractical to implement efficiently in
//! conventional languages. This workspace builds the paper's three prototypes,
//! plus every substrate they depend on:
//!
//! - **Isolation** ([`sfi`]): zero-copy software fault isolation. Protection
//!   domains share a heap but exchange data only by *moving* ownership across
//!   [`sfi::RRef`] remote references; a failed domain is recovered by clearing
//!   its reference table and re-initialising it.
//! - **Analysis** ([`ifc`]): static information flow control by verifying an
//!   abstract interpretation of the program in which every value is a security
//!   label. Move semantics make the analysis precise without alias analysis.
//! - **Automation** ([`checkpoint`]): automatic checkpointing of arbitrary
//!   pointer-linked data structures. Unique ownership makes traversal trivially
//!   correct; only explicitly aliased [`checkpoint::CkRc`] nodes need (O(1))
//!   dedup handling.
//!
//! Substrates: [`netfx`] is a NetBricks-style packet-processing framework with
//! a synthetic traffic generator, [`maglev`] is a Maglev consistent-hashing
//! load balancer network function, and [`fwtrie`] is the firewall rule trie of
//! the paper's Figure 3. The [`runtime`] crate composes them into a sharded
//! multi-worker pipeline runtime: flows are RSS-hashed across worker threads,
//! each worker runs its pipeline inside its own [`sfi`] domain, and a panic in
//! one worker is healed (domain recovery + worker respawn) without disturbing
//! the others.
//!
//! # Quickstart
//!
//! ```
//! use rust_beyond_safety::sfi::{DomainManager, RRef};
//!
//! let mgr = DomainManager::new();
//! let domain = mgr.create_domain("counter").unwrap();
//! let rref: RRef<u64> = domain.execute(|| RRef::new(&domain, 0u64)).unwrap();
//! let value = rref.invoke_mut(|v| { *v += 1; *v }).unwrap();
//! assert_eq!(value, 1);
//! ```
//!
//! See `examples/` for end-to-end scenarios and `crates/bench` for the
//! experiment harness that regenerates the paper's figures.

pub mod isolated;

pub use isolated::IsolatedPipeline;
pub use rbs_checkpoint as checkpoint;
pub use rbs_core as core;
pub use rbs_fwtrie as fwtrie;
pub use rbs_ifc as ifc;
pub use rbs_maglev as maglev;
pub use rbs_netfx as netfx;
pub use rbs_runtime as runtime;
pub use rbs_sfi as sfi;
