//! A realistic NFV pipeline with every stage in its own protection
//! domain: firewall → TTL decrement → Maglev load balancer.
//!
//! Part 1 demonstrates §3 end to end on one thread: batches move between
//! domains by ownership transfer, a fault in one stage is contained and
//! recovered, and the rest of the pipeline never notices.
//!
//! Part 2 runs the same pipeline on the sharded runtime: four workers,
//! each owning a full pipeline replica inside its own domain, flows
//! RSS-hashed across them. A poison packet crashes one worker mid-run;
//! the printout shows the other three unaffected while the supervisor
//! recovers the victim's domain and it rejoins.
//!
//! ```sh
//! cargo run --release --example isolated_nf_pipeline [-- --backend typed|mpk|copy]
//! ```
//!
//! `--backend` selects the isolation backend every protection domain
//! runs on (default `typed`, the paper's zero-cost model); `mpk` and
//! `copy` charge each crossing per their cost models and the example
//! prints the resulting crossing census (experiment E13 measures the
//! full spectrum).

use rust_beyond_safety::fwtrie::{Action, FirewallOp, FwTrie, Rule};
use rust_beyond_safety::maglev::{Backend, MaglevLb};
use rust_beyond_safety::netfx::flow::FiveTuple;
use rust_beyond_safety::netfx::headers::ethernet::MacAddr;
use rust_beyond_safety::netfx::operators::TtlDecrement;
use rust_beyond_safety::netfx::pktgen::{FlowDistribution, PacketGen, TrafficConfig};
use rust_beyond_safety::netfx::{Operator, Packet, PacketBatch, PipelineSpec};
use rust_beyond_safety::runtime::{shard_of_packet, RuntimeConfig, ShardedRuntime};
use rust_beyond_safety::sfi::BackendKind;
use rust_beyond_safety::IsolatedPipeline;
use std::net::Ipv4Addr;

/// Parses `--backend <kind>` from the argument list (default typed-sfi).
fn backend_from_args() -> BackendKind {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--backend" {
            let v = args.next().unwrap_or_default();
            return v.parse().unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(2);
            });
        }
    }
    BackendKind::TypedSfi
}

fn build_firewall() -> FirewallOp {
    let mut trie = FwTrie::new();
    // Allow web traffic to the VIP; everything else to it is dropped.
    trie.insert(
        Rule::new(
            1,
            "allow-web",
            Ipv4Addr::new(192, 0, 2, 1),
            32,
            Action::Allow,
        )
        .dports(80, 443),
    );
    trie.insert(Rule::new(
        2,
        "default-deny-vip",
        Ipv4Addr::new(192, 0, 2, 1),
        32,
        Action::Deny,
    ));
    FirewallOp::new(trie, Action::Deny)
}

fn build_maglev() -> MaglevLb {
    let backends = (0..4).map(|i| Backend::new(format!("web-{i}"))).collect();
    let addrs = (0..4).map(|i| Ipv4Addr::new(10, 8, 0, i + 1)).collect();
    MaglevLb::new(backends, addrs, 65537).expect("valid backends")
}

fn main() {
    let backend = backend_from_args();
    println!("isolation backend: {backend}");

    // Synthetic traffic: heavy-tailed flow mix to the VIP (the DPDK
    // stand-in; see DESIGN.md substitution 1).
    let mut gen = PacketGen::new(TrafficConfig {
        flows: 10_000,
        distribution: FlowDistribution::Zipf(1.1),
        payload_len: 128,
        ..Default::default()
    });

    let mut pipeline = IsolatedPipeline::with_backend(backend);
    pipeline
        .add_stage("firewall", || Box::new(build_firewall()))
        .expect("no quota");
    pipeline
        .add_stage("ttl", || Box::new(TtlDecrement::new()))
        .expect("no quota");
    pipeline
        .add_stage("maglev", || Box::new(build_maglev()))
        .expect("no quota");

    println!("pipeline stages, each in its own protection domain:");
    for d in pipeline.domains() {
        println!("  {:?} {}", d.id(), d.name());
    }

    let mut delivered = 0usize;
    let mut sent = 0usize;
    for _ in 0..1_000 {
        let batch = gen.next_batch(32);
        sent += batch.len();
        match pipeline.run_batch_healing(batch) {
            Ok(out) => delivered += out.len(),
            Err(e) => println!("  batch lost to a stage fault: {e}"),
        }
    }
    println!("\nsent {sent} packets, delivered {delivered} to backends");
    let totals = pipeline.manager().backend_totals();
    if totals.crossings > 0 {
        println!(
            "backend {backend} charged {} crossings, {} boundary bytes, {} modeled cycles",
            totals.crossings, totals.bytes, totals.model_cycles
        );
    }

    for d in pipeline.domains() {
        println!(
            "  domain {:<10} invocations={:<6} faults={} recoveries={}",
            d.name(),
            d.stats().invocations(),
            d.stats().faults(),
            d.stats().recoveries(),
        );
    }

    // Inject a fault: replace the firewall stage with one that panics on
    // its first batch, then show recovery keeping the pipeline alive.
    // Silence the default hook — the panic is caught at the domain
    // boundary; the stack trace would just be noise.
    std::panic::set_hook(Box::new(|_| {}));
    println!("\ninjecting a fault into a fresh pipeline stage...");
    let mut flaky = IsolatedPipeline::with_backend(backend);
    let built = std::sync::atomic::AtomicUsize::new(0);
    flaky
        .add_stage("flaky-fw", move || {
            if built.fetch_add(1, std::sync::atomic::Ordering::SeqCst) == 0 {
                Box::new(rust_beyond_safety::netfx::operators::PanicAfter::new(3))
            } else {
                Box::new(build_firewall())
            }
        })
        .expect("no quota");
    let mut ok = 0;
    let mut lost = 0;
    for _ in 0..10 {
        match flaky.run_batch_healing(gen.next_batch(8)) {
            Ok(_) => ok += 1,
            Err(_) => lost += 1,
        }
    }
    let d = &flaky.domains()[0];
    println!(
        "  10 batches: {ok} processed, {lost} lost to the fault; domain generation={} state={:?}",
        d.generation(),
        d.state()
    );

    sharded_runtime_demo(&mut gen, backend);
}

/// The port that makes [`PoisonPort`] panic.
const POISON_PORT: u16 = 0xDEAD;

/// A buggy operator: panics on a crafted input (a packet to
/// [`POISON_PORT`]), crashing whichever worker its flow hashes to.
struct PoisonPort;

impl Operator for PoisonPort {
    fn process(&mut self, batch: PacketBatch) -> PacketBatch {
        for p in batch.iter() {
            if let Ok(t) = FiveTuple::of(p) {
                assert_ne!(t.dst_port, POISON_PORT, "crafted packet");
            }
        }
        batch
    }

    fn name(&self) -> &str {
        "poison-port"
    }
}

/// Part 2: the same NF pipeline sharded across 4 workers, one of which
/// is crashed mid-run and healed without disturbing the others.
fn sharded_runtime_demo(gen: &mut PacketGen, backend: BackendKind) {
    const WORKERS: usize = 4;
    const BATCHES: usize = 400;

    println!("\n--- sharded runtime: {WORKERS} workers, one full pipeline replica each ---");
    let spec = PipelineSpec::new()
        .stage(|| PoisonPort)
        .stage(build_firewall)
        .stage(TtlDecrement::new)
        .stage(build_maglev);
    let mut rt = ShardedRuntime::new(
        spec,
        RuntimeConfig {
            workers: WORKERS,
            queue_capacity: 64,
            backend,
            ..RuntimeConfig::default()
        },
    )
    .expect("runtime construction");

    // The crafted crash packet; the RSS hash decides which worker dies.
    let poison = Packet::build_udp(
        MacAddr::ZERO,
        MacAddr::ZERO,
        Ipv4Addr::new(203, 0, 113, 9),
        Ipv4Addr::new(192, 0, 2, 1),
        31337,
        POISON_PORT,
        16,
    );
    let victim = shard_of_packet(&poison, WORKERS);
    println!("poison flow hashes to worker {victim}; dispatching {BATCHES} batches...");
    let mut poison = Some(poison);

    for i in 0..BATCHES {
        if i == BATCHES / 2 {
            let mut b = PacketBatch::new();
            b.push(poison.take().expect("dispatched once"));
            rt.dispatch(b).expect("poison dispatch");
        }
        rt.dispatch(gen.next_batch(32)).expect("dispatch");
    }
    rt.drain(std::time::Duration::from_secs(30))
        .then_some(())
        .expect("drain");

    for w in rt.snapshots() {
        let role = if w.index == victim {
            "victim "
        } else {
            "worker "
        };
        println!(
            "  {role}{}: state={:?} gen={} respawns={} batches={} lost={} \
             packets_in={} delivered={} faults={}",
            w.index,
            w.state,
            w.generation,
            w.respawns,
            w.processed,
            w.lost,
            w.packets_in,
            w.packets_out,
            w.faults,
        );
    }

    let totals = rt.backend_totals();
    if totals.crossings > 0 {
        println!(
            "backend {backend} charged {} crossings, {} boundary bytes, {} modeled cycles",
            totals.crossings, totals.bytes, totals.model_cycles
        );
    }
    let report = rt.shutdown();
    println!(
        "total: {} packets in, {} delivered, {} batches lost with the crash, \
         {} fault(s) contained, {} respawn(s)",
        report.packets_in, report.packets_out, report.lost_batches, report.faults, report.respawns,
    );
    assert_eq!(report.faults, 1, "exactly the injected fault");
    let survivors_clean = report
        .workers
        .iter()
        .filter(|w| w.index != victim)
        .all(|w| w.faults == 0 && w.lost == 0);
    assert!(survivors_clean, "no other worker was disturbed");
    println!("the other {} workers were unaffected.", WORKERS - 1);
}
