//! A realistic NFV pipeline with every stage in its own protection
//! domain: firewall → TTL decrement → Maglev load balancer.
//!
//! Demonstrates §3 end to end: batches move between domains by
//! ownership transfer, a fault in one stage is contained and recovered,
//! and the rest of the pipeline never notices.
//!
//! ```sh
//! cargo run --release --example isolated_nf_pipeline
//! ```

use rust_beyond_safety::fwtrie::{Action, FirewallOp, FwTrie, Rule};
use rust_beyond_safety::maglev::{Backend, MaglevLb};
use rust_beyond_safety::netfx::operators::TtlDecrement;
use rust_beyond_safety::netfx::pktgen::{FlowDistribution, PacketGen, TrafficConfig};
use rust_beyond_safety::IsolatedPipeline;
use std::net::Ipv4Addr;

fn build_firewall() -> FirewallOp {
    let mut trie = FwTrie::new();
    // Allow web traffic to the VIP; everything else to it is dropped.
    trie.insert(
        Rule::new(1, "allow-web", Ipv4Addr::new(192, 0, 2, 1), 32, Action::Allow).dports(80, 443),
    );
    trie.insert(Rule::new(2, "default-deny-vip", Ipv4Addr::new(192, 0, 2, 1), 32, Action::Deny));
    FirewallOp::new(trie, Action::Deny)
}

fn build_maglev() -> MaglevLb {
    let backends = (0..4).map(|i| Backend::new(format!("web-{i}"))).collect();
    let addrs = (0..4).map(|i| Ipv4Addr::new(10, 8, 0, i + 1)).collect();
    MaglevLb::new(backends, addrs, 65537).expect("valid backends")
}

fn main() {
    // Synthetic traffic: heavy-tailed flow mix to the VIP (the DPDK
    // stand-in; see DESIGN.md substitution 1).
    let mut gen = PacketGen::new(TrafficConfig {
        flows: 10_000,
        distribution: FlowDistribution::Zipf(1.1),
        payload_len: 128,
        ..Default::default()
    });

    let mut pipeline = IsolatedPipeline::new();
    pipeline
        .add_stage("firewall", || Box::new(build_firewall()))
        .expect("no quota");
    pipeline
        .add_stage("ttl", || Box::new(TtlDecrement::new()))
        .expect("no quota");
    pipeline
        .add_stage("maglev", || Box::new(build_maglev()))
        .expect("no quota");

    println!("pipeline stages, each in its own protection domain:");
    for d in pipeline.domains() {
        println!("  {:?} {}", d.id(), d.name());
    }

    let mut delivered = 0usize;
    let mut sent = 0usize;
    for _ in 0..1_000 {
        let batch = gen.next_batch(32);
        sent += batch.len();
        match pipeline.run_batch_healing(batch) {
            Ok(out) => delivered += out.len(),
            Err(e) => println!("  batch lost to a stage fault: {e}"),
        }
    }
    println!("\nsent {sent} packets, delivered {delivered} to backends");

    for d in pipeline.domains() {
        println!(
            "  domain {:<10} invocations={:<6} faults={} recoveries={}",
            d.name(),
            d.stats().invocations(),
            d.stats().faults(),
            d.stats().recoveries(),
        );
    }

    // Inject a fault: replace the firewall stage with one that panics on
    // its first batch, then show recovery keeping the pipeline alive.
    // Silence the default hook — the panic is caught at the domain
    // boundary; the stack trace would just be noise.
    std::panic::set_hook(Box::new(|_| {}));
    println!("\ninjecting a fault into a fresh pipeline stage...");
    let mut flaky = IsolatedPipeline::new();
    let built = std::sync::atomic::AtomicUsize::new(0);
    flaky
        .add_stage("flaky-fw", move || {
            if built.fetch_add(1, std::sync::atomic::Ordering::SeqCst) == 0 {
                Box::new(rust_beyond_safety::netfx::operators::PanicAfter::new(3))
            } else {
                Box::new(build_firewall())
            }
        })
        .expect("no quota");
    let mut ok = 0;
    let mut lost = 0;
    for _ in 0..10 {
        match flaky.run_batch_healing(gen.next_batch(8)) {
            Ok(_) => ok += 1,
            Err(_) => lost += 1,
        }
    }
    let d = &flaky.domains()[0];
    println!(
        "  10 batches: {ok} processed, {lost} lost to the fault; domain generation={} state={:?}",
        d.generation(),
        d.state()
    );
}
