//! The §4 secure data store: verify the correct implementation, then
//! seed the paper's access-check bug and watch the verifier find it.
//!
//! ```sh
//! cargo run --example ifc_secure_store
//! ```

use rust_beyond_safety::ifc::alias;
use rust_beyond_safety::ifc::examples::{
    buffer_alias_exploit_source, secure_store_buggy_source, secure_store_source,
    BUFFER_ALIAS_EXPLOIT_SRC,
};
use rust_beyond_safety::ifc::verify::{verify, Report, Verdict};

fn main() {
    println!("== secure data store: correct implementation ==");
    let store = secure_store_source();
    print!("{}", Report::for_program(&store));

    println!("\n== secure data store: seeded access-check bug ==");
    let buggy = secure_store_buggy_source();
    print!("{}", Report::for_program(&buggy));

    println!("\n== the line-17 alias exploit, three ways ==");
    println!("{BUFFER_ALIAS_EXPLOIT_SRC}");
    let exploit = buffer_alias_exploit_source();

    // 1. Rust mode: the ownership discipline rejects line 17 outright.
    match verify(&exploit) {
        Verdict::OwnershipRejected(errors) => {
            println!("rust mode: rejected by the compiler --");
            for e in &errors {
                println!("  {e}");
            }
        }
        other => println!("rust mode: unexpected {other:?}"),
    }

    // 2. C mode with alias analysis: the leak is caught, at a price.
    let (violations, stats) = alias::analyze_alias(&exploit);
    println!(
        "\nc mode, with Andersen points-to ({} cells, {} edges, {} solver iterations):",
        stats.cells, stats.pts_edges, stats.solver_iterations
    );
    for v in &violations {
        println!("  caught: {v}");
    }

    // 3. C mode without alias analysis: silently missed.
    let naive = alias::analyze_naive(&exploit);
    println!(
        "\nc mode, per-variable taint only: {} violations reported — the leak slips through",
        naive.len()
    );
}
