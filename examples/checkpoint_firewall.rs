//! Figure 3, live: checkpoint a firewall whose rules are shared across
//! many trie leaves, compare the three traversal strategies, mutate the
//! database, and roll back.
//!
//! ```sh
//! cargo run --release --example checkpoint_firewall
//! ```

use rust_beyond_safety::checkpoint::{checkpoint_with_mode, restore, CkArc, DedupMode};
use rust_beyond_safety::fwtrie::{Action, FwTrie, Rule};
use rust_beyond_safety::netfx::flow::FiveTuple;
use rust_beyond_safety::netfx::headers::IpProto;
use std::net::Ipv4Addr;

fn probe(dst: Ipv4Addr) -> FiveTuple {
    FiveTuple {
        src_ip: Ipv4Addr::new(172, 16, 5, 5),
        dst_ip: dst,
        src_port: 40_000,
        dst_port: 443,
        proto: IpProto::Tcp,
    }
}

fn main() {
    // Build the Figure 3a database: rules indexed by a trie, some rules
    // reachable from several prefixes.
    let mut db = FwTrie::new();
    let rule1 = db.insert(Rule::new(
        1,
        "rule 1 (shared)",
        Ipv4Addr::new(10, 0, 0, 0),
        8,
        Action::Allow,
    ));
    // Two more prefixes alias the very same rule object.
    db.alias_at(Ipv4Addr::new(192, 168, 0, 0), 16, rule1.clone());
    db.alias_at(Ipv4Addr::new(172, 16, 0, 0), 12, rule1.clone());
    db.insert(Rule::new(
        2,
        "rule 2",
        Ipv4Addr::new(8, 8, 8, 0),
        24,
        Action::Deny,
    ));

    println!(
        "database: {} trie nodes, {} rule references, rule 1 reachable via {} prefixes",
        db.node_count(),
        db.rule_refs(),
        CkArc::strong_count(&rule1) - 1,
    );

    println!("\ncheckpointing the same database three ways:");
    for mode in [DedupMode::EpochFlag, DedupMode::AddressSet, DedupMode::None] {
        let cp = checkpoint_with_mode(&db, mode);
        let copies = if mode == DedupMode::None {
            cp.stats.duplicate_copies
        } else {
            cp.stats.shared_copied
        };
        println!(
            "  {:?}: {} rule copies, {} snapshot nodes, {} map lookups",
            mode,
            copies,
            cp.total_nodes(),
            cp.stats.address_lookups,
        );
    }
    println!("  (Figure 3b is the None row: redundant copies of rule 1)");

    // Take the real checkpoint, wreck the config, roll back. The probe
    // address matches no rule before the bad change.
    let cp = checkpoint_with_mode(&db, DedupMode::EpochFlag);
    let victim = Ipv4Addr::new(99, 1, 1, 1);
    println!(
        "\nbefore the bad change, {victim} matches rule {:?}",
        db.lookup(&probe(victim)).map(|r| r.id)
    );
    db.insert(Rule::new(
        0,
        "fat-finger catch-all",
        Ipv4Addr::UNSPECIFIED,
        0,
        Action::Deny,
    ));
    println!(
        "after the bad change,  {victim} matches rule {:?}",
        db.lookup(&probe(victim)).map(|r| r.id)
    );
    db = restore(&cp).expect("snapshot restores");
    println!(
        "after rollback,        {victim} matches rule {:?}",
        db.lookup(&probe(victim)).map(|r| r.id)
    );

    // Sharing survived the roundtrip: both aliased prefixes still reach
    // one object.
    let a = db
        .lookup(&probe(Ipv4Addr::new(10, 9, 9, 9)))
        .expect("matches rule 1");
    let b = db
        .lookup(&probe(Ipv4Addr::new(192, 168, 3, 4)))
        .expect("matches rule 1");
    println!(
        "rule 1 still shared after restore: {} (strong count {})",
        CkArc::ptr_eq(a, b),
        CkArc::strong_count(a),
    );
}
