//! Zero-copy producer/consumer across protection domains, the channel
//! way: "after passing an object reference to a function or channel, the
//! caller loses access to the object" (§3).
//!
//! Four producer threads generate packet batches and move them through a
//! bounded channel into a consumer domain; the consumer tallies them via
//! its exported counter. Mid-run the channel is revoked and the senders
//! observe the capability dying.
//!
//! ```sh
//! cargo run --release --example domain_channels [-- --backend typed|mpk|copy]
//! ```
//!
//! `--backend` selects the isolation backend the consumer domain runs on
//! (default `typed`, zero cost). A charging backend bills every send and
//! recv by the batch's payload bytes; the example prints the census.

use rust_beyond_safety::netfx::batch::PacketBatch;
use rust_beyond_safety::netfx::operators::Counter;
use rust_beyond_safety::netfx::pipeline::Operator;
use rust_beyond_safety::netfx::pktgen::{PacketGen, TrafficConfig};
use rust_beyond_safety::sfi::{channel_metered, BackendKind, ChannelError, DomainManager, RRef};

/// Parses `--backend <kind>` from the argument list (default typed-sfi).
fn backend_from_args() -> BackendKind {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--backend" {
            let v = args.next().unwrap_or_default();
            return v.parse().unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(2);
            });
        }
    }
    BackendKind::TypedSfi
}

fn main() {
    let backend = backend_from_args();
    println!("isolation backend: {backend}");
    let mgr = DomainManager::with_backend_kind(backend);
    let consumer = mgr.create_domain("consumer").expect("no quota");
    let (tx, rx) = channel_metered::<PacketBatch>(&consumer, 32, PacketBatch::total_bytes);
    let counter = RRef::new(&consumer, Counter::new());

    println!(
        "consumer domain {:?} exports {} objects (counter + channel endpoint)",
        consumer.id(),
        consumer.exported_objects()
    );

    let producers: Vec<_> = (0..4)
        .map(|i| {
            let tx = tx.clone();
            std::thread::spawn(move || {
                let mut gen = PacketGen::new(TrafficConfig {
                    seed: 1000 + i,
                    ..Default::default()
                });
                let mut sent = 0u64;
                loop {
                    let batch = gen.next_batch(16);
                    match tx.send(batch) {
                        Ok(()) => sent += 16,
                        Err((ChannelError::Revoked, lost)) => {
                            // Ownership of the unsent batch came back.
                            return (sent, lost.len());
                        }
                        Err((e, _)) => panic!("unexpected channel error: {e}"),
                    }
                }
            })
        })
        .collect();

    // Consume for a while, then revoke the channel.
    let mut consumed = 0u64;
    while consumed < 10_000 {
        let batch = rx.recv().expect("producers active");
        consumed += counter
            .invoke_mut(move |c| c.process(batch).len() as u64)
            .expect("healthy domain");
    }
    println!("consumed {consumed} packets; revoking the channel...");
    rx.revoke();

    // Drain what was already queued (those batches were moved before the
    // revocation and belong to the consumer).
    while let Ok(batch) = rx.try_recv() {
        consumed += counter
            .invoke_mut(move |c| c.process(batch).len() as u64)
            .expect("healthy domain");
    }

    for (i, p) in producers.into_iter().enumerate() {
        let (sent, returned) = p.join().expect("producer thread");
        println!(
            "  producer {i}: sent {sent} packets, got a {returned}-packet batch back on revocation"
        );
    }
    println!(
        "total consumed: {consumed}; counter agrees: {}",
        counter.invoke(|c| c.packets()).expect("healthy domain")
    );
    let totals = mgr.backend_totals();
    if totals.crossings > 0 {
        println!(
            "backend {backend} charged {} crossings, {} boundary bytes, {} modeled cycles",
            totals.crossings, totals.bytes, totals.model_cycles
        );
    }
}
