//! The Maglev load balancer on its own: balance, connection stickiness,
//! and minimal disruption when a backend dies.
//!
//! ```sh
//! cargo run --release --example maglev_lb
//! ```

use rust_beyond_safety::maglev::{Backend, MaglevLb, MaglevTable};
use rust_beyond_safety::netfx::pipeline::Operator;
use rust_beyond_safety::netfx::pktgen::{PacketGen, TrafficConfig};
use std::net::Ipv4Addr;

fn backends(n: usize) -> (Vec<Backend>, Vec<Ipv4Addr>) {
    (
        (0..n).map(|i| Backend::new(format!("web-{i}"))).collect(),
        (0..n)
            .map(|i| Ipv4Addr::new(10, 8, 0, i as u8 + 1))
            .collect(),
    )
}

fn main() {
    // Table properties first (the control plane).
    let (b, _) = backends(10);
    let table = MaglevTable::new(b, 65537).expect("valid set");
    println!(
        "lookup table: {} entries over {} backends, imbalance (max/min) = {:.4}",
        table.size(),
        table.backends().len(),
        table.imbalance()
    );

    let (mut b9, _) = backends(10);
    b9.remove(4);
    let reduced = MaglevTable::new(b9, 65537).expect("valid set");
    println!(
        "killing one backend moves {:.1}% of entries (ideal minimum: 10.0%)",
        table.disruption(&reduced) * 100.0
    );

    // Now the data path.
    let (b, a) = backends(10);
    let mut lb = MaglevLb::new(b, a, 65537).expect("valid set");
    let mut gen = PacketGen::new(TrafficConfig {
        flows: 50_000,
        ..Default::default()
    });
    for _ in 0..500 {
        lb.process(gen.next_batch(64));
    }
    let stats = lb.stats().clone();
    let max = stats.per_backend.iter().max().copied().unwrap_or(0);
    let min = stats.per_backend.iter().min().copied().unwrap_or(0);
    println!(
        "\nsteered {} packets: conn-table hits {}, hash lookups {}, spread max/min = {:.2}",
        stats.per_backend.iter().sum::<u64>(),
        stats.conn_table_hits,
        stats.hash_lookups,
        max as f64 / min.max(1) as f64
    );

    // Backend set change: established connections stay put.
    let tracked_before = lb.tracked_connections();
    let (b11, a11) = backends(11);
    lb.update_backends(b11, a11, 65537).expect("valid set");
    println!(
        "added a backend: {tracked_before} tracked connections kept, {} after remap",
        lb.tracked_connections()
    );
    for _ in 0..100 {
        lb.process(gen.next_batch(64));
    }
    println!(
        "after more traffic, conn-table hits {} / lookups {} — existing flows undisturbed",
        lb.stats().conn_table_hits,
        lb.stats().hash_lookups
    );
}
