//! A small IFC verifier front-end: verify a program from a file, or the
//! built-in demo featuring declassification.
//!
//! ```sh
//! cargo run --example ifc_verifier                 # built-in demo
//! cargo run --example ifc_verifier -- program.ifc  # your own program
//! ```

use rust_beyond_safety::ifc::pretty::print_program;
use rust_beyond_safety::ifc::verify::{verify, Report};
use rust_beyond_safety::ifc::{parse, summary};

const DEMO: &str = r#"
channel audit_log {auditor, hr};    # auditors are cleared for HR data
channel public_report public;

# The payroll function may release aggregate salary data.
fn payroll_summary(s1 label {hr}, s2 label {hr}) authority {hr} {
    let total = s1 + s2;
    let released = declassify total;
    return released;
}

fn main() {
    let salary1 = 120 label {hr};
    let salary2 = 95 label {hr};

    # Aggregate release via the trusted function: allowed.
    let avg_basis = call payroll_summary(salary1, salary2);
    output public_report, avg_basis;

    # Raw salary to the audit log (cleared for hr data): allowed.
    output audit_log, salary1;

    # Raw salary straight to the public report: caught.
    output public_report, salary2;
}
"#;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let source = match args.first() {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(2);
            }
        },
        None => DEMO.to_string(),
    };

    let program = match parse::parse(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("parse error: {e}");
            std::process::exit(2);
        }
    };

    println!("== program (normalized) ==");
    print!("{}", print_program(&program));

    println!("== monolithic verification ==");
    print!("{}", Report::for_program(&program));

    println!("\n== compositional (summary-based) verification ==");
    println!("(summaries cannot strip declassified *parameter* labels at summary");
    println!(" time, so they may add sound-but-conservative reports)");
    match summary::analyze_with_summaries(&program) {
        Ok(violations) if violations.is_empty() => {
            println!("result: SAFE (no violations via summaries)");
        }
        Ok(violations) => {
            println!("result: {} violation(s) via summaries:", violations.len());
            for v in violations {
                println!("  {v}");
            }
        }
        Err(e) => println!("summaries unavailable: {e}"),
    }

    std::process::exit(match verify(&program) {
        rust_beyond_safety::ifc::verify::Verdict::Safe => 0,
        _ => 1,
    });
}
