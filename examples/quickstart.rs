//! Quickstart: the three capabilities in thirty lines each.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use rust_beyond_safety::checkpoint::{checkpoint, restore, CkRc};
use rust_beyond_safety::ifc::verify::{verify_source, Verdict};
use rust_beyond_safety::sfi::{DomainManager, RRef};

fn main() {
    // ── Isolation: protection domains and remote references ──────────
    println!("== SFI: zero-copy isolation ==");
    let mgr = DomainManager::new();
    let d = mgr.create_domain("key-value-store").expect("no quota");
    // Create an object inside the domain and export it as an rref.
    let store = d
        .execute(|| RRef::new(&d, Vec::<(String, u64)>::new()))
        .expect("fresh domain");
    // Ownership of the key moves across the boundary — zero copies.
    let key = String::from("requests");
    store
        .invoke_mut(move |s| s.push((key, 1)))
        .expect("healthy domain");
    let len = store.invoke(|s| s.len()).expect("healthy domain");
    println!(
        "  store holds {len} entries, exported objects: {}",
        d.exported_objects()
    );
    // Revoke the capability: every clone dies with it.
    store.revoke();
    println!(
        "  after revoke, invoke -> {:?}",
        store.invoke(|s| s.len()).unwrap_err()
    );

    // ── Analysis: information flow control ────────────────────────────
    println!("\n== IFC: the paper's buffer program ==");
    let verdict = verify_source(
        "channel term public;
         fn main() {
             let buf = alloc;
             let nonsec = vec[1, 2, 3];
             let sec = vec[4, 5, 6] label secret;
             append buf, nonsec;
             append buf, sec;
             output term, buf;          # line 16: leaks secret data
         }",
    )
    .expect("program parses");
    match verdict {
        Verdict::Leaky(violations) => {
            for v in violations {
                println!("  leak found: {v}");
            }
        }
        other => println!("  unexpected verdict: {other:?}"),
    }

    // ── Automation: checkpointing with aliasing ───────────────────────
    println!("\n== Checkpointing: shared rules copied once ==");
    let rule = CkRc::new(String::from("deny tcp:23 from anywhere"));
    let table = vec![rule.clone(), rule.clone(), rule]; // three aliases
    let cp = checkpoint(&table);
    println!(
        "  3 references, {} copy, {} dedup hits",
        cp.stats.shared_copied, cp.stats.shared_hits
    );
    let restored: Vec<CkRc<String>> = restore(&cp).expect("roundtrip");
    println!(
        "  restored sharing intact: {}",
        CkRc::ptr_eq(&restored[0], &restored[2])
    );
}
