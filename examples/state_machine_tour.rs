//! A tour of the checkpoint crate's state-management stack on one
//! realistic object: the firewall rule database.
//!
//! checkpoint → mutate → transaction with savepoints → panic rollback →
//! binary persistence → incremental delta.
//!
//! ```sh
//! cargo run --release --example state_machine_tour
//! ```

use rust_beyond_safety::checkpoint::txn::{with_transaction, Transaction, TxnAborted};
use rust_beyond_safety::checkpoint::{checkpoint, decode, diff, encode, restore};
use rust_beyond_safety::fwtrie::{Action, FwTrie, Rule};
use std::net::Ipv4Addr;

fn base_rules() -> FwTrie {
    let mut t = FwTrie::new();
    let shared = t.insert(
        Rule::new(1, "allow-web", Ipv4Addr::new(10, 0, 0, 0), 8, Action::Allow).dports(80, 443),
    );
    t.alias_at(Ipv4Addr::new(172, 16, 0, 0), 12, shared);
    t.insert(Rule::new(2, "deny-telnet", Ipv4Addr::UNSPECIFIED, 0, Action::Deny).dports(23, 23));
    t
}

fn main() {
    // 1. Transactions with savepoints.
    let mut txn = Transaction::begin(base_rules());
    txn.get_mut()
        .insert(Rule::new(3, "allow-dns", Ipv4Addr::UNSPECIFIED, 0, Action::Allow).dports(53, 53));
    txn.savepoint("dns-added");
    txn.get_mut().insert(Rule::new(
        4,
        "oops-allow-all",
        Ipv4Addr::UNSPECIFIED,
        0,
        Action::Allow,
    ));
    println!(
        "during txn: {} rule refs ({} savepoints live)",
        txn.get().rule_refs(),
        txn.savepoint_count()
    );
    txn.rollback_to("dns-added").expect("savepoint restores");
    let db = txn.commit();
    println!(
        "after rollback_to + commit: {} rule refs (rule 4 gone)",
        db.rule_refs()
    );

    // 2. Closure-style transaction with panic rollback.
    std::panic::set_hook(Box::new(|_| {}));
    let (db, outcome) = with_transaction(db, |t| {
        t.remove_rule(2);
        panic!("control-plane bug mid-update");
        #[allow(unreachable_code)]
        Ok::<(), ()>(())
    });
    let _ = std::panic::take_hook();
    println!(
        "panicking update: outcome {:?}, deny-telnet still present: {}",
        matches!(outcome, Err(TxnAborted::Panicked)),
        db.iter_refs().iter().any(|r| r.id == 2)
    );

    // 3. Binary persistence.
    let cp = checkpoint(&db);
    let bytes = encode(&cp);
    println!(
        "\npersisted checkpoint: {} snapshot nodes -> {} bytes on the wire",
        cp.total_nodes(),
        bytes.len()
    );
    let reloaded: FwTrie = restore(&decode(&bytes).expect("valid header")).expect("restores");
    println!("reloaded database: {} rule refs", reloaded.rule_refs());

    // 4. Incremental deltas: one small change, tiny payload.
    let mut next = reloaded;
    next.insert(
        Rule::new(9, "allow-ntp", Ipv4Addr::UNSPECIFIED, 0, Action::Allow).dports(123, 123),
    );
    let after = checkpoint(&next);
    let delta = diff(&cp, &after);
    println!(
        "after one rule change: delta carries {} nodes vs {} for a full snapshot ({}x smaller)",
        delta.payload_nodes(),
        after.total_nodes(),
        after.total_nodes() / delta.payload_nodes().max(1)
    );
    let rebuilt = rust_beyond_safety::checkpoint::apply(&cp, &delta).expect("delta applies");
    println!(
        "replica after applying the delta matches: {}",
        rebuilt.root == after.root && rebuilt.shared == after.shared
    );
}
