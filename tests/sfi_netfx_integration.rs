//! Integration: the SFI layer running real netfx workloads.
//!
//! Verifies the §3 architecture end to end: an isolated pipeline computes
//! exactly what the direct pipeline computes, faults are contained to one
//! domain, recovery is transparent to later traffic, and policies
//! interpose on the stage interface.

use rust_beyond_safety::netfx::batch::PacketBatch;
use rust_beyond_safety::netfx::headers::IpProto;
use rust_beyond_safety::netfx::operators::{DstPortFilter, MacSwap, ProtoFilter, TtlDecrement};
use rust_beyond_safety::netfx::pipeline::Pipeline;
use rust_beyond_safety::netfx::pktgen::{FlowDistribution, PacketGen, TrafficConfig};
use rust_beyond_safety::sfi::{AclPolicy, DomainState, RpcError};
use rust_beyond_safety::IsolatedPipeline;

fn traffic(seed: u64) -> PacketGen {
    PacketGen::new(TrafficConfig {
        flows: 512,
        distribution: FlowDistribution::Zipf(1.0),
        payload_len: 32,
        seed,
        ..Default::default()
    })
}

fn digest(batch: &PacketBatch) -> Vec<Vec<u8>> {
    batch.iter().map(|p| p.as_slice().to_vec()).collect()
}

/// The same operator chain, direct vs. isolated, must produce
/// byte-identical output on identical traffic.
#[test]
fn isolated_pipeline_is_semantically_transparent() {
    let mut direct = Pipeline::new()
        .add(ProtoFilter::new(IpProto::Udp))
        .add(TtlDecrement::new())
        .add(DstPortFilter::new(vec![80]))
        .add(MacSwap::new());

    let mut isolated = IsolatedPipeline::new();
    isolated
        .add_stage("proto", || Box::new(ProtoFilter::new(IpProto::Udp)))
        .unwrap();
    isolated
        .add_stage("ttl", || Box::new(TtlDecrement::new()))
        .unwrap();
    isolated
        .add_stage("ports", || Box::new(DstPortFilter::new(vec![80])))
        .unwrap();
    isolated
        .add_stage("swap", || Box::new(MacSwap::new()))
        .unwrap();

    let mut gen_a = traffic(42);
    let mut gen_b = traffic(42);
    for _ in 0..50 {
        let out_direct = direct.run_batch(gen_a.next_batch(32));
        let out_isolated = isolated
            .run_batch(gen_b.next_batch(32))
            .expect("healthy stages");
        assert_eq!(digest(&out_direct), digest(&out_isolated));
    }
}

/// A policy installed on a stage's domain interposes on the pipeline's
/// remote invocations.
#[test]
fn stage_policy_blocks_processing() {
    let mut isolated = IsolatedPipeline::new();
    isolated
        .add_stage("ttl", || Box::new(TtlDecrement::new()))
        .unwrap();
    // Deny the "process" method to everyone.
    isolated.domains()[0].set_policy(AclPolicy::new());
    let err = isolated.run_batch(traffic(1).next_batch(4)).unwrap_err();
    assert!(matches!(
        err,
        RpcError::AccessDenied {
            method: "process",
            ..
        }
    ));
    assert_eq!(isolated.domains()[0].stats().denials(), 1);

    // Re-allow and confirm traffic flows (grant covers every caller).
    isolated.domains()[0].set_policy(AclPolicy::new().grant_all_callers("process"));
    assert!(isolated.run_batch(traffic(2).next_batch(4)).is_ok());
}

/// Faults are contained: repeated crashes of one stage never poison its
/// neighbours, and recovery brings full service back.
#[test]
fn repeated_faults_are_contained_and_recovered() {
    std::panic::set_hook(Box::new(|_| {}));
    let mut isolated = IsolatedPipeline::new();
    isolated
        .add_stage("ttl", || Box::new(TtlDecrement::new()))
        .unwrap();
    // This stage crashes every third batch, forever.
    let crash_counter = std::sync::atomic::AtomicU64::new(0);
    isolated
        .add_stage("flaky", move || {
            let round = crash_counter.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            let _ = round;
            Box::new(rust_beyond_safety::netfx::operators::PanicAfter::new(2))
        })
        .unwrap();
    isolated
        .add_stage("swap", || Box::new(MacSwap::new()))
        .unwrap();

    let mut gen = traffic(7);
    let mut delivered = 0u32;
    let mut lost = 0u32;
    for _ in 0..30 {
        match isolated.run_batch_healing(gen.next_batch(8)) {
            Ok(_) => delivered += 1,
            Err(RpcError::Fault { .. }) => lost += 1,
            Err(other) => panic!("unexpected error {other}"),
        }
    }
    assert_eq!(delivered + lost, 30);
    assert_eq!(lost, 10, "every third batch trips the injected fault");
    // All domains end healthy.
    for d in isolated.domains() {
        assert_eq!(d.state(), DomainState::Active, "{}", d.name());
    }
    let flaky = &isolated.domains()[1];
    assert_eq!(flaky.stats().faults(), 10);
    assert_eq!(flaky.stats().recoveries(), 10);
    assert_eq!(flaky.generation(), 10);
    // Neighbours never faulted.
    assert_eq!(isolated.domains()[0].stats().faults(), 0);
    assert_eq!(isolated.domains()[2].stats().faults(), 0);
}

/// Destroying a stage's domain makes the pipeline fail cleanly, not UB.
#[test]
fn destroyed_stage_surfaces_errors() {
    let mut isolated = IsolatedPipeline::new();
    isolated
        .add_stage("ttl", || Box::new(TtlDecrement::new()))
        .unwrap();
    isolated.domains()[0].destroy();
    let err = isolated.run_batch(traffic(3).next_batch(2)).unwrap_err();
    // The table was cleared on destroy, so the weak proxy is dead.
    assert_eq!(err, RpcError::Revoked);
}

/// Ownership transfer through the boundary: a batch pushed into a
/// domain-resident sink is gone from the caller, retrievable only by
/// another remote invocation.
#[test]
fn batches_move_into_domains() {
    use rust_beyond_safety::sfi::{DomainManager, RRef};
    let mgr = DomainManager::new();
    let d = mgr.create_domain("sink").unwrap();
    let sink: RRef<Vec<PacketBatch>> = RRef::new(&d, Vec::new());

    let batch = traffic(9).next_batch(16);
    let total_bytes = batch.total_bytes();
    sink.invoke_mut(move |v| v.push(batch)).unwrap();
    // `batch` is moved; get the data back only via the domain.
    let (count, bytes) = sink
        .invoke(|v| {
            (
                v.len(),
                v.iter().map(PacketBatch::total_bytes).sum::<usize>(),
            )
        })
        .unwrap();
    assert_eq!(count, 1);
    assert_eq!(bytes, total_bytes);
}
