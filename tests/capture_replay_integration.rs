//! Integration: capture → replay → isolated processing, plus pinging an
//! isolated responder.

use rust_beyond_safety::netfx::batch::PacketBatch;
use rust_beyond_safety::netfx::headers::ethernet::MacAddr;
use rust_beyond_safety::netfx::headers::icmp::IcmpType;
use rust_beyond_safety::netfx::operators::{EchoResponder, TtlDecrement};
use rust_beyond_safety::netfx::packet::Packet;
use rust_beyond_safety::netfx::pcap::{read_all, PcapWriter};
use rust_beyond_safety::netfx::pipeline::Pipeline;
use rust_beyond_safety::netfx::pktgen::{PacketGen, TrafficConfig};
use rust_beyond_safety::IsolatedPipeline;
use std::net::Ipv4Addr;

/// Generated traffic written to a pcap buffer and replayed through an
/// isolated pipeline produces byte-identical results to processing the
/// original batch directly.
#[test]
fn captured_traffic_replays_identically() {
    let mut gen = PacketGen::new(TrafficConfig {
        flows: 128,
        seed: 0xCAFE,
        ..Default::default()
    });
    let batch = gen.next_batch(64);

    // Capture.
    let mut w = PcapWriter::new(Vec::new()).expect("header writes");
    w.write_batch(&batch, 1_700_000_000, 100)
        .expect("records write");
    let capture = w.finish().expect("flushes");

    // Replay from the capture.
    let replayed: PacketBatch = read_all(&capture[..])
        .expect("self-produced capture parses")
        .into_iter()
        .map(|r| r.packet)
        .collect();

    // Process the original directly and the replay in isolation.
    let mut direct = Pipeline::new().add(TtlDecrement::new());
    let direct_out = direct.run_batch(batch);

    let mut isolated = IsolatedPipeline::new();
    isolated
        .add_stage("ttl", || Box::new(TtlDecrement::new()))
        .unwrap();
    let isolated_out = isolated.run_batch(replayed).expect("healthy stage");

    let bytes =
        |b: &PacketBatch| -> Vec<Vec<u8>> { b.iter().map(|p| p.as_slice().to_vec()).collect() };
    assert_eq!(bytes(&direct_out), bytes(&isolated_out));
}

/// Ping an echo responder living in its own protection domain; replies
/// come back across the boundary with correct checksums, and a captured
/// reply re-parses.
#[test]
fn ping_through_an_isolated_responder() {
    const VIP: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 7);
    let mut pipeline = IsolatedPipeline::new();
    pipeline
        .add_stage("ping-responder", || Box::new(EchoResponder::new(VIP)))
        .unwrap();

    let pings: PacketBatch = (0..8u16)
        .map(|seq| {
            Packet::build_icmp_echo(
                MacAddr([2, 0, 0, 0, 0, 1]),
                MacAddr([2, 0, 0, 0, 0, 2]),
                Ipv4Addr::new(10, 0, 0, 1),
                VIP,
                IcmpType::EchoRequest,
                0x77,
                seq,
                32,
            )
        })
        .collect();

    let replies = pipeline.run_batch(pings).expect("healthy responder");
    assert_eq!(replies.len(), 8);
    for (seq, reply) in replies.iter().enumerate() {
        let ip = reply.ipv4().unwrap();
        assert_eq!(ip.src(), VIP);
        assert_eq!(ip.dst(), Ipv4Addr::new(10, 0, 0, 1));
        assert!(ip.checksum_ok());
        let icmp = reply.icmp().unwrap();
        assert_eq!(icmp.icmp_type(), IcmpType::EchoReply);
        assert_eq!(icmp.sequence(), seq as u16);
        assert!(icmp.checksum_ok());
    }

    // Captured replies survive a pcap round trip.
    let mut w = PcapWriter::new(Vec::new()).unwrap();
    w.write_batch(&replies, 0, 1).unwrap();
    let records = read_all(&w.finish().unwrap()[..]).unwrap();
    assert_eq!(records.len(), 8);
    assert!(records
        .iter()
        .all(|r| r.packet.icmp().unwrap().checksum_ok()));
}
