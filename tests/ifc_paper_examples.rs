//! Integration: the §4 narrative through the public API, plus
//! differential checks between the analysis pipelines.

use rust_beyond_safety::ifc::examples::{
    BUFFER_ALIAS_EXPLOIT_SRC, BUFFER_LEAK_SRC, SECURE_STORE_BUGGY_SRC, SECURE_STORE_SRC,
};
use rust_beyond_safety::ifc::verify::{verify_source, Verdict};
use rust_beyond_safety::ifc::{alias, interp, parse, progen, summary};

#[test]
fn buffer_program_line16_leak() {
    let v = verify_source(BUFFER_LEAK_SRC).expect("shipped example parses");
    let Verdict::Leaky(violations) = v else {
        panic!("expected a leak verdict, got {v:?}");
    };
    assert_eq!(violations.len(), 1);
    assert_eq!(violations[0].channel, "term");
}

#[test]
fn line17_exploit_needs_ownership_or_alias_analysis() {
    // Rust mode: rejected outright.
    let v = verify_source(BUFFER_ALIAS_EXPLOIT_SRC).expect("parses");
    assert!(matches!(v, Verdict::OwnershipRejected(_)), "{v:?}");

    // C mode: the leak is visible only through the points-to relation.
    let p = parse::parse(BUFFER_ALIAS_EXPLOIT_SRC).unwrap();
    let (with_pts, stats) = alias::analyze_alias(&p);
    assert!(!with_pts.is_empty());
    assert!(stats.pts_edges > 0);
    assert!(
        alias::analyze_naive(&p).is_empty(),
        "strawman misses the alias leak"
    );
}

#[test]
fn secure_store_and_seeded_bug() {
    assert!(verify_source(SECURE_STORE_SRC).unwrap().is_safe());
    let v = verify_source(SECURE_STORE_BUGGY_SRC).unwrap();
    let Verdict::Leaky(violations) = v else {
        panic!("the seeded bug must be found, got {v:?}");
    };
    assert_eq!(violations.len(), 1);
    assert!(violations[0].loc.0.contains("else"));
}

/// Differential: monolithic interpretation and compositional summaries
/// agree on every generated program family.
#[test]
fn monolithic_and_compositional_agree_on_families() {
    for depth in [1usize, 3, 5, 7] {
        let p = progen::call_diamond(depth);
        let mono = interp::analyze(&p).unwrap();
        let comp = summary::analyze_with_summaries(&p).unwrap();
        assert_eq!(mono.len(), comp.len(), "depth {depth}");
        for (m, c) in mono.iter().zip(&comp) {
            assert_eq!(m.label, c.label, "depth {depth}");
            assert_eq!(m.channel, c.channel, "depth {depth}");
        }
    }
    for n in [1usize, 10, 50] {
        let p = progen::straightline(n);
        assert_eq!(
            interp::analyze(&p).unwrap().len(),
            summary::analyze_with_summaries(&p).unwrap().len(),
            "straightline {n}"
        );
    }
}

/// The precision ordering holds across sizes: move-mode never reports
/// more than the alias baseline on ownership-clean programs (its extra
/// reports are exactly the baseline's false positives).
#[test]
fn precision_ordering_on_churn() {
    for n in [1usize, 7, 23] {
        let p = progen::rebind_churn(n);
        let mv = interp::analyze(&p).unwrap().len();
        let (al, _) = alias::analyze_alias(&p);
        assert_eq!(mv, 0);
        assert_eq!(al.len(), n);
    }
}

/// Round-trip: a program printed from the examples parses to the same
/// verdict when re-verified (the text frontend is stable).
#[test]
fn source_constants_are_canonical() {
    for (src, safe) in [
        (SECURE_STORE_SRC, true),
        (SECURE_STORE_BUGGY_SRC, false),
        (BUFFER_LEAK_SRC, false),
    ] {
        assert_eq!(verify_source(src).unwrap().is_safe(), safe);
    }
}
