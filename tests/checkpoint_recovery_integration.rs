//! Integration: §3 + §5 composed — a firewall running inside a
//! protection domain whose recovery function restores the rule database
//! from a checkpoint, making a crash lose *no configuration*.
//!
//! This is the paper's two prototypes cooperating: SFI contains the
//! fault and runs recovery; the checkpoint library supplies the "clean
//! state" the domain is re-initialized from.

use parking_lot::Mutex;
use rust_beyond_safety::checkpoint::{checkpoint, restore, Checkpoint};
use rust_beyond_safety::fwtrie::{Action, FirewallOp, FwTrie, Rule};
use rust_beyond_safety::netfx::pipeline::Operator;
use rust_beyond_safety::netfx::pktgen::{PacketGen, TrafficConfig};
use rust_beyond_safety::sfi::{Domain, DomainManager, DomainState, RRef};
use std::net::Ipv4Addr;
use std::sync::Arc;

fn build_rules() -> FwTrie {
    let mut t = FwTrie::new();
    let shared = t.insert(
        Rule::new(
            1,
            "allow-vip-web",
            Ipv4Addr::new(192, 0, 2, 1),
            32,
            Action::Allow,
        )
        .dports(80, 80),
    );
    t.alias_at(Ipv4Addr::new(192, 0, 2, 2), 32, shared);
    t.insert(Rule::new(
        2,
        "deny-rest",
        Ipv4Addr::UNSPECIFIED,
        0,
        Action::Deny,
    ));
    t
}

/// A firewall whose process() panics when it sees a poisoned marker
/// packet (payload length 666) — simulating an input-triggered crash.
struct CrashyFirewall {
    inner: FirewallOp,
}

impl rust_beyond_safety::netfx::pipeline::Operator for CrashyFirewall {
    fn process(
        &mut self,
        batch: rust_beyond_safety::netfx::batch::PacketBatch,
    ) -> rust_beyond_safety::netfx::batch::PacketBatch {
        for p in batch.iter() {
            assert!(p.len() != 42 + 666, "malformed packet crashed the filter");
        }
        self.inner.process(batch)
    }
}

#[test]
fn firewall_config_survives_domain_crash_via_checkpoint() {
    std::panic::set_hook(Box::new(|_| {}));

    // Control plane: build the rules, checkpoint them.
    let golden: Arc<Checkpoint> = Arc::new(checkpoint(&build_rules()));

    let mgr = DomainManager::new();
    let domain = mgr.create_domain("firewall").unwrap();

    let make_op = {
        let golden = Arc::clone(&golden);
        move || {
            let trie: FwTrie = restore(&golden).expect("golden checkpoint restores");
            CrashyFirewall {
                inner: FirewallOp::new(trie, Action::Deny),
            }
        }
    };

    let slot: Arc<Mutex<Option<RRef<CrashyFirewall>>>> = Arc::new(Mutex::new(None));
    {
        let slot = Arc::clone(&slot);
        let make_op = make_op.clone();
        domain.set_recovery(move |d: &Domain| {
            // Re-initialize from clean state = the golden checkpoint.
            *slot.lock() = Some(RRef::new(d, make_op()));
        });
    }
    let mut fw = RRef::new(&domain, make_op());

    let mut gen = PacketGen::new(TrafficConfig {
        flows: 64,
        ..Default::default()
    });

    // Normal traffic flows and is filtered.
    let out = fw
        .invoke_mut(|f| {
            let b = gen_batch(&mut gen, 16, 64);
            f.process(b).len()
        })
        .unwrap();
    assert!(out <= 16);

    // A malformed packet crashes the filter; the domain catches it.
    let err = fw
        .invoke_mut(|f| {
            let b = gen_batch(&mut gen, 4, 666);
            f.process(b).len()
        })
        .unwrap_err();
    assert!(matches!(
        err,
        rust_beyond_safety::sfi::RpcError::Fault { .. }
    ));
    assert_eq!(domain.state(), DomainState::Active, "recovery ran");

    // Pick up the recovered reference: full rule set is back (from the
    // checkpoint), nothing was lost with the crash.
    fw = slot.lock().take().expect("recovery deposited a fresh rref");
    let (allowed, denied) = fw
        .invoke_mut(|f| {
            let b = gen_batch(&mut gen, 32, 64);
            let before_allowed = f.inner.allowed();
            let out = f.process(b);
            (f.inner.allowed() - before_allowed, out.len())
        })
        .map(|(a, l)| (a, 32 - l as u64))
        .unwrap();
    // All generated traffic is to the VIP on port 80 → allowed by the
    // restored rule 1.
    assert_eq!(allowed, 32, "restored rules classify as before the crash");
    assert_eq!(denied, 0);
    assert_eq!(domain.generation(), 1);
}

fn gen_batch(
    gen: &mut PacketGen,
    n: usize,
    payload: usize,
) -> rust_beyond_safety::netfx::batch::PacketBatch {
    // Rebuild packets at the requested payload size, keeping the
    // generator's flow mix.
    use rust_beyond_safety::netfx::headers::ethernet::MacAddr;
    use rust_beyond_safety::netfx::packet::Packet;
    (0..n)
        .map(|_| {
            let p = gen.next_packet();
            let tuple = rust_beyond_safety::netfx::flow::FiveTuple::of(&p).unwrap();
            Packet::build_udp(
                MacAddr::ZERO,
                MacAddr::ZERO,
                tuple.src_ip,
                tuple.dst_ip,
                tuple.src_port,
                tuple.dst_port,
                payload,
            )
        })
        .collect()
}

/// The checkpoint itself is exchangeable: it can be produced inside one
/// domain and restored inside another (configuration migration).
#[test]
fn checkpoints_migrate_between_domains() {
    let mgr = DomainManager::new();
    let a = mgr.create_domain("fw-a").unwrap();
    let b = mgr.create_domain("fw-b").unwrap();

    let fw_a = RRef::new(&a, FirewallOp::new(build_rules(), Action::Deny));
    let cp = fw_a.invoke(|f| f.checkpoint_rules()).unwrap();

    let fw_b = RRef::new(&b, FirewallOp::new(FwTrie::new(), Action::Allow));
    fw_b.invoke_mut(move |f| f.restore_rules(&cp))
        .unwrap()
        .unwrap();

    let rule_refs = fw_b.invoke(|f| f.trie().rule_refs()).unwrap();
    assert_eq!(rule_refs, 3, "both attachments of rule 1 plus rule 2");
}
