//! Cross-crate property tests: invariants that only show up when the
//! pieces are composed.

use proptest::prelude::*;
use rust_beyond_safety::checkpoint::{checkpoint, restore};
use rust_beyond_safety::fwtrie::{Action, FirewallOp, FwTrie, Rule};
use rust_beyond_safety::maglev::{Backend, MaglevTable};
use rust_beyond_safety::netfx::batch::PacketBatch;
use rust_beyond_safety::netfx::headers::ethernet::MacAddr;
use rust_beyond_safety::netfx::operators::{DstPortFilter, TtlDecrement};
use rust_beyond_safety::netfx::packet::Packet;
use rust_beyond_safety::netfx::pipeline::Pipeline;
use rust_beyond_safety::IsolatedPipeline;
use std::net::Ipv4Addr;

fn arb_packet() -> impl Strategy<Value = Packet> {
    (
        any::<u32>(),
        any::<u32>(),
        any::<u16>(),
        1u16..=1000,
        0usize..64,
        any::<u8>(),
    )
        .prop_map(|(src, dst, sport, dport, payload, ttl)| {
            let mut p = Packet::build_udp(
                MacAddr::ZERO,
                MacAddr::BROADCAST,
                Ipv4Addr::from(src),
                Ipv4Addr::from(dst),
                sport,
                dport,
                payload,
            );
            {
                let mut ip = p.ipv4_mut().unwrap();
                ip.set_ttl(ttl);
                ip.update_checksum();
            }
            p
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Direct and SFI-isolated pipelines are observationally equivalent
    /// on arbitrary traffic — isolation really is zero-cost in semantics.
    #[test]
    fn isolation_preserves_semantics(packets in proptest::collection::vec(arb_packet(), 0..40)) {
        let mirror: Vec<Packet> = packets.iter().map(|p| Packet::from_slice(p.as_slice())).collect();

        let mut direct = Pipeline::new()
            .add(TtlDecrement::new())
            .add(DstPortFilter::new(vec![53, 80, 443]));
        let direct_out = direct.run_batch(packets.into_iter().collect());

        let mut isolated = IsolatedPipeline::new();
        isolated.add_stage("ttl", || Box::new(TtlDecrement::new())).unwrap();
        isolated
            .add_stage("ports", || Box::new(DstPortFilter::new(vec![53, 80, 443])))
            .unwrap();
        let isolated_out = isolated
            .run_batch(mirror.into_iter().collect())
            .expect("healthy stages");

        let bytes = |b: &PacketBatch| -> Vec<Vec<u8>> {
            b.iter().map(|p| p.as_slice().to_vec()).collect()
        };
        prop_assert_eq!(bytes(&direct_out), bytes(&isolated_out));
    }

    /// A checkpointed-and-restored firewall classifies arbitrary packets
    /// identically to the original.
    #[test]
    fn restored_firewall_is_equivalent(
        rules in proptest::collection::vec((any::<u32>(), 0u8..=32, 1u16..100, 100u16..1000), 1..15),
        packets in proptest::collection::vec(arb_packet(), 1..30),
    ) {
        let mut trie = FwTrie::new();
        for (i, (net, len, lo, hi)) in rules.iter().enumerate() {
            let action = if i % 2 == 0 { Action::Allow } else { Action::Deny };
            trie.insert(
                Rule::new(i as u32, format!("r{i}"), Ipv4Addr::from(*net), *len, action)
                    .dports(*lo, *hi),
            );
        }
        let restored: FwTrie = restore(&checkpoint(&trie)).expect("roundtrip");

        let mut original = FirewallOp::new(trie, Action::Deny);
        let mut rebuilt = FirewallOp::new(restored, Action::Deny);
        for p in &packets {
            if let Ok(flow) = rust_beyond_safety::netfx::flow::FiveTuple::of(p) {
                prop_assert_eq!(original.decide(&flow), rebuilt.decide(&flow));
            }
        }
        // Batch-level check too.
        let copies: Vec<Packet> = packets.iter().map(|p| Packet::from_slice(p.as_slice())).collect();
        let out_a = rust_beyond_safety::netfx::pipeline::Operator::process(
            &mut original, packets.into_iter().collect());
        let out_b = rust_beyond_safety::netfx::pipeline::Operator::process(
            &mut rebuilt, copies.into_iter().collect());
        prop_assert_eq!(out_a.len(), out_b.len());
    }

    /// Maglev steering is a pure function of the flow: any packet of the
    /// same flow lands on the same backend, for arbitrary backend sets.
    #[test]
    fn maglev_consistency(
        n_backends in 1usize..20,
        hashes in proptest::collection::vec(any::<u64>(), 1..50),
    ) {
        let backends: Vec<Backend> =
            (0..n_backends).map(|i| Backend::new(format!("b{i}"))).collect();
        let t1 = MaglevTable::new(backends.clone(), 1009).unwrap();
        let t2 = MaglevTable::new(backends, 1009).unwrap();
        for h in hashes {
            let choice = t1.lookup(h);
            prop_assert!(choice < n_backends);
            prop_assert_eq!(choice, t2.lookup(h), "construction is deterministic");
        }
    }
}
