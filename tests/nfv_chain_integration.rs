//! Integration: a full NFV service chain — firewall → per-flow rate
//! limiter → source NAT — each stage in its own protection domain,
//! with bidirectional traffic and translated return flows.
//!
//! The headline test runs the chain on the production [`LaneRuntime`]
//! (sharded run-to-completion lanes with work stealing) rather than a
//! hand-driven pipeline: generated traffic is steered, executed, and
//! audited in-chain, and the lane ledgers prove exact conservation.

use rust_beyond_safety::fwtrie::{Action, FirewallOp, FwTrie, Rule};
use rust_beyond_safety::netfx::batch::PacketBatch;
use rust_beyond_safety::netfx::headers::ethernet::MacAddr;
use rust_beyond_safety::netfx::nat::SourceNat;
use rust_beyond_safety::netfx::packet::Packet;
use rust_beyond_safety::netfx::pipeline::{Operator, PipelineSpec};
use rust_beyond_safety::netfx::pktgen::TrafficConfig;
use rust_beyond_safety::netfx::ratelimit::PerFlowRateLimiter;
use rust_beyond_safety::runtime::{LaneConfig, LaneRuntime};
use rust_beyond_safety::IsolatedPipeline;
use std::net::Ipv4Addr;

const NAT_IP: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 1);

fn outbound_packet(host: u8, sport: u16) -> Packet {
    Packet::build_udp(
        MacAddr::ZERO,
        MacAddr::ZERO,
        Ipv4Addr::new(10, 0, 0, host),
        Ipv4Addr::new(8, 8, 8, 8),
        sport,
        53,
        16,
    )
}

/// In-chain auditor: panics (→ a counted domain fault) unless every
/// packet leaving the NAT is translated, in-range, and checksum-clean.
/// `report.faults == 0` is therefore a per-packet correctness proof.
struct EgressAudit;

impl Operator for EgressAudit {
    fn process(&mut self, batch: PacketBatch) -> PacketBatch {
        for p in batch.iter() {
            let ip = p.ipv4().expect("audit: not IPv4");
            assert_eq!(ip.src(), NAT_IP, "audit: source not translated");
            assert!(ip.checksum_ok(), "audit: bad IP checksum");
            let udp = p.udp().expect("audit: not UDP");
            assert!(
                (40_000..=50_000).contains(&udp.src_port()),
                "audit: NAT port out of pool"
            );
            assert!(
                udp.checksum_ok(ip.src(), ip.dst()),
                "audit: bad UDP checksum"
            );
        }
        batch
    }

    fn name(&self) -> &str {
        "egress-audit"
    }
}

#[test]
fn outbound_traffic_is_filtered_limited_and_translated() {
    // The same egress chain, on the production lane runtime: two
    // run-to-completion lanes generate 200 batches of synthetic port-80
    // traffic from the 10.0.0.0/8 inside net, and the audit stage
    // verifies every surviving packet in-chain.
    let spec = PipelineSpec::new()
        .stage(|| {
            let mut trie = FwTrie::new();
            trie.insert(
                Rule::new(1, "allow-http", Ipv4Addr::UNSPECIFIED, 0, Action::Allow).dports(80, 80),
            );
            FirewallOp::new(trie, Action::Deny)
        })
        .stage(|| PerFlowRateLimiter::new(1_000_000.0, 100.0, 10_000))
        .stage(|| SourceNat::new(NAT_IP, Ipv4Addr::new(10, 0, 0, 0), 8, 40_000..=50_000))
        .stage(|| EgressAudit);

    let report = LaneRuntime::run(
        spec,
        LaneConfig {
            lanes: 2,
            traffic: TrafficConfig {
                flows: 256,
                seed: 0x0E15_CAFE,
                ..TrafficConfig::default()
            },
            total_batches: 200,
            batch_size: 32,
            ..LaneConfig::default()
        },
    );

    assert_eq!(report.offered(), 200 * 32);
    assert_eq!(report.unaccounted_packets(), 0, "lane ledgers leak");
    assert_eq!(report.lost(), 0, "domain faults destroyed packets");
    assert_eq!(report.shed(), 0, "a lane died and shed backlog");
    for lane in &report.lanes {
        assert_eq!(
            lane.faults, 0,
            "lane {}: the egress audit tripped",
            lane.lane
        );
        assert!(!lane.dead);
    }
    // Every generated packet is port-80 from the inside net: the
    // firewall passes it, the limiter's burst covers it, the NAT pool
    // holds 256 flows with room to spare — so goodput is exactly 1.
    assert_eq!(report.packets_out(), report.offered());
    assert_eq!(report.goodput(), 1.0);
}

#[test]
fn per_flow_limit_enforced_through_domains() {
    let mut chain = IsolatedPipeline::new();
    chain
        .add_stage("limiter", || {
            Box::new(PerFlowRateLimiter::new(1.0, 2.0, 100))
        })
        .unwrap();
    // Five packets of one flow in one burst: the 2-token bucket admits 2.
    let batch: PacketBatch = (0..5).map(|_| outbound_packet(1, 7777)).collect();
    let out = chain.run_batch(batch).expect("healthy");
    assert_eq!(out.len(), 2);
}

#[test]
fn nat_fault_recovery_loses_mappings_but_not_service() {
    std::panic::set_hook(Box::new(|_| {}));
    // A NAT whose first instance crashes on the third batch; the rebuilt
    // instance starts with an empty translation table — return traffic
    // for pre-fault connections is dropped (correct fail-closed
    // behaviour), while new connections translate fine.
    let built = std::sync::atomic::AtomicUsize::new(0);
    let mut chain = IsolatedPipeline::new();
    chain
        .add_stage("nat", move || {
            let first = built.fetch_add(1, std::sync::atomic::Ordering::SeqCst) == 0;
            let nat = SourceNat::new(NAT_IP, Ipv4Addr::new(10, 0, 0, 0), 8, 40_000..=50_000);
            if first {
                struct CrashAfter {
                    inner: SourceNat,
                    remaining: u32,
                }
                impl rust_beyond_safety::netfx::pipeline::Operator for CrashAfter {
                    fn process(&mut self, b: PacketBatch) -> PacketBatch {
                        assert!(self.remaining > 0, "injected NAT crash");
                        self.remaining -= 1;
                        self.inner.process(b)
                    }
                }
                Box::new(CrashAfter {
                    inner: nat,
                    remaining: 2,
                })
            } else {
                Box::new(nat)
            }
        })
        .unwrap();

    // Two successful batches establish a mapping.
    let out = chain
        .run_batch(vec![outbound_packet(1, 1234)].into_iter().collect())
        .unwrap();
    let nat_port = out.iter().next().unwrap().udp().unwrap().src_port();
    chain
        .run_batch(vec![outbound_packet(1, 1234)].into_iter().collect())
        .unwrap();

    // Third batch trips the crash; heal and continue.
    assert!(chain
        .run_batch_healing(vec![outbound_packet(1, 1234)].into_iter().collect())
        .is_err());

    // Return traffic to the old mapping: dropped (table was lost with
    // the domain — SFI contained the fault, state did not leak across).
    let back = Packet::build_udp(
        MacAddr::ZERO,
        MacAddr::ZERO,
        Ipv4Addr::new(8, 8, 8, 8),
        NAT_IP,
        53,
        nat_port,
        0,
    );
    let out = chain.run_batch(vec![back].into_iter().collect()).unwrap();
    assert_eq!(out.len(), 0, "stale inbound mapping fails closed");

    // New outbound connections work immediately.
    let out = chain
        .run_batch(vec![outbound_packet(2, 999)].into_iter().collect())
        .unwrap();
    assert_eq!(out.len(), 1);
    assert_eq!(out.iter().next().unwrap().ipv4().unwrap().src(), NAT_IP);
}

#[test]
fn channels_feed_an_isolated_consumer() {
    use rust_beyond_safety::sfi::{channel, DomainManager, RRef};

    let mgr = DomainManager::new();
    let consumer = mgr.create_domain("consumer").unwrap();
    let (tx, rx) = channel::<PacketBatch>(&consumer, 8);
    let sink = RRef::new(
        &consumer,
        rust_beyond_safety::netfx::operators::Counter::new(),
    );

    // Producer thread moves batches into the domain through the channel.
    let producer = std::thread::spawn(move || {
        for i in 0..10u16 {
            let batch: PacketBatch = (0..4).map(|j| outbound_packet(1, i * 10 + j)).collect();
            tx.send(batch).unwrap();
        }
    });

    let mut seen = 0u64;
    while seen < 40 {
        let batch = rx.recv().expect("producer still running");
        seen += sink
            .invoke_mut(move |c| {
                use rust_beyond_safety::netfx::pipeline::Operator;
                c.process(batch).len() as u64
            })
            .unwrap();
    }
    producer.join().unwrap();
    assert_eq!(seen, 40);
    assert_eq!(sink.invoke(|c| c.packets()).unwrap(), 40);
}
