//! Integration: a full NFV service chain — firewall → per-flow rate
//! limiter → source NAT — each stage in its own protection domain,
//! with bidirectional traffic and translated return flows.

use rust_beyond_safety::fwtrie::{Action, FirewallOp, FwTrie, Rule};
use rust_beyond_safety::netfx::batch::PacketBatch;
use rust_beyond_safety::netfx::headers::ethernet::MacAddr;
use rust_beyond_safety::netfx::nat::SourceNat;
use rust_beyond_safety::netfx::packet::Packet;
use rust_beyond_safety::netfx::ratelimit::PerFlowRateLimiter;
use rust_beyond_safety::IsolatedPipeline;
use std::net::Ipv4Addr;

const NAT_IP: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 1);

fn outbound_packet(host: u8, sport: u16) -> Packet {
    Packet::build_udp(
        MacAddr::ZERO,
        MacAddr::ZERO,
        Ipv4Addr::new(10, 0, 0, host),
        Ipv4Addr::new(8, 8, 8, 8),
        sport,
        53,
        16,
    )
}

fn egress_chain() -> IsolatedPipeline {
    let mut p = IsolatedPipeline::new();
    p.add_stage("firewall", || {
        let mut trie = FwTrie::new();
        // Only DNS egress is allowed.
        trie.insert(
            Rule::new(1, "allow-dns", Ipv4Addr::UNSPECIFIED, 0, Action::Allow).dports(53, 53),
        );
        Box::new(FirewallOp::new(trie, Action::Deny))
    })
    .unwrap();
    p.add_stage("limiter", || {
        Box::new(PerFlowRateLimiter::new(1_000_000.0, 100.0, 10_000))
    })
    .unwrap();
    p.add_stage("nat", || {
        Box::new(SourceNat::new(
            NAT_IP,
            Ipv4Addr::new(10, 0, 0, 0),
            8,
            40_000..=50_000,
        ))
    })
    .unwrap();
    p
}

#[test]
fn outbound_traffic_is_filtered_limited_and_translated() {
    let mut chain = egress_chain();
    let batch: PacketBatch = vec![
        outbound_packet(1, 1111), // DNS, allowed
        outbound_packet(2, 2222), // DNS, allowed
        {
            // HTTP, denied by the firewall before NAT ever sees it.
            let mut p = outbound_packet(3, 3333);
            p.udp_mut().unwrap().set_dst_port(80);
            let (src, dst) = {
                let ip = p.ipv4().unwrap();
                (ip.src(), ip.dst())
            };
            p.udp_mut().unwrap().update_checksum(src, dst);
            p
        },
    ]
    .into_iter()
    .collect();

    let out = chain.run_batch(batch).expect("healthy chain");
    assert_eq!(out.len(), 2, "only the DNS flows survive");
    for p in out.iter() {
        let ip = p.ipv4().unwrap();
        assert_eq!(ip.src(), NAT_IP, "source translated");
        assert!(ip.checksum_ok());
        let udp = p.udp().unwrap();
        assert!((40_000..=50_000).contains(&udp.src_port()));
        assert!(udp.checksum_ok(ip.src(), ip.dst()));
    }
}

#[test]
fn per_flow_limit_enforced_through_domains() {
    let mut chain = IsolatedPipeline::new();
    chain
        .add_stage("limiter", || {
            Box::new(PerFlowRateLimiter::new(1.0, 2.0, 100))
        })
        .unwrap();
    // Five packets of one flow in one burst: the 2-token bucket admits 2.
    let batch: PacketBatch = (0..5).map(|_| outbound_packet(1, 7777)).collect();
    let out = chain.run_batch(batch).expect("healthy");
    assert_eq!(out.len(), 2);
}

#[test]
fn nat_fault_recovery_loses_mappings_but_not_service() {
    std::panic::set_hook(Box::new(|_| {}));
    // A NAT whose first instance crashes on the third batch; the rebuilt
    // instance starts with an empty translation table — return traffic
    // for pre-fault connections is dropped (correct fail-closed
    // behaviour), while new connections translate fine.
    let built = std::sync::atomic::AtomicUsize::new(0);
    let mut chain = IsolatedPipeline::new();
    chain
        .add_stage("nat", move || {
            let first = built.fetch_add(1, std::sync::atomic::Ordering::SeqCst) == 0;
            let nat = SourceNat::new(NAT_IP, Ipv4Addr::new(10, 0, 0, 0), 8, 40_000..=50_000);
            if first {
                struct CrashAfter {
                    inner: SourceNat,
                    remaining: u32,
                }
                impl rust_beyond_safety::netfx::pipeline::Operator for CrashAfter {
                    fn process(&mut self, b: PacketBatch) -> PacketBatch {
                        assert!(self.remaining > 0, "injected NAT crash");
                        self.remaining -= 1;
                        self.inner.process(b)
                    }
                }
                Box::new(CrashAfter {
                    inner: nat,
                    remaining: 2,
                })
            } else {
                Box::new(nat)
            }
        })
        .unwrap();

    // Two successful batches establish a mapping.
    let out = chain
        .run_batch(vec![outbound_packet(1, 1234)].into_iter().collect())
        .unwrap();
    let nat_port = out.iter().next().unwrap().udp().unwrap().src_port();
    chain
        .run_batch(vec![outbound_packet(1, 1234)].into_iter().collect())
        .unwrap();

    // Third batch trips the crash; heal and continue.
    assert!(chain
        .run_batch_healing(vec![outbound_packet(1, 1234)].into_iter().collect())
        .is_err());

    // Return traffic to the old mapping: dropped (table was lost with
    // the domain — SFI contained the fault, state did not leak across).
    let back = Packet::build_udp(
        MacAddr::ZERO,
        MacAddr::ZERO,
        Ipv4Addr::new(8, 8, 8, 8),
        NAT_IP,
        53,
        nat_port,
        0,
    );
    let out = chain.run_batch(vec![back].into_iter().collect()).unwrap();
    assert_eq!(out.len(), 0, "stale inbound mapping fails closed");

    // New outbound connections work immediately.
    let out = chain
        .run_batch(vec![outbound_packet(2, 999)].into_iter().collect())
        .unwrap();
    assert_eq!(out.len(), 1);
    assert_eq!(out.iter().next().unwrap().ipv4().unwrap().src(), NAT_IP);
}

#[test]
fn channels_feed_an_isolated_consumer() {
    use rust_beyond_safety::sfi::{channel, DomainManager, RRef};

    let mgr = DomainManager::new();
    let consumer = mgr.create_domain("consumer").unwrap();
    let (tx, rx) = channel::<PacketBatch>(&consumer, 8);
    let sink = RRef::new(
        &consumer,
        rust_beyond_safety::netfx::operators::Counter::new(),
    );

    // Producer thread moves batches into the domain through the channel.
    let producer = std::thread::spawn(move || {
        for i in 0..10u16 {
            let batch: PacketBatch = (0..4).map(|j| outbound_packet(1, i * 10 + j)).collect();
            tx.send(batch).unwrap();
        }
    });

    let mut seen = 0u64;
    while seen < 40 {
        let batch = rx.recv().expect("producer still running");
        seen += sink
            .invoke_mut(move |c| {
                use rust_beyond_safety::netfx::pipeline::Operator;
                c.process(batch).len() as u64
            })
            .unwrap();
    }
    producer.join().unwrap();
    assert_eq!(seen, 40);
    assert_eq!(sink.invoke(|c| c.packets()).unwrap(), 40);
}
