//! The packet-buffer pool: DPDK's mempool, made safe by linearity.
//!
//! DPDK and NetBricks get their throughput numbers from *buffer
//! recycling*: packet memory is allocated once at startup and then moves
//! around a ring forever — NIC → pipeline → NIC — without the allocator
//! on the data path. In C that ring is guarded by conventions (a
//! use-after-free away from silent corruption); here it is guarded by the
//! type system. A [`Packet`](crate::packet::Packet) owns its `BytesMut`
//! outright, so a buffer can only re-enter the pool by *moving* back
//! ([`Packet::into_bytes`](crate::packet::Packet::into_bytes)),
//! and the borrow checker makes "recycled but still referenced"
//! unrepresentable. That is the paper's §3 claim made load-bearing: no
//! refcounts, no locks, no epochs — ownership transfer *is* the
//! synchronization.
//!
//! The pool is deliberately single-owner (not `Sync`): it lives with the
//! driver thread that generates packets. Workers return spent batches
//! through an `sfi` recycle channel — another ownership transfer — and
//! the driver drains that channel back into the pool between bursts. A
//! worker that dies with batches in flight simply never returns them;
//! those buffers drop with the poisoned domain and show up as
//! [`PacketPool::outstanding`], never as corruption.
//!
//! Every container here is pre-sized at construction, so the steady-state
//! `take`/`put` cycle touches the allocator exactly zero times — the
//! property `e12_hotpath` measures with a counting allocator.

use crate::batch::PacketBatch;
use bytes::BytesMut;

/// Monotonic counters describing pool traffic.
///
/// Conservation invariant (checked by tests and `e12_hotpath`): every
/// buffer handed out is eventually either returned or still outstanding —
/// `taken == returned + outstanding`, and at quiescence `outstanding`
/// equals exactly the buffers leaked on faults (dropped with a poisoned
/// domain), never a silent loss.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffers handed out by [`PacketPool::take`].
    pub taken: u64,
    /// `take` calls served from the free list (no allocation).
    pub hits: u64,
    /// `take` calls that had to allocate a fresh slab.
    pub misses: u64,
    /// Buffers that came back through [`PacketPool::put`].
    pub returned: u64,
    /// Returned buffers dropped because the free list was full.
    pub overflow_dropped: u64,
    /// Batch shells handed out by [`PacketPool::take_shell`].
    pub shells_taken: u64,
    /// Batch shells returned by [`PacketPool::put_shell`].
    pub shells_returned: u64,
}

/// A single-owner free list of fixed-size packet buffers plus reusable
/// batch shells.
///
/// `slab_capacity` is the byte capacity each fresh buffer is created
/// with; recycled buffers keep whatever capacity they grew to.
/// `max_free` bounds the free list so a burst of returns cannot pin
/// unbounded memory — excess buffers are dropped (and counted).
#[derive(Debug)]
pub struct PacketPool {
    free: Vec<BytesMut>,
    shells: Vec<PacketBatch>,
    slab_capacity: usize,
    max_free: usize,
    stats: PoolStats,
}

/// How many batch shells the pool retains (one per shard plus slack is
/// plenty; shells are just empty `Vec`s with capacity).
const MAX_SHELLS: usize = 64;

impl PacketPool {
    /// Creates a pool whose fresh slabs hold `slab_capacity` bytes and
    /// whose free list retains at most `max_free` buffers.
    ///
    /// Both internal lists are allocated to their maximum size up front,
    /// so no later `take`/`put` ever grows them.
    pub fn new(slab_capacity: usize, max_free: usize) -> Self {
        Self {
            free: Vec::with_capacity(max_free),
            shells: Vec::with_capacity(MAX_SHELLS),
            slab_capacity,
            max_free,
            stats: PoolStats::default(),
        }
    }

    /// Fills the free list with `n` fresh slabs (bounded by `max_free`).
    ///
    /// Call once before the measured region so steady-state `take`s are
    /// all hits.
    pub fn prewarm(&mut self, n: usize) {
        let n = n.min(self.max_free.saturating_sub(self.free.len()));
        for _ in 0..n {
            self.free.push(BytesMut::with_capacity(self.slab_capacity));
        }
    }

    /// Fills the shell bank with `n` empty batches of `capacity` packets
    /// each (bounded by the fixed shell-bank size).
    ///
    /// Pre-sizing shells to the driver's batch size means no later
    /// [`Self::take_shell`] or scratch push ever grows one.
    pub fn prewarm_shells(&mut self, n: usize, capacity: usize) {
        let n = n.min(MAX_SHELLS.saturating_sub(self.shells.len()));
        for _ in 0..n {
            self.shells.push(PacketBatch::with_capacity(capacity));
        }
    }

    /// Takes a buffer: from the free list when possible (a *hit*, no
    /// allocation), freshly allocated otherwise (a *miss*).
    pub fn take(&mut self) -> BytesMut {
        self.stats.taken += 1;
        match self.free.pop() {
            Some(buf) => {
                self.stats.hits += 1;
                buf
            }
            None => {
                self.stats.misses += 1;
                BytesMut::with_capacity(self.slab_capacity)
            }
        }
    }

    /// Returns a buffer to the free list, dropping it if the list is
    /// full.
    pub fn put(&mut self, buf: BytesMut) {
        self.stats.returned += 1;
        if self.free.len() < self.max_free {
            self.free.push(buf);
        } else {
            self.stats.overflow_dropped += 1;
        }
    }

    /// Takes an empty batch shell with room for at least `cap` packets.
    ///
    /// Steady state pops a previously returned shell whose capacity has
    /// already grown to the high-water mark — no allocation.
    pub fn take_shell(&mut self, cap: usize) -> PacketBatch {
        self.stats.shells_taken += 1;
        match self.shells.pop() {
            Some(mut shell) => {
                shell.reserve(cap.saturating_sub(shell.capacity()));
                shell
            }
            None => PacketBatch::with_capacity(cap),
        }
    }

    /// Takes a banked shell *without ever allocating*: `None` when the
    /// bank is empty.
    ///
    /// The dispatcher tops up its spare-shell bank from this reservoir
    /// on the reclaim path; an allocating fallback there would defeat
    /// the zero-allocation claim, so the caller must tolerate `None`.
    pub fn try_take_shell(&mut self) -> Option<PacketBatch> {
        let shell = self.shells.pop()?;
        self.stats.shells_taken += 1;
        Some(shell)
    }

    /// Returns a shell for reuse; any packets still inside are recycled
    /// first.
    pub fn put_shell(&mut self, mut shell: PacketBatch) {
        for packet in shell.drain() {
            self.put(packet.into_bytes());
        }
        self.stats.shells_returned += 1;
        if self.shells.len() < MAX_SHELLS {
            self.shells.push(shell);
        }
    }

    /// Recycles a spent batch: every packet's buffer back to the free
    /// list, the batch's own allocation back as a shell.
    pub fn recycle_batch(&mut self, batch: PacketBatch) {
        self.put_shell(batch);
    }

    /// Buffers currently checked out (taken but not yet returned).
    ///
    /// After a clean drain this is exactly the number of buffers that
    /// died with poisoned domains.
    pub fn outstanding(&self) -> u64 {
        self.stats.taken - self.stats.returned
    }

    /// Buffers sitting in the free list right now.
    pub fn free_buffers(&self) -> usize {
        self.free.len()
    }

    /// Byte capacity of freshly allocated slabs.
    pub fn slab_capacity(&self) -> usize {
        self.slab_capacity
    }

    /// A copy of the traffic counters.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_put_cycle_hits_after_prewarm() {
        let mut pool = PacketPool::new(256, 8);
        pool.prewarm(4);
        assert_eq!(pool.free_buffers(), 4);

        let a = pool.take();
        let b = pool.take();
        assert_eq!(pool.stats().hits, 2);
        assert_eq!(pool.stats().misses, 0);
        assert_eq!(pool.outstanding(), 2);

        pool.put(a);
        pool.put(b);
        assert_eq!(pool.outstanding(), 0);
        assert_eq!(pool.free_buffers(), 4);
    }

    #[test]
    fn empty_pool_misses_then_recycles() {
        let mut pool = PacketPool::new(128, 8);
        let buf = pool.take();
        assert_eq!(pool.stats().misses, 1);
        let ptr = buf.as_ptr();
        pool.put(buf);
        let again = pool.take();
        assert_eq!(again.as_ptr(), ptr, "same slab came back");
        assert_eq!(pool.stats().hits, 1);
    }

    #[test]
    fn overflow_returns_are_dropped_not_lost() {
        let mut pool = PacketPool::new(64, 2);
        pool.prewarm(10);
        assert_eq!(pool.free_buffers(), 2, "prewarm respects max_free");
        let bufs: Vec<BytesMut> = (0..4).map(|_| pool.take()).collect();
        for b in bufs {
            pool.put(b);
        }
        assert_eq!(pool.free_buffers(), 2);
        assert_eq!(pool.stats().overflow_dropped, 2);
        // Conservation: every taken buffer was returned.
        assert_eq!(pool.outstanding(), 0);
    }

    #[test]
    fn recycle_batch_returns_buffers_and_shell() {
        use crate::headers::ethernet::MacAddr;
        use crate::packet::Packet;
        use std::net::Ipv4Addr;

        let mut pool = PacketPool::new(256, 8);
        pool.prewarm(3);
        let mut shell = pool.take_shell(3);
        let shell_cap = shell.capacity();
        for i in 0..3u16 {
            let p = Packet::build_udp_into(
                pool.take(),
                MacAddr::ZERO,
                MacAddr::ZERO,
                Ipv4Addr::new(10, 0, 0, 1),
                Ipv4Addr::new(10, 0, 0, 2),
                1000 + i,
                80,
                16,
            );
            shell.push(p);
        }
        assert_eq!(pool.outstanding(), 3);
        assert_eq!(pool.free_buffers(), 0);

        pool.recycle_batch(shell);
        assert_eq!(pool.outstanding(), 0);
        assert_eq!(pool.free_buffers(), 3);
        assert_eq!(pool.stats().shells_returned, 1);

        // The shell allocation itself round-trips.
        let shell2 = pool.take_shell(3);
        assert!(shell2.capacity() >= shell_cap);
        assert_eq!(pool.stats().shells_taken, 2);
    }

    #[test]
    fn leaked_buffers_show_as_outstanding() {
        let mut pool = PacketPool::new(64, 8);
        pool.prewarm(2);
        let a = pool.take();
        let _b = pool.take();
        drop(a); // simulates a buffer dying with a poisoned domain
        pool.put(_b);
        assert_eq!(
            pool.outstanding(),
            1,
            "the dropped buffer stays on the books"
        );
        assert_eq!(pool.stats().taken, 2);
        assert_eq!(pool.stats().returned, 1);
    }
}
