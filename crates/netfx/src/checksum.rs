//! The Internet checksum (RFC 1071) used by IPv4, TCP and UDP.
//!
//! One's-complement sum of 16-bit big-endian words, folded and inverted.
//! Implemented once here; the header modules compose it with their
//! pseudo-headers.

/// Accumulates the one's-complement sum over byte slices.
///
/// Use [`Checksum::push`] for each region (header, pseudo-header,
/// payload), then [`Checksum::finish`] for the final inverted value.
#[derive(Debug, Clone, Copy, Default)]
pub struct Checksum {
    sum: u32,
    /// True when an odd byte is pending pairing with the next region's
    /// first byte (regions may have odd lengths, e.g. a payload).
    pending: Option<u8>,
}

impl Checksum {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a byte region to the running sum.
    pub fn push(&mut self, bytes: &[u8]) {
        let mut bytes = bytes;
        if let Some(hi) = self.pending.take() {
            if let Some((&lo, rest)) = bytes.split_first() {
                self.add_word(u16::from_be_bytes([hi, lo]));
                bytes = rest;
            } else {
                self.pending = Some(hi);
                return;
            }
        }
        let mut chunks = bytes.chunks_exact(2);
        for chunk in &mut chunks {
            self.add_word(u16::from_be_bytes([chunk[0], chunk[1]]));
        }
        if let [odd] = chunks.remainder() {
            self.pending = Some(*odd);
        }
    }

    /// Adds a single 16-bit word (already in host order) to the sum.
    pub fn push_word(&mut self, word: u16) {
        assert!(
            self.pending.is_none(),
            "push_word with an odd byte pending would misalign the sum"
        );
        self.add_word(word);
    }

    fn add_word(&mut self, word: u16) {
        self.sum += u32::from(word);
    }

    /// Folds the carries and returns the inverted checksum.
    pub fn finish(mut self) -> u16 {
        if let Some(hi) = self.pending.take() {
            // RFC 1071: a trailing odd byte is padded with a zero byte.
            self.add_word(u16::from_be_bytes([hi, 0]));
        }
        let mut sum = self.sum;
        while sum > 0xFFFF {
            sum = (sum & 0xFFFF) + (sum >> 16);
        }
        !(sum as u16)
    }
}

/// Computes the checksum of a single contiguous region.
pub fn checksum(bytes: &[u8]) -> u16 {
    let mut c = Checksum::new();
    c.push(bytes);
    c.finish()
}

/// Verifies a region whose checksum field is already filled in: the folded
/// sum over the whole region must be zero (i.e. `checksum` returns 0).
pub fn verify(bytes: &[u8]) -> bool {
    checksum(bytes) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The worked example from RFC 1071 §3.
    #[test]
    fn rfc1071_example() {
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        // Sum = 0x0001 + 0xf203 + 0xf4f5 + 0xf6f7 = 0x2ddf0 -> fold 0xddf2.
        assert_eq!(checksum(&data), !0xddf2);
    }

    #[test]
    fn empty_region_checksums_to_ffff() {
        assert_eq!(checksum(&[]), 0xFFFF);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(checksum(&[0xAB]), !0xAB00);
    }

    #[test]
    fn split_regions_equal_contiguous() {
        let data: Vec<u8> = (0..=255u8).collect();
        let whole = checksum(&data);
        for split in [0usize, 1, 7, 128, 255, 256] {
            let mut c = Checksum::new();
            c.push(&data[..split]);
            c.push(&data[split..]);
            assert_eq!(c.finish(), whole, "split at {split}");
        }
    }

    #[test]
    fn odd_split_rejoins() {
        // Splitting at an odd offset exercises the pending-byte pairing.
        let data = [1u8, 2, 3, 4, 5, 6];
        let whole = checksum(&data);
        let mut c = Checksum::new();
        c.push(&data[..3]);
        c.push(&data[3..]);
        assert_eq!(c.finish(), whole);
    }

    #[test]
    fn filled_checksum_verifies() {
        // Build a fake header, insert its checksum, verify sums to zero.
        let mut hdr = vec![
            0x45u8, 0x00, 0x00, 0x28, 0x12, 0x34, 0x00, 0x00, 0x40, 0x11, 0, 0,
        ];
        hdr.extend_from_slice(&[10, 0, 0, 1, 10, 0, 0, 2]);
        let sum = checksum(&hdr);
        hdr[10..12].copy_from_slice(&sum.to_be_bytes());
        assert!(verify(&hdr));
    }

    #[test]
    fn push_empty_after_odd_keeps_pending() {
        let mut c = Checksum::new();
        c.push(&[0xAB]);
        c.push(&[]);
        c.push(&[0xCD]);
        assert_eq!(c.finish(), !0xABCD);
    }

    #[test]
    #[should_panic(expected = "odd byte pending")]
    fn push_word_rejects_misalignment() {
        let mut c = Checksum::new();
        c.push(&[0xAB]);
        c.push_word(0x1234);
    }
}
