//! A flow-tracking operator with real per-flow state.
//!
//! [`FlowTracker`] maintains a bounded table of per-flow counters — the
//! canonical example of operator state whose loss is *observable*: after
//! a crash, a cold-started tracker has forgotten every flow it had seen,
//! while a warm-recovered one resumes within one snapshot interval of
//! the truth. The table is a `BTreeMap` so iteration (and therefore
//! checkpoint bytes) is deterministic across runs.

use std::collections::BTreeMap;

use rbs_checkpoint::{CheckpointCtx, Checkpointable, RestoreCtx, Snapshot, SnapshotError};

use crate::batch::PacketBatch;
use crate::flow::FiveTuple;
use crate::pipeline::Operator;

/// Per-flow counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowEntry {
    /// Packets observed on this flow.
    pub packets: u64,
    /// Total frame bytes observed on this flow.
    pub bytes: u64,
}

rbs_checkpoint::checkpointable!(struct FlowEntry { packets, bytes });

/// A pass-through operator that tracks per-flow packet/byte counts.
///
/// The tracker never drops packets — it observes. New flows are admitted
/// until `capacity`; beyond that, packets on unknown flows are still
/// forwarded but counted in [`FlowTracker::overflow`] instead of the
/// table (deterministic admission: first-come, first-tracked). Packets
/// without an extractable 5-tuple count as
/// [`FlowTracker::untracked`].
pub struct FlowTracker {
    flows: BTreeMap<FiveTuple, FlowEntry>,
    capacity: usize,
    overflow: u64,
    untracked: u64,
}

impl FlowTracker {
    /// Creates a tracker admitting at most `capacity` distinct flows.
    pub fn new(capacity: usize) -> Self {
        Self {
            flows: BTreeMap::new(),
            capacity: capacity.max(1),
            overflow: 0,
            untracked: 0,
        }
    }

    /// Number of distinct flows currently tracked.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// The counters for one flow, if tracked.
    pub fn flow(&self, tuple: &FiveTuple) -> Option<&FlowEntry> {
        self.flows.get(tuple)
    }

    /// The full flow table, in deterministic (tuple-ordered) order.
    pub fn flows(&self) -> &BTreeMap<FiveTuple, FlowEntry> {
        &self.flows
    }

    /// Packets on flows rejected because the table was full.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Packets without an extractable 5-tuple (non-TCP/UDP).
    pub fn untracked(&self) -> u64 {
        self.untracked
    }

    /// Maximum number of distinct flows admitted.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl Operator for FlowTracker {
    fn process(&mut self, batch: PacketBatch) -> PacketBatch {
        for packet in batch.iter() {
            let Ok(tuple) = FiveTuple::of(packet) else {
                self.untracked += 1;
                continue;
            };
            if let Some(entry) = self.flows.get_mut(&tuple) {
                entry.packets += 1;
                entry.bytes += packet.len() as u64;
            } else if self.flows.len() < self.capacity {
                self.flows.insert(
                    tuple,
                    FlowEntry {
                        packets: 1,
                        bytes: packet.len() as u64,
                    },
                );
            } else {
                self.overflow += 1;
            }
        }
        batch
    }

    fn name(&self) -> &str {
        "flow-tracker"
    }

    // The flow table is the state worth surviving a crash; the overflow
    // and untracked diagnostics restart from zero like any gauge.
    fn checkpoint_state(&self, ctx: &mut CheckpointCtx) -> Option<Snapshot> {
        Some(self.flows.checkpoint(ctx))
    }

    fn restore_state(
        &mut self,
        snap: &Snapshot,
        ctx: &mut RestoreCtx<'_>,
    ) -> Result<(), SnapshotError> {
        let flows = BTreeMap::restore(snap, ctx)?;
        if flows.len() > self.capacity {
            return Err(SnapshotError::WrongLength {
                expected: self.capacity,
                got: flows.len(),
            });
        }
        self.flows = flows;
        Ok(())
    }

    fn state_items(&self) -> u64 {
        self.flows.len() as u64
    }
}

impl std::fmt::Debug for FlowTracker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlowTracker")
            .field("flows", &self.flows.len())
            .field("capacity", &self.capacity)
            .field("overflow", &self.overflow)
            .field("untracked", &self.untracked)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::headers::ethernet::MacAddr;
    use crate::headers::ipv4::IpProto;
    use crate::packet::Packet;
    use crate::pipeline::PipelineSpec;
    use std::net::Ipv4Addr;

    fn pkt(src_port: u16) -> Packet {
        Packet::build_udp(
            MacAddr::ZERO,
            MacAddr::ZERO,
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            src_port,
            80,
            16,
        )
    }

    fn batch(ports: &[u16]) -> PacketBatch {
        ports.iter().map(|&p| pkt(p)).collect()
    }

    #[test]
    fn counts_per_flow() {
        let mut t = FlowTracker::new(16);
        let out = t.process(batch(&[1000, 1000, 1001]));
        assert_eq!(out.len(), 3, "tracker forwards everything");
        assert_eq!(t.flow_count(), 2);
        let tuple = FiveTuple::of(&pkt(1000)).unwrap();
        assert_eq!(t.flow(&tuple).unwrap().packets, 2);
        assert!(t.flow(&tuple).unwrap().bytes > 0);
    }

    #[test]
    fn capacity_bound_is_deterministic() {
        let mut t = FlowTracker::new(2);
        t.process(batch(&[1, 2, 3, 4, 1]));
        // First two distinct flows admitted, later ones overflow; the
        // admitted flows keep counting.
        assert_eq!(t.flow_count(), 2);
        assert_eq!(t.overflow(), 2);
        assert_eq!(t.flow(&FiveTuple::of(&pkt(1)).unwrap()).unwrap().packets, 2);
    }

    #[test]
    fn non_transport_packets_are_untracked() {
        let mut t = FlowTracker::new(4);
        let mut p = pkt(9);
        p.ipv4_mut().unwrap().set_protocol(IpProto::Icmp);
        t.process(std::iter::once(p).collect());
        assert_eq!(t.flow_count(), 0);
        assert_eq!(t.untracked(), 1);
    }

    #[test]
    fn state_survives_spec_rebuild() {
        let spec = PipelineSpec::new().stage(|| FlowTracker::new(64));
        let mut live = spec.build();
        live.run_batch(batch(&[10, 11, 10, 12]));
        assert_eq!(live.state_items(), 3);

        let cp = live.export_state();
        let mut replica = spec.build_with_state(&cp).unwrap();
        assert_eq!(replica.state_items(), 3);

        // The replica keeps counting where the original left off.
        replica.run_batch(batch(&[10]));
        let again = replica.export_state();
        assert_ne!(again.root, cp.root);
        assert_eq!(replica.state_items(), 3);
    }

    #[test]
    fn restore_rejects_oversized_tables() {
        let big = PipelineSpec::new().stage(|| FlowTracker::new(64));
        let mut live = big.build();
        live.run_batch(batch(&[1, 2, 3, 4, 5]));
        let cp = live.export_state();

        let small = PipelineSpec::new().stage(|| FlowTracker::new(2));
        assert_eq!(
            small.build_with_state(&cp).unwrap_err(),
            SnapshotError::WrongLength {
                expected: 2,
                got: 5
            }
        );
    }
}
