//! Ethernet II framing.

use crate::packet::PacketError;
use std::fmt;

/// Length of an Ethernet II header (no 802.1Q tag): dst + src + ethertype.
pub const ETHERNET_HDR_LEN: usize = 14;

/// A 48-bit MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xFF; 6]);

    /// The all-zero address, conventionally "unset".
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// True if the multicast bit (LSB of the first octet) is set.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// True if this is the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

/// EtherType values this framework understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    /// IPv4, `0x0800`.
    Ipv4,
    /// ARP, `0x0806` (recognized, not parsed further).
    Arp,
    /// Anything else, carried verbatim.
    Other(u16),
}

impl From<u16> for EtherType {
    fn from(raw: u16) -> Self {
        match raw {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            other => EtherType::Other(other),
        }
    }
}

impl From<EtherType> for u16 {
    fn from(et: EtherType) -> u16 {
        match et {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Other(raw) => raw,
        }
    }
}

/// Immutable view of an Ethernet II header.
#[derive(Debug, Clone, Copy)]
pub struct EthernetHdr<'a> {
    data: &'a [u8],
}

impl<'a> EthernetHdr<'a> {
    /// Wraps `data`, which must start at the first byte of the header.
    ///
    /// Fails with [`PacketError::Truncated`] if fewer than
    /// [`ETHERNET_HDR_LEN`] bytes are available.
    pub fn parse(data: &'a [u8]) -> Result<Self, PacketError> {
        if data.len() < ETHERNET_HDR_LEN {
            return Err(PacketError::Truncated {
                header: "ethernet",
                needed: ETHERNET_HDR_LEN,
                have: data.len(),
            });
        }
        Ok(Self { data })
    }

    /// Destination MAC.
    pub fn dst(&self) -> MacAddr {
        MacAddr(self.data[0..6].try_into().expect("length checked in parse"))
    }

    /// Source MAC.
    pub fn src(&self) -> MacAddr {
        MacAddr(
            self.data[6..12]
                .try_into()
                .expect("length checked in parse"),
        )
    }

    /// EtherType of the payload.
    pub fn ethertype(&self) -> EtherType {
        u16::from_be_bytes([self.data[12], self.data[13]]).into()
    }
}

/// Mutable view of an Ethernet II header.
#[derive(Debug)]
pub struct EthernetHdrMut<'a> {
    data: &'a mut [u8],
}

impl<'a> EthernetHdrMut<'a> {
    /// Wraps `data`; see [`EthernetHdr::parse`].
    pub fn parse(data: &'a mut [u8]) -> Result<Self, PacketError> {
        if data.len() < ETHERNET_HDR_LEN {
            return Err(PacketError::Truncated {
                header: "ethernet",
                needed: ETHERNET_HDR_LEN,
                have: data.len(),
            });
        }
        Ok(Self { data })
    }

    /// Sets the destination MAC.
    pub fn set_dst(&mut self, mac: MacAddr) {
        self.data[0..6].copy_from_slice(&mac.0);
    }

    /// Sets the source MAC.
    pub fn set_src(&mut self, mac: MacAddr) {
        self.data[6..12].copy_from_slice(&mac.0);
    }

    /// Sets the EtherType.
    pub fn set_ethertype(&mut self, et: EtherType) {
        self.data[12..14].copy_from_slice(&u16::from(et).to_be_bytes());
    }

    /// Reborrows as an immutable view.
    pub fn as_ref(&self) -> EthernetHdr<'_> {
        EthernetHdr { data: self.data }
    }

    /// Swaps source and destination MACs (the classic "bounce" operation).
    pub fn swap_addrs(&mut self) {
        for i in 0..6 {
            self.data.swap(i, i + 6);
        }
    }
}

/// Writes a complete Ethernet header into `data`, returning the header
/// length.
pub fn emit(data: &mut [u8], src: MacAddr, dst: MacAddr, ethertype: EtherType) -> usize {
    let mut hdr = EthernetHdrMut::parse(data).expect("caller provides >= 14 bytes");
    hdr.set_dst(dst);
    hdr.set_src(src);
    hdr.set_ethertype(ethertype);
    ETHERNET_HDR_LEN
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> [u8; 14] {
        let mut b = [0u8; 14];
        b[0..6].copy_from_slice(&[0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x01]);
        b[6..12].copy_from_slice(&[0x02, 0x00, 0x00, 0x00, 0x00, 0x02]);
        b[12..14].copy_from_slice(&0x0800u16.to_be_bytes());
        b
    }

    #[test]
    fn parse_fields() {
        let b = sample();
        let h = EthernetHdr::parse(&b).unwrap();
        assert_eq!(h.dst(), MacAddr([0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x01]));
        assert_eq!(h.src(), MacAddr([0x02, 0, 0, 0, 0, 0x02]));
        assert_eq!(h.ethertype(), EtherType::Ipv4);
    }

    #[test]
    fn truncated_rejected() {
        let b = [0u8; 13];
        match EthernetHdr::parse(&b) {
            Err(PacketError::Truncated {
                header,
                needed,
                have,
            }) => {
                assert_eq!(header, "ethernet");
                assert_eq!(needed, 14);
                assert_eq!(have, 13);
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn mutate_roundtrip() {
        let mut b = sample();
        let mut h = EthernetHdrMut::parse(&mut b).unwrap();
        h.set_dst(MacAddr::BROADCAST);
        h.set_ethertype(EtherType::Arp);
        let r = h.as_ref();
        assert!(r.dst().is_broadcast());
        assert_eq!(r.ethertype(), EtherType::Arp);
    }

    #[test]
    fn swap_addrs() {
        let mut b = sample();
        let (orig_dst, orig_src) = {
            let h = EthernetHdr::parse(&b).unwrap();
            (h.dst(), h.src())
        };
        let mut h = EthernetHdrMut::parse(&mut b).unwrap();
        h.swap_addrs();
        let r = h.as_ref();
        assert_eq!(r.dst(), orig_src);
        assert_eq!(r.src(), orig_dst);
    }

    #[test]
    fn ethertype_conversions() {
        assert_eq!(EtherType::from(0x0800), EtherType::Ipv4);
        assert_eq!(EtherType::from(0x0806), EtherType::Arp);
        assert_eq!(EtherType::from(0x86DD), EtherType::Other(0x86DD));
        assert_eq!(u16::from(EtherType::Ipv4), 0x0800);
        assert_eq!(u16::from(EtherType::Other(0x1234)), 0x1234);
    }

    #[test]
    fn mac_properties() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(!MacAddr::ZERO.is_multicast());
        assert!(MacAddr([0x01, 0, 0x5E, 0, 0, 1]).is_multicast());
        assert_eq!(
            MacAddr([0xAB, 0, 0, 0, 0, 0xCD]).to_string(),
            "ab:00:00:00:00:cd"
        );
    }

    #[test]
    fn emit_writes_header() {
        let mut b = [0u8; 20];
        let n = emit(&mut b, MacAddr::ZERO, MacAddr::BROADCAST, EtherType::Ipv4);
        assert_eq!(n, ETHERNET_HDR_LEN);
        let h = EthernetHdr::parse(&b).unwrap();
        assert!(h.dst().is_broadcast());
        assert_eq!(h.ethertype(), EtherType::Ipv4);
    }
}
