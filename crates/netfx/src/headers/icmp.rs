//! ICMP (RFC 792): echo request/reply, plus an answering network
//! function.
//!
//! Enough ICMP to make pipelines ping-able: typed views of the echo
//! header, builders for requests, and in-place request→reply conversion
//! (type rewrite, checksum fix, IP/MAC swap) used by
//! [`crate::operators::EchoResponder`].

use crate::checksum;
use crate::packet::PacketError;

/// ICMP header length for echo messages (type, code, checksum, id, seq).
pub const ICMP_ECHO_HDR_LEN: usize = 8;

/// ICMP message types this framework understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IcmpType {
    /// Echo reply (0).
    EchoReply,
    /// Echo request (8).
    EchoRequest,
    /// Anything else, carried verbatim.
    Other(u8),
}

impl From<u8> for IcmpType {
    fn from(raw: u8) -> Self {
        match raw {
            0 => IcmpType::EchoReply,
            8 => IcmpType::EchoRequest,
            other => IcmpType::Other(other),
        }
    }
}

impl From<IcmpType> for u8 {
    fn from(t: IcmpType) -> u8 {
        match t {
            IcmpType::EchoReply => 0,
            IcmpType::EchoRequest => 8,
            IcmpType::Other(raw) => raw,
        }
    }
}

fn check_icmp(data: &[u8]) -> Result<(), PacketError> {
    if data.len() < ICMP_ECHO_HDR_LEN {
        return Err(PacketError::Truncated {
            header: "icmp",
            needed: ICMP_ECHO_HDR_LEN,
            have: data.len(),
        });
    }
    Ok(())
}

/// Immutable view of an ICMP echo header.
#[derive(Debug, Clone, Copy)]
pub struct IcmpHdr<'a> {
    data: &'a [u8],
}

impl<'a> IcmpHdr<'a> {
    /// Wraps `data`, which must start at the ICMP type byte and span the
    /// whole ICMP message (for checksum verification).
    pub fn parse(data: &'a [u8]) -> Result<Self, PacketError> {
        check_icmp(data)?;
        Ok(Self { data })
    }

    /// Message type.
    pub fn icmp_type(&self) -> IcmpType {
        self.data[0].into()
    }

    /// Code byte.
    pub fn code(&self) -> u8 {
        self.data[1]
    }

    /// Identifier (echo messages).
    pub fn identifier(&self) -> u16 {
        u16::from_be_bytes([self.data[4], self.data[5]])
    }

    /// Sequence number (echo messages).
    pub fn sequence(&self) -> u16 {
        u16::from_be_bytes([self.data[6], self.data[7]])
    }

    /// Echo payload (after the 8-byte header).
    pub fn payload(&self) -> &'a [u8] {
        &self.data[ICMP_ECHO_HDR_LEN..]
    }

    /// True when the message checksum is consistent.
    pub fn checksum_ok(&self) -> bool {
        checksum::verify(self.data)
    }
}

/// Mutable view of an ICMP echo header.
#[derive(Debug)]
pub struct IcmpHdrMut<'a> {
    data: &'a mut [u8],
}

impl<'a> IcmpHdrMut<'a> {
    /// Wraps `data`; see [`IcmpHdr::parse`].
    pub fn parse(data: &'a mut [u8]) -> Result<Self, PacketError> {
        check_icmp(data)?;
        Ok(Self { data })
    }

    /// Reborrows as an immutable view.
    pub fn as_ref(&self) -> IcmpHdr<'_> {
        IcmpHdr { data: self.data }
    }

    /// Sets the message type.
    pub fn set_type(&mut self, t: IcmpType) {
        self.data[0] = t.into();
    }

    /// Sets the sequence number.
    pub fn set_sequence(&mut self, seq: u16) {
        self.data[6..8].copy_from_slice(&seq.to_be_bytes());
    }

    /// Recomputes the checksum over the whole message.
    pub fn update_checksum(&mut self) {
        self.data[2] = 0;
        self.data[3] = 0;
        let sum = checksum::checksum(self.data);
        self.data[2..4].copy_from_slice(&sum.to_be_bytes());
    }
}

/// Writes an echo message into `data` (which must span the whole
/// message), returning [`ICMP_ECHO_HDR_LEN`].
///
/// # Panics
///
/// Panics if `data` is shorter than the echo header.
pub fn emit(data: &mut [u8], t: IcmpType, identifier: u16, sequence: u16) -> usize {
    assert!(data.len() >= ICMP_ECHO_HDR_LEN, "icmp emit needs 8 bytes");
    data[0] = t.into();
    data[1] = 0;
    data[2] = 0;
    data[3] = 0;
    data[4..6].copy_from_slice(&identifier.to_be_bytes());
    data[6..8].copy_from_slice(&sequence.to_be_bytes());
    let sum = checksum::checksum(data);
    data[2..4].copy_from_slice(&sum.to_be_bytes());
    ICMP_ECHO_HDR_LEN
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut b = vec![0u8; 16];
        b[8..].copy_from_slice(b"pingdata");
        emit(&mut b, IcmpType::EchoRequest, 0x1234, 7);
        b
    }

    #[test]
    fn emit_then_parse() {
        let b = sample();
        let h = IcmpHdr::parse(&b).unwrap();
        assert_eq!(h.icmp_type(), IcmpType::EchoRequest);
        assert_eq!(h.code(), 0);
        assert_eq!(h.identifier(), 0x1234);
        assert_eq!(h.sequence(), 7);
        assert_eq!(h.payload(), b"pingdata");
        assert!(h.checksum_ok());
    }

    #[test]
    fn truncated_rejected() {
        assert!(matches!(
            IcmpHdr::parse(&[0u8; 7]),
            Err(PacketError::Truncated { header: "icmp", .. })
        ));
    }

    #[test]
    fn corrupt_payload_fails_checksum() {
        let mut b = sample();
        *b.last_mut().unwrap() ^= 1;
        assert!(!IcmpHdr::parse(&b).unwrap().checksum_ok());
    }

    #[test]
    fn request_to_reply_conversion() {
        let mut b = sample();
        let mut h = IcmpHdrMut::parse(&mut b).unwrap();
        h.set_type(IcmpType::EchoReply);
        h.update_checksum();
        let r = h.as_ref();
        assert_eq!(r.icmp_type(), IcmpType::EchoReply);
        assert_eq!(r.identifier(), 0x1234, "id preserved");
        assert_eq!(r.sequence(), 7, "seq preserved");
        assert!(r.checksum_ok());
    }

    #[test]
    fn type_conversions() {
        assert_eq!(IcmpType::from(0), IcmpType::EchoReply);
        assert_eq!(IcmpType::from(8), IcmpType::EchoRequest);
        assert_eq!(IcmpType::from(3), IcmpType::Other(3));
        assert_eq!(u8::from(IcmpType::EchoRequest), 8);
        assert_eq!(u8::from(IcmpType::Other(11)), 11);
    }

    #[test]
    fn set_sequence_and_rechecksum() {
        let mut b = sample();
        let mut h = IcmpHdrMut::parse(&mut b).unwrap();
        h.set_sequence(99);
        h.update_checksum();
        assert_eq!(h.as_ref().sequence(), 99);
        assert!(h.as_ref().checksum_ok());
    }
}
