//! TCP header (RFC 793), enough for classification and load balancing.

use crate::headers::ipv4::{pseudo_header_checksum, IpProto};
use crate::packet::PacketError;
use std::net::Ipv4Addr;

/// Minimum TCP header length (data offset = 5, no options).
pub const TCP_MIN_HDR_LEN: usize = 20;

/// TCP flag bits, in wire order within the flags byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    /// FIN flag.
    pub const FIN: u8 = 0x01;
    /// SYN flag.
    pub const SYN: u8 = 0x02;
    /// RST flag.
    pub const RST: u8 = 0x04;
    /// PSH flag.
    pub const PSH: u8 = 0x08;
    /// ACK flag.
    pub const ACK: u8 = 0x10;
    /// URG flag.
    pub const URG: u8 = 0x20;

    /// True if `bit` is set.
    pub fn has(&self, bit: u8) -> bool {
        self.0 & bit != 0
    }

    /// True for a connection-opening SYN (SYN set, ACK clear).
    pub fn is_syn_only(&self) -> bool {
        self.has(Self::SYN) && !self.has(Self::ACK)
    }
}

fn check_tcp(data: &[u8]) -> Result<usize, PacketError> {
    if data.len() < TCP_MIN_HDR_LEN {
        return Err(PacketError::Truncated {
            header: "tcp",
            needed: TCP_MIN_HDR_LEN,
            have: data.len(),
        });
    }
    let data_offset = (data[12] >> 4) as usize;
    if data_offset < 5 {
        return Err(PacketError::BadField {
            header: "tcp",
            field: "data_offset",
            value: data_offset as u64,
        });
    }
    let hdr_len = data_offset * 4;
    if data.len() < hdr_len {
        return Err(PacketError::Truncated {
            header: "tcp-options",
            needed: hdr_len,
            have: data.len(),
        });
    }
    Ok(hdr_len)
}

/// Immutable view of a TCP header.
#[derive(Debug, Clone, Copy)]
pub struct TcpHdr<'a> {
    data: &'a [u8],
    hdr_len: usize,
}

impl<'a> TcpHdr<'a> {
    /// Wraps `data`, which must start at the TCP source-port byte.
    pub fn parse(data: &'a [u8]) -> Result<Self, PacketError> {
        let hdr_len = check_tcp(data)?;
        Ok(Self { data, hdr_len })
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        u16::from_be_bytes([self.data[0], self.data[1]])
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        u16::from_be_bytes([self.data[2], self.data[3]])
    }

    /// Sequence number.
    pub fn seq(&self) -> u32 {
        u32::from_be_bytes(self.data[4..8].try_into().expect("length checked"))
    }

    /// Acknowledgement number.
    pub fn ack(&self) -> u32 {
        u32::from_be_bytes(self.data[8..12].try_into().expect("length checked"))
    }

    /// Header length in bytes (20..=60).
    pub fn header_len(&self) -> usize {
        self.hdr_len
    }

    /// Flag bits.
    pub fn flags(&self) -> TcpFlags {
        TcpFlags(self.data[13] & 0x3F)
    }

    /// Receive window.
    pub fn window(&self) -> u16 {
        u16::from_be_bytes([self.data[14], self.data[15]])
    }

    /// Checksum field as stored.
    pub fn checksum(&self) -> u16 {
        u16::from_be_bytes([self.data[16], self.data[17]])
    }

    /// Options bytes (empty when data offset = 5).
    pub fn options(&self) -> &'a [u8] {
        &self.data[TCP_MIN_HDR_LEN..self.hdr_len]
    }

    /// Verifies the checksum; `data` at parse time must span the whole
    /// segment and `seg_len` must be its length (header + payload).
    pub fn checksum_ok(&self, src: Ipv4Addr, dst: Ipv4Addr, seg_len: u16) -> bool {
        let len = seg_len as usize;
        if len < self.hdr_len || len > self.data.len() {
            return false;
        }
        let mut c = pseudo_header_checksum(src, dst, IpProto::Tcp, seg_len);
        c.push(&self.data[..len]);
        c.finish() == 0
    }
}

/// Mutable view of a TCP header.
#[derive(Debug)]
pub struct TcpHdrMut<'a> {
    data: &'a mut [u8],
    hdr_len: usize,
}

impl<'a> TcpHdrMut<'a> {
    /// Wraps `data`; see [`TcpHdr::parse`].
    pub fn parse(data: &'a mut [u8]) -> Result<Self, PacketError> {
        let hdr_len = check_tcp(data)?;
        Ok(Self { data, hdr_len })
    }

    /// Reborrows as an immutable view.
    pub fn as_ref(&self) -> TcpHdr<'_> {
        TcpHdr {
            data: self.data,
            hdr_len: self.hdr_len,
        }
    }

    /// Sets the source port.
    pub fn set_src_port(&mut self, port: u16) {
        self.data[0..2].copy_from_slice(&port.to_be_bytes());
    }

    /// Sets the destination port.
    pub fn set_dst_port(&mut self, port: u16) {
        self.data[2..4].copy_from_slice(&port.to_be_bytes());
    }

    /// Sets the flag bits (lower 6 bits honored).
    pub fn set_flags(&mut self, flags: TcpFlags) {
        self.data[13] = (self.data[13] & !0x3F) | (flags.0 & 0x3F);
    }

    /// Recomputes the checksum over pseudo-header + segment of `seg_len`
    /// bytes.
    pub fn update_checksum(&mut self, src: Ipv4Addr, dst: Ipv4Addr, seg_len: u16) {
        self.data[16] = 0;
        self.data[17] = 0;
        let len = (seg_len as usize).min(self.data.len());
        let mut c = pseudo_header_checksum(src, dst, IpProto::Tcp, seg_len);
        c.push(&self.data[..len]);
        let sum = c.finish();
        self.data[16..18].copy_from_slice(&sum.to_be_bytes());
    }
}

/// Writes a minimal TCP header into `data` (which must span the whole
/// segment), returning [`TCP_MIN_HDR_LEN`].
///
/// # Panics
///
/// Panics if `data` is shorter than [`TCP_MIN_HDR_LEN`].
pub fn emit(
    data: &mut [u8],
    src: Ipv4Addr,
    dst: Ipv4Addr,
    src_port: u16,
    dst_port: u16,
    seq: u32,
    flags: TcpFlags,
) -> usize {
    assert!(data.len() >= TCP_MIN_HDR_LEN, "tcp emit needs 20 bytes");
    let seg_len = u16::try_from(data.len()).expect("segment fits u16");
    data[0..2].copy_from_slice(&src_port.to_be_bytes());
    data[2..4].copy_from_slice(&dst_port.to_be_bytes());
    data[4..8].copy_from_slice(&seq.to_be_bytes());
    data[8..12].copy_from_slice(&0u32.to_be_bytes());
    data[12] = 5 << 4; // data offset 5
    data[13] = flags.0 & 0x3F;
    data[14..16].copy_from_slice(&0xFFFFu16.to_be_bytes());
    data[16] = 0;
    data[17] = 0;
    data[18..20].copy_from_slice(&0u16.to_be_bytes());
    let mut h = TcpHdrMut::parse(data).expect("header just written is valid");
    h.update_checksum(src, dst, seg_len);
    TCP_MIN_HDR_LEN
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Ipv4Addr = Ipv4Addr::new(172, 16, 0, 1);
    const DST: Ipv4Addr = Ipv4Addr::new(172, 16, 0, 2);

    fn sample() -> Vec<u8> {
        let mut b = vec![0u8; 24];
        b[20..].copy_from_slice(b"data");
        emit(
            &mut b,
            SRC,
            DST,
            4321,
            443,
            0x01020304,
            TcpFlags(TcpFlags::SYN),
        );
        b
    }

    #[test]
    fn emit_then_parse() {
        let b = sample();
        let h = TcpHdr::parse(&b).unwrap();
        assert_eq!(h.src_port(), 4321);
        assert_eq!(h.dst_port(), 443);
        assert_eq!(h.seq(), 0x01020304);
        assert_eq!(h.ack(), 0);
        assert_eq!(h.header_len(), 20);
        assert!(h.flags().is_syn_only());
        assert_eq!(h.window(), 0xFFFF);
        assert!(h.options().is_empty());
        assert!(h.checksum_ok(SRC, DST, 24));
    }

    #[test]
    fn truncated_rejected() {
        assert!(matches!(
            TcpHdr::parse(&[0u8; 19]),
            Err(PacketError::Truncated { header: "tcp", .. })
        ));
    }

    #[test]
    fn bad_data_offset_rejected() {
        let mut b = sample();
        b[12] = 4 << 4;
        assert!(matches!(
            TcpHdr::parse(&b),
            Err(PacketError::BadField {
                field: "data_offset",
                ..
            })
        ));
    }

    #[test]
    fn truncated_options_rejected() {
        let mut b = sample();
        b[12] = 15 << 4; // 60-byte header in a 24-byte buffer
        assert!(matches!(
            TcpHdr::parse(&b),
            Err(PacketError::Truncated {
                header: "tcp-options",
                ..
            })
        ));
    }

    #[test]
    fn corrupt_segment_fails_checksum() {
        let mut b = sample();
        *b.last_mut().unwrap() ^= 1;
        let h = TcpHdr::parse(&b).unwrap();
        assert!(!h.checksum_ok(SRC, DST, 24));
    }

    #[test]
    fn flags_manipulation() {
        let mut b = sample();
        let mut h = TcpHdrMut::parse(&mut b).unwrap();
        h.set_flags(TcpFlags(TcpFlags::ACK | TcpFlags::PSH));
        h.update_checksum(SRC, DST, 24);
        let r = h.as_ref();
        assert!(r.flags().has(TcpFlags::ACK));
        assert!(r.flags().has(TcpFlags::PSH));
        assert!(!r.flags().has(TcpFlags::SYN));
        assert!(!r.flags().is_syn_only());
        assert!(r.checksum_ok(SRC, DST, 24));
    }

    #[test]
    fn port_rewrite_with_checksum() {
        let mut b = sample();
        let mut h = TcpHdrMut::parse(&mut b).unwrap();
        h.set_src_port(1);
        h.set_dst_port(2);
        h.update_checksum(SRC, DST, 24);
        let r = h.as_ref();
        assert_eq!((r.src_port(), r.dst_port()), (1, 2));
        assert!(r.checksum_ok(SRC, DST, 24));
    }

    #[test]
    fn seg_len_out_of_range_fails() {
        let b = sample();
        let h = TcpHdr::parse(&b).unwrap();
        assert!(!h.checksum_ok(SRC, DST, 19)); // below header length
        assert!(!h.checksum_ok(SRC, DST, 100)); // beyond buffer
    }
}
