//! IPv4 header (RFC 791), with options and header checksum support.

use crate::checksum::{self, Checksum};
use crate::packet::PacketError;
use std::net::Ipv4Addr;

/// Minimum IPv4 header length (IHL = 5, no options).
pub const IPV4_MIN_HDR_LEN: usize = 20;

/// IP protocol numbers this framework understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IpProto {
    /// ICMP, protocol 1 (recognized, not parsed further).
    Icmp,
    /// TCP, protocol 6.
    Tcp,
    /// UDP, protocol 17.
    Udp,
    /// Anything else, carried verbatim.
    Other(u8),
}

impl From<u8> for IpProto {
    fn from(raw: u8) -> Self {
        match raw {
            1 => IpProto::Icmp,
            6 => IpProto::Tcp,
            17 => IpProto::Udp,
            other => IpProto::Other(other),
        }
    }
}

impl From<IpProto> for u8 {
    fn from(p: IpProto) -> u8 {
        match p {
            IpProto::Icmp => 1,
            IpProto::Tcp => 6,
            IpProto::Udp => 17,
            IpProto::Other(raw) => raw,
        }
    }
}

fn check_ipv4(data: &[u8]) -> Result<usize, PacketError> {
    if data.len() < IPV4_MIN_HDR_LEN {
        return Err(PacketError::Truncated {
            header: "ipv4",
            needed: IPV4_MIN_HDR_LEN,
            have: data.len(),
        });
    }
    let version = data[0] >> 4;
    if version != 4 {
        return Err(PacketError::BadField {
            header: "ipv4",
            field: "version",
            value: u64::from(version),
        });
    }
    let ihl = (data[0] & 0x0F) as usize;
    if ihl < 5 {
        return Err(PacketError::BadField {
            header: "ipv4",
            field: "ihl",
            value: ihl as u64,
        });
    }
    let hdr_len = ihl * 4;
    if data.len() < hdr_len {
        return Err(PacketError::Truncated {
            header: "ipv4-options",
            needed: hdr_len,
            have: data.len(),
        });
    }
    Ok(hdr_len)
}

/// Immutable view of an IPv4 header.
#[derive(Debug, Clone, Copy)]
pub struct Ipv4Hdr<'a> {
    data: &'a [u8],
    hdr_len: usize,
}

impl<'a> Ipv4Hdr<'a> {
    /// Wraps `data`, which must start at the IPv4 version/IHL byte.
    ///
    /// Validates version, IHL, and that the full (options-included)
    /// header is present.
    pub fn parse(data: &'a [u8]) -> Result<Self, PacketError> {
        let hdr_len = check_ipv4(data)?;
        Ok(Self { data, hdr_len })
    }

    /// Header length in bytes (20..=60).
    pub fn header_len(&self) -> usize {
        self.hdr_len
    }

    /// Differentiated services / TOS byte.
    pub fn dscp_ecn(&self) -> u8 {
        self.data[1]
    }

    /// Total datagram length (header + payload) from the header field.
    pub fn total_len(&self) -> u16 {
        u16::from_be_bytes([self.data[2], self.data[3]])
    }

    /// Identification field.
    pub fn identification(&self) -> u16 {
        u16::from_be_bytes([self.data[4], self.data[5]])
    }

    /// True if the Don't Fragment flag is set.
    pub fn dont_fragment(&self) -> bool {
        self.data[6] & 0x40 != 0
    }

    /// True if the More Fragments flag is set.
    pub fn more_fragments(&self) -> bool {
        self.data[6] & 0x20 != 0
    }

    /// Fragment offset in 8-byte units.
    pub fn fragment_offset(&self) -> u16 {
        u16::from_be_bytes([self.data[6] & 0x1F, self.data[7]])
    }

    /// Time to live.
    pub fn ttl(&self) -> u8 {
        self.data[8]
    }

    /// Payload protocol.
    pub fn protocol(&self) -> IpProto {
        self.data[9].into()
    }

    /// Header checksum field as stored.
    pub fn header_checksum(&self) -> u16 {
        u16::from_be_bytes([self.data[10], self.data[11]])
    }

    /// Source address.
    pub fn src(&self) -> Ipv4Addr {
        Ipv4Addr::new(self.data[12], self.data[13], self.data[14], self.data[15])
    }

    /// Destination address.
    pub fn dst(&self) -> Ipv4Addr {
        Ipv4Addr::new(self.data[16], self.data[17], self.data[18], self.data[19])
    }

    /// Options bytes (empty when IHL = 5).
    pub fn options(&self) -> &'a [u8] {
        &self.data[IPV4_MIN_HDR_LEN..self.hdr_len]
    }

    /// True if the stored header checksum is consistent.
    pub fn checksum_ok(&self) -> bool {
        checksum::verify(&self.data[..self.hdr_len])
    }
}

/// Mutable view of an IPv4 header.
#[derive(Debug)]
pub struct Ipv4HdrMut<'a> {
    data: &'a mut [u8],
    hdr_len: usize,
}

impl<'a> Ipv4HdrMut<'a> {
    /// Wraps `data`; see [`Ipv4Hdr::parse`].
    pub fn parse(data: &'a mut [u8]) -> Result<Self, PacketError> {
        let hdr_len = check_ipv4(data)?;
        Ok(Self { data, hdr_len })
    }

    /// Reborrows as an immutable view.
    pub fn as_ref(&self) -> Ipv4Hdr<'_> {
        Ipv4Hdr {
            data: self.data,
            hdr_len: self.hdr_len,
        }
    }

    /// Sets the total datagram length field.
    pub fn set_total_len(&mut self, len: u16) {
        self.data[2..4].copy_from_slice(&len.to_be_bytes());
    }

    /// Sets the identification field.
    pub fn set_identification(&mut self, id: u16) {
        self.data[4..6].copy_from_slice(&id.to_be_bytes());
    }

    /// Sets the TTL.
    pub fn set_ttl(&mut self, ttl: u8) {
        self.data[8] = ttl;
    }

    /// Decrements the TTL, saturating at zero; returns the new value.
    ///
    /// A router drops the packet when this reaches zero; see
    /// [`crate::operators::TtlDecrement`].
    pub fn decrement_ttl(&mut self) -> u8 {
        self.data[8] = self.data[8].saturating_sub(1);
        self.data[8]
    }

    /// Sets the payload protocol.
    pub fn set_protocol(&mut self, proto: IpProto) {
        self.data[9] = proto.into();
    }

    /// Sets the source address.
    pub fn set_src(&mut self, addr: Ipv4Addr) {
        self.data[12..16].copy_from_slice(&addr.octets());
    }

    /// Sets the destination address.
    pub fn set_dst(&mut self, addr: Ipv4Addr) {
        self.data[16..20].copy_from_slice(&addr.octets());
    }

    /// Recomputes and stores the header checksum.
    pub fn update_checksum(&mut self) {
        self.data[10] = 0;
        self.data[11] = 0;
        let sum = checksum::checksum(&self.data[..self.hdr_len]);
        self.data[10..12].copy_from_slice(&sum.to_be_bytes());
    }
}

/// Starts a TCP/UDP pseudo-header checksum for the given addresses,
/// protocol and L4 length.
pub fn pseudo_header_checksum(
    src: Ipv4Addr,
    dst: Ipv4Addr,
    proto: IpProto,
    l4_len: u16,
) -> Checksum {
    let mut c = Checksum::new();
    c.push(&src.octets());
    c.push(&dst.octets());
    c.push_word(u16::from(u8::from(proto)));
    c.push_word(l4_len);
    c
}

/// Writes a complete, checksummed IPv4 header (no options) into `data`.
///
/// Returns the header length written.
///
/// # Panics
///
/// Panics if `data` is shorter than [`IPV4_MIN_HDR_LEN`].
pub fn emit(
    data: &mut [u8],
    src: Ipv4Addr,
    dst: Ipv4Addr,
    proto: IpProto,
    total_len: u16,
    ttl: u8,
) -> usize {
    assert!(data.len() >= IPV4_MIN_HDR_LEN, "ipv4 emit needs 20 bytes");
    data[0] = 0x45; // version 4, IHL 5
    data[1] = 0;
    data[2..4].copy_from_slice(&total_len.to_be_bytes());
    data[4..6].copy_from_slice(&0u16.to_be_bytes());
    data[6] = 0x40; // DF
    data[7] = 0;
    data[8] = ttl;
    data[9] = proto.into();
    data[10] = 0;
    data[11] = 0;
    data[12..16].copy_from_slice(&src.octets());
    data[16..20].copy_from_slice(&dst.octets());
    let sum = checksum::checksum(&data[..IPV4_MIN_HDR_LEN]);
    data[10..12].copy_from_slice(&sum.to_be_bytes());
    IPV4_MIN_HDR_LEN
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut b = vec![0u8; 28];
        emit(
            &mut b,
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(192, 168, 1, 2),
            IpProto::Udp,
            28,
            64,
        );
        b
    }

    #[test]
    fn emit_then_parse() {
        let b = sample();
        let h = Ipv4Hdr::parse(&b).unwrap();
        assert_eq!(h.header_len(), 20);
        assert_eq!(h.total_len(), 28);
        assert_eq!(h.ttl(), 64);
        assert_eq!(h.protocol(), IpProto::Udp);
        assert_eq!(h.src(), Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(h.dst(), Ipv4Addr::new(192, 168, 1, 2));
        assert!(h.dont_fragment());
        assert!(!h.more_fragments());
        assert_eq!(h.fragment_offset(), 0);
        assert!(h.options().is_empty());
        assert!(h.checksum_ok());
    }

    #[test]
    fn bad_version_rejected() {
        let mut b = sample();
        b[0] = 0x65; // version 6
        match Ipv4Hdr::parse(&b) {
            Err(PacketError::BadField {
                field: "version",
                value: 6,
                ..
            }) => {}
            other => panic!("expected version error, got {other:?}"),
        }
    }

    #[test]
    fn bad_ihl_rejected() {
        let mut b = sample();
        b[0] = 0x44; // IHL 4 < 5
        assert!(matches!(
            Ipv4Hdr::parse(&b),
            Err(PacketError::BadField { field: "ihl", .. })
        ));
    }

    #[test]
    fn truncated_options_rejected() {
        let mut b = sample();
        b[0] = 0x4F; // IHL 15 -> 60-byte header, but only 28 bytes present
        assert!(matches!(
            Ipv4Hdr::parse(&b),
            Err(PacketError::Truncated {
                header: "ipv4-options",
                ..
            })
        ));
    }

    #[test]
    fn options_exposed() {
        let mut b = vec![0u8; 24];
        emit(
            &mut b,
            Ipv4Addr::UNSPECIFIED,
            Ipv4Addr::UNSPECIFIED,
            IpProto::Tcp,
            24,
            1,
        );
        b[0] = 0x46; // IHL 6 -> 4 bytes of options
        b[20..24].copy_from_slice(&[1, 2, 3, 4]);
        let h = Ipv4Hdr::parse(&b).unwrap();
        assert_eq!(h.options(), &[1, 2, 3, 4]);
        assert_eq!(h.header_len(), 24);
    }

    #[test]
    fn ttl_decrement_saturates() {
        let mut b = sample();
        let mut h = Ipv4HdrMut::parse(&mut b).unwrap();
        h.set_ttl(1);
        assert_eq!(h.decrement_ttl(), 0);
        assert_eq!(h.decrement_ttl(), 0);
    }

    #[test]
    fn mutation_breaks_then_update_fixes_checksum() {
        let mut b = sample();
        let mut h = Ipv4HdrMut::parse(&mut b).unwrap();
        h.set_dst(Ipv4Addr::new(1, 2, 3, 4));
        assert!(!h.as_ref().checksum_ok());
        h.update_checksum();
        assert!(h.as_ref().checksum_ok());
        assert_eq!(h.as_ref().dst(), Ipv4Addr::new(1, 2, 3, 4));
    }

    #[test]
    fn proto_conversions() {
        assert_eq!(IpProto::from(6), IpProto::Tcp);
        assert_eq!(IpProto::from(17), IpProto::Udp);
        assert_eq!(IpProto::from(1), IpProto::Icmp);
        assert_eq!(IpProto::from(89), IpProto::Other(89));
        assert_eq!(u8::from(IpProto::Tcp), 6);
        assert_eq!(u8::from(IpProto::Other(89)), 89);
    }

    #[test]
    fn pseudo_header_matches_manual() {
        let c = pseudo_header_checksum(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            IpProto::Udp,
            8,
        );
        let mut manual = Checksum::new();
        manual.push(&[10, 0, 0, 1, 10, 0, 0, 2, 0, 17, 0, 8]);
        assert_eq!(c.finish(), manual.finish());
    }
}
