//! UDP header (RFC 768).

use crate::checksum::Checksum;
use crate::headers::ipv4::{pseudo_header_checksum, IpProto};
use crate::packet::PacketError;
use std::net::Ipv4Addr;

/// UDP header length.
pub const UDP_HDR_LEN: usize = 8;

fn check_udp(data: &[u8]) -> Result<(), PacketError> {
    if data.len() < UDP_HDR_LEN {
        return Err(PacketError::Truncated {
            header: "udp",
            needed: UDP_HDR_LEN,
            have: data.len(),
        });
    }
    Ok(())
}

/// Immutable view of a UDP header.
#[derive(Debug, Clone, Copy)]
pub struct UdpHdr<'a> {
    data: &'a [u8],
}

impl<'a> UdpHdr<'a> {
    /// Wraps `data`, which must start at the UDP source-port byte.
    pub fn parse(data: &'a [u8]) -> Result<Self, PacketError> {
        check_udp(data)?;
        Ok(Self { data })
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        u16::from_be_bytes([self.data[0], self.data[1]])
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        u16::from_be_bytes([self.data[2], self.data[3]])
    }

    /// Length field (header + payload).
    pub fn len(&self) -> u16 {
        u16::from_be_bytes([self.data[4], self.data[5]])
    }

    /// True when the length field is smaller than the minimum legal value.
    pub fn is_empty(&self) -> bool {
        self.len() <= UDP_HDR_LEN as u16
    }

    /// Checksum field as stored (0 means "not computed" in IPv4).
    pub fn checksum(&self) -> u16 {
        u16::from_be_bytes([self.data[6], self.data[7]])
    }

    /// Verifies the checksum against the pseudo-header and payload.
    ///
    /// A stored checksum of zero means "unchecked" and passes per RFC 768.
    /// `data` passed at parse time must contain the full datagram for this
    /// to be meaningful.
    pub fn checksum_ok(&self, src: Ipv4Addr, dst: Ipv4Addr) -> bool {
        if self.checksum() == 0 {
            return true;
        }
        let len = self.len() as usize;
        if len < UDP_HDR_LEN || len > self.data.len() {
            return false;
        }
        let mut c = pseudo_header_checksum(src, dst, IpProto::Udp, self.len());
        c.push(&self.data[..len]);
        c.finish() == 0
    }
}

/// Mutable view of a UDP header.
#[derive(Debug)]
pub struct UdpHdrMut<'a> {
    data: &'a mut [u8],
}

impl<'a> UdpHdrMut<'a> {
    /// Wraps `data`; see [`UdpHdr::parse`].
    pub fn parse(data: &'a mut [u8]) -> Result<Self, PacketError> {
        check_udp(data)?;
        Ok(Self { data })
    }

    /// Reborrows as an immutable view.
    pub fn as_ref(&self) -> UdpHdr<'_> {
        UdpHdr { data: self.data }
    }

    /// Sets the source port.
    pub fn set_src_port(&mut self, port: u16) {
        self.data[0..2].copy_from_slice(&port.to_be_bytes());
    }

    /// Sets the destination port.
    pub fn set_dst_port(&mut self, port: u16) {
        self.data[2..4].copy_from_slice(&port.to_be_bytes());
    }

    /// Sets the length field.
    pub fn set_len(&mut self, len: u16) {
        self.data[4..6].copy_from_slice(&len.to_be_bytes());
    }

    /// Recomputes the checksum over pseudo-header + datagram.
    ///
    /// Stores `0xFFFF` when the sum comes out zero, as RFC 768 requires
    /// (zero is reserved for "no checksum").
    pub fn update_checksum(&mut self, src: Ipv4Addr, dst: Ipv4Addr) {
        self.data[6] = 0;
        self.data[7] = 0;
        let len = u16::from_be_bytes([self.data[4], self.data[5]]);
        let dgram_len = (len as usize).min(self.data.len());
        let mut c = pseudo_header_checksum(src, dst, IpProto::Udp, len);
        c.push(&self.data[..dgram_len]);
        let mut sum = c.finish();
        if sum == 0 {
            sum = 0xFFFF;
        }
        self.data[6..8].copy_from_slice(&sum.to_be_bytes());
    }
}

/// Writes a complete UDP header (ports + length, checksummed) into `data`,
/// which must contain the whole datagram (header + payload).
///
/// Returns [`UDP_HDR_LEN`].
///
/// # Panics
///
/// Panics if `data` is shorter than [`UDP_HDR_LEN`] or longer than
/// `u16::MAX`.
pub fn emit(data: &mut [u8], src: Ipv4Addr, dst: Ipv4Addr, src_port: u16, dst_port: u16) -> usize {
    assert!(data.len() >= UDP_HDR_LEN, "udp emit needs 8 bytes");
    assert!(data.len() <= u16::MAX as usize, "udp datagram too long");
    let len = data.len() as u16;
    let mut h = UdpHdrMut::parse(data).expect("length asserted above");
    h.set_src_port(src_port);
    h.set_dst_port(dst_port);
    h.set_len(len);
    h.update_checksum(src, dst);
    UDP_HDR_LEN
}

// Keep `Checksum` import used even if future edits drop `update_checksum`.
#[allow(unused)]
fn _keep(c: Checksum) -> u16 {
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const DST: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    fn sample() -> Vec<u8> {
        let mut b = vec![0u8; 12];
        b[8..].copy_from_slice(&[0xAA, 0xBB, 0xCC, 0xDD]);
        emit(&mut b, SRC, DST, 1234, 53);
        b
    }

    #[test]
    fn emit_then_parse() {
        let b = sample();
        let h = UdpHdr::parse(&b).unwrap();
        assert_eq!(h.src_port(), 1234);
        assert_eq!(h.dst_port(), 53);
        assert_eq!(h.len(), 12);
        assert!(!h.is_empty());
        assert!(h.checksum_ok(SRC, DST));
    }

    #[test]
    fn truncated_rejected() {
        assert!(matches!(
            UdpHdr::parse(&[0u8; 7]),
            Err(PacketError::Truncated { header: "udp", .. })
        ));
    }

    #[test]
    fn corrupt_payload_fails_checksum() {
        let mut b = sample();
        b[9] ^= 0xFF;
        let h = UdpHdr::parse(&b).unwrap();
        assert!(!h.checksum_ok(SRC, DST));
    }

    #[test]
    fn wrong_pseudo_header_fails_checksum() {
        let b = sample();
        let h = UdpHdr::parse(&b).unwrap();
        assert!(!h.checksum_ok(SRC, Ipv4Addr::new(10, 0, 0, 3)));
    }

    #[test]
    fn zero_checksum_passes() {
        let mut b = sample();
        b[6] = 0;
        b[7] = 0;
        let h = UdpHdr::parse(&b).unwrap();
        assert!(h.checksum_ok(SRC, DST));
    }

    #[test]
    fn bogus_length_field_fails_checksum() {
        let mut b = sample();
        b[4..6].copy_from_slice(&100u16.to_be_bytes()); // longer than buffer
        let h = UdpHdr::parse(&b).unwrap();
        assert!(!h.checksum_ok(SRC, DST));
    }

    #[test]
    fn mutators_roundtrip() {
        let mut b = sample();
        let mut h = UdpHdrMut::parse(&mut b).unwrap();
        h.set_src_port(9999);
        h.set_dst_port(80);
        h.update_checksum(SRC, DST);
        let r = h.as_ref();
        assert_eq!(r.src_port(), 9999);
        assert_eq!(r.dst_port(), 80);
        assert!(r.checksum_ok(SRC, DST));
    }

    #[test]
    fn header_only_datagram() {
        let mut b = vec![0u8; UDP_HDR_LEN];
        emit(&mut b, SRC, DST, 1, 2);
        let h = UdpHdr::parse(&b).unwrap();
        assert!(h.is_empty());
        assert!(h.checksum_ok(SRC, DST));
    }
}
