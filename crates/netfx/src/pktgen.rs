//! Synthetic traffic generation — the DPDK stand-in.
//!
//! The paper's testbed pulls packets from DPDK in user-defined batch
//! sizes. This module generates equivalent batches in memory: a fixed
//! population of flows (5-tuples), a flow-popularity distribution
//! (uniform or Zipf, matching how load-balancer evaluations model
//! traffic), and configurable payload sizes. Generation is seeded and
//! fully deterministic so experiments are reproducible run-to-run.

use crate::batch::PacketBatch;
use crate::flow::FiveTuple;
use crate::headers::ethernet::MacAddr;
use crate::headers::ipv4::IpProto;
use crate::headers::tcp::TcpFlags;
use crate::packet::Packet;
use crate::pool::PacketPool;
use bytes::BytesMut;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::net::Ipv4Addr;

/// How flow popularity is distributed across the flow population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FlowDistribution {
    /// Every flow equally likely.
    Uniform,
    /// Zipf with the given exponent (`s > 0`); `s ≈ 1` models typical
    /// heavy-tailed Internet traffic.
    Zipf(f64),
}

/// Traffic generator configuration.
#[derive(Debug, Clone)]
pub struct TrafficConfig {
    /// Number of distinct flows in the population.
    pub flows: usize,
    /// Flow-popularity distribution.
    pub distribution: FlowDistribution,
    /// Transport protocol for generated packets.
    pub proto: IpProto,
    /// UDP/TCP payload length in bytes.
    pub payload_len: usize,
    /// RNG seed; same seed ⇒ same packet stream.
    pub seed: u64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        Self {
            flows: 1024,
            distribution: FlowDistribution::Uniform,
            proto: IpProto::Udp,
            payload_len: 64,
            seed: 0xBEEF_CAFE,
        }
    }
}

/// A deterministic synthetic packet source.
#[derive(Debug)]
pub struct PacketGen {
    config: TrafficConfig,
    rng: StdRng,
    /// Pre-materialized flow endpoints, indexed by flow id.
    endpoints: Vec<(Ipv4Addr, Ipv4Addr, u16, u16)>,
    /// Cumulative probability table for Zipf sampling (empty for uniform).
    zipf_cdf: Vec<f64>,
    /// Flow ids this generator draws from. Equal to `0..flows` for a
    /// whole-mix generator; an RSS slice keeps only the flows whose
    /// stable hash lands on its lane.
    flow_ids: Vec<usize>,
    /// This generator's probability mass within the whole mix (1.0 for
    /// a whole-mix generator).
    share: f64,
    generated: u64,
}

impl PacketGen {
    /// Creates a generator for `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config.flows` is zero or a Zipf exponent is not
    /// positive and finite.
    pub fn new(config: TrafficConfig) -> Self {
        Self::rss_slice(config, 0, 1)
    }

    /// Creates a generator for one RSS slice of `config`'s flow mix.
    ///
    /// The flow population, endpoints, and per-flow popularity weights
    /// are materialized identically on every lane (same seed ⇒ same
    /// flows everywhere); the slice then keeps exactly the flows whose
    /// [`FiveTuple::stable_hash`] lands on `lane` modulo `lanes` — the
    /// same mapping the dispatcher's `shard_for` uses — and
    /// renormalizes the popularity distribution over the kept flows.
    /// The union of all `lanes` slices is the whole mix, each flow on
    /// exactly one lane; [`share`](Self::share) reports the slice's
    /// probability mass so callers can split a packet budget
    /// proportionally.
    ///
    /// `rss_slice(config, 0, 1)` is byte-identical to
    /// [`new`](Self::new). For `lanes > 1` each lane draws from its own
    /// seeded stream (derived from `config.seed` and `lane`), so runs
    /// stay deterministic per lane.
    ///
    /// # Panics
    ///
    /// Panics if `config.flows` is zero, `lane >= lanes`, or a Zipf
    /// exponent is not positive and finite. A slice that holds no flows
    /// (population smaller than the lane count) is valid with
    /// `share() == 0.0`; drawing from it panics.
    pub fn rss_slice(config: TrafficConfig, lane: usize, lanes: usize) -> Self {
        assert!(config.flows > 0, "flow population must be non-empty");
        assert!(lane < lanes, "lane {lane} out of range for {lanes} lanes");
        let (rng, endpoints) = Self::materialize_endpoints(&config);
        let proto = Self::wire_proto(&config);
        let flow_ids: Vec<usize> = (0..config.flows)
            .filter(|&i| {
                if lanes == 1 {
                    return true;
                }
                let tuple = Self::tuple_of(&endpoints, i, proto);
                (tuple.stable_hash() % lanes as u64) as usize == lane
            })
            .collect();
        let weights = Self::weights_for(&config);
        // For the whole mix the mass is exactly 1.0 by definition; pin
        // it so renormalization below is arithmetic-identical to the
        // pre-slice generator (byte-stable streams stay byte-stable).
        let share: f64 = if lanes == 1 {
            1.0
        } else {
            flow_ids.iter().map(|&i| weights[i]).sum()
        };
        let zipf_cdf = match config.distribution {
            FlowDistribution::Uniform => Vec::new(),
            FlowDistribution::Zipf(_) => {
                let mut cdf: Vec<f64> = Vec::with_capacity(flow_ids.len());
                let mut acc = 0.0;
                for &i in &flow_ids {
                    acc += weights[i] / share.max(f64::MIN_POSITIVE);
                    cdf.push(acc);
                }
                // Guard against floating-point shortfall at the end.
                if let Some(last) = cdf.last_mut() {
                    *last = 1.0;
                }
                cdf
            }
        };
        let rng = if lanes == 1 {
            // Whole-mix: keep drawing from the endpoint rng so the
            // stream is byte-identical to the pre-slice generator.
            rng
        } else {
            StdRng::seed_from_u64(
                config.seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(lane as u64 + 1),
            )
        };
        Self {
            config,
            rng,
            endpoints,
            zipf_cdf,
            flow_ids,
            share,
            generated: 0,
        }
    }

    /// Creates a generator restricted to the flows `keep` accepts — the
    /// targeted-traffic constructor (e.g. a flood aimed at exactly the
    /// flows a Maglev table steers to one backend).
    ///
    /// The flow population, endpoints, and popularity weights are
    /// materialized exactly as [`new`](Self::new) would (same seed ⇒
    /// same flows), then the kept subset is renormalized like an RSS
    /// slice. Draws come from an independent seeded stream derived from
    /// `config.seed` and `stream_salt`, so a subset generator never
    /// perturbs — and is never perturbed by — the whole-mix generator
    /// it was carved from.
    ///
    /// # Panics
    ///
    /// Panics if `config.flows` is zero or a Zipf exponent is invalid.
    /// A subset that keeps no flows is valid with `share() == 0.0`;
    /// drawing from it panics.
    pub fn subset(
        config: TrafficConfig,
        stream_salt: u64,
        keep: impl Fn(&FiveTuple) -> bool,
    ) -> Self {
        assert!(config.flows > 0, "flow population must be non-empty");
        let (_, endpoints) = Self::materialize_endpoints(&config);
        let proto = Self::wire_proto(&config);
        let flow_ids: Vec<usize> = (0..config.flows)
            .filter(|&i| keep(&Self::tuple_of(&endpoints, i, proto)))
            .collect();
        let weights = Self::weights_for(&config);
        let share: f64 = flow_ids.iter().map(|&i| weights[i]).sum();
        let zipf_cdf = match config.distribution {
            FlowDistribution::Uniform => Vec::new(),
            FlowDistribution::Zipf(_) => {
                let mut cdf: Vec<f64> = Vec::with_capacity(flow_ids.len());
                let mut acc = 0.0;
                for &i in &flow_ids {
                    acc += weights[i] / share.max(f64::MIN_POSITIVE);
                    cdf.push(acc);
                }
                if let Some(last) = cdf.last_mut() {
                    *last = 1.0;
                }
                cdf
            }
        };
        let rng = StdRng::seed_from_u64(
            config.seed ^ 0xD1B5_4A32_D192_ED03u64.wrapping_mul(stream_salt.wrapping_add(1)),
        );
        Self {
            config,
            rng,
            endpoints,
            zipf_cdf,
            flow_ids,
            share,
            generated: 0,
        }
    }

    /// Materializes the flow endpoints for `config` — identical for
    /// every constructor, so the same seed yields the same population
    /// no matter how the flows are then filtered. Returns the RNG in
    /// its post-materialization state (the whole-mix generator keeps
    /// drawing from it).
    fn materialize_endpoints(
        config: &TrafficConfig,
    ) -> (StdRng, Vec<(Ipv4Addr, Ipv4Addr, u16, u16)>) {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let endpoints = (0..config.flows)
            .map(|i| {
                let src = Ipv4Addr::from(0x0A00_0000 | (i as u32 & 0x00FF_FFFF));
                let dst = Ipv4Addr::new(192, 0, 2, 1); // the VIP, TEST-NET-1
                let sport = rng.gen_range(1024..=u16::MAX);
                let dport = 80;
                (src, dst, sport, dport)
            })
            .collect();
        (rng, endpoints)
    }

    /// The transport protocol packets are actually built with.
    fn wire_proto(config: &TrafficConfig) -> IpProto {
        match config.proto {
            IpProto::Tcp => IpProto::Tcp,
            _ => IpProto::Udp,
        }
    }

    /// The five-tuple of flow `i`.
    fn tuple_of(
        endpoints: &[(Ipv4Addr, Ipv4Addr, u16, u16)],
        i: usize,
        proto: IpProto,
    ) -> FiveTuple {
        let (src, dst, sport, dport) = endpoints[i];
        FiveTuple {
            src_ip: src,
            dst_ip: dst,
            src_port: sport,
            dst_port: dport,
            proto,
        }
    }

    /// Normalized popularity weights over the whole population.
    fn weights_for(config: &TrafficConfig) -> Vec<f64> {
        match config.distribution {
            FlowDistribution::Uniform => vec![1.0 / config.flows as f64; config.flows],
            FlowDistribution::Zipf(s) => {
                assert!(
                    s > 0.0 && s.is_finite(),
                    "Zipf exponent must be positive, got {s}"
                );
                let raw: Vec<f64> = (1..=config.flows)
                    .map(|rank| 1.0 / (rank as f64).powf(s))
                    .collect();
                let total: f64 = raw.iter().sum();
                raw.into_iter().map(|w| w / total).collect()
            }
        }
    }

    /// Draws the next flow id according to the configured distribution,
    /// restricted to this generator's slice.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice (`share() == 0.0`).
    pub fn next_flow_id(&mut self) -> usize {
        assert!(!self.flow_ids.is_empty(), "drawing from an empty RSS slice");
        match self.config.distribution {
            FlowDistribution::Uniform => {
                let k = self.rng.gen_range(0..self.flow_ids.len());
                self.flow_ids[k]
            }
            FlowDistribution::Zipf(_) => {
                let u: f64 = self.rng.gen();
                // First slice index whose CDF value reaches `u`.
                let k = self
                    .zipf_cdf
                    .partition_point(|&c| c < u)
                    .min(self.flow_ids.len() - 1);
                self.flow_ids[k]
            }
        }
    }

    /// This generator's probability mass within the whole configured
    /// mix: 1.0 for a whole-mix generator, the renormalization factor
    /// for an RSS slice.
    pub fn share(&self) -> f64 {
        self.share
    }

    /// Number of flows in this generator's slice.
    pub fn flows_in_slice(&self) -> usize {
        self.flow_ids.len()
    }

    /// Generates one packet.
    pub fn next_packet(&mut self) -> Packet {
        self.next_packet_into(BytesMut::new())
    }

    /// Generates one packet into a caller-provided buffer (e.g. one
    /// drawn from a [`PacketPool`]).
    ///
    /// The frame bytes are identical to [`next_packet`](Self::next_packet)
    /// for the same generator state; only the buffer's provenance differs.
    /// The generator knows the flow endpoints it just wrote, so it stamps
    /// the flow hash on the packet for free — the dispatcher never has to
    /// re-parse the headers it already trusts.
    pub fn next_packet_into(&mut self, buf: BytesMut) -> Packet {
        let flow = self.next_flow_id();
        let (src, dst, sport, dport) = self.endpoints[flow];
        self.generated += 1;
        let (mut packet, proto) = match self.config.proto {
            IpProto::Tcp => (
                Packet::build_tcp_into(
                    buf,
                    MacAddr([2, 0, 0, 0, 0, 1]),
                    MacAddr([2, 0, 0, 0, 0, 2]),
                    src,
                    dst,
                    sport,
                    dport,
                    TcpFlags(TcpFlags::ACK),
                    self.config.payload_len,
                ),
                IpProto::Tcp,
            ),
            _ => (
                Packet::build_udp_into(
                    buf,
                    MacAddr([2, 0, 0, 0, 0, 1]),
                    MacAddr([2, 0, 0, 0, 0, 2]),
                    src,
                    dst,
                    sport,
                    dport,
                    self.config.payload_len,
                ),
                IpProto::Udp,
            ),
        };
        let tuple = FiveTuple {
            src_ip: src,
            dst_ip: dst,
            src_port: sport,
            dst_port: dport,
            proto,
        };
        packet.set_cached_flow_hash(tuple.stable_hash());
        packet
    }

    /// Generates a batch of `n` packets.
    pub fn next_batch(&mut self, n: usize) -> PacketBatch {
        (0..n).map(|_| self.next_packet()).collect()
    }

    /// Generates a batch of `n` packets drawing every buffer — and the
    /// batch shell itself — from `pool`.
    ///
    /// With a prewarmed pool this is the allocation-free entry point to
    /// the data path: buffers cycle generator → pipeline → recycle
    /// channel → pool without the global allocator ever being consulted.
    pub fn next_batch_from_pool(&mut self, n: usize, pool: &mut PacketPool) -> PacketBatch {
        let mut batch = pool.take_shell(n);
        for _ in 0..n {
            let buf = pool.take();
            let packet = self.next_packet_into(buf);
            batch.push(packet);
        }
        batch
    }

    /// Total packets generated so far.
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// The generator's configuration.
    pub fn config(&self) -> &TrafficConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FiveTuple;
    use std::collections::HashMap;

    #[test]
    fn deterministic_given_seed() {
        let cfg = TrafficConfig::default();
        let mut a = PacketGen::new(cfg.clone());
        let mut b = PacketGen::new(cfg);
        for _ in 0..100 {
            assert_eq!(a.next_packet().as_slice(), b.next_packet().as_slice());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = PacketGen::new(TrafficConfig {
            seed: 1,
            ..Default::default()
        });
        let mut b = PacketGen::new(TrafficConfig {
            seed: 2,
            ..Default::default()
        });
        let same = (0..50)
            .filter(|_| a.next_packet().as_slice() == b.next_packet().as_slice())
            .count();
        assert!(same < 50, "independent seeds produced identical streams");
    }

    #[test]
    fn batch_size_and_wellformedness() {
        let mut g = PacketGen::new(TrafficConfig::default());
        let batch = g.next_batch(32);
        assert_eq!(batch.len(), 32);
        assert_eq!(g.generated(), 32);
        for p in batch.iter() {
            assert!(p.ipv4().unwrap().checksum_ok());
            assert!(FiveTuple::of(p).is_ok());
        }
    }

    #[test]
    fn stamped_hash_matches_recomputation() {
        for proto in [IpProto::Udp, IpProto::Tcp] {
            let mut g = PacketGen::new(TrafficConfig {
                proto,
                ..Default::default()
            });
            for _ in 0..50 {
                let p = g.next_packet();
                let stamped = p.cached_flow_hash().expect("pktgen stamps the hash");
                assert_eq!(stamped, crate::flow::packet_flow_hash(&p));
            }
        }
    }

    #[test]
    fn pooled_batch_is_byte_identical_to_fresh() {
        let cfg = TrafficConfig::default();
        let mut fresh = PacketGen::new(cfg.clone());
        let mut pooled = PacketGen::new(cfg);
        let mut pool = crate::pool::PacketPool::new(256, 64);
        pool.prewarm(32);

        let a = fresh.next_batch(32);
        let b = pooled.next_batch_from_pool(32, &mut pool);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.as_slice(), y.as_slice());
        }
        assert_eq!(pool.stats().hits, 32, "prewarmed pool serves every take");
        assert_eq!(pool.stats().misses, 0);

        // Recycle and regenerate: still identical, still no fresh slabs.
        let c = fresh.next_batch(32);
        pool.recycle_batch(b);
        let d = pooled.next_batch_from_pool(32, &mut pool);
        for (x, y) in c.iter().zip(d.iter()) {
            assert_eq!(x.as_slice(), y.as_slice());
        }
        assert_eq!(pool.stats().misses, 0);
    }

    #[test]
    fn uniform_covers_flows() {
        let mut g = PacketGen::new(TrafficConfig {
            flows: 16,
            ..Default::default()
        });
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2000 {
            seen.insert(g.next_flow_id());
        }
        assert_eq!(seen.len(), 16, "uniform draw should hit every flow");
    }

    #[test]
    fn zipf_is_skewed_and_ranked() {
        let mut g = PacketGen::new(TrafficConfig {
            flows: 100,
            distribution: FlowDistribution::Zipf(1.2),
            ..Default::default()
        });
        let mut counts: HashMap<usize, u64> = HashMap::new();
        for _ in 0..50_000 {
            *counts.entry(g.next_flow_id()).or_default() += 1;
        }
        let c0 = counts.get(&0).copied().unwrap_or(0);
        let c9 = counts.get(&9).copied().unwrap_or(0);
        assert!(c0 > 4 * c9, "rank 0 ({c0}) should dwarf rank 9 ({c9})");
        // All sampled ids must be within the population.
        assert!(counts.keys().all(|&id| id < 100));
    }

    #[test]
    fn zipf_cdf_extreme_u_in_range() {
        let mut g = PacketGen::new(TrafficConfig {
            flows: 3,
            distribution: FlowDistribution::Zipf(0.5),
            ..Default::default()
        });
        for _ in 0..1000 {
            assert!(g.next_flow_id() < 3);
        }
    }

    #[test]
    fn tcp_traffic_generates_tcp() {
        let mut g = PacketGen::new(TrafficConfig {
            proto: IpProto::Tcp,
            payload_len: 10,
            ..Default::default()
        });
        let p = g.next_packet();
        assert!(p.tcp().is_ok());
        assert_eq!(FiveTuple::of(&p).unwrap().proto, IpProto::Tcp);
    }

    #[test]
    fn rss_slices_partition_the_population() {
        let cfg = TrafficConfig {
            flows: 512,
            ..Default::default()
        };
        let lanes = 4;
        let slices: Vec<_> = (0..lanes)
            .map(|l| PacketGen::rss_slice(cfg.clone(), l, lanes))
            .collect();
        let total: usize = slices.iter().map(|s| s.flows_in_slice()).sum();
        assert_eq!(total, 512, "every flow on exactly one lane");
        let share_sum: f64 = slices.iter().map(|s| s.share()).sum();
        assert!(
            (share_sum - 1.0).abs() < 1e-9,
            "shares sum to 1, got {share_sum}"
        );
        // Uniform mix: shares proportional to slice sizes.
        for s in &slices {
            let expect = s.flows_in_slice() as f64 / 512.0;
            assert!((s.share() - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn rss_slice_draws_only_owned_flows() {
        let cfg = TrafficConfig {
            flows: 256,
            distribution: FlowDistribution::Zipf(1.2),
            ..Default::default()
        };
        let lanes = 3;
        for lane in 0..lanes {
            let mut g = PacketGen::rss_slice(cfg.clone(), lane, lanes);
            if g.flows_in_slice() == 0 {
                continue;
            }
            for _ in 0..500 {
                let p = g.next_packet();
                let tuple = FiveTuple::of(&p).unwrap();
                assert_eq!(
                    (tuple.stable_hash() % lanes as u64) as usize,
                    lane,
                    "slice generated a flow belonging to another lane"
                );
            }
        }
    }

    #[test]
    fn rss_slice_of_one_is_byte_identical_to_new() {
        for dist in [FlowDistribution::Uniform, FlowDistribution::Zipf(1.2)] {
            let cfg = TrafficConfig {
                flows: 128,
                distribution: dist,
                ..Default::default()
            };
            let mut a = PacketGen::new(cfg.clone());
            let mut b = PacketGen::rss_slice(cfg, 0, 1);
            for _ in 0..200 {
                assert_eq!(a.next_packet().as_slice(), b.next_packet().as_slice());
            }
        }
    }

    #[test]
    fn rss_slice_zipf_stays_skewed_within_slice() {
        let cfg = TrafficConfig {
            flows: 1000,
            distribution: FlowDistribution::Zipf(1.2),
            ..Default::default()
        };
        let mut g = PacketGen::rss_slice(cfg, 0, 2);
        let first = g.flows_in_slice();
        assert!(first > 0);
        let mut counts: HashMap<usize, u64> = HashMap::new();
        for _ in 0..20_000 {
            *counts.entry(g.next_flow_id()).or_default() += 1;
        }
        // The slice's most popular kept flow should dominate its median
        // kept flow: renormalization preserves the skew.
        let max = counts.values().max().copied().unwrap_or(0);
        let avg = 20_000 / first.max(1) as u64;
        assert!(max > 3 * avg, "slice lost its skew: max {max}, avg {avg}");
    }

    #[test]
    fn subset_draws_only_kept_flows() {
        let cfg = TrafficConfig {
            flows: 256,
            ..Default::default()
        };
        let mut g = PacketGen::subset(cfg, 7, |t| t.stable_hash() % 3 == 0);
        assert!(g.flows_in_slice() > 0);
        for _ in 0..300 {
            let p = g.next_packet();
            let tuple = FiveTuple::of(&p).unwrap();
            assert_eq!(tuple.stable_hash() % 3, 0, "subset leaked a filtered flow");
        }
    }

    #[test]
    fn subset_population_matches_whole_mix() {
        // The subset must see the same endpoints the whole-mix generator
        // builds: a keep-everything subset covers exactly the same flows.
        let cfg = TrafficConfig {
            flows: 64,
            ..Default::default()
        };
        let mut whole = PacketGen::new(cfg.clone());
        let mut all = PacketGen::subset(cfg, 0, |_| true);
        assert_eq!(all.flows_in_slice(), 64);
        assert!((all.share() - 1.0).abs() < 1e-9);
        let mut whole_tuples = std::collections::HashSet::new();
        let mut subset_tuples = std::collections::HashSet::new();
        for _ in 0..2000 {
            whole_tuples.insert(FiveTuple::of(&whole.next_packet()).unwrap());
            subset_tuples.insert(FiveTuple::of(&all.next_packet()).unwrap());
        }
        assert_eq!(whole_tuples, subset_tuples);
    }

    #[test]
    fn subset_is_deterministic_per_salt() {
        let cfg = TrafficConfig {
            flows: 128,
            distribution: FlowDistribution::Zipf(1.2),
            ..Default::default()
        };
        let mut a = PacketGen::subset(cfg.clone(), 3, |t| t.src_port % 2 == 0);
        let mut b = PacketGen::subset(cfg.clone(), 3, |t| t.src_port % 2 == 0);
        let mut c = PacketGen::subset(cfg, 4, |t| t.src_port % 2 == 0);
        let mut diverged = false;
        for _ in 0..100 {
            let pa = a.next_packet();
            assert_eq!(pa.as_slice(), b.next_packet().as_slice());
            if pa.as_slice() != c.next_packet().as_slice() {
                diverged = true;
            }
        }
        assert!(diverged, "distinct salts must draw independent streams");
    }

    #[test]
    #[should_panic(expected = "empty RSS slice")]
    fn empty_slice_draw_panics() {
        // 1 flow over many lanes: most slices are empty.
        let cfg = TrafficConfig {
            flows: 1,
            ..Default::default()
        };
        let mut empty = None;
        for lane in 0..8 {
            let g = PacketGen::rss_slice(cfg.clone(), lane, 8);
            if g.flows_in_slice() == 0 {
                empty = Some(g);
                break;
            }
        }
        let mut g = empty.expect("seven of eight slices must be empty");
        assert_eq!(g.share(), 0.0);
        g.next_flow_id();
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_flows_rejected() {
        PacketGen::new(TrafficConfig {
            flows: 0,
            ..Default::default()
        });
    }

    #[test]
    #[should_panic(expected = "Zipf exponent")]
    fn bad_zipf_rejected() {
        PacketGen::new(TrafficConfig {
            distribution: FlowDistribution::Zipf(0.0),
            ..Default::default()
        });
    }
}
