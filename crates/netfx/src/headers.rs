//! Typed, bounds-checked views of packet headers.
//!
//! Each header type is a thin view over a byte slice: zero-copy, with all
//! multi-byte fields converted to/from network byte order at the accessor.
//! Views are constructed through [`crate::packet::Packet`], which computes
//! offsets; they can also be built directly from slices for unit testing.
//!
//! Only the protocols the paper's workloads need are implemented:
//! Ethernet II, IPv4 (with options), TCP and UDP.

pub mod ethernet;
pub mod icmp;
pub mod ipv4;
pub mod tcp;
pub mod udp;

pub use ethernet::{EtherType, EthernetHdr, EthernetHdrMut, MacAddr, ETHERNET_HDR_LEN};
pub use icmp::{IcmpHdr, IcmpHdrMut, IcmpType, ICMP_ECHO_HDR_LEN};
pub use ipv4::{IpProto, Ipv4Hdr, Ipv4HdrMut, IPV4_MIN_HDR_LEN};
pub use tcp::{TcpHdr, TcpHdrMut, TCP_MIN_HDR_LEN};
pub use udp::{UdpHdr, UdpHdrMut, UDP_HDR_LEN};
