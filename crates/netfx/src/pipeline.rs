//! The operator abstraction and pipeline composition.
//!
//! A pipeline is an ordered sequence of [`Operator`]s. A batch enters at
//! stage 0 and is processed *to completion* — each stage consumes the
//! batch by value and returns (usually the same) batch, exactly the
//! NetBricks execution model Figure 2 measures. Passing by value is what
//! lets the SFI layer later replace these calls with remote invocations
//! without copying a single packet.

use std::sync::Arc;

use rbs_checkpoint::{
    checkpoint_scope, restore_scope, Checkpoint, CheckpointCtx, DedupMode, RestoreCtx, Snapshot,
    SnapshotError,
};

use crate::batch::PacketBatch;

/// A pipeline stage: consumes a batch, returns the batch to forward.
///
/// Implementations may drop packets (returning a smaller batch), rewrite
/// headers in place, or synthesize new packets. The batch is taken by
/// value: after calling `process`, the caller provably holds no reference
/// to any packet in it.
///
/// # Stateful operators
///
/// Operators whose correctness depends on accumulated state (a firewall
/// rule trie, a flow table) additionally implement the three state
/// hooks, making their state *extractable* as
/// [`Checkpointable`](rbs_checkpoint::Checkpointable) values and
/// *injectable* into a freshly built replica. The default
/// implementations declare the operator stateless: it exports nothing,
/// rejects injected state, and counts zero items. A supervisor uses the
/// hooks to snapshot a live pipeline periodically and re-instantiate it
/// *with* state after a crash (warm recovery).
pub trait Operator {
    /// Processes one batch to completion.
    fn process(&mut self, batch: PacketBatch) -> PacketBatch;

    /// A short human-readable stage name for diagnostics.
    fn name(&self) -> &str {
        "operator"
    }

    /// Snapshots this stage's live state into the pipeline-wide
    /// checkpoint traversal, or `None` for stateless stages. Aliased
    /// nodes (`CkRc`/`CkArc`) deduplicate through `ctx` exactly as in a
    /// standalone checkpoint.
    fn checkpoint_state(&self, _ctx: &mut CheckpointCtx) -> Option<Snapshot> {
        None
    }

    /// Re-injects state captured by [`Operator::checkpoint_state`] into
    /// this (freshly built) stage. Stateless stages reject injection:
    /// receiving state they never exported means the snapshot belongs
    /// to a different pipeline shape.
    fn restore_state(
        &mut self,
        _snap: &Snapshot,
        _ctx: &mut RestoreCtx<'_>,
    ) -> Result<(), SnapshotError> {
        Err(SnapshotError::TypeMismatch {
            expected: "stateless stage",
            found: "stage state",
        })
    }

    /// Number of state items (rules, flows, table entries) this stage
    /// currently holds — the unit of state-loss accounting after a
    /// crash. Stateless stages report zero.
    fn state_items(&self) -> u64 {
        0
    }
}

// Closures are operators too; handy in tests and examples.
impl<F: FnMut(PacketBatch) -> PacketBatch> Operator for F {
    fn process(&mut self, batch: PacketBatch) -> PacketBatch {
        self(batch)
    }

    fn name(&self) -> &str {
        "closure"
    }
}

/// Per-stage traffic counters, index-aligned with
/// [`Pipeline::stage_names`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageStats {
    /// Packets that entered this stage.
    pub packets_in: u64,
    /// Packets this stage forwarded.
    pub packets_out: u64,
    /// Packets this stage removed (`in - out` on shrinking batches; a
    /// stage that synthesizes packets records zero drops).
    pub drops: u64,
}

/// An ordered chain of boxed operators.
#[derive(Default)]
pub struct Pipeline {
    stages: Vec<Box<dyn Operator + Send>>,
    stage_stats: Vec<StageStats>,
    batches_processed: u64,
    packets_in: u64,
    packets_out: u64,
}

impl Pipeline {
    /// Creates an empty pipeline (the identity function on batches).
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a stage; builder style.
    #[expect(
        clippy::should_implement_trait,
        reason = "builder-style add, not arithmetic"
    )]
    pub fn add(mut self, op: impl Operator + Send + 'static) -> Self {
        self.add_boxed(Box::new(op));
        self
    }

    /// Appends a boxed stage.
    pub fn add_boxed(&mut self, op: Box<dyn Operator + Send>) {
        self.stages.push(op);
        self.stage_stats.push(StageStats::default());
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// True when the pipeline has no stages.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Stage names, in order.
    pub fn stage_names(&self) -> Vec<&str> {
        self.stages.iter().map(|s| s.name()).collect()
    }

    /// Runs one batch through every stage, batch-to-completion.
    pub fn run_batch(&mut self, batch: PacketBatch) -> PacketBatch {
        self.batches_processed += 1;
        self.packets_in += batch.len() as u64;
        let mut batch = batch;
        for (stage, stats) in self.stages.iter_mut().zip(&mut self.stage_stats) {
            let entering = batch.len() as u64;
            batch = stage.process(batch);
            let leaving = batch.len() as u64;
            stats.packets_in += entering;
            stats.packets_out += leaving;
            stats.drops += entering.saturating_sub(leaving);
        }
        self.packets_out += batch.len() as u64;
        batch
    }

    /// Per-stage counters, index-aligned with [`Pipeline::stage_names`].
    pub fn stage_stats(&self) -> &[StageStats] {
        &self.stage_stats
    }

    /// Exports the live state of every stateful stage as one checkpoint:
    /// the root is a `Seq` with one `Opt` per stage (`None` for
    /// stateless stages), and all stages share a single shared-node
    /// table so cross-stage aliasing deduplicates.
    pub fn export_state(&self) -> Checkpoint {
        checkpoint_scope(DedupMode::EpochFlag, |ctx| {
            Snapshot::Seq(
                self.stages
                    .iter()
                    .map(|stage| Snapshot::Opt(stage.checkpoint_state(ctx).map(Box::new)))
                    .collect(),
            )
        })
    }

    /// Re-injects state exported by [`Pipeline::export_state`] into this
    /// pipeline's stages, positionally. Fails when the checkpoint's
    /// stage count or per-stage statefulness does not match — a snapshot
    /// from a different pipeline shape must never be half-applied.
    pub fn import_state(&mut self, cp: &Checkpoint) -> Result<(), SnapshotError> {
        let n_stages = self.stages.len();
        restore_scope(cp, |root, ctx| {
            let Snapshot::Seq(items) = root else {
                return Err(SnapshotError::TypeMismatch {
                    expected: "pipeline state seq",
                    found: root.kind_name(),
                });
            };
            if items.len() != n_stages {
                return Err(SnapshotError::WrongLength {
                    expected: n_stages,
                    got: items.len(),
                });
            }
            for (stage, snap) in self.stages.iter_mut().zip(items) {
                match snap {
                    Snapshot::Opt(None) => {}
                    Snapshot::Opt(Some(inner)) => stage.restore_state(inner, ctx)?,
                    other => {
                        return Err(SnapshotError::TypeMismatch {
                            expected: "per-stage opt",
                            found: other.kind_name(),
                        })
                    }
                }
            }
            Ok(())
        })
    }

    /// Total state items across all stages (see
    /// [`Operator::state_items`]).
    pub fn state_items(&self) -> u64 {
        self.stages.iter().map(|s| s.state_items()).sum()
    }

    /// Batches processed since construction.
    pub fn batches_processed(&self) -> u64 {
        self.batches_processed
    }

    /// Packets that entered stage 0.
    pub fn packets_in(&self) -> u64 {
        self.packets_in
    }

    /// Packets that left the last stage.
    pub fn packets_out(&self) -> u64 {
        self.packets_out
    }
}

impl std::fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pipeline")
            .field("stages", &self.stage_names())
            .field("batches_processed", &self.batches_processed)
            .finish()
    }
}

/// A cloneable, thread-shippable *recipe* for a [`Pipeline`].
///
/// A built [`Pipeline`] is not `Clone`, so one instance cannot be handed
/// to N workers. A spec stores operator *factories* instead; every
/// [`PipelineSpec::build`] call instantiates a fresh, fully independent
/// pipeline. This is exactly what a supervisor needs to respawn a worker
/// after a fault: rebuild from the spec and the replacement starts from
/// clean per-operator state. Stages are `Send` (but not `Sync`), so a
/// built pipeline may *migrate* between threads — the tenant-lane
/// runtime's work stealing moves a tenant's chain execution to whichever
/// lane claims it, one thread at a time.
#[derive(Clone, Default)]
pub struct PipelineSpec {
    factories: Vec<Arc<dyn Fn() -> Box<dyn Operator + Send> + Send + Sync>>,
    /// Layout generation of the state this spec's pipelines export —
    /// stamped into every sealed snapshot so restore paths can tell a
    /// compatible checkpoint from one that needs migration.
    state_schema: u32,
}

impl PipelineSpec {
    /// Creates an empty spec (builds identity pipelines).
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a stage factory; builder style.
    pub fn stage<O, F>(mut self, factory: F) -> Self
    where
        O: Operator + Send + 'static,
        F: Fn() -> O + Send + Sync + 'static,
    {
        self.factories.push(Arc::new(move || Box::new(factory())));
        self
    }

    /// Declares the state-schema version of this spec's pipelines;
    /// builder style. Specs default to schema 0. Bump the schema
    /// whenever an upgrade changes the *layout* of exported state (stage
    /// list, per-stage statefulness, or an operator's snapshot shape) —
    /// restoring a snapshot across differing schemas requires a
    /// [`StateMigrator`](rbs_checkpoint::StateMigrator).
    #[must_use]
    pub fn with_state_schema(mut self, schema: u32) -> Self {
        self.state_schema = schema;
        self
    }

    /// The state-schema version stamped into this spec's snapshots.
    pub fn state_schema(&self) -> u32 {
        self.state_schema
    }

    /// Number of stages a built pipeline will have.
    pub fn len(&self) -> usize {
        self.factories.len()
    }

    /// True when the spec has no stages.
    pub fn is_empty(&self) -> bool {
        self.factories.is_empty()
    }

    /// Instantiates a fresh pipeline from the recipe.
    pub fn build(&self) -> Pipeline {
        let mut p = Pipeline::new();
        for factory in &self.factories {
            p.add_boxed(factory());
        }
        p
    }

    /// Instantiates a fresh pipeline and injects previously exported
    /// state into it (warm recovery). All-or-nothing: on any mismatch
    /// the error propagates and no partially restored pipeline is
    /// returned — the caller falls back to [`PipelineSpec::build`].
    pub fn build_with_state(&self, cp: &Checkpoint) -> Result<Pipeline, SnapshotError> {
        let mut p = self.build();
        p.import_state(cp)?;
        Ok(p)
    }
}

impl std::fmt::Debug for PipelineSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelineSpec")
            .field("stages", &self.factories.len())
            .field("state_schema", &self.state_schema)
            .finish()
    }
}

/// A declarative [`StateMigrator`](rbs_checkpoint::StateMigrator) over
/// pipeline-shaped checkpoints: for each stage of the *new* pipeline,
/// name the old stage whose state it inherits — or none, to start that
/// stage fresh from its factory.
///
/// [`Pipeline::export_state`] roots every checkpoint at a `Seq` with one
/// `Opt` per stage, and [`Pipeline::import_state`] treats `Opt(None)` as
/// "leave the freshly built stage untouched". That makes the common
/// upgrade migrations pure index plumbing:
///
/// - **rule push**: map the firewall stage to *fresh* (its new rules
///   come from the new spec's factory) and carry every other stage, so
///   flow state survives a rule change without a cold start;
/// - **chain reshape**: map each surviving stage to its old position and
///   let inserted stages start fresh.
///
/// The shared-node table is carried verbatim: dropped subtrees may leave
/// unreferenced shared entries behind, which restore ignores.
pub struct StageStateMap {
    from: u32,
    to: u32,
    sources: Vec<Option<usize>>,
}

impl StageStateMap {
    /// A migrator from schema `from` to schema `to`, where new stage `i`
    /// inherits old stage `sources[i]`'s state (`None` = start fresh).
    pub fn new(from: u32, to: u32, sources: Vec<Option<usize>>) -> Self {
        Self { from, to, sources }
    }
}

impl rbs_checkpoint::StateMigrator for StageStateMap {
    fn can_migrate(&self, from: u32, to: u32) -> bool {
        from == self.from && to == self.to
    }

    fn migrate(
        &self,
        cp: &Checkpoint,
        from: u32,
        to: u32,
    ) -> Result<Checkpoint, rbs_checkpoint::MigrateError> {
        let err = |reason| rbs_checkpoint::MigrateError { from, to, reason };
        if !self.can_migrate(from, to) {
            return Err(err("unsupported-schema-pair"));
        }
        let Snapshot::Seq(old_stages) = &cp.root else {
            return Err(err("root-not-stage-seq"));
        };
        let new_stages = self
            .sources
            .iter()
            .map(|source| match source {
                None => Ok(Snapshot::Opt(None)),
                Some(i) => old_stages
                    .get(*i)
                    .cloned()
                    .ok_or(err("source-out-of-range")),
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Checkpoint {
            root: Snapshot::Seq(new_stages),
            shared: cp.shared.clone(),
            stats: cp.stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::headers::ethernet::MacAddr;
    use crate::operators::NullFilter;
    use crate::packet::Packet;
    use std::net::Ipv4Addr;

    fn batch(n: usize) -> PacketBatch {
        (0..n)
            .map(|i| {
                Packet::build_udp(
                    MacAddr::ZERO,
                    MacAddr::ZERO,
                    Ipv4Addr::new(10, 0, 0, 1),
                    Ipv4Addr::new(10, 0, 0, 2),
                    1000 + i as u16,
                    80,
                    0,
                )
            })
            .collect()
    }

    #[test]
    fn empty_pipeline_is_identity() {
        let mut p = Pipeline::new();
        assert!(p.is_empty());
        let out = p.run_batch(batch(3));
        assert_eq!(out.len(), 3);
        assert_eq!(p.packets_in(), 3);
        assert_eq!(p.packets_out(), 3);
    }

    #[test]
    fn stages_run_in_order() {
        let mut p = Pipeline::new()
            .add(|mut b: PacketBatch| {
                for pk in b.iter_mut() {
                    pk.ipv4_mut().unwrap().set_ttl(10);
                }
                b
            })
            .add(|mut b: PacketBatch| {
                for pk in b.iter_mut() {
                    let cur = pk.ipv4().unwrap().ttl();
                    pk.ipv4_mut().unwrap().set_ttl(cur + 1);
                }
                b
            });
        let out = p.run_batch(batch(2));
        assert!(out.iter().all(|pk| pk.ipv4().unwrap().ttl() == 11));
    }

    #[test]
    fn dropping_stage_shrinks_output_count() {
        let mut p = Pipeline::new().add(|mut b: PacketBatch| {
            b.retain(|pk| pk.udp().unwrap().src_port() % 2 == 0);
            b
        });
        let out = p.run_batch(batch(10));
        assert_eq!(out.len(), 5);
        assert_eq!(p.packets_in(), 10);
        assert_eq!(p.packets_out(), 5);
    }

    #[test]
    fn null_filter_chain_preserves_batch() {
        let mut p = Pipeline::new();
        for _ in 0..5 {
            p.add_boxed(Box::new(NullFilter::new()));
        }
        assert_eq!(p.len(), 5);
        let out = p.run_batch(batch(7));
        assert_eq!(out.len(), 7);
        assert_eq!(p.batches_processed(), 1);
    }

    #[test]
    fn stage_names_reported() {
        let p = Pipeline::new().add(NullFilter::new());
        assert_eq!(p.stage_names(), vec!["null-filter"]);
    }

    #[test]
    fn per_stage_counters_attribute_drops() {
        let mut p = Pipeline::new()
            .add(NullFilter::new())
            .add(|mut b: PacketBatch| {
                b.retain(|pk| pk.udp().unwrap().src_port() % 2 == 0);
                b
            })
            .add(NullFilter::new());
        p.run_batch(batch(10));
        let stats = p.stage_stats();
        assert_eq!(stats.len(), 3);
        assert_eq!(
            stats[0],
            StageStats {
                packets_in: 10,
                packets_out: 10,
                drops: 0
            }
        );
        assert_eq!(
            stats[1],
            StageStats {
                packets_in: 10,
                packets_out: 5,
                drops: 5
            }
        );
        assert_eq!(
            stats[2],
            StageStats {
                packets_in: 5,
                packets_out: 5,
                drops: 0
            }
        );
    }

    #[test]
    fn spec_builds_independent_pipelines() {
        let spec = PipelineSpec::new()
            .stage(NullFilter::new)
            .stage(crate::operators::Counter::new);
        assert_eq!(spec.len(), 2);

        let mut a = spec.build();
        let mut b = spec.build();
        a.run_batch(batch(4));
        a.run_batch(batch(4));
        b.run_batch(batch(1));

        // Counters are per-instance: running `a` twice must not leak
        // into `b`.
        assert_eq!(a.packets_in(), 8);
        assert_eq!(b.packets_in(), 1);
        assert_eq!(a.stage_names(), b.stage_names());
    }

    /// A minimal stateful operator: counts packets seen, and that count
    /// is part of its checkpointable state.
    struct SeenCounter {
        seen: u64,
    }

    impl Operator for SeenCounter {
        fn process(&mut self, batch: PacketBatch) -> PacketBatch {
            self.seen += batch.len() as u64;
            batch
        }

        fn name(&self) -> &str {
            "seen-counter"
        }

        fn checkpoint_state(&self, _ctx: &mut CheckpointCtx) -> Option<Snapshot> {
            Some(Snapshot::UInt(self.seen))
        }

        fn restore_state(
            &mut self,
            snap: &Snapshot,
            _ctx: &mut RestoreCtx<'_>,
        ) -> Result<(), SnapshotError> {
            match snap {
                Snapshot::UInt(n) => {
                    self.seen = *n;
                    Ok(())
                }
                other => Err(SnapshotError::TypeMismatch {
                    expected: "uint",
                    found: other.kind_name(),
                }),
            }
        }

        fn state_items(&self) -> u64 {
            1
        }
    }

    #[test]
    fn state_round_trips_through_spec_rebuild() {
        let spec = PipelineSpec::new()
            .stage(NullFilter::new)
            .stage(|| SeenCounter { seen: 0 });
        let mut live = spec.build();
        live.run_batch(batch(9));
        assert_eq!(live.state_items(), 1);

        let cp = live.export_state();
        let replica = spec.build_with_state(&cp).unwrap();

        // The replica's stateful stage resumes from the live count; the
        // stateless stage contributed `None` and stayed untouched.
        let snap = replica.export_state();
        assert_eq!(snap.root, cp.root);
        assert_eq!(
            cp.root,
            Snapshot::Seq(vec![
                Snapshot::Opt(None),
                Snapshot::Opt(Some(Box::new(Snapshot::UInt(9)))),
            ])
        );
    }

    #[test]
    fn import_rejects_mismatched_shapes() {
        let stateful = PipelineSpec::new().stage(|| SeenCounter { seen: 0 });
        let stateless = PipelineSpec::new().stage(NullFilter::new);
        let two_stage = PipelineSpec::new()
            .stage(NullFilter::new)
            .stage(NullFilter::new);

        let cp = stateful.build().export_state();

        // Wrong stage count: positional injection cannot line up.
        assert_eq!(
            two_stage.build_with_state(&cp).unwrap_err(),
            SnapshotError::WrongLength {
                expected: 2,
                got: 1
            }
        );
        // Right count, but the stage never exported state: stateless
        // stages reject injection rather than silently discarding it.
        assert!(matches!(
            stateless.build_with_state(&cp).unwrap_err(),
            SnapshotError::TypeMismatch { .. }
        ));
    }

    #[test]
    fn stage_state_map_reshapes_and_refreshes() {
        use rbs_checkpoint::StateMigrator;
        // Old chain: [stateless, counter]; the counter has seen 9.
        let old = PipelineSpec::new()
            .stage(NullFilter::new)
            .stage(|| SeenCounter { seen: 0 })
            .with_state_schema(1);
        let mut live = old.build();
        live.run_batch(batch(9));
        let cp = live.export_state();

        // New chain: [stateless, counter, counter] — the old counter's
        // state moves to position 1, the inserted stage starts fresh.
        let new = PipelineSpec::new()
            .stage(NullFilter::new)
            .stage(|| SeenCounter { seen: 0 })
            .stage(|| SeenCounter { seen: 0 })
            .with_state_schema(2);
        assert_eq!(new.state_schema(), 2);
        let map = StageStateMap::new(1, 2, vec![None, Some(1), None]);
        assert!(map.can_migrate(1, 2));
        assert!(!map.can_migrate(2, 1));
        let migrated = map.migrate(&cp, 1, 2).unwrap();
        let replica = new.build_with_state(&migrated).unwrap();
        assert_eq!(
            replica.export_state().root,
            Snapshot::Seq(vec![
                Snapshot::Opt(None),
                Snapshot::Opt(Some(Box::new(Snapshot::UInt(9)))),
                Snapshot::Opt(Some(Box::new(Snapshot::UInt(0)))),
            ])
        );

        // A source index past the old chain is a typed error, not a
        // panic or a half-built checkpoint.
        let broken = StageStateMap::new(1, 2, vec![Some(5)]);
        assert_eq!(
            broken.migrate(&cp, 1, 2).unwrap_err().reason,
            "source-out-of-range"
        );
    }

    #[test]
    fn spec_is_cloneable_and_shippable() {
        fn assert_send_sync<T: Send + Sync + Clone>() {}
        assert_send_sync::<PipelineSpec>();

        let spec = PipelineSpec::new().stage(NullFilter::new);
        let clone = spec.clone();
        let handle = std::thread::spawn(move || clone.build().len());
        assert_eq!(handle.join().unwrap(), 1);
    }
}
