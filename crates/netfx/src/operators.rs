//! Stock network functions.
//!
//! [`NullFilter`] is the stage Figure 2's pipeline is built from: it
//! forwards batches untouched, so any cycles measured around it are pure
//! framework (or isolation) overhead. The rest are small, realistic
//! stages used by the examples and integration tests: TTL decrement,
//! port/protocol filters, a counter, a MAC bouncer, and a panic injector
//! used by the fault-recovery experiment (E3).

use crate::batch::PacketBatch;
use crate::headers::ipv4::IpProto;
use crate::pipeline::Operator;

/// Forwards every batch without touching it.
///
/// "We measure the cost of isolation by constructing a pipeline of
/// null-filters, which forward batches of packets without doing any work
/// on them." (§3)
#[derive(Debug, Default, Clone, Copy)]
pub struct NullFilter {
    _private: (),
}

impl NullFilter {
    /// Creates a null filter.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Operator for NullFilter {
    #[inline]
    fn process(&mut self, batch: PacketBatch) -> PacketBatch {
        batch
    }

    fn name(&self) -> &str {
        "null-filter"
    }
}

/// Counts batches, packets and bytes flowing through.
#[derive(Debug, Default)]
pub struct Counter {
    batches: u64,
    packets: u64,
    bytes: u64,
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Batches seen.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Packets seen.
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Bytes seen.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl Operator for Counter {
    fn process(&mut self, batch: PacketBatch) -> PacketBatch {
        self.batches += 1;
        self.packets += batch.len() as u64;
        self.bytes += batch.total_bytes() as u64;
        batch
    }

    fn name(&self) -> &str {
        "counter"
    }
}

/// Decrements the IPv4 TTL of every packet, dropping expired ones, and
/// fixes the header checksum — the core of any router hop.
#[derive(Debug, Default, Clone, Copy)]
pub struct TtlDecrement {
    _private: (),
}

impl TtlDecrement {
    /// Creates a TTL-decrement stage.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Operator for TtlDecrement {
    fn process(&mut self, mut batch: PacketBatch) -> PacketBatch {
        batch.retain(|p| p.ipv4().map(|ip| ip.ttl() > 1).unwrap_or(false));
        for p in batch.iter_mut() {
            let mut ip = p.ipv4_mut().expect("non-IPv4 packets dropped above");
            ip.decrement_ttl();
            ip.update_checksum();
        }
        batch
    }

    fn name(&self) -> &str {
        "ttl-decrement"
    }
}

/// Drops packets whose transport protocol differs from the configured one.
#[derive(Debug, Clone, Copy)]
pub struct ProtoFilter {
    proto: IpProto,
}

impl ProtoFilter {
    /// Keeps only packets with IP protocol `proto`.
    pub fn new(proto: IpProto) -> Self {
        Self { proto }
    }
}

impl Operator for ProtoFilter {
    fn process(&mut self, mut batch: PacketBatch) -> PacketBatch {
        let want = self.proto;
        batch.retain(|p| p.ipv4().map(|ip| ip.protocol() == want).unwrap_or(false));
        batch
    }

    fn name(&self) -> &str {
        "proto-filter"
    }
}

/// Drops packets whose destination port is not in the allowed list.
#[derive(Debug, Clone)]
pub struct DstPortFilter {
    allowed: Vec<u16>,
}

impl DstPortFilter {
    /// Keeps only packets destined to one of `allowed` (TCP or UDP).
    pub fn new(allowed: Vec<u16>) -> Self {
        Self { allowed }
    }

    fn dst_port(p: &crate::packet::Packet) -> Option<u16> {
        match p.ipv4().ok()?.protocol() {
            IpProto::Udp => Some(p.udp().ok()?.dst_port()),
            IpProto::Tcp => Some(p.tcp().ok()?.dst_port()),
            _ => None,
        }
    }
}

impl Operator for DstPortFilter {
    fn process(&mut self, mut batch: PacketBatch) -> PacketBatch {
        batch.retain(|p| {
            Self::dst_port(p)
                .map(|port| self.allowed.contains(&port))
                .unwrap_or(false)
        });
        batch
    }

    fn name(&self) -> &str {
        "dst-port-filter"
    }
}

/// Swaps Ethernet source and destination on every packet ("bounce").
#[derive(Debug, Default, Clone, Copy)]
pub struct MacSwap {
    _private: (),
}

impl MacSwap {
    /// Creates a MAC-swap stage.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Operator for MacSwap {
    fn process(&mut self, mut batch: PacketBatch) -> PacketBatch {
        for p in batch.iter_mut() {
            if let Ok(mut eth) = p.ethernet_mut() {
                eth.swap_addrs();
            }
        }
        batch
    }

    fn name(&self) -> &str {
        "mac-swap"
    }
}

/// Answers ICMP echo requests addressed to the configured IP: rewrites
/// request→reply in place (type, checksum), swaps IP addresses and MAC
/// addresses, and forwards the reply; all other traffic passes through.
#[derive(Debug, Clone, Copy)]
pub struct EchoResponder {
    ip: std::net::Ipv4Addr,
    answered: u64,
}

impl EchoResponder {
    /// Responds to pings for `ip`.
    pub fn new(ip: std::net::Ipv4Addr) -> Self {
        Self { ip, answered: 0 }
    }

    /// Echo requests answered so far.
    pub fn answered(&self) -> u64 {
        self.answered
    }

    fn answer(&mut self, p: &mut crate::packet::Packet) -> bool {
        let Ok(ip) = p.ipv4() else { return false };
        if ip.protocol() != IpProto::Icmp || ip.dst() != self.ip {
            return false;
        }
        let Ok(icmp) = p.icmp() else { return false };
        if icmp.icmp_type() != crate::headers::icmp::IcmpType::EchoRequest || !icmp.checksum_ok() {
            return false;
        }
        let (src, dst) = (ip.src(), ip.dst());
        {
            let mut icmp = p.icmp_mut().expect("checked above");
            icmp.set_type(crate::headers::icmp::IcmpType::EchoReply);
            icmp.update_checksum();
        }
        {
            let mut ip = p.ipv4_mut().expect("checked above");
            ip.set_src(dst);
            ip.set_dst(src);
            ip.set_ttl(64);
            ip.update_checksum();
        }
        if let Ok(mut eth) = p.ethernet_mut() {
            eth.swap_addrs();
        }
        self.answered += 1;
        true
    }
}

impl Operator for EchoResponder {
    fn process(&mut self, mut batch: PacketBatch) -> PacketBatch {
        for p in batch.iter_mut() {
            self.answer(p);
        }
        batch
    }

    fn name(&self) -> &str {
        "echo-responder"
    }
}

/// Panics after forwarding a configured number of batches.
///
/// This is the fault injector for the recovery experiment: §3 measures
/// recovery by "simulating a panic in the null-filter".
#[derive(Debug)]
pub struct PanicAfter {
    remaining: u64,
}

impl PanicAfter {
    /// Forwards `batches` batches, then panics on the next one.
    pub fn new(batches: u64) -> Self {
        Self { remaining: batches }
    }
}

impl Operator for PanicAfter {
    fn process(&mut self, batch: PacketBatch) -> PacketBatch {
        if self.remaining == 0 {
            panic!("injected fault in pipeline stage (PanicAfter)");
        }
        self.remaining -= 1;
        batch
    }

    fn name(&self) -> &str {
        "panic-after"
    }
}

/// A deterministic chaos injection point, driven by the thread's ambient
/// [`rbs_core::fault::FaultPlan`].
///
/// Drop one (or several, with distinct stage ids) anywhere in a pipeline
/// spec. Each processed batch consults
/// [`rbs_core::fault::ambient_decide`] at
/// [`FaultSite::Operator(stage)`](rbs_core::fault::FaultSite) and acts on
/// the decision:
///
/// - [`Panic`](rbs_core::fault::FaultKind::Panic),
///   [`PoisonTable`](rbs_core::fault::FaultKind::PoisonTable) and
///   [`CloseChannel`](rbs_core::fault::FaultKind::CloseChannel) all
///   panic with a typed [`rbs_core::fault::InjectedFault`] payload: from
///   inside a pipeline, unwinding to the domain boundary *is* how the
///   table gets poisoned and the channels get closed.
/// - [`Stall`](rbs_core::fault::FaultKind::Stall) and
///   [`Delay`](rbs_core::fault::FaultKind::Delay) sleep in place,
///   holding the batch — a stall long enough looks hung to a watchdog.
///
/// With no ambient plan installed (production, unrelated tests) the
/// operator is a transparent forwarder costing one thread-local read per
/// batch.
#[derive(Debug, Clone, Copy)]
pub struct ChaosPoint {
    stage: u16,
}

impl ChaosPoint {
    /// Creates an injection point identified as `Operator(stage)` in
    /// fault plans.
    pub fn new(stage: u16) -> Self {
        Self { stage }
    }
}

impl Operator for ChaosPoint {
    fn process(&mut self, batch: PacketBatch) -> PacketBatch {
        use rbs_core::fault::{self, FaultKind, FaultSite};
        let site = FaultSite::Operator(self.stage);
        if let Some(kind) = fault::ambient_decide(site) {
            match kind {
                FaultKind::Panic | FaultKind::PoisonTable | FaultKind::CloseChannel => {
                    fault::fire_panic(site)
                }
                sleep => fault::fire_sleep(sleep),
            }
        }
        batch
    }

    fn name(&self) -> &str {
        "chaos-point"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::headers::ethernet::MacAddr;
    use crate::headers::tcp::TcpFlags;
    use crate::packet::Packet;
    use crate::pipeline::Pipeline;
    use std::net::Ipv4Addr;

    fn udp(dst_port: u16, ttl: u8) -> Packet {
        let mut p = Packet::build_udp(
            MacAddr([2, 0, 0, 0, 0, 1]),
            MacAddr([2, 0, 0, 0, 0, 2]),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            1000,
            dst_port,
            0,
        );
        {
            let mut ip = p.ipv4_mut().unwrap();
            ip.set_ttl(ttl);
            ip.update_checksum();
        }
        p
    }

    fn tcp(dst_port: u16) -> Packet {
        Packet::build_tcp(
            MacAddr::ZERO,
            MacAddr::ZERO,
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            1000,
            dst_port,
            TcpFlags(TcpFlags::SYN),
            0,
        )
    }

    #[test]
    fn null_filter_forwards_untouched() {
        let mut nf = NullFilter::new();
        let before: Vec<Vec<u8>> = [udp(1, 64), udp(2, 64)]
            .iter()
            .map(|p| p.as_slice().to_vec())
            .collect();
        let batch: PacketBatch = vec![udp(1, 64), udp(2, 64)].into_iter().collect();
        let out = nf.process(batch);
        let after: Vec<Vec<u8>> = out.iter().map(|p| p.as_slice().to_vec()).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        let b1: PacketBatch = vec![udp(1, 64)].into_iter().collect();
        let b2: PacketBatch = vec![udp(1, 64), udp(2, 64)].into_iter().collect();
        let bytes = b1.total_bytes() + b2.total_bytes();
        c.process(b1);
        c.process(b2);
        assert_eq!(c.batches(), 2);
        assert_eq!(c.packets(), 3);
        assert_eq!(c.bytes(), bytes as u64);
    }

    #[test]
    fn ttl_decrement_drops_expired_and_fixes_checksum() {
        let mut op = TtlDecrement::new();
        let batch: PacketBatch = vec![udp(1, 64), udp(2, 1), udp(3, 2)].into_iter().collect();
        let out = op.process(batch);
        assert_eq!(out.len(), 2);
        for p in out.iter() {
            let ip = p.ipv4().unwrap();
            assert!(ip.checksum_ok());
            assert!(ip.ttl() == 63 || ip.ttl() == 1);
        }
    }

    #[test]
    fn proto_filter_separates() {
        let mut op = ProtoFilter::new(IpProto::Tcp);
        let batch: PacketBatch = vec![udp(1, 64), tcp(2), udp(3, 64)].into_iter().collect();
        let out = op.process(batch);
        assert_eq!(out.len(), 1);
        assert!(out.iter().next().unwrap().tcp().is_ok());
    }

    #[test]
    fn dst_port_filter_handles_both_transports() {
        let mut op = DstPortFilter::new(vec![53, 443]);
        let batch: PacketBatch = vec![udp(53, 64), udp(80, 64), tcp(443), tcp(80)]
            .into_iter()
            .collect();
        let out = op.process(batch);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn mac_swap_swaps() {
        let mut op = MacSwap::new();
        let batch: PacketBatch = vec![udp(1, 64)].into_iter().collect();
        let out = op.process(batch);
        let eth = out.iter().next().unwrap().ethernet().unwrap();
        assert_eq!(eth.src(), MacAddr([2, 0, 0, 0, 0, 2]));
        assert_eq!(eth.dst(), MacAddr([2, 0, 0, 0, 0, 1]));
    }

    #[test]
    fn echo_responder_answers_its_ip() {
        use crate::headers::icmp::IcmpType;
        let vip = Ipv4Addr::new(192, 0, 2, 9);
        let mut op = EchoResponder::new(vip);
        let ping = Packet::build_icmp_echo(
            MacAddr([2, 0, 0, 0, 0, 1]),
            MacAddr([2, 0, 0, 0, 0, 2]),
            Ipv4Addr::new(10, 0, 0, 5),
            vip,
            IcmpType::EchoRequest,
            0xBEEF,
            3,
            12,
        );
        let out = op.process(vec![ping].into_iter().collect());
        assert_eq!(op.answered(), 1);
        let reply = out.iter().next().unwrap();
        let ip = reply.ipv4().unwrap();
        assert_eq!(ip.src(), vip);
        assert_eq!(ip.dst(), Ipv4Addr::new(10, 0, 0, 5));
        assert!(ip.checksum_ok());
        let icmp = reply.icmp().unwrap();
        assert_eq!(icmp.icmp_type(), IcmpType::EchoReply);
        assert_eq!(icmp.identifier(), 0xBEEF);
        assert_eq!(icmp.sequence(), 3);
        assert!(icmp.checksum_ok());
        // MACs bounced too.
        assert_eq!(reply.ethernet().unwrap().dst(), MacAddr([2, 0, 0, 0, 0, 1]));
    }

    #[test]
    fn echo_responder_ignores_other_traffic() {
        use crate::headers::icmp::IcmpType;
        let vip = Ipv4Addr::new(192, 0, 2, 9);
        let mut op = EchoResponder::new(vip);
        // Ping for a different address, a reply, and plain UDP.
        let other_ip = Packet::build_icmp_echo(
            MacAddr::ZERO,
            MacAddr::ZERO,
            Ipv4Addr::new(10, 0, 0, 5),
            Ipv4Addr::new(192, 0, 2, 10),
            IcmpType::EchoRequest,
            1,
            1,
            0,
        );
        let already_reply = Packet::build_icmp_echo(
            MacAddr::ZERO,
            MacAddr::ZERO,
            Ipv4Addr::new(10, 0, 0, 5),
            vip,
            IcmpType::EchoReply,
            1,
            1,
            0,
        );
        let not_icmp = udp(9, 64);
        let before: Vec<Vec<u8>> = [&other_ip, &already_reply, &not_icmp]
            .iter()
            .map(|p| p.as_slice().to_vec())
            .collect();
        let out = op.process(
            vec![other_ip, already_reply, not_icmp]
                .into_iter()
                .collect(),
        );
        assert_eq!(op.answered(), 0);
        let after: Vec<Vec<u8>> = out.iter().map(|p| p.as_slice().to_vec()).collect();
        assert_eq!(before, after, "untouched passthrough");
    }

    #[test]
    fn panic_after_forwards_then_panics() {
        let mut op = PanicAfter::new(2);
        let b = op.process(vec![udp(1, 64)].into_iter().collect());
        assert_eq!(b.len(), 1);
        op.process(PacketBatch::new());
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            op.process(PacketBatch::new());
        }));
        assert!(r.is_err());
    }

    #[test]
    fn chaos_point_is_transparent_without_a_plan() {
        let mut op = ChaosPoint::new(0);
        let out = op.process(vec![udp(53, 64)].into_iter().collect());
        assert_eq!(out.len(), 1);
        assert_eq!(op.name(), "chaos-point");
    }

    #[test]
    fn chaos_point_fires_on_the_scheduled_batch() {
        use rbs_core::fault::{self, FaultKind, FaultPlan, FaultSite, InjectedFault};
        use std::sync::Arc;
        // Batch occurrences 2..3 of stream 0 at Operator(7) panic.
        let plan = Arc::new(FaultPlan::new(0).inject_window(
            FaultSite::Operator(7),
            FaultKind::Panic,
            0,
            2,
            3,
        ));
        fault::scoped(plan, || {
            let mut op = ChaosPoint::new(7);
            for _ in 0..2 {
                let out = op.process(vec![udp(1, 64)].into_iter().collect());
                assert_eq!(out.len(), 1);
            }
            let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                op.process(PacketBatch::new());
            }))
            .unwrap_err();
            let payload = err.downcast_ref::<InjectedFault>().expect("typed payload");
            assert_eq!(payload.site, FaultSite::Operator(7));
            // After the window the operator forwards again.
            let out = op.process(vec![udp(2, 64)].into_iter().collect());
            assert_eq!(out.len(), 1);
        });
    }

    #[test]
    fn chaos_point_delay_holds_but_forwards() {
        use rbs_core::fault::{self, FaultKind, FaultPlan, FaultSite};
        use std::sync::Arc;
        let plan = Arc::new(FaultPlan::new(0).inject(
            FaultSite::Operator(1),
            FaultKind::Delay { micros: 50 },
            1_000_000,
        ));
        fault::scoped(plan, || {
            let mut op = ChaosPoint::new(1);
            let out = op.process(vec![udp(1, 64)].into_iter().collect());
            assert_eq!(out.len(), 1, "delays never lose packets");
        });
    }

    #[test]
    fn operators_compose_in_pipeline() {
        let mut p = Pipeline::new()
            .add(ProtoFilter::new(IpProto::Udp))
            .add(TtlDecrement::new())
            .add(DstPortFilter::new(vec![53]));
        let batch: PacketBatch = vec![udp(53, 64), udp(53, 1), tcp(53), udp(80, 64)]
            .into_iter()
            .collect();
        let out = p.run_batch(batch);
        assert_eq!(out.len(), 1);
        let survivor = out.iter().next().unwrap();
        assert_eq!(survivor.ipv4().unwrap().ttl(), 63);
        assert_eq!(survivor.udp().unwrap().dst_port(), 53);
    }
}
