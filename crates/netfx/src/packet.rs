//! The owned [`Packet`] type.
//!
//! A packet is a uniquely-owned byte buffer ([`bytes::BytesMut`]) plus
//! cached layer offsets. Ownership is the isolation mechanism: a packet
//! handed to another pipeline stage (or protection domain) is *moved*, so
//! the sender can neither observe nor modify it afterwards — the property
//! §3 of the paper builds zero-copy SFI on.

use crate::headers::ethernet::{self, EtherType, EthernetHdr, EthernetHdrMut, MacAddr};
use crate::headers::icmp::{self, IcmpHdr, IcmpHdrMut, IcmpType, ICMP_ECHO_HDR_LEN};
use crate::headers::ipv4::{self, IpProto, Ipv4Hdr, Ipv4HdrMut, IPV4_MIN_HDR_LEN};
use crate::headers::tcp::{self, TcpFlags, TcpHdr, TcpHdrMut, TCP_MIN_HDR_LEN};
use crate::headers::udp::{self, UdpHdr, UdpHdrMut, UDP_HDR_LEN};
use crate::headers::ETHERNET_HDR_LEN;
use bytes::BytesMut;
use std::fmt;
use std::net::Ipv4Addr;

/// Errors from parsing or constructing packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketError {
    /// A header needs more bytes than the buffer holds.
    Truncated {
        /// Which header was being parsed.
        header: &'static str,
        /// Bytes required.
        needed: usize,
        /// Bytes available.
        have: usize,
    },
    /// A header field holds an illegal value.
    BadField {
        /// Which header was being parsed.
        header: &'static str,
        /// Which field was invalid.
        field: &'static str,
        /// The offending value, widened.
        value: u64,
    },
    /// The packet's actual next-layer protocol differs from the requested
    /// view (e.g. asking for UDP on a TCP packet).
    WrongProtocol {
        /// The view that was requested.
        expected: &'static str,
    },
}

impl fmt::Display for PacketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PacketError::Truncated {
                header,
                needed,
                have,
            } => {
                write!(
                    f,
                    "{header} header truncated: need {needed} bytes, have {have}"
                )
            }
            PacketError::BadField {
                header,
                field,
                value,
            } => {
                write!(f, "{header} header has invalid {field} = {value}")
            }
            PacketError::WrongProtocol { expected } => {
                write!(f, "packet does not carry {expected}")
            }
        }
    }
}

impl std::error::Error for PacketError {}

/// An owned network packet: Ethernet frame bytes plus parse metadata.
pub struct Packet {
    buf: BytesMut,
    /// Memoized flow hash (see [`crate::flow::packet_flow_hash`]): the
    /// RSS dispatcher hashes every packet exactly once, so the tag is set
    /// by the generator (which knows the 5-tuple it just emitted) or on
    /// first access, and *invalidated by every mutable view* — a rewritten
    /// header may change the flow the packet belongs to.
    flow_hash: Option<u64>,
}

impl Packet {
    /// Wraps raw frame bytes; no validation is performed until a header
    /// view is requested.
    pub fn from_bytes(buf: BytesMut) -> Self {
        Self {
            buf,
            flow_hash: None,
        }
    }

    /// Wraps a byte slice by copying it into a fresh buffer.
    pub fn from_slice(bytes: &[u8]) -> Self {
        Self {
            buf: BytesMut::from(bytes),
            flow_hash: None,
        }
    }

    /// The memoized flow hash, if one has been computed (or stamped by
    /// the generator) since the last mutable access.
    pub fn cached_flow_hash(&self) -> Option<u64> {
        self.flow_hash
    }

    /// Stamps the memoized flow hash.
    ///
    /// The value must equal what [`crate::flow::packet_flow_hash`] would
    /// compute for the current frame bytes — stamping anything else makes
    /// flow-affine dispatch silently unstable. Callers that cannot
    /// guarantee that should let [`crate::flow::Packet::flow_hash`]
    /// (first access) compute it instead.
    pub fn set_cached_flow_hash(&mut self, hash: u64) {
        self.flow_hash = Some(hash);
    }

    /// Drops the memoized flow hash; every mutable view calls this.
    fn invalidate_flow_hash(&mut self) {
        self.flow_hash = None;
    }

    /// Total frame length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True for a zero-length buffer (never a valid frame).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The raw frame bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// The raw frame bytes, mutably.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        self.invalidate_flow_hash();
        &mut self.buf
    }

    /// Consumes the packet, returning its buffer.
    pub fn into_bytes(self) -> BytesMut {
        self.buf
    }

    /// Ethernet header view.
    pub fn ethernet(&self) -> Result<EthernetHdr<'_>, PacketError> {
        EthernetHdr::parse(&self.buf)
    }

    /// Mutable Ethernet header view.
    pub fn ethernet_mut(&mut self) -> Result<EthernetHdrMut<'_>, PacketError> {
        self.invalidate_flow_hash();
        EthernetHdrMut::parse(&mut self.buf)
    }

    /// IPv4 header view (validates the EtherType first).
    pub fn ipv4(&self) -> Result<Ipv4Hdr<'_>, PacketError> {
        let eth = self.ethernet()?;
        if eth.ethertype() != EtherType::Ipv4 {
            return Err(PacketError::WrongProtocol { expected: "ipv4" });
        }
        Ipv4Hdr::parse(&self.buf[ETHERNET_HDR_LEN..])
    }

    /// Mutable IPv4 header view.
    pub fn ipv4_mut(&mut self) -> Result<Ipv4HdrMut<'_>, PacketError> {
        let eth = self.ethernet()?;
        if eth.ethertype() != EtherType::Ipv4 {
            return Err(PacketError::WrongProtocol { expected: "ipv4" });
        }
        self.invalidate_flow_hash();
        Ipv4HdrMut::parse(&mut self.buf[ETHERNET_HDR_LEN..])
    }

    /// Byte offset of the L4 header, validating L2/L3 on the way.
    fn l4_offset(&self, want: IpProto, name: &'static str) -> Result<usize, PacketError> {
        let ip = self.ipv4()?;
        if ip.protocol() != want {
            return Err(PacketError::WrongProtocol { expected: name });
        }
        Ok(ETHERNET_HDR_LEN + ip.header_len())
    }

    /// UDP header view (validates EtherType and IP protocol).
    pub fn udp(&self) -> Result<UdpHdr<'_>, PacketError> {
        let off = self.l4_offset(IpProto::Udp, "udp")?;
        UdpHdr::parse(&self.buf[off..])
    }

    /// Mutable UDP header view.
    pub fn udp_mut(&mut self) -> Result<UdpHdrMut<'_>, PacketError> {
        let off = self.l4_offset(IpProto::Udp, "udp")?;
        self.invalidate_flow_hash();
        UdpHdrMut::parse(&mut self.buf[off..])
    }

    /// TCP header view (validates EtherType and IP protocol).
    pub fn tcp(&self) -> Result<TcpHdr<'_>, PacketError> {
        let off = self.l4_offset(IpProto::Tcp, "tcp")?;
        TcpHdr::parse(&self.buf[off..])
    }

    /// Mutable TCP header view.
    pub fn tcp_mut(&mut self) -> Result<TcpHdrMut<'_>, PacketError> {
        let off = self.l4_offset(IpProto::Tcp, "tcp")?;
        self.invalidate_flow_hash();
        TcpHdrMut::parse(&mut self.buf[off..])
    }

    /// ICMP message view (validates EtherType and IP protocol).
    pub fn icmp(&self) -> Result<IcmpHdr<'_>, PacketError> {
        let off = self.l4_offset(IpProto::Icmp, "icmp")?;
        IcmpHdr::parse(&self.buf[off..])
    }

    /// Mutable ICMP message view.
    pub fn icmp_mut(&mut self) -> Result<IcmpHdrMut<'_>, PacketError> {
        let off = self.l4_offset(IpProto::Icmp, "icmp")?;
        self.invalidate_flow_hash();
        IcmpHdrMut::parse(&mut self.buf[off..])
    }

    /// The L4 payload of a UDP packet.
    pub fn udp_payload(&self) -> Result<&[u8], PacketError> {
        let off = self.l4_offset(IpProto::Udp, "udp")?;
        UdpHdr::parse(&self.buf[off..])?;
        Ok(&self.buf[off + UDP_HDR_LEN..])
    }

    /// Resets `buf` to `total` zero bytes, reusing its allocation when
    /// the capacity suffices — the byte-for-byte equivalent of
    /// `BytesMut::zeroed(total)` without the fresh allocation.
    fn reset_zeroed(buf: &mut BytesMut, total: usize) {
        buf.clear();
        buf.resize(total, 0);
    }

    /// Builds a complete Ethernet/IPv4/UDP packet with `payload_len` zero
    /// bytes of payload; all checksums valid.
    #[allow(clippy::too_many_arguments)]
    pub fn build_udp(
        src_mac: MacAddr,
        dst_mac: MacAddr,
        src_ip: Ipv4Addr,
        dst_ip: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
        payload_len: usize,
    ) -> Packet {
        Self::build_udp_into(
            BytesMut::new(),
            src_mac,
            dst_mac,
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            payload_len,
        )
    }

    /// Like [`Packet::build_udp`] but writes into `buf` (typically a
    /// recycled [`crate::pool::PacketPool`] slab), allocating only if the
    /// buffer's capacity is too small. The resulting frame bytes are
    /// identical to the freshly allocated path.
    #[allow(clippy::too_many_arguments)]
    pub fn build_udp_into(
        mut buf: BytesMut,
        src_mac: MacAddr,
        dst_mac: MacAddr,
        src_ip: Ipv4Addr,
        dst_ip: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
        payload_len: usize,
    ) -> Packet {
        let udp_len = UDP_HDR_LEN + payload_len;
        let ip_len = IPV4_MIN_HDR_LEN + udp_len;
        let total = ETHERNET_HDR_LEN + ip_len;
        Self::reset_zeroed(&mut buf, total);
        ethernet::emit(&mut buf, src_mac, dst_mac, EtherType::Ipv4);
        ipv4::emit(
            &mut buf[ETHERNET_HDR_LEN..],
            src_ip,
            dst_ip,
            IpProto::Udp,
            ip_len as u16,
            64,
        );
        udp::emit(
            &mut buf[ETHERNET_HDR_LEN + IPV4_MIN_HDR_LEN..],
            src_ip,
            dst_ip,
            src_port,
            dst_port,
        );
        Packet {
            buf,
            flow_hash: None,
        }
    }

    /// Builds a complete Ethernet/IPv4/ICMP echo packet with
    /// `payload_len` zero bytes of echo payload; all checksums valid.
    #[allow(clippy::too_many_arguments)]
    pub fn build_icmp_echo(
        src_mac: MacAddr,
        dst_mac: MacAddr,
        src_ip: Ipv4Addr,
        dst_ip: Ipv4Addr,
        icmp_type: IcmpType,
        identifier: u16,
        sequence: u16,
        payload_len: usize,
    ) -> Packet {
        let icmp_len = ICMP_ECHO_HDR_LEN + payload_len;
        let ip_len = IPV4_MIN_HDR_LEN + icmp_len;
        let total = ETHERNET_HDR_LEN + ip_len;
        let mut buf = BytesMut::new();
        Self::reset_zeroed(&mut buf, total);
        ethernet::emit(&mut buf, src_mac, dst_mac, EtherType::Ipv4);
        ipv4::emit(
            &mut buf[ETHERNET_HDR_LEN..],
            src_ip,
            dst_ip,
            IpProto::Icmp,
            ip_len as u16,
            64,
        );
        icmp::emit(
            &mut buf[ETHERNET_HDR_LEN + IPV4_MIN_HDR_LEN..],
            icmp_type,
            identifier,
            sequence,
        );
        Packet {
            buf,
            flow_hash: None,
        }
    }

    /// Builds a complete Ethernet/IPv4/TCP packet with `payload_len` zero
    /// bytes of payload; all checksums valid.
    #[allow(clippy::too_many_arguments)]
    pub fn build_tcp(
        src_mac: MacAddr,
        dst_mac: MacAddr,
        src_ip: Ipv4Addr,
        dst_ip: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
        flags: TcpFlags,
        payload_len: usize,
    ) -> Packet {
        Self::build_tcp_into(
            BytesMut::new(),
            src_mac,
            dst_mac,
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            flags,
            payload_len,
        )
    }

    /// Like [`Packet::build_tcp`] but writes into `buf` (typically a
    /// recycled [`crate::pool::PacketPool`] slab), allocating only if the
    /// buffer's capacity is too small.
    #[allow(clippy::too_many_arguments)]
    pub fn build_tcp_into(
        mut buf: BytesMut,
        src_mac: MacAddr,
        dst_mac: MacAddr,
        src_ip: Ipv4Addr,
        dst_ip: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
        flags: TcpFlags,
        payload_len: usize,
    ) -> Packet {
        let tcp_len = TCP_MIN_HDR_LEN + payload_len;
        let ip_len = IPV4_MIN_HDR_LEN + tcp_len;
        let total = ETHERNET_HDR_LEN + ip_len;
        Self::reset_zeroed(&mut buf, total);
        ethernet::emit(&mut buf, src_mac, dst_mac, EtherType::Ipv4);
        ipv4::emit(
            &mut buf[ETHERNET_HDR_LEN..],
            src_ip,
            dst_ip,
            IpProto::Tcp,
            ip_len as u16,
            64,
        );
        tcp::emit(
            &mut buf[ETHERNET_HDR_LEN + IPV4_MIN_HDR_LEN..],
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            0,
            flags,
        );
        Packet {
            buf,
            flow_hash: None,
        }
    }
}

impl fmt::Debug for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut d = f.debug_struct("Packet");
        d.field("len", &self.len());
        if let Ok(ip) = self.ipv4() {
            d.field("src", &ip.src())
                .field("dst", &ip.dst())
                .field("proto", &ip.protocol());
        }
        d.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn udp_packet() -> Packet {
        Packet::build_udp(
            MacAddr([2, 0, 0, 0, 0, 1]),
            MacAddr([2, 0, 0, 0, 0, 2]),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            5000,
            53,
            16,
        )
    }

    #[test]
    fn build_udp_is_wellformed() {
        let p = udp_packet();
        assert_eq!(p.len(), 14 + 20 + 8 + 16);
        let eth = p.ethernet().unwrap();
        assert_eq!(eth.ethertype(), EtherType::Ipv4);
        let ip = p.ipv4().unwrap();
        assert!(ip.checksum_ok());
        assert_eq!(ip.total_len() as usize, p.len() - 14);
        let u = p.udp().unwrap();
        assert_eq!(u.src_port(), 5000);
        assert_eq!(u.dst_port(), 53);
        assert!(u.checksum_ok(ip.src(), ip.dst()));
        assert_eq!(p.udp_payload().unwrap().len(), 16);
    }

    #[test]
    fn build_tcp_is_wellformed() {
        let p = Packet::build_tcp(
            MacAddr::ZERO,
            MacAddr::BROADCAST,
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
            80,
            12345,
            TcpFlags(TcpFlags::SYN),
            0,
        );
        let ip = p.ipv4().unwrap();
        assert_eq!(ip.protocol(), IpProto::Tcp);
        let t = p.tcp().unwrap();
        assert!(t.flags().is_syn_only());
        let seg_len = (ip.total_len() as usize - ip.header_len()) as u16;
        assert!(t.checksum_ok(ip.src(), ip.dst(), seg_len));
    }

    #[test]
    fn wrong_protocol_views_rejected() {
        let p = udp_packet();
        assert_eq!(
            p.tcp().unwrap_err(),
            PacketError::WrongProtocol { expected: "tcp" }
        );
        let mut p = p;
        assert!(p.tcp_mut().is_err());
    }

    #[test]
    fn non_ipv4_rejected() {
        let mut p = udp_packet();
        p.ethernet_mut().unwrap().set_ethertype(EtherType::Arp);
        assert_eq!(
            p.ipv4().unwrap_err(),
            PacketError::WrongProtocol { expected: "ipv4" }
        );
        assert!(p.udp().is_err());
    }

    #[test]
    fn empty_packet() {
        let p = Packet::from_slice(&[]);
        assert!(p.is_empty());
        assert!(p.ethernet().is_err());
    }

    #[test]
    fn mutation_via_views() {
        let mut p = udp_packet();
        {
            let mut ip = p.ipv4_mut().unwrap();
            ip.set_ttl(1);
            ip.update_checksum();
        }
        assert_eq!(p.ipv4().unwrap().ttl(), 1);
        assert!(p.ipv4().unwrap().checksum_ok());
    }

    #[test]
    fn mutable_views_invalidate_cached_flow_hash() {
        let mut p = udp_packet();
        p.set_cached_flow_hash(0xABCD);
        assert_eq!(p.cached_flow_hash(), Some(0xABCD));
        let _ = p.ipv4_mut().unwrap();
        assert_eq!(
            p.cached_flow_hash(),
            None,
            "a mutable view may change the flow; the tag must not survive"
        );
        p.set_cached_flow_hash(1);
        let _ = p.as_mut_slice();
        assert_eq!(p.cached_flow_hash(), None);
        p.set_cached_flow_hash(2);
        let _ = p.udp_mut().unwrap();
        assert_eq!(p.cached_flow_hash(), None);
        p.set_cached_flow_hash(3);
        let _ = p.ethernet_mut().unwrap();
        assert_eq!(p.cached_flow_hash(), None);
    }

    #[test]
    fn build_into_reuses_capacity_and_matches_fresh_bytes() {
        let fresh = udp_packet();
        let recycled = BytesMut::with_capacity(256);
        let cap_ptr = recycled.as_ptr();
        let p = Packet::build_udp_into(
            recycled,
            MacAddr([2, 0, 0, 0, 0, 1]),
            MacAddr([2, 0, 0, 0, 0, 2]),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            5000,
            53,
            16,
        );
        assert_eq!(p.as_slice(), fresh.as_slice(), "byte-identical frames");
        assert_eq!(p.as_slice().as_ptr(), cap_ptr, "allocation was reused");
    }

    #[test]
    fn into_bytes_roundtrip() {
        let p = udp_packet();
        let len = p.len();
        let buf = p.into_bytes();
        let p2 = Packet::from_bytes(buf);
        assert_eq!(p2.len(), len);
        assert!(p2.udp().is_ok());
    }

    #[test]
    fn debug_includes_addresses() {
        let p = udp_packet();
        let s = format!("{p:?}");
        assert!(s.contains("10.0.0.1"), "{s}");
        assert!(s.contains("10.0.0.2"), "{s}");
    }

    #[test]
    fn error_display() {
        let e = PacketError::Truncated {
            header: "udp",
            needed: 8,
            have: 3,
        };
        assert_eq!(e.to_string(), "udp header truncated: need 8 bytes, have 3");
        let e = PacketError::WrongProtocol { expected: "tcp" };
        assert_eq!(e.to_string(), "packet does not carry tcp");
        let e = PacketError::BadField {
            header: "ipv4",
            field: "ihl",
            value: 3,
        };
        assert_eq!(e.to_string(), "ipv4 header has invalid ihl = 3");
    }
}
