//! Line-rate cycle budgets.
//!
//! The paper's introduction motivates zero-overhead safety with an
//! arithmetic everyone in the line-rate business does on a napkin:
//! "to saturate a 10Gbps network link, kernel device drivers and network
//! stack have a budget of 835 ns per 1K packet (or 1670 cycles on a 2GHz
//! machine)". This module does the napkin math precisely, including
//! Ethernet framing overhead, and is used by experiment E7 to compare a
//! measured pipeline against its budget.

/// Ethernet per-frame overhead on the wire, beyond the L2 frame bytes we
/// store: preamble + SFD (8B) and inter-frame gap (12B).
pub const WIRE_OVERHEAD_BYTES: usize = 20;

/// Frame check sequence (FCS), also on the wire but not in our buffers.
pub const FCS_BYTES: usize = 4;

/// A line-rate processing budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Budget {
    /// Link rate in bits per second.
    pub link_bps: f64,
    /// Frame size in bytes as stored (L2 header + payload, no FCS).
    pub frame_bytes: usize,
    /// CPU frequency in GHz used to convert time to cycles.
    pub cpu_ghz: f64,
}

impl Budget {
    /// Creates a budget for a `gbps` link, `frame_bytes` frames and a
    /// `cpu_ghz` clock.
    ///
    /// # Panics
    ///
    /// Panics on non-positive rates or zero-length frames.
    pub fn new(gbps: f64, frame_bytes: usize, cpu_ghz: f64) -> Self {
        assert!(gbps > 0.0, "link rate must be positive");
        assert!(frame_bytes > 0, "frames have at least one byte");
        assert!(cpu_ghz > 0.0, "CPU frequency must be positive");
        Self {
            link_bps: gbps * 1e9,
            frame_bytes,
            cpu_ghz,
        }
    }

    /// Bytes one frame occupies on the wire, including framing overhead.
    pub fn wire_bytes(&self) -> usize {
        self.frame_bytes + FCS_BYTES + WIRE_OVERHEAD_BYTES
    }

    /// Packets per second at line rate.
    pub fn packets_per_sec(&self) -> f64 {
        self.link_bps / (self.wire_bytes() as f64 * 8.0)
    }

    /// Time budget per packet, in nanoseconds.
    pub fn ns_per_packet(&self) -> f64 {
        1e9 / self.packets_per_sec()
    }

    /// Cycle budget per packet at the configured clock.
    pub fn cycles_per_packet(&self) -> f64 {
        self.ns_per_packet() * self.cpu_ghz
    }

    /// Fraction of the per-packet budget consumed by `cycles` of work
    /// (1.0 = exactly line rate; > 1.0 = cannot keep up).
    pub fn utilization(&self, cycles_per_packet: f64) -> f64 {
        cycles_per_packet / self.cycles_per_packet()
    }

    /// How many cache misses fit in the budget, at `miss_ns` each — the
    /// paper's "handful of cache misses in the critical path" point,
    /// using the 96–146 ns Haswell-EP latencies it cites [28].
    pub fn cache_misses_in_budget(&self, miss_ns: f64) -> f64 {
        assert!(miss_ns > 0.0, "miss latency must be positive");
        self.ns_per_packet() / miss_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reproduces the paper's napkin numbers: ~835 ns and ~1670 cycles
    /// per "1K packet" at 10 Gb/s and 2 GHz.
    ///
    /// 1024B of payload+headers plus 24B of wire overhead is 1048B;
    /// 1048 × 8 / 10⁹ s = 838 ns. The paper rounds to 835; we accept a
    /// ±1% band around our exact arithmetic.
    #[test]
    fn paper_budget_numbers() {
        let b = Budget::new(10.0, 1024, 2.0);
        let ns = b.ns_per_packet();
        assert!((ns - 838.4).abs() < 1.0, "ns/packet = {ns}");
        let cycles = b.cycles_per_packet();
        assert!((cycles - 1676.8).abs() < 2.0, "cycles/packet = {cycles}");
        // Within 1% of the paper's rounded 835/1670.
        assert!((ns - 835.0).abs() / 835.0 < 0.01);
        assert!((cycles - 1670.0).abs() / 1670.0 < 0.01);
    }

    #[test]
    fn minimum_frame_rate_14_88_mpps() {
        // The canonical 10GbE line-rate figure: 64B frames (60 stored +
        // 4 FCS) arrive at 14.88 Mpps.
        let b = Budget::new(10.0, 60, 2.0);
        let mpps = b.packets_per_sec() / 1e6;
        assert!((mpps - 14.88).abs() < 0.01, "mpps = {mpps}");
    }

    #[test]
    fn utilization_scales_linearly() {
        let b = Budget::new(10.0, 1024, 2.0);
        let full = b.cycles_per_packet();
        assert!((b.utilization(full) - 1.0).abs() < 1e-12);
        assert!((b.utilization(full / 2.0) - 0.5).abs() < 1e-12);
        assert!(b.utilization(full * 2.0) > 1.0);
    }

    #[test]
    fn cache_miss_budget_is_a_handful() {
        // The paper's point: at 96-146 ns per memory access, the 835 ns
        // budget allows only ~6-9 misses.
        let b = Budget::new(10.0, 1024, 2.0);
        let at_96 = b.cache_misses_in_budget(96.0);
        let at_146 = b.cache_misses_in_budget(146.0);
        assert!((8.0..10.0).contains(&at_96), "{at_96}");
        assert!((5.0..7.0).contains(&at_146), "{at_146}");
    }

    #[test]
    fn faster_link_shrinks_budget() {
        let b10 = Budget::new(10.0, 1024, 2.0);
        let b40 = Budget::new(40.0, 1024, 2.0);
        assert!((b10.ns_per_packet() / b40.ns_per_packet() - 4.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "link rate")]
    fn zero_rate_rejected() {
        Budget::new(0.0, 64, 2.0);
    }

    #[test]
    #[should_panic(expected = "at least one byte")]
    fn zero_frame_rejected() {
        Budget::new(10.0, 0, 2.0);
    }
}
