//! A NetBricks-style packet-processing framework.
//!
//! The paper's isolation experiments (§3, Figure 2) run on NetBricks [31],
//! a network-function framework written in Rust that passes packet batches
//! between pipeline stages *by move*: the linear type system guarantees
//! that only one stage can touch a batch at a time. This crate rebuilds the
//! subset the paper relies on:
//!
//! - [`packet`] / [`headers`]: packets over [`bytes`] buffers with typed,
//!   bounds-checked views of Ethernet, IPv4, TCP and UDP headers;
//! - [`batch`]: the linear [`PacketBatch`] that moves (never copies)
//!   through the pipeline;
//! - [`pipeline`] / [`operators`]: the operator abstraction, composition,
//!   and a library of stock network functions (including the null filter
//!   used by Figure 2);
//! - [`pktgen`]: a synthetic traffic source standing in for DPDK — the
//!   experiments measure CPU cycles per batch inside the pipeline, so a
//!   memory-resident generator exercises the same code path (see
//!   DESIGN.md, substitution 1);
//! - [`budget`]: the line-rate cycle-budget arithmetic from the paper's
//!   introduction (835 ns per 1 KB packet at 10 Gb/s);
//! - [`flow`]: five-tuple extraction and flow hashing shared with the
//!   Maglev load balancer;
//! - [`pool`]: a DPDK-mempool-style packet-buffer free list whose
//!   recycling discipline is enforced by ownership transfer instead of
//!   refcounts — the allocation-free steady state measured by E12.

pub mod batch;
pub mod budget;
pub mod checksum;
pub mod flow;
pub mod flowtrack;
pub mod headers;
pub mod nat;
pub mod operators;
pub mod packet;
pub mod pcap;
pub mod pipeline;
pub mod pktgen;
pub mod pool;
pub mod ratelimit;

pub use batch::PacketBatch;
pub use flow::FiveTuple;
pub use flowtrack::{FlowEntry, FlowTracker};
pub use nat::SourceNat;
pub use packet::{Packet, PacketError};
pub use pipeline::{Operator, Pipeline, PipelineSpec, StageStateMap, StageStats};
pub use pktgen::{FlowDistribution, PacketGen, TrafficConfig};
pub use pool::{PacketPool, PoolStats};
pub use ratelimit::{PerFlowRateLimiter, RateLimiter, TickBucket, TokenBucket};
