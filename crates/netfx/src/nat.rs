//! Stateful source NAT.
//!
//! A realistic stateful network function for the isolated pipelines: it
//! owns a translation table (exactly the kind of state the SFI layer
//! protects and the checkpoint layer can snapshot), rewrites headers in
//! place, and handles both traffic directions through a single operator.
//!
//! Outbound packets (source inside `inside_net`) get their source
//! rewritten to `(nat_ip, allocated port)`; inbound packets addressed to
//! `nat_ip` are translated back to the original endpoint. Checksums are
//! fixed on every rewrite.

use crate::batch::PacketBatch;
use crate::flow::FiveTuple;
use crate::headers::ipv4::IpProto;
use crate::packet::Packet;
use crate::pipeline::Operator;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// True when `addr` lies inside `net/len` (host-order network bits).
fn prefix_contains_addr(net: u32, len: u8, addr: Ipv4Addr) -> bool {
    let mask = if len == 0 {
        0
    } else {
        u32::MAX << (32 - u32::from(len))
    };
    (u32::from(addr) & mask) == net & mask
}

/// One direction's translation key: the *original* inside endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct InsideKey {
    ip: Ipv4Addr,
    port: u16,
    proto: IpProto,
}

/// Statistics for the NAT data path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NatStats {
    /// Outbound packets translated.
    pub outbound: u64,
    /// Inbound packets translated back.
    pub inbound: u64,
    /// Packets forwarded untouched (neither direction applies).
    pub passed: u64,
    /// Packets dropped: port pool exhausted or unknown inbound mapping.
    pub dropped: u64,
}

/// A stateful source-NAT operator.
pub struct SourceNat {
    nat_ip: Ipv4Addr,
    inside_net: u32,
    inside_len: u8,
    /// inside endpoint -> allocated NAT port.
    out_map: HashMap<InsideKey, u16>,
    /// NAT port (+proto) -> inside endpoint.
    in_map: HashMap<(u16, IpProto), InsideKey>,
    next_port: u16,
    port_lo: u16,
    port_hi: u16,
    stats: NatStats,
}

impl SourceNat {
    /// NATs traffic from `inside_net/inside_len` to `nat_ip`, allocating
    /// external ports from `ports` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics on an empty port range or a prefix length over 32.
    pub fn new(
        nat_ip: Ipv4Addr,
        inside_net: Ipv4Addr,
        inside_len: u8,
        ports: std::ops::RangeInclusive<u16>,
    ) -> Self {
        assert!(inside_len <= 32, "prefix length {inside_len} out of range");
        assert!(!ports.is_empty(), "port pool must be non-empty");
        let (port_lo, port_hi) = (*ports.start(), *ports.end());
        Self {
            nat_ip,
            inside_net: u32::from(inside_net),
            inside_len,
            out_map: HashMap::new(),
            in_map: HashMap::new(),
            next_port: port_lo,
            port_lo,
            port_hi,
            stats: NatStats::default(),
        }
    }

    /// Current statistics.
    pub fn stats(&self) -> NatStats {
        self.stats
    }

    /// Active translations.
    pub fn active_mappings(&self) -> usize {
        self.out_map.len()
    }

    /// Releases a translation (connection teardown / timeout driven by
    /// the control plane). Returns true if a mapping existed.
    pub fn release(&mut self, inside_ip: Ipv4Addr, inside_port: u16, proto: IpProto) -> bool {
        let key = InsideKey {
            ip: inside_ip,
            port: inside_port,
            proto,
        };
        if let Some(port) = self.out_map.remove(&key) {
            self.in_map.remove(&(port, proto));
            true
        } else {
            false
        }
    }

    fn allocate_port(&mut self, key: InsideKey) -> Option<u16> {
        if let Some(&p) = self.out_map.get(&key) {
            return Some(p);
        }
        let pool = u32::from(self.port_hi) - u32::from(self.port_lo) + 1;
        for _ in 0..pool {
            let candidate = self.next_port;
            self.next_port = if self.next_port == self.port_hi {
                self.port_lo
            } else {
                self.next_port + 1
            };
            if !self.in_map.contains_key(&(candidate, key.proto)) {
                self.out_map.insert(key, candidate);
                self.in_map.insert((candidate, key.proto), key);
                return Some(candidate);
            }
        }
        None
    }

    /// Rewrites one packet; `true` means forward, `false` means drop.
    fn translate(&mut self, packet: &mut Packet) -> bool {
        let Ok(flow) = FiveTuple::of(packet) else {
            self.stats.passed += 1;
            return true;
        };
        if prefix_contains_addr(self.inside_net, self.inside_len, flow.src_ip) {
            // Outbound: rewrite source to the NAT endpoint.
            let key = InsideKey {
                ip: flow.src_ip,
                port: flow.src_port,
                proto: flow.proto,
            };
            let Some(nat_port) = self.allocate_port(key) else {
                self.stats.dropped += 1;
                return false;
            };
            rewrite(
                packet,
                Rewrite {
                    src: Some((self.nat_ip, nat_port)),
                    dst: None,
                },
            );
            self.stats.outbound += 1;
            true
        } else if flow.dst_ip == self.nat_ip {
            // Inbound: translate the NAT endpoint back to the original.
            let Some(&key) = self.in_map.get(&(flow.dst_port, flow.proto)) else {
                self.stats.dropped += 1;
                return false;
            };
            rewrite(
                packet,
                Rewrite {
                    src: None,
                    dst: Some((key.ip, key.port)),
                },
            );
            self.stats.inbound += 1;
            true
        } else {
            self.stats.passed += 1;
            true
        }
    }
}

struct Rewrite {
    src: Option<(Ipv4Addr, u16)>,
    dst: Option<(Ipv4Addr, u16)>,
}

/// Applies address/port rewrites and re-checksums IP + transport.
fn rewrite(packet: &mut Packet, rw: Rewrite) {
    let proto = packet
        .ipv4()
        .expect("translate() validated the tuple")
        .protocol();
    {
        let mut ip = packet.ipv4_mut().expect("validated");
        if let Some((addr, _)) = rw.src {
            ip.set_src(addr);
        }
        if let Some((addr, _)) = rw.dst {
            ip.set_dst(addr);
        }
        ip.update_checksum();
    }
    let (src_ip, dst_ip, seg_len) = {
        let ip = packet.ipv4().expect("validated");
        (
            ip.src(),
            ip.dst(),
            (ip.total_len() as usize - ip.header_len()) as u16,
        )
    };
    match proto {
        IpProto::Udp => {
            let mut udp = packet.udp_mut().expect("tuple implies UDP");
            if let Some((_, port)) = rw.src {
                udp.set_src_port(port);
            }
            if let Some((_, port)) = rw.dst {
                udp.set_dst_port(port);
            }
            udp.update_checksum(src_ip, dst_ip);
        }
        IpProto::Tcp => {
            let mut tcp = packet.tcp_mut().expect("tuple implies TCP");
            if let Some((_, port)) = rw.src {
                tcp.set_src_port(port);
            }
            if let Some((_, port)) = rw.dst {
                tcp.set_dst_port(port);
            }
            tcp.update_checksum(src_ip, dst_ip, seg_len);
        }
        _ => {}
    }
}

impl Operator for SourceNat {
    fn process(&mut self, batch: PacketBatch) -> PacketBatch {
        let mut out = PacketBatch::with_capacity(batch.len());
        for mut p in batch {
            if self.translate(&mut p) {
                out.push(p);
            }
        }
        out
    }

    fn name(&self) -> &str {
        "source-nat"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::headers::ethernet::MacAddr;

    const NAT_IP: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 1);

    fn nat() -> SourceNat {
        SourceNat::new(NAT_IP, Ipv4Addr::new(10, 0, 0, 0), 8, 40_000..=40_003)
    }

    fn outbound(src_port: u16) -> Packet {
        Packet::build_udp(
            MacAddr::ZERO,
            MacAddr::ZERO,
            Ipv4Addr::new(10, 1, 2, 3),
            Ipv4Addr::new(8, 8, 8, 8),
            src_port,
            53,
            8,
        )
    }

    #[test]
    fn outbound_rewrites_source_and_checksums() {
        let mut n = nat();
        let mut p = outbound(5555);
        assert!(n.translate(&mut p));
        let ip = p.ipv4().unwrap();
        assert_eq!(ip.src(), NAT_IP);
        assert!(ip.checksum_ok());
        let udp = p.udp().unwrap();
        assert_eq!(udp.src_port(), 40_000);
        assert!(udp.checksum_ok(ip.src(), ip.dst()));
        assert_eq!(n.stats().outbound, 1);
        assert_eq!(n.active_mappings(), 1);
    }

    #[test]
    fn same_connection_reuses_port() {
        let mut n = nat();
        let mut a = outbound(5555);
        let mut b = outbound(5555);
        n.translate(&mut a);
        n.translate(&mut b);
        assert_eq!(a.udp().unwrap().src_port(), b.udp().unwrap().src_port());
        assert_eq!(n.active_mappings(), 1);
    }

    #[test]
    fn inbound_translates_back() {
        let mut n = nat();
        let mut out = outbound(5555);
        n.translate(&mut out);
        let nat_port = out.udp().unwrap().src_port();

        // Return traffic to the NAT endpoint.
        let mut back = Packet::build_udp(
            MacAddr::ZERO,
            MacAddr::ZERO,
            Ipv4Addr::new(8, 8, 8, 8),
            NAT_IP,
            53,
            nat_port,
            8,
        );
        assert!(n.translate(&mut back));
        let ip = back.ipv4().unwrap();
        assert_eq!(ip.dst(), Ipv4Addr::new(10, 1, 2, 3));
        assert_eq!(back.udp().unwrap().dst_port(), 5555);
        assert!(back.udp().unwrap().checksum_ok(ip.src(), ip.dst()));
        assert_eq!(n.stats().inbound, 1);
    }

    #[test]
    fn unknown_inbound_dropped() {
        let mut n = nat();
        let mut stray = Packet::build_udp(
            MacAddr::ZERO,
            MacAddr::ZERO,
            Ipv4Addr::new(8, 8, 8, 8),
            NAT_IP,
            53,
            40_002,
            0,
        );
        assert!(!n.translate(&mut stray));
        assert_eq!(n.stats().dropped, 1);
    }

    #[test]
    fn unrelated_traffic_passes_untouched() {
        let mut n = nat();
        let mut p = Packet::build_udp(
            MacAddr::ZERO,
            MacAddr::ZERO,
            Ipv4Addr::new(172, 16, 0, 1),
            Ipv4Addr::new(8, 8, 4, 4),
            1234,
            53,
            0,
        );
        let before = p.as_slice().to_vec();
        assert!(n.translate(&mut p));
        assert_eq!(p.as_slice(), &before[..]);
        assert_eq!(n.stats().passed, 1);
    }

    #[test]
    fn port_pool_exhaustion_drops() {
        let mut n = nat();
        // Pool holds 4 ports (40000..=40003); the fifth connection fails.
        for i in 0..4 {
            let mut p = outbound(6000 + i);
            assert!(n.translate(&mut p), "connection {i}");
        }
        let mut fifth = outbound(6004);
        assert!(!n.translate(&mut fifth));
        assert_eq!(n.stats().dropped, 1);
        // Releasing one frees a port for a new connection.
        assert!(n.release(Ipv4Addr::new(10, 1, 2, 3), 6000, IpProto::Udp));
        let mut again = outbound(6004);
        assert!(n.translate(&mut again));
        assert!(!n.release(Ipv4Addr::new(10, 1, 2, 3), 9999, IpProto::Udp));
    }

    #[test]
    fn allocation_skips_colliding_ports() {
        // Round-robin allocation must walk over in-use candidates: after
        // a release, `next_port` can point at a port that is still held
        // by another connection — the allocator must skip it, not hand
        // the same external port to two inside endpoints.
        let mut n = nat();
        for i in 0..4 {
            let mut p = outbound(6000 + i);
            assert!(n.translate(&mut p));
        }
        // Free 40_001 only; next_port has wrapped to 40_000 (in use).
        assert!(n.release(Ipv4Addr::new(10, 1, 2, 3), 6001, IpProto::Udp));
        let mut fresh = outbound(7777);
        assert!(n.translate(&mut fresh));
        assert_eq!(
            fresh.udp().unwrap().src_port(),
            40_001,
            "allocator must skip the three in-use ports and land on the freed one"
        );
        // No double-grant: all four mappings point at distinct ports.
        assert_eq!(n.active_mappings(), 4);
        let mut fifth = outbound(8888);
        assert!(!n.translate(&mut fifth), "pool genuinely full again");
    }

    #[test]
    fn proto_spaces_do_not_collide() {
        // The same external port number is independent per protocol: a
        // UDP mapping on 40_000 must not block the TCP allocator, and
        // inbound lookups must respect the protocol key.
        use crate::headers::tcp::TcpFlags;
        let mut n = nat();
        // Exhaust the pool with UDP mappings.
        for i in 0..4 {
            let mut p = outbound(6000 + i);
            assert!(n.translate(&mut p));
        }
        let mut overflow = outbound(6004);
        assert!(!n.translate(&mut overflow), "UDP space is full");
        // TCP still allocates: port numbers are keyed by protocol.
        let mut t = Packet::build_tcp(
            MacAddr::ZERO,
            MacAddr::ZERO,
            Ipv4Addr::new(10, 1, 2, 3),
            Ipv4Addr::new(8, 8, 8, 8),
            5000,
            443,
            TcpFlags(TcpFlags::SYN),
            0,
        );
        assert!(n.translate(&mut t), "TCP draws from its own port space");
        assert_eq!(n.active_mappings(), 5);
    }

    #[test]
    fn tcp_roundtrip() {
        use crate::headers::tcp::TcpFlags;
        let mut n = nat();
        let mut syn = Packet::build_tcp(
            MacAddr::ZERO,
            MacAddr::ZERO,
            Ipv4Addr::new(10, 9, 9, 9),
            Ipv4Addr::new(1, 1, 1, 1),
            43210,
            443,
            TcpFlags(TcpFlags::SYN),
            0,
        );
        assert!(n.translate(&mut syn));
        let ip = syn.ipv4().unwrap();
        assert_eq!(ip.src(), NAT_IP);
        let nat_port = syn.tcp().unwrap().src_port();
        let seg = (ip.total_len() as usize - ip.header_len()) as u16;
        assert!(syn.tcp().unwrap().checksum_ok(ip.src(), ip.dst(), seg));

        let mut ack = Packet::build_tcp(
            MacAddr::ZERO,
            MacAddr::ZERO,
            Ipv4Addr::new(1, 1, 1, 1),
            NAT_IP,
            443,
            nat_port,
            TcpFlags(TcpFlags::ACK),
            0,
        );
        assert!(n.translate(&mut ack));
        assert_eq!(ack.ipv4().unwrap().dst(), Ipv4Addr::new(10, 9, 9, 9));
        assert_eq!(ack.tcp().unwrap().dst_port(), 43210);
    }

    #[test]
    fn operator_batch_roundtrip_via_pipeline() {
        use crate::pipeline::Pipeline;
        let mut p = Pipeline::new().add(nat());
        let batch: PacketBatch = (0..3).map(|i| outbound(7000 + i)).collect();
        let out = p.run_batch(batch);
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|pk| pk.ipv4().unwrap().src() == NAT_IP));
    }

    #[test]
    #[should_panic(expected = "port pool")]
    fn empty_pool_rejected() {
        #[allow(clippy::reversed_empty_ranges)]
        SourceNat::new(NAT_IP, Ipv4Addr::new(10, 0, 0, 0), 8, 2..=1);
    }
}
