//! Reading and writing the classic libpcap capture format.
//!
//! Dependency-free support for the venerable `.pcap` file layout
//! (magic `0xa1b2c3d4`, microsecond timestamps, LINKTYPE_ETHERNET), so
//! generated or processed traffic can be inspected with standard tools
//! and captures can feed the pipeline as a traffic source.

use crate::batch::PacketBatch;
use crate::packet::Packet;
use std::fmt;
use std::io::{self, Read, Write};

const MAGIC: u32 = 0xA1B2_C3D4;
const VERSION_MAJOR: u16 = 2;
const VERSION_MINOR: u16 = 4;
const LINKTYPE_ETHERNET: u32 = 1;

/// Errors from capture parsing.
#[derive(Debug)]
pub enum PcapError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Bad magic number (including the byte-swapped variant, which this
    /// minimal reader does not support).
    BadMagic(u32),
    /// A record header claims more bytes than the capture holds.
    Truncated,
    /// Unsupported link type (only Ethernet is handled).
    BadLinkType(u32),
}

impl fmt::Display for PcapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PcapError::Io(e) => write!(f, "I/O error: {e}"),
            PcapError::BadMagic(m) => write!(f, "bad pcap magic {m:#010x}"),
            PcapError::Truncated => write!(f, "capture truncated mid-record"),
            PcapError::BadLinkType(l) => write!(f, "unsupported link type {l}"),
        }
    }
}

impl std::error::Error for PcapError {}

impl From<io::Error> for PcapError {
    fn from(e: io::Error) -> Self {
        PcapError::Io(e)
    }
}

/// Writes packets to a pcap stream.
pub struct PcapWriter<W: Write> {
    out: W,
    packets: u64,
}

impl<W: Write> PcapWriter<W> {
    /// Writes the global header and returns the writer.
    pub fn new(mut out: W) -> Result<Self, PcapError> {
        out.write_all(&MAGIC.to_le_bytes())?;
        out.write_all(&VERSION_MAJOR.to_le_bytes())?;
        out.write_all(&VERSION_MINOR.to_le_bytes())?;
        out.write_all(&0i32.to_le_bytes())?; // thiszone
        out.write_all(&0u32.to_le_bytes())?; // sigfigs
        out.write_all(&65535u32.to_le_bytes())?; // snaplen
        out.write_all(&LINKTYPE_ETHERNET.to_le_bytes())?;
        Ok(Self { out, packets: 0 })
    }

    /// Appends one packet with the given timestamp.
    pub fn write_packet(
        &mut self,
        packet: &Packet,
        ts_sec: u32,
        ts_usec: u32,
    ) -> Result<(), PcapError> {
        let data = packet.as_slice();
        let len = u32::try_from(data.len()).map_err(|_| PcapError::Truncated)?;
        self.out.write_all(&ts_sec.to_le_bytes())?;
        self.out.write_all(&ts_usec.to_le_bytes())?;
        self.out.write_all(&len.to_le_bytes())?; // incl_len
        self.out.write_all(&len.to_le_bytes())?; // orig_len
        self.out.write_all(data)?;
        self.packets += 1;
        Ok(())
    }

    /// Appends a whole batch, spacing timestamps by `usec_step`.
    pub fn write_batch(
        &mut self,
        batch: &PacketBatch,
        start_sec: u32,
        usec_step: u32,
    ) -> Result<(), PcapError> {
        for (i, p) in batch.iter().enumerate() {
            let usec = (i as u32).saturating_mul(usec_step);
            self.write_packet(p, start_sec + usec / 1_000_000, usec % 1_000_000)?;
        }
        Ok(())
    }

    /// Packets written so far.
    pub fn packets_written(&self) -> u64 {
        self.packets
    }

    /// Flushes and returns the underlying writer.
    pub fn finish(mut self) -> Result<W, PcapError> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// One parsed capture record.
#[derive(Debug)]
pub struct PcapRecord {
    /// Timestamp seconds.
    pub ts_sec: u32,
    /// Timestamp microseconds.
    pub ts_usec: u32,
    /// The captured frame.
    pub packet: Packet,
}

/// Reads a pcap stream fully into records.
pub fn read_all<R: Read>(mut input: R) -> Result<Vec<PcapRecord>, PcapError> {
    let mut bytes = Vec::new();
    input.read_to_end(&mut bytes)?;
    if bytes.len() < 24 {
        return Err(PcapError::Truncated);
    }
    let magic = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes"));
    if magic != MAGIC {
        return Err(PcapError::BadMagic(magic));
    }
    let linktype = u32::from_le_bytes(bytes[20..24].try_into().expect("4 bytes"));
    if linktype != LINKTYPE_ETHERNET {
        return Err(PcapError::BadLinkType(linktype));
    }
    let mut records = Vec::new();
    let mut pos = 24usize;
    while pos < bytes.len() {
        if pos + 16 > bytes.len() {
            return Err(PcapError::Truncated);
        }
        let u32_at = |off: usize| -> u32 {
            u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4 bytes"))
        };
        let ts_sec = u32_at(pos);
        let ts_usec = u32_at(pos + 4);
        let incl = u32_at(pos + 8) as usize;
        pos += 16;
        if pos + incl > bytes.len() {
            return Err(PcapError::Truncated);
        }
        records.push(PcapRecord {
            ts_sec,
            ts_usec,
            packet: Packet::from_slice(&bytes[pos..pos + incl]),
        });
        pos += incl;
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pktgen::{PacketGen, TrafficConfig};

    fn sample_batch(n: usize) -> PacketBatch {
        PacketGen::new(TrafficConfig::default()).next_batch(n)
    }

    #[test]
    fn roundtrip_batch() {
        let batch = sample_batch(10);
        let originals: Vec<Vec<u8>> = batch.iter().map(|p| p.as_slice().to_vec()).collect();

        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.write_batch(&batch, 1_700_000_000, 10).unwrap();
        assert_eq!(w.packets_written(), 10);
        let bytes = w.finish().unwrap();

        let records = read_all(&bytes[..]).unwrap();
        assert_eq!(records.len(), 10);
        for (r, orig) in records.iter().zip(&originals) {
            assert_eq!(r.packet.as_slice(), &orig[..]);
            assert_eq!(r.ts_sec, 1_700_000_000);
            assert!(r.packet.ipv4().unwrap().checksum_ok());
        }
        // Timestamps advance by the step.
        assert_eq!(records[3].ts_usec, 30);
    }

    #[test]
    fn header_layout_is_canonical() {
        let w = PcapWriter::new(Vec::new()).unwrap();
        let bytes = w.finish().unwrap();
        assert_eq!(bytes.len(), 24);
        assert_eq!(&bytes[0..4], &0xA1B2_C3D4u32.to_le_bytes());
        assert_eq!(&bytes[20..24], &1u32.to_le_bytes());
    }

    #[test]
    fn microsecond_carry() {
        let batch = sample_batch(3);
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        // 600000us step: the second packet carries into the seconds field.
        w.write_batch(&batch, 100, 600_000).unwrap();
        let records = read_all(&w.finish().unwrap()[..]).unwrap();
        assert_eq!((records[0].ts_sec, records[0].ts_usec), (100, 0));
        assert_eq!((records[1].ts_sec, records[1].ts_usec), (100, 600_000));
        assert_eq!((records[2].ts_sec, records[2].ts_usec), (101, 200_000));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = {
            let w = PcapWriter::new(Vec::new()).unwrap();
            w.finish().unwrap()
        };
        bytes[0] = 0;
        assert!(matches!(read_all(&bytes[..]), Err(PcapError::BadMagic(_))));
    }

    #[test]
    fn truncation_rejected() {
        let batch = sample_batch(1);
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.write_batch(&batch, 0, 0).unwrap();
        let bytes = w.finish().unwrap();
        for cut in [10, 30, bytes.len() - 1] {
            assert!(read_all(&bytes[..cut]).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn wrong_linktype_rejected() {
        let w = PcapWriter::new(Vec::new()).unwrap();
        let mut bytes = w.finish().unwrap();
        bytes[20] = 101; // LINKTYPE_RAW
        assert!(matches!(
            read_all(&bytes[..]),
            Err(PcapError::BadLinkType(101))
        ));
    }

    #[test]
    fn captured_traffic_reenters_the_pipeline() {
        use crate::operators::Counter;
        use crate::pipeline::Pipeline;
        let batch = sample_batch(5);
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.write_batch(&batch, 0, 1).unwrap();
        let records = read_all(&w.finish().unwrap()[..]).unwrap();
        let replay: PacketBatch = records.into_iter().map(|r| r.packet).collect();
        let mut p = Pipeline::new().add(Counter::new());
        let out = p.run_batch(replay);
        assert_eq!(out.len(), 5);
    }
}
