//! The linear [`PacketBatch`].
//!
//! NetBricks' central trick — the one §3 of the paper builds on — is that
//! a batch of packets is an *affine* value: it moves from stage to stage,
//! and the type system guarantees that at most one stage can access it at
//! any time. There is no `Clone` impl, deliberately: duplicating a batch
//! would reintroduce exactly the aliasing SFI must exclude.
//!
//! ```compile_fail
//! use rbs_netfx::PacketBatch;
//! let batch = PacketBatch::new();
//! let consume = |b: PacketBatch| b.len();
//! consume(batch);
//! // ERROR: `batch` was moved into the pipeline stage above.
//! let _ = batch.len();
//! ```

use crate::packet::Packet;

/// An owned, ordered collection of packets moving through a pipeline.
#[derive(Debug, Default)]
pub struct PacketBatch {
    packets: Vec<Packet>,
}

impl PacketBatch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty batch with room for `cap` packets.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            packets: Vec::with_capacity(cap),
        }
    }

    /// Creates a batch from a vector of packets.
    pub fn from_packets(packets: Vec<Packet>) -> Self {
        Self { packets }
    }

    /// Number of packets in the batch.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// True when the batch holds no packets.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Total bytes across all packets.
    pub fn total_bytes(&self) -> usize {
        self.packets.iter().map(Packet::len).sum()
    }

    /// Appends a packet, taking ownership of it.
    pub fn push(&mut self, packet: Packet) {
        self.packets.push(packet);
    }

    /// Removes and returns the last packet.
    pub fn pop(&mut self) -> Option<Packet> {
        self.packets.pop()
    }

    /// Iterates over the packets immutably.
    pub fn iter(&self) -> std::slice::Iter<'_, Packet> {
        self.packets.iter()
    }

    /// Iterates over the packets mutably (in-place header rewriting).
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, Packet> {
        self.packets.iter_mut()
    }

    /// Keeps only packets satisfying `pred`; dropped packets are freed.
    pub fn retain(&mut self, pred: impl FnMut(&Packet) -> bool) {
        self.packets.retain(pred);
    }

    /// Splits the batch by a predicate: `(matching, rest)`.
    ///
    /// Ownership of every packet moves into exactly one of the two result
    /// batches — nothing is copied. Both sides are pre-sized to the input
    /// length, so neither reallocates mid-split regardless of how the
    /// predicate divides the packets.
    pub fn partition(self, pred: impl FnMut(&Packet) -> bool) -> (PacketBatch, PacketBatch) {
        let mut yes = PacketBatch::with_capacity(self.packets.len());
        let mut no = PacketBatch::with_capacity(self.packets.len());
        self.partition_into(pred, &mut yes, &mut no);
        (yes, no)
    }

    /// Splits the batch into caller-provided batches, reusing their
    /// capacity.
    ///
    /// The allocation-free sibling of [`partition`](Self::partition): a
    /// hot loop can keep two scratch batches alive, drain them after each
    /// split, and call this repeatedly without ever touching the
    /// allocator once the scratch capacity has grown to the high-water
    /// mark. Each side reserves up to the input length before the split
    /// so pushes never reallocate mid-loop.
    pub fn partition_into(
        self,
        mut pred: impl FnMut(&Packet) -> bool,
        yes: &mut PacketBatch,
        no: &mut PacketBatch,
    ) {
        yes.reserve(self.packets.len());
        no.reserve(self.packets.len());
        for p in self.packets {
            if pred(&p) {
                yes.push(p);
            } else {
                no.push(p);
            }
        }
    }

    /// Reserves capacity for at least `additional` more packets.
    pub fn reserve(&mut self, additional: usize) {
        self.packets.reserve(additional);
    }

    /// Number of packets the batch can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.packets.capacity()
    }

    /// Removes all packets front-to-back, keeping the allocation.
    ///
    /// Order-preserving (unlike repeated [`pop`](Self::pop)) — the
    /// dispatcher relies on this to keep per-flow packet order intact
    /// while recycling the batch's own allocation as scratch.
    pub fn drain(&mut self) -> std::vec::Drain<'_, Packet> {
        self.packets.drain(..)
    }

    /// Appends all packets of `other`, leaving it empty is not possible —
    /// `other` is consumed, making the transfer of ownership explicit.
    pub fn append(&mut self, other: PacketBatch) {
        self.packets.extend(other.packets);
    }

    /// Consumes the batch, yielding its packets.
    pub fn into_packets(self) -> Vec<Packet> {
        self.packets
    }
}

impl IntoIterator for PacketBatch {
    type Item = Packet;
    type IntoIter = std::vec::IntoIter<Packet>;

    fn into_iter(self) -> Self::IntoIter {
        self.packets.into_iter()
    }
}

impl<'a> IntoIterator for &'a PacketBatch {
    type Item = &'a Packet;
    type IntoIter = std::slice::Iter<'a, Packet>;

    fn into_iter(self) -> Self::IntoIter {
        self.packets.iter()
    }
}

impl FromIterator<Packet> for PacketBatch {
    fn from_iter<I: IntoIterator<Item = Packet>>(iter: I) -> Self {
        Self {
            packets: iter.into_iter().collect(),
        }
    }
}

impl Extend<Packet> for PacketBatch {
    fn extend<I: IntoIterator<Item = Packet>>(&mut self, iter: I) {
        self.packets.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::headers::ethernet::MacAddr;
    use std::net::Ipv4Addr;

    fn pkt(dst_port: u16, payload: usize) -> Packet {
        Packet::build_udp(
            MacAddr::ZERO,
            MacAddr::ZERO,
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            1000,
            dst_port,
            payload,
        )
    }

    #[test]
    fn push_pop_len() {
        let mut b = PacketBatch::new();
        assert!(b.is_empty());
        b.push(pkt(1, 0));
        b.push(pkt(2, 0));
        assert_eq!(b.len(), 2);
        let p = b.pop().unwrap();
        assert_eq!(p.udp().unwrap().dst_port(), 2);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn total_bytes_sums() {
        let mut b = PacketBatch::new();
        b.push(pkt(1, 10));
        b.push(pkt(1, 20));
        assert_eq!(b.total_bytes(), 2 * 42 + 30);
    }

    #[test]
    fn retain_filters_in_place() {
        let mut b: PacketBatch = (1..=10).map(|p| pkt(p, 0)).collect();
        b.retain(|p| p.udp().unwrap().dst_port() % 2 == 0);
        assert_eq!(b.len(), 5);
        assert!(b.iter().all(|p| p.udp().unwrap().dst_port() % 2 == 0));
    }

    #[test]
    fn partition_moves_everything() {
        let b: PacketBatch = (1..=10).map(|p| pkt(p, 0)).collect();
        let (lo, hi) = b.partition(|p| p.udp().unwrap().dst_port() <= 5);
        assert_eq!(lo.len(), 5);
        assert_eq!(hi.len(), 5);
        assert!(lo.iter().all(|p| p.udp().unwrap().dst_port() <= 5));
    }

    #[test]
    fn partition_presizes_both_sides() {
        let b: PacketBatch = (1..=8).map(|p| pkt(p, 0)).collect();
        // Worst case for the old asymmetric pre-sizing: everything lands
        // in `no`. Neither side may reallocate during the split.
        let (yes, no) = b.partition(|_| false);
        assert_eq!(yes.len(), 0);
        assert_eq!(no.len(), 8);
        assert!(yes.capacity() >= 8);
        assert!(no.capacity() >= 8);
    }

    #[test]
    fn partition_into_reuses_scratch_without_realloc() {
        let mut yes = PacketBatch::with_capacity(16);
        let mut no = PacketBatch::with_capacity(16);
        for round in 0..4 {
            let b: PacketBatch = (1..=10).map(|p| pkt(p, 0)).collect();
            b.partition_into(|p| p.udp().unwrap().dst_port() % 2 == 0, &mut yes, &mut no);
            assert_eq!(yes.len(), 5, "round {round}");
            assert_eq!(no.len(), 5, "round {round}");
            assert_eq!(yes.capacity(), 16, "scratch must not grow");
            assert_eq!(no.capacity(), 16, "scratch must not grow");
            yes.drain();
            no.drain();
        }
    }

    #[test]
    fn drain_preserves_order_and_capacity() {
        let mut b: PacketBatch = (1..=5).map(|p| pkt(p, 0)).collect();
        let cap = b.capacity();
        let ports: Vec<u16> = b.drain().map(|p| p.udp().unwrap().dst_port()).collect();
        assert_eq!(ports, vec![1, 2, 3, 4, 5], "front-to-back order");
        assert!(b.is_empty());
        assert_eq!(b.capacity(), cap, "allocation retained");
    }

    #[test]
    fn append_consumes_other() {
        let mut a: PacketBatch = (1..=3).map(|p| pkt(p, 0)).collect();
        let b: PacketBatch = (4..=5).map(|p| pkt(p, 0)).collect();
        a.append(b);
        assert_eq!(a.len(), 5);
        // `b` is moved; using it here would not compile.
    }

    #[test]
    fn iter_mut_allows_rewrite() {
        let mut b: PacketBatch = (1..=3).map(|p| pkt(p, 0)).collect();
        for p in b.iter_mut() {
            let mut ip = p.ipv4_mut().unwrap();
            ip.set_ttl(9);
            ip.update_checksum();
        }
        assert!(b.iter().all(|p| p.ipv4().unwrap().ttl() == 9));
    }

    #[test]
    fn into_iterator_forms() {
        let b: PacketBatch = (1..=4).map(|p| pkt(p, 0)).collect();
        let borrowed: usize = (&b).into_iter().count();
        assert_eq!(borrowed, 4);
        let owned: Vec<Packet> = b.into_iter().collect();
        assert_eq!(owned.len(), 4);
    }

    #[test]
    fn with_capacity_does_not_change_semantics() {
        let b = PacketBatch::with_capacity(64);
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
    }
}
