//! Token-bucket rate limiting.
//!
//! The firewall's [`RateLimit`](crate#) action needs an enforcement
//! stage; this module provides the classic token bucket, both as a
//! standalone, explicitly-clocked primitive ([`TokenBucket`], fully
//! deterministic for tests) and as pipeline operators with a global or
//! per-flow budget.

use crate::batch::PacketBatch;
use crate::flow::FiveTuple;
use crate::pipeline::Operator;
use std::collections::HashMap;
use std::time::Instant;

/// A token bucket with explicit time: `rate` tokens per second refill,
/// up to `burst` capacity; one token admits one packet.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate_per_sec: f64,
    burst: f64,
    tokens: f64,
    last_refill_ns: u64,
}

impl TokenBucket {
    /// A bucket starting full.
    ///
    /// # Panics
    ///
    /// Panics unless `rate_per_sec` and `burst` are positive and finite.
    pub fn new(rate_per_sec: f64, burst: f64) -> Self {
        assert!(
            rate_per_sec > 0.0 && rate_per_sec.is_finite(),
            "rate must be positive, got {rate_per_sec}"
        );
        assert!(
            burst > 0.0 && burst.is_finite(),
            "burst must be positive, got {burst}"
        );
        Self {
            rate_per_sec,
            burst,
            tokens: burst,
            last_refill_ns: 0,
        }
    }

    /// Refills according to the time advanced since the last refill.
    /// Time must be monotone; regressions are ignored.
    pub fn refill(&mut self, now_ns: u64) {
        if now_ns > self.last_refill_ns {
            let dt = (now_ns - self.last_refill_ns) as f64 / 1e9;
            self.tokens = (self.tokens + dt * self.rate_per_sec).min(self.burst);
            self.last_refill_ns = now_ns;
        }
    }

    /// Tries to admit one packet at time `now_ns`.
    pub fn admit(&mut self, now_ns: u64) -> bool {
        self.refill(now_ns);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Tokens currently available.
    pub fn available(&self) -> f64 {
        self.tokens
    }
}

/// An integer token bucket on an abstract tick clock: `rate_per_tick`
/// tokens accrue per elapsed tick, up to `burst` capacity.
///
/// This is the admission-control primitive for deterministic runtimes
/// (the tenant layer clocks it with its logical tick counter): every
/// quantity is a `u64`, so two runs of the same tick/request sequence
/// produce identical grants — no floating point, no wall clock.
///
/// The refill arithmetic **saturates**: a huge tick gap (clock jump,
/// tenant parked for millions of ticks, `u64::MAX` handed in by a
/// confused caller) refills to exactly `burst`, never wraps through
/// zero. The property tests pin `granted ≤ rate × elapsed + burst`
/// over arbitrary — including non-monotone — tick sequences.
#[derive(Debug, Clone)]
pub struct TickBucket {
    rate_per_tick: u64,
    burst: u64,
    tokens: u64,
    last_tick: u64,
}

impl TickBucket {
    /// A bucket starting full at tick 0.
    ///
    /// # Panics
    ///
    /// Panics if `burst` is zero (the bucket could never admit).
    pub fn new(rate_per_tick: u64, burst: u64) -> Self {
        assert!(burst > 0, "burst must be positive");
        Self {
            rate_per_tick,
            burst,
            tokens: burst,
            last_tick: 0,
        }
    }

    /// Accrues tokens for the ticks elapsed since the last refill.
    /// Time must be monotone; regressions are ignored. The product
    /// `elapsed × rate` saturates, then clamps to `burst` — a large gap
    /// yields a full bucket, never an empty one.
    pub fn refill(&mut self, now_tick: u64) {
        if now_tick > self.last_tick {
            let elapsed = now_tick - self.last_tick;
            let accrued = elapsed.saturating_mul(self.rate_per_tick);
            self.tokens = self.tokens.saturating_add(accrued).min(self.burst);
            self.last_tick = now_tick;
        }
    }

    /// Tries to admit one unit at `now_tick`.
    pub fn admit(&mut self, now_tick: u64) -> bool {
        self.take(now_tick, 1) == 1
    }

    /// Takes up to `want` tokens at `now_tick`, returning how many were
    /// granted (partial grants model per-packet admission of a batch).
    pub fn take(&mut self, now_tick: u64, want: u64) -> u64 {
        self.refill(now_tick);
        let granted = want.min(self.tokens);
        self.tokens -= granted;
        granted
    }

    /// Tokens currently available (as of the last refill).
    pub fn available(&self) -> u64 {
        self.tokens
    }

    /// The refill rate in tokens per tick.
    pub fn rate_per_tick(&self) -> u64 {
        self.rate_per_tick
    }

    /// The burst capacity.
    pub fn burst(&self) -> u64 {
        self.burst
    }

    /// Changes the refill rate in place (breaker throttling). Tokens
    /// already accrued are kept; future refills use the new rate.
    pub fn set_rate(&mut self, rate_per_tick: u64) {
        self.rate_per_tick = rate_per_tick;
    }
}

/// A pipeline stage enforcing one global packet rate.
pub struct RateLimiter {
    bucket: TokenBucket,
    epoch: Instant,
    admitted: u64,
    dropped: u64,
}

impl RateLimiter {
    /// Limits throughput to `pps` packets/second with a burst of `burst`.
    pub fn new(pps: f64, burst: f64) -> Self {
        Self {
            bucket: TokenBucket::new(pps, burst),
            epoch: Instant::now(),
            admitted: 0,
            dropped: 0,
        }
    }

    /// Packets admitted so far.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Packets dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }
}

impl Operator for RateLimiter {
    fn process(&mut self, batch: PacketBatch) -> PacketBatch {
        let now = self.now_ns();
        let mut out = PacketBatch::with_capacity(batch.len());
        for p in batch {
            if self.bucket.admit(now) {
                self.admitted += 1;
                out.push(p);
            } else {
                self.dropped += 1;
            }
        }
        out
    }

    fn name(&self) -> &str {
        "rate-limiter"
    }
}

/// A pipeline stage with an independent token bucket per flow
/// (five-tuple). Non-flow packets (no parseable tuple) are dropped.
pub struct PerFlowRateLimiter {
    pps: f64,
    burst: f64,
    buckets: HashMap<FiveTuple, TokenBucket>,
    /// Cap on tracked flows; beyond it, new flows are admitted untracked
    /// (fail-open, counted) to bound memory.
    max_flows: usize,
    epoch: Instant,
    admitted: u64,
    dropped: u64,
    untracked: u64,
}

impl PerFlowRateLimiter {
    /// `pps`/`burst` per flow, tracking at most `max_flows` flows.
    pub fn new(pps: f64, burst: f64, max_flows: usize) -> Self {
        assert!(max_flows > 0, "at least one tracked flow required");
        Self {
            pps,
            burst,
            buckets: HashMap::new(),
            max_flows,
            epoch: Instant::now(),
            admitted: 0,
            dropped: 0,
            untracked: 0,
        }
    }

    /// Flows currently tracked.
    pub fn tracked_flows(&self) -> usize {
        self.buckets.len()
    }

    /// Packets admitted so far.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Packets dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Packets admitted without tracking because the flow table was full.
    pub fn untracked(&self) -> u64 {
        self.untracked
    }

    /// Admits or rejects one flow occurrence at an explicit time (the
    /// deterministic core the operator wraps).
    pub fn admit_at(&mut self, flow: FiveTuple, now_ns: u64) -> bool {
        if let Some(bucket) = self.buckets.get_mut(&flow) {
            return bucket.admit(now_ns);
        }
        if self.buckets.len() >= self.max_flows {
            self.untracked += 1;
            return true;
        }
        let mut bucket = TokenBucket::new(self.pps, self.burst);
        bucket.last_refill_ns = now_ns;
        let admitted = bucket.admit(now_ns);
        self.buckets.insert(flow, bucket);
        admitted
    }
}

impl Operator for PerFlowRateLimiter {
    fn process(&mut self, batch: PacketBatch) -> PacketBatch {
        let now = self.epoch.elapsed().as_nanos() as u64;
        let mut out = PacketBatch::with_capacity(batch.len());
        for p in batch {
            match FiveTuple::of(&p) {
                Ok(flow) => {
                    if self.admit_at(flow, now) {
                        self.admitted += 1;
                        out.push(p);
                    } else {
                        self.dropped += 1;
                    }
                }
                Err(_) => {
                    self.dropped += 1;
                }
            }
        }
        out
    }

    fn name(&self) -> &str {
        "per-flow-rate-limiter"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::headers::ethernet::MacAddr;
    use crate::packet::Packet;
    use std::net::Ipv4Addr;

    const SEC: u64 = 1_000_000_000;

    #[test]
    fn bucket_starts_full_and_drains() {
        let mut b = TokenBucket::new(10.0, 3.0);
        assert!(b.admit(0));
        assert!(b.admit(0));
        assert!(b.admit(0));
        assert!(!b.admit(0), "burst of 3 exhausted");
        assert!(b.available() < 1.0);
    }

    #[test]
    fn bucket_refills_at_rate() {
        let mut b = TokenBucket::new(10.0, 3.0);
        for _ in 0..3 {
            assert!(b.admit(0));
        }
        // 100ms at 10 pps = 1 token.
        assert!(b.admit(SEC / 10));
        assert!(!b.admit(SEC / 10));
        // A long gap refills only to the burst cap.
        b.refill(100 * SEC);
        assert!((b.available() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn bucket_ignores_time_regression() {
        let mut b = TokenBucket::new(1.0, 1.0);
        assert!(b.admit(SEC));
        b.refill(0); // clock went backwards
        assert!(!b.admit(SEC), "no free tokens from a regressing clock");
    }

    #[test]
    fn sustained_rate_is_enforced() {
        let mut b = TokenBucket::new(100.0, 5.0);
        let mut admitted = 0;
        // Offer 1000 packets over 1 second (1 per ms).
        for ms in 0..1000u64 {
            if b.admit(ms * SEC / 1000) {
                admitted += 1;
            }
        }
        // ~100 (rate) + 5 (initial burst), small tolerance.
        assert!((100..=110).contains(&admitted), "admitted {admitted}");
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_rejected() {
        TokenBucket::new(0.0, 1.0);
    }

    fn pkt(sport: u16) -> Packet {
        Packet::build_udp(
            MacAddr::ZERO,
            MacAddr::ZERO,
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            sport,
            80,
            0,
        )
    }

    #[test]
    fn global_limiter_drops_over_burst() {
        let mut rl = RateLimiter::new(1.0, 4.0);
        let batch: PacketBatch = (0..10).map(|i| pkt(1000 + i)).collect();
        let out = rl.process(batch);
        assert_eq!(out.len(), 4, "burst admits 4, the rest drop");
        assert_eq!(rl.admitted(), 4);
        assert_eq!(rl.dropped(), 6);
        assert_eq!(rl.name(), "rate-limiter");
    }

    #[test]
    fn per_flow_buckets_are_independent() {
        let mut rl = PerFlowRateLimiter::new(1.0, 2.0, 100);
        let f1 = FiveTuple::of(&pkt(1)).unwrap();
        let f2 = FiveTuple::of(&pkt(2)).unwrap();
        assert!(rl.admit_at(f1, 0));
        assert!(rl.admit_at(f1, 0));
        assert!(!rl.admit_at(f1, 0), "flow 1 exhausted");
        assert!(rl.admit_at(f2, 0), "flow 2 has its own bucket");
        assert_eq!(rl.tracked_flows(), 2);
    }

    #[test]
    fn per_flow_operator_counts() {
        let mut rl = PerFlowRateLimiter::new(1000.0, 1.0, 100);
        // Two packets of the same flow in one batch: second exceeds burst.
        let batch: PacketBatch = vec![pkt(7), pkt(7), pkt(8)].into_iter().collect();
        let out = rl.process(batch);
        assert_eq!(out.len(), 2);
        assert_eq!(rl.admitted(), 2);
        assert_eq!(rl.dropped(), 1);
    }

    #[test]
    fn tick_bucket_starts_full_and_drains() {
        let mut b = TickBucket::new(2, 3);
        assert_eq!(b.take(0, 10), 3, "initial burst");
        assert!(!b.admit(0));
        // One tick refills 2.
        assert_eq!(b.take(1, 10), 2);
        assert_eq!(b.available(), 0);
    }

    #[test]
    fn tick_bucket_saturates_on_huge_gaps() {
        let mut b = TickBucket::new(u64::MAX, 5);
        b.take(0, 5);
        // elapsed × rate would wrap catastrophically without saturation.
        b.refill(u64::MAX);
        assert_eq!(b.available(), 5, "gap refills to burst, never wraps");
        let mut c = TickBucket::new(3, 10);
        c.take(0, 10);
        c.refill(u64::MAX / 2);
        assert_eq!(c.available(), 10);
    }

    #[test]
    fn tick_bucket_ignores_time_regression() {
        let mut b = TickBucket::new(1, 1);
        assert!(b.admit(10));
        b.refill(0);
        assert!(!b.admit(10), "no free tokens from a regressing clock");
        assert!(b.admit(11));
    }

    #[test]
    fn tick_bucket_enforces_sustained_rate() {
        let mut b = TickBucket::new(4, 8);
        let mut granted = 0;
        for tick in 0..100u64 {
            granted += b.take(tick, 100);
        }
        // 8 initial + 4/tick × 99 elapsed ticks.
        assert_eq!(granted, 8 + 4 * 99);
    }

    #[test]
    fn tick_bucket_set_rate_applies_forward() {
        let mut b = TickBucket::new(10, 100);
        b.take(0, 100);
        b.set_rate(1);
        assert_eq!(b.take(5, 100), 5, "new rate governs the refill");
    }

    #[test]
    #[should_panic(expected = "burst must be positive")]
    fn tick_bucket_zero_burst_rejected() {
        TickBucket::new(1, 0);
    }

    proptest::proptest! {
        /// The satellite invariant: over ANY tick/request sequence —
        /// non-monotone, overflowing, arbitrary request sizes — the
        /// total granted never exceeds `rate × elapsed + burst`, where
        /// elapsed is the furthest the clock ever advanced.
        #[test]
        fn tick_bucket_never_overgrants(
            rate in 0u64..=u64::MAX,
            burst in 1u64..=u64::MAX,
            ops in proptest::collection::vec((0u64..=u64::MAX, 0u64..=4096), 1..64),
        ) {
            let mut b = TickBucket::new(rate, burst);
            let mut granted: u128 = 0;
            let mut max_tick: u128 = 0;
            for &(tick, want) in &ops {
                granted += u128::from(b.take(tick, want));
                max_tick = max_tick.max(u128::from(tick));
            }
            let bound = u128::from(rate) * max_tick + u128::from(burst);
            proptest::prop_assert!(
                granted <= bound,
                "granted {granted} exceeds rate×elapsed+burst = {bound}"
            );
        }

        /// Saturation, not wrap: after any sequence the available token
        /// count is still within the burst cap.
        #[test]
        fn tick_bucket_tokens_never_exceed_burst(
            rate in 0u64..=u64::MAX,
            burst in 1u64..=u64::MAX,
            ticks in proptest::collection::vec(0u64..=u64::MAX, 1..64),
        ) {
            let mut b = TickBucket::new(rate, burst);
            for &t in &ticks {
                b.refill(t);
                proptest::prop_assert!(b.available() <= b.burst());
            }
        }
    }

    #[test]
    fn flow_table_cap_fails_open() {
        let mut rl = PerFlowRateLimiter::new(1.0, 1.0, 2);
        for sport in 0..5u16 {
            let f = FiveTuple::of(&pkt(sport)).unwrap();
            assert!(rl.admit_at(f, 0));
        }
        assert_eq!(rl.tracked_flows(), 2);
        assert_eq!(rl.untracked(), 3);
    }
}
