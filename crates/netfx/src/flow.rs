//! Flow identification: the classic 5-tuple and its hash.
//!
//! Both the Maglev load balancer and the firewall classify packets by
//! flow. The hash here is a deterministic FxHash-style mix — stable across
//! runs so experiments are reproducible, cheap enough for the data path.

use crate::headers::ipv4::IpProto;
use crate::packet::{Packet, PacketError};
use rbs_checkpoint::{CheckpointCtx, Checkpointable, RestoreCtx, Snapshot, SnapshotError};
use std::net::Ipv4Addr;

/// The 5-tuple identifying a transport flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FiveTuple {
    /// Source IPv4 address.
    pub src_ip: Ipv4Addr,
    /// Destination IPv4 address.
    pub dst_ip: Ipv4Addr,
    /// Source transport port.
    pub src_port: u16,
    /// Destination transport port.
    pub dst_port: u16,
    /// Transport protocol (TCP or UDP for extractable flows).
    pub proto: IpProto,
}

impl FiveTuple {
    /// Extracts the 5-tuple from a TCP or UDP packet.
    ///
    /// Fails with [`PacketError::WrongProtocol`] for other protocols.
    pub fn of(packet: &Packet) -> Result<FiveTuple, PacketError> {
        let ip = packet.ipv4()?;
        match ip.protocol() {
            IpProto::Udp => {
                let u = packet.udp()?;
                Ok(FiveTuple {
                    src_ip: ip.src(),
                    dst_ip: ip.dst(),
                    src_port: u.src_port(),
                    dst_port: u.dst_port(),
                    proto: IpProto::Udp,
                })
            }
            IpProto::Tcp => {
                let t = packet.tcp()?;
                Ok(FiveTuple {
                    src_ip: ip.src(),
                    dst_ip: ip.dst(),
                    src_port: t.src_port(),
                    dst_port: t.dst_port(),
                    proto: IpProto::Tcp,
                })
            }
            _ => Err(PacketError::WrongProtocol {
                expected: "tcp-or-udp",
            }),
        }
    }

    /// The reverse direction of this flow.
    pub fn reversed(&self) -> FiveTuple {
        FiveTuple {
            src_ip: self.dst_ip,
            dst_ip: self.src_ip,
            src_port: self.dst_port,
            dst_port: self.src_port,
            proto: self.proto,
        }
    }

    /// A stable 64-bit hash of the tuple.
    ///
    /// Deterministic across processes (unlike `std`'s `RandomState`), so
    /// Maglev table assignments and experiment results are reproducible.
    pub fn stable_hash(&self) -> u64 {
        let mut h = Fx64::new();
        h.mix(u64::from(u32::from(self.src_ip)));
        h.mix(u64::from(u32::from(self.dst_ip)));
        h.mix(u64::from(self.src_port) << 16 | u64::from(self.dst_port));
        h.mix(u64::from(u8::from(self.proto)));
        h.finish()
    }

    /// A second, independent stable hash (used by Maglev for permutation
    /// `skip` values so table positions decorrelate from `offset`).
    pub fn stable_hash2(&self) -> u64 {
        // Re-mix the primary hash with a different odd constant.
        let mut h = Fx64 {
            state: 0x9E37_79B9_7F4A_7C15,
        };
        h.mix(self.stable_hash());
        h.finish()
    }
}

// Checkpointed as a 5-element Seq of widened scalars so flow tables
// (keyed by tuple) survive warm recovery. Addresses travel as their u32
// big-endian value, the protocol as its IANA number.
impl Checkpointable for FiveTuple {
    fn checkpoint(&self, ctx: &mut CheckpointCtx) -> Snapshot {
        Snapshot::Seq(vec![
            u32::from(self.src_ip).checkpoint(ctx),
            u32::from(self.dst_ip).checkpoint(ctx),
            self.src_port.checkpoint(ctx),
            self.dst_port.checkpoint(ctx),
            u8::from(self.proto).checkpoint(ctx),
        ])
    }

    fn restore(snap: &Snapshot, ctx: &mut RestoreCtx<'_>) -> Result<Self, SnapshotError> {
        let Snapshot::Seq(items) = snap else {
            return Err(SnapshotError::TypeMismatch {
                expected: "five-tuple",
                found: snap.kind_name(),
            });
        };
        if items.len() != 5 {
            return Err(SnapshotError::WrongLength {
                expected: 5,
                got: items.len(),
            });
        }
        Ok(FiveTuple {
            src_ip: Ipv4Addr::from(u32::restore(&items[0], ctx)?),
            dst_ip: Ipv4Addr::from(u32::restore(&items[1], ctx)?),
            src_port: u16::restore(&items[2], ctx)?,
            dst_port: u16::restore(&items[3], ctx)?,
            proto: IpProto::from(u8::restore(&items[4], ctx)?),
        })
    }
}

/// Minimal FxHash-style 64-bit mixer.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Fx64 {
    state: u64,
}

impl Fx64 {
    const K: u64 = 0x517C_C1B7_2722_0A95;

    pub(crate) fn new() -> Self {
        Self { state: 0 }
    }

    #[inline]
    pub(crate) fn mix(&mut self, v: u64) {
        self.state = (self.state.rotate_left(5) ^ v).wrapping_mul(Self::K);
    }

    pub(crate) fn finish(mut self) -> u64 {
        // A final avalanche round so low-entropy inputs spread to all bits.
        self.mix(0xFF51_AFD7_ED55_8CCD);
        let mut x = self.state;
        x ^= x >> 33;
        x = x.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
        x ^= x >> 33;
        x
    }
}

/// The canonical flow hash of a packet: the 5-tuple hash when the frame
/// parses as TCP/UDP over IPv4, otherwise a stable hash of the raw bytes.
///
/// This is the single definition both the dispatcher (sharding) and the
/// pool-aware generator (hash stamping) agree on; [`Packet::flow_hash`]
/// memoizes it on the packet.
pub fn packet_flow_hash(packet: &Packet) -> u64 {
    match FiveTuple::of(packet) {
        Ok(tuple) => tuple.stable_hash(),
        Err(_) => stable_hash_bytes(packet.as_slice()),
    }
}

impl Packet {
    /// The packet's flow hash, computed at most once.
    ///
    /// Returns the cached tag when present; otherwise computes
    /// [`packet_flow_hash`] and caches it. Any mutable view taken after
    /// this call invalidates the cache, so the value can never go stale.
    pub fn flow_hash(&mut self) -> u64 {
        if let Some(h) = self.cached_flow_hash() {
            return h;
        }
        let h = packet_flow_hash(self);
        self.set_cached_flow_hash(h);
        h
    }
}

/// Hashes an arbitrary byte string with the same mixer (for non-tuple
/// keys, e.g. backend names in Maglev).
pub fn stable_hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = Fx64::new();
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        h.mix(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
    }
    let mut last = [0u8; 8];
    let rem = chunks.remainder();
    last[..rem.len()].copy_from_slice(rem);
    h.mix(u64::from_le_bytes(last));
    h.mix(bytes.len() as u64);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::headers::ethernet::MacAddr;
    use crate::headers::tcp::TcpFlags;

    fn tuple(a: u8, b: u8, sp: u16, dp: u16) -> FiveTuple {
        FiveTuple {
            src_ip: Ipv4Addr::new(10, 0, 0, a),
            dst_ip: Ipv4Addr::new(10, 0, 0, b),
            src_port: sp,
            dst_port: dp,
            proto: IpProto::Udp,
        }
    }

    #[test]
    fn extract_udp() {
        let p = Packet::build_udp(
            MacAddr::ZERO,
            MacAddr::ZERO,
            Ipv4Addr::new(1, 2, 3, 4),
            Ipv4Addr::new(5, 6, 7, 8),
            1111,
            2222,
            0,
        );
        let t = FiveTuple::of(&p).unwrap();
        assert_eq!(t.src_ip, Ipv4Addr::new(1, 2, 3, 4));
        assert_eq!(t.dst_port, 2222);
        assert_eq!(t.proto, IpProto::Udp);
    }

    #[test]
    fn extract_tcp() {
        let p = Packet::build_tcp(
            MacAddr::ZERO,
            MacAddr::ZERO,
            Ipv4Addr::new(9, 9, 9, 9),
            Ipv4Addr::new(8, 8, 8, 8),
            443,
            55555,
            TcpFlags(TcpFlags::ACK),
            4,
        );
        let t = FiveTuple::of(&p).unwrap();
        assert_eq!(t.proto, IpProto::Tcp);
        assert_eq!(t.src_port, 443);
    }

    #[test]
    fn reversed_involution() {
        let t = tuple(1, 2, 100, 200);
        assert_eq!(t.reversed().reversed(), t);
        assert_ne!(t.reversed(), t);
        assert_eq!(t.reversed().src_port, 200);
    }

    #[test]
    fn hash_is_deterministic_and_direction_sensitive() {
        let t = tuple(1, 2, 100, 200);
        assert_eq!(t.stable_hash(), t.stable_hash());
        assert_ne!(t.stable_hash(), t.reversed().stable_hash());
        assert_ne!(t.stable_hash(), t.stable_hash2());
    }

    #[test]
    fn hash_spreads_similar_tuples() {
        // Consecutive ports must not collide or cluster in low bits.
        let mut seen = std::collections::HashSet::new();
        for port in 0..1000u16 {
            let h = tuple(1, 2, port, 80).stable_hash();
            assert!(seen.insert(h), "collision at port {port}");
        }
        // Low 8 bits should take many values.
        let low: std::collections::HashSet<u8> = (0..1000u16)
            .map(|p| tuple(1, 2, p, 80).stable_hash() as u8)
            .collect();
        assert!(low.len() > 200, "only {} distinct low bytes", low.len());
    }

    #[test]
    fn byte_hash_distinguishes_lengths() {
        assert_ne!(stable_hash_bytes(b""), stable_hash_bytes(b"\0"));
        assert_ne!(stable_hash_bytes(b"abc"), stable_hash_bytes(b"abd"));
        assert_eq!(
            stable_hash_bytes(b"backend-1"),
            stable_hash_bytes(b"backend-1")
        );
    }

    #[test]
    fn flow_hash_memoizes_and_tracks_mutation() {
        let mut p = Packet::build_udp(
            MacAddr::ZERO,
            MacAddr::ZERO,
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            1111,
            2222,
            8,
        );
        let h = p.flow_hash();
        assert_eq!(p.cached_flow_hash(), Some(h));
        assert_eq!(h, packet_flow_hash(&p), "cache agrees with recompute");

        // Rewriting a header (NAT-style) must produce a fresh, different hash.
        p.ipv4_mut().unwrap().set_src(Ipv4Addr::new(192, 168, 0, 7));
        assert_eq!(p.cached_flow_hash(), None);
        let h2 = p.flow_hash();
        assert_ne!(h, h2);
        assert_eq!(h2, packet_flow_hash(&p));
    }

    #[test]
    fn flow_hash_falls_back_to_bytes_for_unparseable_frames() {
        let mut p = Packet::from_slice(&[0xDE, 0xAD, 0xBE, 0xEF]);
        let h = p.flow_hash();
        assert_eq!(h, stable_hash_bytes(&[0xDE, 0xAD, 0xBE, 0xEF]));
    }

    #[test]
    fn non_transport_rejected() {
        let mut p = Packet::build_udp(
            MacAddr::ZERO,
            MacAddr::ZERO,
            Ipv4Addr::LOCALHOST,
            Ipv4Addr::LOCALHOST,
            1,
            2,
            0,
        );
        p.ipv4_mut().unwrap().set_protocol(IpProto::Icmp);
        assert!(FiveTuple::of(&p).is_err());
    }
}
