//! The consistent-hashing contract the tenant layer leans on: adding or
//! removing one backend remaps only about that backend's share of the
//! table, and rebuilds are a pure function of the backend list.
//!
//! The bound asserted here is the satellite's `≤ table_size / N`
//! **collateral** budget: entries the change did not force to move
//! (both endpoints exist in both tables) must stay within one backend's
//! share. The forced movement — the removed backend's own entries, or
//! the share a new backend claims — is necessary by definition and is
//! asserted separately as a lower bound.

use rbs_maglev::{Backend, MaglevTable};

const TABLE_SIZE: usize = 4099; // prime

fn backends(n: usize) -> Vec<Backend> {
    (0..n)
        .map(|i| Backend::new(format!("tenant-{i}")))
        .collect()
}

#[test]
fn removal_remaps_at_most_one_share_of_collateral() {
    for n in [4usize, 8, 16] {
        let full = MaglevTable::new(backends(n), TABLE_SIZE).unwrap();
        for victim in 0..n {
            let mut rest = backends(n);
            rest.remove(victim);
            let reduced = MaglevTable::new(rest, TABLE_SIZE).unwrap();

            let victim_share = full.entry_counts()[victim];
            let moved = full.disrupted_entries(&reduced);
            let collateral = full.collateral_moves(&reduced);

            // The victim's own entries must all move — nothing else is
            // obligated to.
            assert!(
                moved >= victim_share,
                "n={n} victim={victim}: moved {moved} < forced {victim_share}"
            );
            assert_eq!(moved - collateral, victim_share);
            // The satellite bound: collateral stays within one
            // backend's share of the table.
            assert!(
                collateral <= TABLE_SIZE / n,
                "n={n} victim={victim}: collateral {collateral} > {}",
                TABLE_SIZE / n
            );
        }
    }
}

#[test]
fn addition_remaps_at_most_one_share_of_collateral() {
    for n in [4usize, 8, 16] {
        let before = MaglevTable::new(backends(n), TABLE_SIZE).unwrap();
        let after = MaglevTable::new(backends(n + 1), TABLE_SIZE).unwrap();

        let newcomer_share = after.entry_counts()[n];
        let moved = before.disrupted_entries(&after);
        let collateral = before.collateral_moves(&after);

        // Every entry the newcomer claims must move to it; the rest of
        // the movement is collateral.
        assert_eq!(moved, newcomer_share + collateral);
        assert!(
            collateral <= TABLE_SIZE / n,
            "n={n}: collateral {collateral} > {}",
            TABLE_SIZE / n
        );
        // The newcomer ends up near its fair share.
        let fair = TABLE_SIZE / (n + 1);
        assert!(
            newcomer_share >= fair / 2 && newcomer_share <= fair * 2,
            "n={n}: newcomer took {newcomer_share}, fair {fair}"
        );
    }
}

#[test]
fn rebuild_is_deterministic_per_backend_list() {
    // The backend names are the seed: two builds of the same list are
    // entry-for-entry identical — a mid-run rebuild on another host (or
    // in a replayed experiment) steers every flow the same way.
    let a = MaglevTable::new(backends(8), TABLE_SIZE).unwrap();
    let b = MaglevTable::new(backends(8), TABLE_SIZE).unwrap();
    assert_eq!(a.disrupted_entries(&b), 0);
    for h in (0..50_000u64).step_by(13) {
        assert_eq!(a.lookup(h), b.lookup(h));
    }
}

#[test]
fn remove_then_readd_restores_the_original_table_exactly() {
    // Tenant churn round-trip: a tenant that leaves and comes back under
    // the same name gets exactly its old entries — returning flows
    // re-home to their original backend with zero residual disruption.
    let original = MaglevTable::new(backends(6), TABLE_SIZE).unwrap();
    let mut without = backends(6);
    without.remove(2);
    let reduced = MaglevTable::new(without, TABLE_SIZE).unwrap();
    assert!(original.disrupted_entries(&reduced) > 0);

    let restored = MaglevTable::new(backends(6), TABLE_SIZE).unwrap();
    assert_eq!(original.disrupted_entries(&restored), 0);
}

#[test]
fn weighted_removal_respects_weighted_share() {
    // A weight-2 backend owns ~2 shares; removing it forces exactly its
    // entries to move and the collateral budget still holds.
    let mut list = backends(7);
    list[3] = Backend::weighted("tenant-3", 2);
    let full = MaglevTable::new(list.clone(), TABLE_SIZE).unwrap();
    list.remove(3);
    let reduced = MaglevTable::new(list, TABLE_SIZE).unwrap();

    let victim_share = full.entry_counts()[3];
    let moved = full.disrupted_entries(&reduced);
    let collateral = full.collateral_moves(&reduced);
    assert_eq!(moved - collateral, victim_share);
    assert!(victim_share > TABLE_SIZE / 8, "weight 2 of 8 shares");
    assert!(collateral <= TABLE_SIZE / 7);
}
