//! The Maglev software load balancer, as a `rbs-netfx` network function.
//!
//! Figure 2 of the paper compares SFI overhead against "the NetBricks
//! implementation of the Maglev load balancer [13]", a realistic but
//! lightweight network function. This crate is a from-scratch
//! implementation of Maglev's two data-path pieces:
//!
//! - [`table`]: the consistent-hashing lookup table of the Maglev paper
//!   (Eisenbud et al., NSDI '16, §3.4) — per-backend permutations of table
//!   positions generated from two independent hashes, populated round-robin
//!   so every backend owns an almost equal share of entries, and minimally
//!   disrupted when backends come and go;
//! - [`lb`]: the packet-facing load balancer — five-tuple hash, connection
//!   tracking so established flows stick to their backend across table
//!   rebuilds, and destination-NAT packet rewriting.

pub mod baseline;
pub mod lb;
pub mod table;

pub use baseline::{compare_removal, DisruptionComparison, ModNTable};
pub use lb::{LbStats, MaglevLb};
pub use table::{Backend, MaglevTable, TableError};
