//! The packet-facing load balancer.
//!
//! [`MaglevLb`] is the network function Figure 2 uses as its realistic
//! cost yardstick. Per packet it does exactly what Maglev's data path
//! does: extract the five-tuple, consult the connection table (so
//! established flows survive backend-set changes), fall back to the
//! consistent-hash lookup table, then destination-NAT the packet to the
//! chosen backend and fix checksums.

use crate::table::{Backend, MaglevTable, TableError};
use rbs_netfx::batch::PacketBatch;
use rbs_netfx::flow::FiveTuple;
use rbs_netfx::packet::Packet;
use rbs_netfx::pipeline::Operator;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Data-path statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LbStats {
    /// Packets steered via the connection table.
    pub conn_table_hits: u64,
    /// Packets steered via the consistent-hash table (new flows).
    pub hash_lookups: u64,
    /// Packets dropped because they carried no extractable five-tuple.
    pub dropped: u64,
    /// Per-backend packet counts, indexed like the table's backend list.
    pub per_backend: Vec<u64>,
}

/// A Maglev load balancer stage.
pub struct MaglevLb {
    table: MaglevTable,
    /// Backend name -> VIP-side address to DNAT to.
    backend_addrs: Vec<Ipv4Addr>,
    conn_table: HashMap<FiveTuple, u32>,
    stats: LbStats,
    /// When false, skip the connection table entirely (pure consistent
    /// hashing; used to measure the marginal cost of tracking).
    track_connections: bool,
}

impl MaglevLb {
    /// Builds a load balancer over `backends`, DNAT-ing to `addrs`
    /// (parallel arrays), with a consistent-hash table of `table_size`.
    ///
    /// # Panics
    ///
    /// Panics if `backends` and `addrs` lengths differ; table-size and
    /// backend validation errors are returned.
    pub fn new(
        backends: Vec<Backend>,
        addrs: Vec<Ipv4Addr>,
        table_size: usize,
    ) -> Result<Self, TableError> {
        assert_eq!(
            backends.len(),
            addrs.len(),
            "one DNAT address per backend required"
        );
        let n = backends.len();
        let table = MaglevTable::new(backends, table_size)?;
        Ok(Self {
            table,
            backend_addrs: addrs,
            conn_table: HashMap::new(),
            stats: LbStats {
                per_backend: vec![0; n],
                ..Default::default()
            },
            track_connections: true,
        })
    }

    /// Disables the connection table (pure consistent hashing).
    pub fn without_connection_tracking(mut self) -> Self {
        self.track_connections = false;
        self
    }

    /// The underlying lookup table.
    pub fn table(&self) -> &MaglevTable {
        &self.table
    }

    /// Current statistics.
    pub fn stats(&self) -> &LbStats {
        &self.stats
    }

    /// Number of tracked connections.
    pub fn tracked_connections(&self) -> usize {
        self.conn_table.len()
    }

    /// Replaces the backend set, rebuilding the lookup table. Existing
    /// tracked connections keep their backend if it is still present;
    /// connections to removed backends are forgotten (they will be
    /// re-steered by hash on their next packet).
    pub fn update_backends(
        &mut self,
        backends: Vec<Backend>,
        addrs: Vec<Ipv4Addr>,
        table_size: usize,
    ) -> Result<(), TableError> {
        assert_eq!(
            backends.len(),
            addrs.len(),
            "one DNAT address per backend required"
        );
        let old_names: Vec<String> = self
            .table
            .backends()
            .iter()
            .map(|b| b.name.clone())
            .collect();
        let new_table = MaglevTable::new(backends, table_size)?;
        // Remap tracked connections from old indices to new ones by name.
        let remap: Vec<Option<u32>> = old_names
            .iter()
            .map(|name| {
                new_table
                    .backends()
                    .iter()
                    .position(|b| &b.name == name)
                    .map(|i| i as u32)
            })
            .collect();
        self.conn_table.retain(|_, idx| {
            if let Some(new_idx) = remap.get(*idx as usize).copied().flatten() {
                *idx = new_idx;
                true
            } else {
                false
            }
        });
        let n = new_table.backends().len();
        self.table = new_table;
        self.backend_addrs = addrs;
        self.stats.per_backend.resize(n, 0);
        Ok(())
    }

    /// Steers one packet, returning the chosen backend index, or `None`
    /// for packets without a five-tuple (dropped).
    pub fn steer(&mut self, packet: &mut Packet) -> Option<usize> {
        let tuple = FiveTuple::of(packet).ok()?;
        let idx = if self.track_connections {
            match self.conn_table.get(&tuple) {
                Some(&idx) => {
                    self.stats.conn_table_hits += 1;
                    idx as usize
                }
                None => {
                    let idx = self.table.lookup(tuple.stable_hash());
                    self.conn_table.insert(tuple, idx as u32);
                    self.stats.hash_lookups += 1;
                    idx
                }
            }
        } else {
            self.stats.hash_lookups += 1;
            self.table.lookup(tuple.stable_hash())
        };
        self.rewrite(packet, idx);
        self.stats.per_backend[idx] += 1;
        Some(idx)
    }

    /// DNAT: rewrite the destination IP to the backend and fix checksums.
    fn rewrite(&self, packet: &mut Packet, backend: usize) {
        let addr = self.backend_addrs[backend];
        let (src, proto) = {
            let ip = packet.ipv4().expect("steer() validated IPv4");
            (ip.src(), ip.protocol())
        };
        {
            let mut ip = packet.ipv4_mut().expect("validated above");
            ip.set_dst(addr);
            ip.update_checksum();
        }
        match proto {
            rbs_netfx::headers::IpProto::Udp => {
                let mut udp = packet.udp_mut().expect("five-tuple implies UDP parses");
                udp.update_checksum(src, addr);
            }
            rbs_netfx::headers::IpProto::Tcp => {
                let seg_len = {
                    let ip = packet.ipv4().expect("validated above");
                    (ip.total_len() as usize - ip.header_len()) as u16
                };
                let mut tcp = packet.tcp_mut().expect("five-tuple implies TCP parses");
                tcp.update_checksum(src, addr, seg_len);
            }
            _ => {}
        }
    }
}

impl Operator for MaglevLb {
    fn process(&mut self, batch: PacketBatch) -> PacketBatch {
        let mut out = PacketBatch::with_capacity(batch.len());
        for mut p in batch {
            if self.steer(&mut p).is_some() {
                out.push(p);
            } else {
                self.stats.dropped += 1;
            }
        }
        out
    }

    fn name(&self) -> &str {
        "maglev-lb"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbs_netfx::headers::ethernet::MacAddr;
    use rbs_netfx::headers::IpProto;
    use rbs_netfx::pktgen::{PacketGen, TrafficConfig};

    fn backends(n: usize) -> (Vec<Backend>, Vec<Ipv4Addr>) {
        let b = (0..n).map(|i| Backend::new(format!("be-{i}"))).collect();
        let a = (0..n)
            .map(|i| Ipv4Addr::new(10, 1, 0, i as u8 + 1))
            .collect();
        (b, a)
    }

    fn lb(n: usize) -> MaglevLb {
        let (b, a) = backends(n);
        MaglevLb::new(b, a, 503).unwrap()
    }

    fn udp_packet(sport: u16) -> Packet {
        Packet::build_udp(
            MacAddr::ZERO,
            MacAddr::ZERO,
            Ipv4Addr::new(172, 16, 0, 9),
            Ipv4Addr::new(192, 0, 2, 1),
            sport,
            80,
            8,
        )
    }

    #[test]
    fn steering_rewrites_and_checksums() {
        let mut lb = lb(3);
        let mut p = udp_packet(4242);
        let idx = lb.steer(&mut p).unwrap();
        let ip = p.ipv4().unwrap();
        assert_eq!(ip.dst(), Ipv4Addr::new(10, 1, 0, idx as u8 + 1));
        assert!(ip.checksum_ok());
        let udp = p.udp().unwrap();
        assert!(udp.checksum_ok(ip.src(), ip.dst()));
    }

    #[test]
    fn same_flow_same_backend() {
        let mut lb = lb(5);
        let mut first = udp_packet(1000);
        let idx = lb.steer(&mut first).unwrap();
        for _ in 0..10 {
            let mut p = udp_packet(1000);
            assert_eq!(lb.steer(&mut p).unwrap(), idx);
        }
        assert_eq!(lb.stats().hash_lookups, 1);
        assert_eq!(lb.stats().conn_table_hits, 10);
        assert_eq!(lb.tracked_connections(), 1);
    }

    #[test]
    fn tcp_flows_steered_too() {
        let mut lb = lb(2);
        let mut p = Packet::build_tcp(
            MacAddr::ZERO,
            MacAddr::ZERO,
            Ipv4Addr::new(172, 16, 0, 9),
            Ipv4Addr::new(192, 0, 2, 1),
            555,
            80,
            rbs_netfx::headers::tcp::TcpFlags(rbs_netfx::headers::tcp::TcpFlags::SYN),
            0,
        );
        let idx = lb.steer(&mut p).unwrap();
        let ip = p.ipv4().unwrap();
        assert_eq!(ip.dst(), Ipv4Addr::new(10, 1, 0, idx as u8 + 1));
        let seg_len = (ip.total_len() as usize - ip.header_len()) as u16;
        assert!(p.tcp().unwrap().checksum_ok(ip.src(), ip.dst(), seg_len));
    }

    #[test]
    fn non_transport_packets_dropped() {
        let mut lb = lb(2);
        let mut p = udp_packet(1);
        p.ipv4_mut().unwrap().set_protocol(IpProto::Icmp);
        let mut batch = PacketBatch::new();
        batch.push(p);
        let out = lb.process(batch);
        assert_eq!(out.len(), 0);
        assert_eq!(lb.stats().dropped, 1);
    }

    #[test]
    fn operator_processes_generated_traffic_evenly() {
        let mut lb = lb(4);
        let mut gen = PacketGen::new(TrafficConfig {
            flows: 4096,
            ..Default::default()
        });
        for _ in 0..64 {
            let out = lb.process(gen.next_batch(64));
            assert_eq!(out.len(), 64);
        }
        let per = &lb.stats().per_backend;
        let total: u64 = per.iter().sum();
        assert_eq!(total, 64 * 64);
        let max = *per.iter().max().unwrap() as f64;
        let min = *per.iter().min().unwrap() as f64;
        assert!(max / min < 1.5, "flow spread too uneven: {per:?}");
    }

    #[test]
    fn established_connections_survive_backend_addition() {
        let mut lb = lb(4);
        // Establish 100 flows.
        let mut assignments = Vec::new();
        for sport in 0..100u16 {
            let mut p = udp_packet(2000 + sport);
            assignments.push(lb.steer(&mut p).unwrap());
        }
        // Add a backend; existing flows must stay put.
        let (b, a) = backends(5);
        lb.update_backends(b, a, 503).unwrap();
        for (sport, &expected) in assignments.iter().enumerate() {
            let mut p = udp_packet(2000 + sport as u16);
            assert_eq!(lb.steer(&mut p).unwrap(), expected, "flow {sport} moved");
        }
    }

    #[test]
    fn connections_to_removed_backend_are_resteered() {
        let mut lb = lb(3);
        let mut p = udp_packet(7777);
        let first = lb.steer(&mut p).unwrap();
        // Remove the backend that owns this flow.
        let (mut b, mut a) = backends(3);
        b.remove(first);
        a.remove(first);
        lb.update_backends(b, a, 503).unwrap();
        let mut p2 = udp_packet(7777);
        let second = lb.steer(&mut p2).unwrap();
        // Index space shrank; whatever it maps to, the DNAT address must
        // be one of the remaining backends.
        assert!(second < 2);
        let dst = p2.ipv4().unwrap().dst();
        assert_ne!(dst, Ipv4Addr::new(10, 1, 0, first as u8 + 1));
    }

    #[test]
    fn without_tracking_uses_hash_only() {
        let mut lb = lb(3).without_connection_tracking();
        for _ in 0..5 {
            let mut p = udp_packet(1234);
            lb.steer(&mut p).unwrap();
        }
        assert_eq!(lb.stats().hash_lookups, 5);
        assert_eq!(lb.stats().conn_table_hits, 0);
        assert_eq!(lb.tracked_connections(), 0);
    }

    #[test]
    #[should_panic(expected = "one DNAT address per backend")]
    fn mismatched_addrs_panic() {
        let (b, _) = backends(3);
        let _ = MaglevLb::new(b, vec![Ipv4Addr::LOCALHOST], 503);
    }
}
