//! Maglev consistent hashing (Eisenbud et al., NSDI '16, §3.4).
//!
//! Each backend gets a pseudo-random *permutation* of the `M` table
//! positions, derived from two independent hashes of its name:
//!
//! ```text
//! offset = h1(name) mod M
//! skip   = h2(name) mod (M - 1) + 1
//! permutation[j] = (offset + j * skip) mod M      (M prime ⇒ full cycle)
//! ```
//!
//! The table is populated by giving backends turns in round-robin order;
//! on its turn a backend claims the next unclaimed position in its
//! permutation. Two properties follow, both verified by tests here and
//! measured by experiment E8:
//!
//! - **balance**: entry counts differ by at most a small factor, because
//!   turn order interleaves backends evenly;
//! - **minimal disruption**: removing one backend leaves most other
//!   entries where they were, because each backend's preference list is
//!   independent of the others.

use rbs_netfx::flow::stable_hash_bytes;

/// A load-balancing backend: a name (hash identity) plus a weight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Backend {
    /// Stable identity; hashing the name decides table positions.
    pub name: String,
    /// Relative weight; a weight-2 backend takes twice the turns of a
    /// weight-1 backend and therefore ~2x the table share.
    pub weight: u32,
}

impl Backend {
    /// A backend with weight 1.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            weight: 1,
        }
    }

    /// A backend with an explicit weight.
    pub fn weighted(name: impl Into<String>, weight: u32) -> Self {
        Self {
            name: name.into(),
            weight,
        }
    }
}

/// Errors from table construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    /// No backends were supplied.
    NoBackends,
    /// The requested table size is not a prime ≥ 2.
    SizeNotPrime(usize),
    /// A backend has weight 0 (it could never claim an entry).
    ZeroWeight(String),
    /// Two backends share a name (their permutations would collide).
    DuplicateName(String),
}

impl std::fmt::Display for TableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TableError::NoBackends => write!(f, "cannot build a Maglev table with no backends"),
            TableError::SizeNotPrime(m) => write!(f, "table size {m} is not prime"),
            TableError::ZeroWeight(n) => write!(f, "backend {n} has zero weight"),
            TableError::DuplicateName(n) => write!(f, "duplicate backend name {n}"),
        }
    }
}

impl std::error::Error for TableError {}

/// The populated lookup table.
#[derive(Debug, Clone)]
pub struct MaglevTable {
    backends: Vec<Backend>,
    /// entry[i] = index into `backends`.
    entries: Vec<u32>,
}

impl MaglevTable {
    /// The Maglev paper's small table size (65537 is used in production;
    /// tests and benches use this default for speed).
    pub const DEFAULT_SIZE: usize = 65537;

    /// Builds a table of `size` entries over `backends`.
    ///
    /// `size` must be prime so `skip` generates the full position cycle;
    /// the Maglev paper picks primes near the desired size.
    pub fn new(backends: Vec<Backend>, size: usize) -> Result<Self, TableError> {
        if backends.is_empty() {
            return Err(TableError::NoBackends);
        }
        if !is_prime(size) {
            return Err(TableError::SizeNotPrime(size));
        }
        let mut seen = std::collections::HashSet::new();
        for b in &backends {
            if b.weight == 0 {
                return Err(TableError::ZeroWeight(b.name.clone()));
            }
            if !seen.insert(b.name.as_str()) {
                return Err(TableError::DuplicateName(b.name.clone()));
            }
        }
        let entries = populate(&backends, size);
        Ok(Self { backends, entries })
    }

    /// Number of table entries.
    pub fn size(&self) -> usize {
        self.entries.len()
    }

    /// The backends, in construction order.
    pub fn backends(&self) -> &[Backend] {
        &self.backends
    }

    /// Looks up the backend index for a flow hash.
    #[inline]
    pub fn lookup(&self, flow_hash: u64) -> usize {
        self.entries[(flow_hash % self.entries.len() as u64) as usize] as usize
    }

    /// Looks up the backend itself.
    #[inline]
    pub fn lookup_backend(&self, flow_hash: u64) -> &Backend {
        &self.backends[self.lookup(flow_hash)]
    }

    /// Entry counts per backend, parallel to [`MaglevTable::backends`].
    pub fn entry_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.backends.len()];
        for &e in &self.entries {
            counts[e as usize] += 1;
        }
        counts
    }

    /// Ratio of the largest to the smallest per-backend entry count —
    /// the load-imbalance metric of the Maglev paper's Figure 9 family.
    ///
    /// For weighted tables the counts are first normalized by weight.
    pub fn imbalance(&self) -> f64 {
        let counts = self.entry_counts();
        let normalized: Vec<f64> = counts
            .iter()
            .zip(&self.backends)
            .map(|(&c, b)| c as f64 / f64::from(b.weight))
            .collect();
        let max = normalized.iter().cloned().fold(f64::MIN, f64::max);
        let min = normalized.iter().cloned().fold(f64::MAX, f64::min);
        if min == 0.0 {
            f64::INFINITY
        } else {
            max / min
        }
    }

    /// Fraction of entries that map to different backends in `other`
    /// (same size required) — the disruption metric for backend changes.
    ///
    /// Entries are compared by backend *name* so the two tables may order
    /// or subset their backend lists differently.
    ///
    /// # Panics
    ///
    /// Panics if the two tables have different sizes.
    pub fn disruption(&self, other: &MaglevTable) -> f64 {
        self.disrupted_entries(other) as f64 / self.size() as f64
    }

    /// Number of entries that map to a different backend in `other` —
    /// the integer core of [`disruption`](Self::disruption), exact for
    /// byte-stable reports and bound assertions.
    ///
    /// # Panics
    ///
    /// Panics if the two tables have different sizes.
    pub fn disrupted_entries(&self, other: &MaglevTable) -> usize {
        assert_eq!(
            self.size(),
            other.size(),
            "disruption requires equal table sizes"
        );
        self.entries
            .iter()
            .zip(&other.entries)
            .filter(|&(&a, &b)| self.backends[a as usize].name != other.backends[b as usize].name)
            .count()
    }

    /// Of the entries that changed hands between `self` and `other`,
    /// the number whose backend exists in **both** tables — collateral
    /// movement, beyond what the add/remove itself forced. Consistent
    /// hashing promises this stays a small fraction of the necessary
    /// movement; the disruption-bound tests pin it.
    ///
    /// # Panics
    ///
    /// Panics if the two tables have different sizes.
    pub fn collateral_moves(&self, other: &MaglevTable) -> usize {
        assert_eq!(
            self.size(),
            other.size(),
            "disruption requires equal table sizes"
        );
        let self_names: std::collections::HashSet<&str> =
            self.backends.iter().map(|b| b.name.as_str()).collect();
        let other_names: std::collections::HashSet<&str> =
            other.backends.iter().map(|b| b.name.as_str()).collect();
        self.entries
            .iter()
            .zip(&other.entries)
            .filter(|&(&a, &b)| {
                let from = self.backends[a as usize].name.as_str();
                let to = other.backends[b as usize].name.as_str();
                // Forced moves have an endpoint that only one table
                // knows: off a removed backend, onto an added one.
                from != to && other_names.contains(from) && self_names.contains(to)
            })
            .count()
    }
}

/// Primality by trial division — table construction is a control-plane
/// operation, so simplicity beats speed here.
pub fn is_prime(n: usize) -> bool {
    if n < 2 {
        return false;
    }
    if n.is_multiple_of(2) {
        return n == 2;
    }
    let mut d = 3usize;
    while d * d <= n {
        if n.is_multiple_of(d) {
            return false;
        }
        d += 2;
    }
    true
}

/// Returns the smallest prime ≥ `n` (for picking table sizes).
pub fn next_prime(mut n: usize) -> usize {
    loop {
        if is_prime(n) {
            return n;
        }
        n += 1;
    }
}

/// The population loop of the Maglev paper (Pseudocode 1), extended with
/// weights: a backend with weight `w` takes `w` consecutive turns per
/// round.
fn populate(backends: &[Backend], m: usize) -> Vec<u32> {
    struct Perm {
        offset: u64,
        skip: u64,
        next_j: u64,
    }
    let mut perms: Vec<Perm> = backends
        .iter()
        .map(|b| {
            let h1 = stable_hash_bytes(b.name.as_bytes());
            // Independent second hash: re-hash with a salt suffix.
            let salted: Vec<u8> = b.name.bytes().chain(*b"#skip").collect();
            let h2 = stable_hash_bytes(&salted);
            Perm {
                offset: h1 % m as u64,
                skip: h2 % (m as u64 - 1) + 1,
                next_j: 0,
            }
        })
        .collect();

    let mut entries = vec![u32::MAX; m];
    let mut filled = 0usize;
    'rounds: loop {
        for (i, perm) in perms.iter_mut().enumerate() {
            for _ in 0..backends[i].weight {
                // Claim the next unclaimed preferred position.
                loop {
                    let pos = ((perm.offset + perm.next_j * perm.skip) % m as u64) as usize;
                    perm.next_j += 1;
                    if entries[pos] == u32::MAX {
                        entries[pos] = i as u32;
                        filled += 1;
                        break;
                    }
                }
                if filled == m {
                    break 'rounds;
                }
            }
        }
    }
    entries
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<Backend> {
        (0..n)
            .map(|i| Backend::new(format!("backend-{i}")))
            .collect()
    }

    #[test]
    fn primality() {
        assert!(is_prime(2));
        assert!(is_prime(3));
        assert!(is_prime(65537));
        assert!(!is_prime(0));
        assert!(!is_prime(1));
        assert!(!is_prime(4));
        assert!(!is_prime(65536));
        assert_eq!(next_prime(100), 101);
        assert_eq!(next_prime(101), 101);
    }

    #[test]
    fn construction_errors() {
        assert_eq!(
            MaglevTable::new(vec![], 7).unwrap_err(),
            TableError::NoBackends
        );
        assert_eq!(
            MaglevTable::new(names(2), 8).unwrap_err(),
            TableError::SizeNotPrime(8)
        );
        assert_eq!(
            MaglevTable::new(vec![Backend::weighted("x", 0)], 7).unwrap_err(),
            TableError::ZeroWeight("x".into())
        );
        assert_eq!(
            MaglevTable::new(vec![Backend::new("x"), Backend::new("x")], 7).unwrap_err(),
            TableError::DuplicateName("x".into())
        );
    }

    #[test]
    fn every_entry_is_assigned() {
        let t = MaglevTable::new(names(5), 503).unwrap();
        assert_eq!(t.size(), 503);
        assert_eq!(t.entry_counts().iter().sum::<usize>(), 503);
        // No entry left at the sentinel.
        for h in 0..503u64 {
            assert!(t.lookup(h) < 5);
        }
    }

    #[test]
    fn single_backend_owns_table() {
        let t = MaglevTable::new(names(1), 101).unwrap();
        assert_eq!(t.entry_counts(), vec![101]);
        assert_eq!(t.imbalance(), 1.0);
    }

    #[test]
    fn balance_is_tight() {
        // The Maglev paper's headline property: with M >> N the per-backend
        // share is near-uniform. Round-robin turns bound the gap at 1 per
        // round, so max/min stays very close to 1.
        let t = MaglevTable::new(names(10), 10007).unwrap();
        let imb = t.imbalance();
        assert!(imb < 1.02, "imbalance {imb} too high");
    }

    #[test]
    fn weights_scale_share() {
        let backends = vec![Backend::weighted("heavy", 3), Backend::weighted("light", 1)];
        let t = MaglevTable::new(backends, 10007).unwrap();
        let counts = t.entry_counts();
        let ratio = counts[0] as f64 / counts[1] as f64;
        assert!((2.8..3.2).contains(&ratio), "weight ratio {ratio} not ~3");
        // Normalized imbalance accounts for weights.
        assert!(t.imbalance() < 1.1);
    }

    #[test]
    fn lookup_is_deterministic() {
        let a = MaglevTable::new(names(4), 1009).unwrap();
        let b = MaglevTable::new(names(4), 1009).unwrap();
        for h in (0..10_000u64).step_by(7) {
            assert_eq!(a.lookup(h), b.lookup(h));
        }
    }

    #[test]
    fn removal_disrupts_minimally() {
        let full = MaglevTable::new(names(10), 10007).unwrap();
        let mut nine = names(10);
        nine.remove(3);
        let reduced = MaglevTable::new(nine, 10007).unwrap();
        let d = full.disruption(&reduced);
        // backend-3 owned ~1/10 of entries; those must move. Consistent
        // hashing keeps collateral movement small: well under double the
        // necessary share.
        assert!(d >= 0.09, "at least backend-3's share must move, got {d}");
        assert!(d < 0.20, "collateral disruption too high: {d}");
    }

    #[test]
    fn addition_disrupts_about_one_share() {
        let ten = MaglevTable::new(names(10), 10007).unwrap();
        let eleven = MaglevTable::new(names(11), 10007).unwrap();
        let d = ten.disruption(&eleven);
        assert!(d >= 0.08, "new backend must take ~1/11, got {d}");
        assert!(d < 0.20, "collateral disruption too high: {d}");
    }

    #[test]
    fn disruption_of_identical_tables_is_zero() {
        let a = MaglevTable::new(names(3), 503).unwrap();
        let b = a.clone();
        assert_eq!(a.disruption(&b), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal table sizes")]
    fn disruption_size_mismatch_panics() {
        let a = MaglevTable::new(names(2), 101).unwrap();
        let b = MaglevTable::new(names(2), 103).unwrap();
        a.disruption(&b);
    }

    #[test]
    fn lookup_backend_matches_lookup() {
        let t = MaglevTable::new(names(5), 503).unwrap();
        for h in [0u64, 1, 99, 12345, u64::MAX] {
            assert_eq!(t.lookup_backend(h).name, t.backends()[t.lookup(h)].name);
        }
    }
}
