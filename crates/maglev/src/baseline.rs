//! The naive load-balancing baseline: `hash mod N`.
//!
//! The point of consistent hashing is what it *avoids*; this module
//! implements the thing it avoids. A mod-N table is perfectly balanced
//! and trivially cheap — and reassigns almost every flow whenever the
//! backend count changes. Experiment E8 contrasts its disruption with
//! Maglev's.

use crate::table::{Backend, MaglevTable, TableError};

/// A `hash mod N` "table" over an ordered backend list.
#[derive(Debug, Clone)]
pub struct ModNTable {
    backends: Vec<Backend>,
}

impl ModNTable {
    /// Builds the baseline over `backends`.
    pub fn new(backends: Vec<Backend>) -> Result<Self, TableError> {
        if backends.is_empty() {
            return Err(TableError::NoBackends);
        }
        let mut seen = std::collections::HashSet::new();
        for b in &backends {
            if !seen.insert(b.name.as_str()) {
                return Err(TableError::DuplicateName(b.name.clone()));
            }
        }
        Ok(Self { backends })
    }

    /// The backends, in construction order.
    pub fn backends(&self) -> &[Backend] {
        &self.backends
    }

    /// Backend index for a flow hash.
    #[inline]
    pub fn lookup(&self, flow_hash: u64) -> usize {
        (flow_hash % self.backends.len() as u64) as usize
    }

    /// Fraction of `samples` uniformly-spaced hash values that map to a
    /// different backend *name* in `other` — the disruption metric,
    /// comparable to [`MaglevTable::disruption`].
    pub fn disruption(&self, other: &ModNTable, samples: u64) -> f64 {
        assert!(samples > 0, "sampling zero hashes is undefined");
        let moved = (0..samples)
            .filter(|&i| {
                let h = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                self.backends[self.lookup(h)].name != other.backends[other.lookup(h)].name
            })
            .count();
        moved as f64 / samples as f64
    }
}

/// Disruption of a Maglev table pair and a mod-N pair over the *same*
/// backend change, for side-by-side reporting.
#[derive(Debug, Clone, Copy)]
pub struct DisruptionComparison {
    /// Backends before the change.
    pub backends: usize,
    /// Maglev: fraction of table entries that changed backend.
    pub maglev: f64,
    /// Mod-N: fraction of sampled flows that changed backend.
    pub mod_n: f64,
    /// The unavoidable minimum (the departed/arrived share).
    pub ideal: f64,
}

/// Removes the middle backend from a set of `n` and reports both
/// schemes' disruption.
pub fn compare_removal(n: usize, table_size: usize) -> Result<DisruptionComparison, TableError> {
    let names: Vec<Backend> = (0..n)
        .map(|i| Backend::new(format!("backend-{i}")))
        .collect();
    let mut fewer = names.clone();
    fewer.remove(n / 2);

    let maglev_full = MaglevTable::new(names.clone(), table_size)?;
    let maglev_less = MaglevTable::new(fewer.clone(), table_size)?;
    let modn_full = ModNTable::new(names)?;
    let modn_less = ModNTable::new(fewer)?;

    Ok(DisruptionComparison {
        backends: n,
        maglev: maglev_full.disruption(&maglev_less),
        mod_n: modn_full.disruption(&modn_less, 100_000),
        ideal: 1.0 / n as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<Backend> {
        (0..n).map(|i| Backend::new(format!("b{i}"))).collect()
    }

    #[test]
    fn construction_errors() {
        assert_eq!(ModNTable::new(vec![]).unwrap_err(), TableError::NoBackends);
        assert!(matches!(
            ModNTable::new(vec![Backend::new("x"), Backend::new("x")]),
            Err(TableError::DuplicateName(_))
        ));
    }

    #[test]
    fn lookup_is_uniform_and_in_range() {
        let t = ModNTable::new(names(7)).unwrap();
        let mut counts = [0u32; 7];
        for i in 0..70_000u64 {
            counts[t.lookup(i.wrapping_mul(0x9E37_79B9_7F4A_7C15))] += 1;
        }
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        assert!(
            max / min < 1.1,
            "mod-N is near-perfectly balanced: {counts:?}"
        );
    }

    #[test]
    fn identical_tables_have_zero_disruption() {
        let a = ModNTable::new(names(5)).unwrap();
        assert_eq!(a.disruption(&a.clone(), 10_000), 0.0);
    }

    /// The headline contrast: removing one backend moves ~1/n of flows
    /// under Maglev but the vast majority under mod-N.
    #[test]
    fn mod_n_disruption_dwarfs_maglev() {
        let c = compare_removal(10, 10_007).unwrap();
        assert!(c.maglev < 2.0 * c.ideal, "maglev near the ideal: {c:?}");
        assert!(c.mod_n > 0.7, "mod-N reshuffles almost everything: {c:?}");
        assert!(c.mod_n > 5.0 * c.maglev, "{c:?}");
    }

    #[test]
    fn comparison_scales_with_n() {
        let small = compare_removal(5, 1_009).unwrap();
        let large = compare_removal(50, 10_007).unwrap();
        assert!(
            large.maglev < small.maglev,
            "bigger pools move less under maglev"
        );
        // Mod-N stays catastrophic regardless of pool size.
        assert!(large.mod_n > 0.7 && small.mod_n > 0.7);
    }

    #[test]
    #[should_panic(expected = "zero hashes")]
    fn zero_samples_rejected() {
        let a = ModNTable::new(names(2)).unwrap();
        let _ = a.disruption(&a.clone(), 0);
    }
}
