//! E11 — warm recovery: checkpoint-backed state survival under chaos.
//!
//! Three scenarios against the `rbs-runtime` snapshot/restore machinery,
//! all driven by seeded [`FaultPlan`]s so every number replays
//! bit-identically:
//!
//! 1. **Interval × fault-rate sweep** — a stateful pipeline (firewall
//!    rules + a per-flow tracker) under injected crashes, swept over
//!    snapshot cadences (0 = snapshotting off, the cold baseline) and
//!    fault rates. Each point also carries one *scripted* crash so every
//!    cadence demonstrably restores. Reported per point: goodput, warm
//!    vs. cold recoveries, snapshots taken, and exact state-loss
//!    accounting (items lost to each crash, summed).
//! 2. **Corruption fallback** — a scripted crash whose newest snapshot
//!    is then bit-flipped: verification must reject it and restore from
//!    the previous buffer; with *both* buffers corrupted, recovery must
//!    go cold. A corrupted snapshot is never restored.
//! 3. **Encode fault** — the `CheckpointEncode` chaos site fires inside
//!    snapshot serialization. The worker dies at the domain boundary,
//!    but seal-before-commit means the store still holds the previous
//!    verified snapshot, and recovery stays warm.
//!
//! Results are also emitted as `BENCH_recovery.json` in the repo root.
//! All JSON fields are integers derived from the logical supervision
//! clock and the state-item ledgers — never wall time — which is what
//! makes two runs of the same seed byte-identical.

use std::net::Ipv4Addr;
use std::sync::Arc;
use std::time::Duration;

use rbs_core::fault::{FaultKind, FaultPlan, FaultSite};
use rbs_core::table::Table;
use rbs_fwtrie::{Action, FirewallOp, FwTrie, Rule};
use rbs_netfx::headers::ethernet::MacAddr;
use rbs_netfx::operators::ChaosPoint;
use rbs_netfx::pktgen::{PacketGen, TrafficConfig};
use rbs_netfx::{FlowTracker, Packet, PacketBatch, PipelineSpec};
use rbs_runtime::{
    Buffered, RestartPolicy, RuntimeConfig, RuntimeReport, ShardedRuntime, SupervisorEventKind,
};

use crate::harness::silence_panics;

/// Packets per dispatched batch in the sweep.
const BATCH_SIZE: usize = 256;

/// Workers in the sweep runtime.
const WORKERS: usize = 4;

/// Distinct flows in the sweep's traffic population — the upper bound on
/// tracked state per run.
const FLOWS: usize = 512;

/// Firewall rules seeded into every worker's trie (baseline state that
/// must also survive restores).
const RULES: usize = 16;

/// The one seed behind every scenario.
const SEED: u64 = 0x11_4EC0;

/// Rule database carried by each pipeline replica: small, with aliased
/// prefixes so restored tries exercise shared-node rebuilding.
fn rule_db() -> FwTrie {
    let mut t = FwTrie::new();
    for i in 0..RULES {
        let base = Ipv4Addr::from(0x0B00_0000u32 | ((i as u32) << 8));
        let rule = Rule::new(
            i as u32,
            format!("e11 rule {i}"),
            base,
            24,
            if i % 4 == 0 {
                Action::Deny
            } else {
                Action::Allow
            },
        );
        let handle = t.insert(rule);
        let alias_net = Ipv4Addr::from(0xC0A8_0B00u32 | i as u32);
        t.alias_at(alias_net, 32, handle);
    }
    t
}

/// The stateful pipeline under test: chaos point → firewall → flow
/// tracker. Both the rule trie and the flow table are checkpointed
/// state; the flow table is what a crash actually loses.
fn spec() -> PipelineSpec {
    PipelineSpec::new()
        .stage(|| ChaosPoint::new(0))
        .stage(|| FirewallOp::new(rule_db(), Action::Allow))
        .stage(|| FlowTracker::new(100_000))
}

fn policy() -> RestartPolicy {
    RestartPolicy {
        max_consecutive_faults: 3,
        backoff_base_ticks: 1,
        backoff_cap_ticks: 8,
        breaker_cooldown_ticks: 6,
        backoff_jitter_ticks: 2,
    }
}

fn traffic(batches: usize) -> Vec<PacketBatch> {
    let mut g = PacketGen::new(TrafficConfig {
        flows: FLOWS,
        payload_len: 64,
        seed: SEED,
        ..Default::default()
    });
    (0..batches).map(|_| g.next_batch(BATCH_SIZE)).collect()
}

fn goodput_ppm(report: &RuntimeReport) -> u64 {
    if report.offered_packets == 0 {
        return 1_000_000;
    }
    report.packets_out * 1_000_000 / report.offered_packets
}

/// One point of the interval × fault-rate sweep.
#[derive(Debug, Clone)]
pub struct RecoveryPoint {
    /// Snapshot cadence in supervision ticks (0 = snapshotting off).
    pub interval: u64,
    /// Injected fault rate at the pipeline site, in ppm.
    pub rate_ppm: u32,
    /// Packets offered to the dispatcher.
    pub offered: u64,
    /// Goodput in ppm of offered (integer-exact).
    pub goodput_ppm: u64,
    /// Contained panics (pipeline + encode faults).
    pub faults: u64,
    /// Supervisor respawns.
    pub respawns: u64,
    /// Snapshots sealed into stores.
    pub snapshots_taken: u64,
    /// Crashes recovered from a verified snapshot.
    pub warm_restores: u64,
    /// Crashes recovered with no usable snapshot.
    pub cold_restores: u64,
    /// Buffered snapshots that failed verification at restore time.
    pub snapshot_rejects: u64,
    /// State items (rules + flows) lost across all crashes — the cost
    /// the snapshot cadence is buying down.
    pub state_items_lost: u64,
    /// Live state items summed over workers at shutdown.
    pub final_state_items: u64,
    /// Conservation residue — asserted zero.
    pub unaccounted: i64,
}

/// Corruption-fallback scenario outcome.
#[derive(Debug, Clone)]
pub struct CorruptionOutcome {
    /// Rejections with only the latest buffer corrupted (1: latest).
    pub single_rejects: u64,
    /// Epoch restored after the single corruption (the previous buffer).
    pub single_restored_epoch: u64,
    /// Items carried back by that restore.
    pub single_items_restored: u64,
    /// Items lost to the extra staleness of the previous buffer.
    pub single_items_lost: u64,
    /// Rejections with both buffers corrupted (2: latest and previous).
    pub double_rejects: u64,
    /// Cold restores after the double corruption (1).
    pub double_cold_restores: u64,
    /// The whole live table, lost cold.
    pub double_items_lost: u64,
}

/// Encode-fault scenario outcome.
#[derive(Debug, Clone)]
pub struct EncodeFaultOutcome {
    /// Contained faults (≥ 1: the encode panic).
    pub faults: u64,
    /// Warm restores — every recovery found a prior verified snapshot.
    pub warm_restores: u64,
    /// Cold restores (0).
    pub cold_restores: u64,
    /// Snapshots rejected at restore (0: a failed encode commits
    /// nothing, so nothing unverifiable ever enters the store).
    pub snapshot_rejects: u64,
    /// Epoch of the first restore (1: the pre-fault snapshot).
    pub first_restored_epoch: u64,
}

/// The full experiment result set.
#[derive(Debug, Clone)]
pub struct RecoveryResults {
    /// Traffic rounds per sweep point.
    pub rounds: usize,
    /// Interval × fault-rate sweep.
    pub sweep: Vec<RecoveryPoint>,
    /// Scripted snapshot corruption.
    pub corruption: CorruptionOutcome,
    /// Scripted encode fault.
    pub encode: EncodeFaultOutcome,
}

/// The sweep plan: probabilistic pipeline panics and encode faults at
/// `rate_ppm` (and a fifth of it), plus one scripted crash — worker 1's
/// sixth batch of each generation — so even the 0-rate points exercise
/// restore.
fn sweep_plan(rate_ppm: u32) -> FaultPlan {
    FaultPlan::new(SEED)
        .inject(FaultSite::Operator(0), FaultKind::Panic, rate_ppm)
        .inject(FaultSite::CheckpointEncode, FaultKind::Panic, rate_ppm / 5)
        .inject_window(FaultSite::Operator(0), FaultKind::Panic, 1, 5, 6)
}

/// Runs one sweep point: `rounds` lockstep dispatch+drain rounds of the
/// same pre-generated traffic at (`interval`, `rate_ppm`).
pub fn measure_sweep_point(interval: u64, rate_ppm: u32, rounds: usize) -> RecoveryPoint {
    silence_panics();
    let mut rt = ShardedRuntime::new(
        spec(),
        RuntimeConfig {
            workers: WORKERS,
            queue_capacity: 64,
            restart: policy(),
            supervisor_seed: SEED,
            snapshot_interval_ticks: interval,
            snapshot_full_every: 4,
            faults: Some(Arc::new(sweep_plan(rate_ppm))),
            ..RuntimeConfig::default()
        },
    )
    .expect("runtime construction");
    for batch in traffic(rounds) {
        rt.dispatch(batch).expect("dispatch under chaos");
        assert!(
            rt.drain(Duration::from_secs(30)),
            "every round drains, faults included"
        );
    }
    let report = rt.shutdown();
    let point = RecoveryPoint {
        interval,
        rate_ppm,
        offered: report.offered_packets,
        goodput_ppm: goodput_ppm(&report),
        faults: report.faults,
        respawns: report.respawns,
        snapshots_taken: report.snapshots_taken,
        warm_restores: report.warm_restores,
        cold_restores: report.cold_restores,
        snapshot_rejects: report.snapshot_rejects,
        state_items_lost: report.state_items_lost,
        final_state_items: report.workers.iter().map(|w| w.state_items).sum(),
        unaccounted: report.unaccounted_packets(),
    };
    assert_eq!(
        point.unaccounted, 0,
        "packets vanished at interval {interval}, {rate_ppm} ppm"
    );
    assert_eq!(
        point.snapshot_rejects, 0,
        "an uncorrupted store never fails verification"
    );
    if interval == 0 {
        assert_eq!(point.snapshots_taken, 0, "interval 0 disables snapshots");
        assert_eq!(
            point.warm_restores + point.cold_restores,
            0,
            "interval 0 disables the restore chain"
        );
    } else {
        assert!(
            point.warm_restores >= 1,
            "the scripted crash must recover warm at interval {interval}"
        );
    }
    point
}

/// 24 distinct single-packet flows per round, so state loss is exactly
/// countable in the scripted scenarios.
fn scripted_wave(round: usize) -> PacketBatch {
    (0..24u16)
        .map(|i| {
            Packet::build_udp(
                MacAddr::ZERO,
                MacAddr::ZERO,
                Ipv4Addr::new(10, 9, 0, 1),
                Ipv4Addr::new(10, 9, 0, 2),
                3000 + (round as u16) * 24 + i,
                443,
                16,
            )
        })
        .collect()
}

/// A single-worker runtime with a flow tracker only (exact item counts)
/// snapshotting every tick, full images only.
fn scripted_runtime(plan: FaultPlan) -> ShardedRuntime {
    ShardedRuntime::new(
        PipelineSpec::new()
            .stage(|| ChaosPoint::new(0))
            .stage(|| FlowTracker::new(100_000)),
        RuntimeConfig {
            workers: 1,
            queue_capacity: 8,
            restart: RestartPolicy::default(),
            supervisor_seed: SEED,
            snapshot_interval_ticks: 1,
            snapshot_full_every: 1,
            faults: Some(Arc::new(plan)),
            ..RuntimeConfig::default()
        },
    )
    .expect("runtime construction")
}

/// Drives a scripted run to its crash (batch 3 panics, 72 flows live,
/// snapshots at 0/24/48/72 flows buffered), corrupts `targets`, then
/// heals and returns the runtime for event inspection.
fn crash_and_corrupt(targets: &[Buffered]) -> ShardedRuntime {
    silence_panics();
    let plan =
        FaultPlan::new(SEED).inject_window(FaultSite::Operator(0), FaultKind::Panic, 0, 3, 4);
    let mut rt = scripted_runtime(plan);
    for round in 0..4 {
        rt.dispatch(scripted_wave(round)).expect("dispatch");
        assert!(rt.drain(Duration::from_secs(30)), "round {round} drained");
    }
    for &t in targets {
        assert!(rt.corrupt_snapshot(0, t), "buffer {} present", t.name());
    }
    // The next supervision pass heals the slot through the fallback
    // chain.
    rt.dispatch(PacketBatch::new()).expect("heal tick");
    rt
}

/// Scripted corruption: latest rejected → previous restores; both
/// rejected → cold. Never a corrupted restore.
pub fn measure_corruption() -> CorruptionOutcome {
    let single = crash_and_corrupt(&[Buffered::Latest]);
    let mut single_rejects = 0;
    let mut single_restored = (0, 0, 0);
    for e in single.events() {
        match e.kind {
            SupervisorEventKind::SnapshotRejected { .. } => single_rejects += 1,
            SupervisorEventKind::WarmRestore {
                epoch,
                items_restored,
                items_lost,
                ..
            } => single_restored = (epoch, items_restored, items_lost),
            SupervisorEventKind::ColdRestore { .. } => {
                panic!("single corruption must not go cold")
            }
            _ => {}
        }
    }
    drop(single.shutdown());

    let double = crash_and_corrupt(&[Buffered::Latest, Buffered::Previous]);
    let mut double_rejects = 0;
    let mut double_cold = 0;
    let mut double_lost = 0;
    for e in double.events() {
        match e.kind {
            SupervisorEventKind::SnapshotRejected { .. } => double_rejects += 1,
            SupervisorEventKind::ColdRestore { items_lost } => {
                double_cold += 1;
                double_lost = items_lost;
            }
            SupervisorEventKind::WarmRestore { .. } => {
                panic!("a corrupted snapshot must never restore")
            }
            _ => {}
        }
    }
    drop(double.shutdown());

    let out = CorruptionOutcome {
        single_rejects,
        single_restored_epoch: single_restored.0,
        single_items_restored: single_restored.1,
        single_items_lost: single_restored.2,
        double_rejects,
        double_cold_restores: double_cold,
        double_items_lost: double_lost,
    };
    assert_eq!(out.single_rejects, 1, "only latest was corrupted");
    assert_eq!(out.double_rejects, 2, "both buffers rejected");
    assert_eq!(out.double_cold_restores, 1, "double corruption goes cold");
    out
}

/// Scripted encode fault: the second snapshot's serialization panics;
/// the store still holds the first, and recovery restores it.
pub fn measure_encode_fault() -> EncodeFaultOutcome {
    silence_panics();
    let plan =
        FaultPlan::new(SEED).inject_window(FaultSite::CheckpointEncode, FaultKind::Panic, 0, 1, 2);
    let mut rt = scripted_runtime(plan);
    // tick1: snapshot ok (epoch 1). tick2: snapshot → encode panic.
    for round in 0..2 {
        rt.dispatch(scripted_wave(round)).expect("dispatch");
        assert!(rt.drain(Duration::from_secs(30)), "round {round} drained");
    }
    rt.dispatch(PacketBatch::new()).expect("heal tick");
    let first_epoch = rt
        .events()
        .iter()
        .find_map(|e| match e.kind {
            SupervisorEventKind::WarmRestore { epoch, .. } => Some(epoch),
            _ => None,
        })
        .expect("the encode fault led to a warm restore");
    let report = rt.shutdown();
    let out = EncodeFaultOutcome {
        faults: report.faults,
        warm_restores: report.warm_restores,
        cold_restores: report.cold_restores,
        snapshot_rejects: report.snapshot_rejects,
        first_restored_epoch: first_epoch,
    };
    assert!(out.faults >= 1, "the encode fault was contained as a fault");
    assert_eq!(out.cold_restores, 0, "recovery stayed warm");
    assert_eq!(out.snapshot_rejects, 0, "nothing unverifiable was stored");
    assert_eq!(out.first_restored_epoch, 1, "the pre-fault snapshot won");
    out
}

/// Runs the full experiment.
pub fn measure(rounds: usize) -> RecoveryResults {
    let intervals = [0u64, 1, 2, 4];
    let rates = [0u32, 10_000, 50_000];
    let mut sweep = Vec::new();
    for interval in intervals {
        for rate in rates {
            sweep.push(measure_sweep_point(interval, rate, rounds));
        }
    }
    RecoveryResults {
        rounds,
        sweep,
        corruption: measure_corruption(),
        encode: measure_encode_fault(),
    }
}

/// Renders the result set as the `BENCH_recovery.json` payload.
///
/// Integer-only by construction: two runs of the same build and seed
/// must produce byte-identical output (CI diffs them).
pub fn to_json(r: &RecoveryResults) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"e11_recovery\",\n");
    out.push_str(&format!("  \"seed\": {SEED},\n"));
    out.push_str(&format!("  \"workers\": {WORKERS},\n"));
    out.push_str(&format!("  \"batch_size\": {BATCH_SIZE},\n"));
    out.push_str(&format!("  \"flows\": {FLOWS},\n"));
    out.push_str(&format!("  \"rules\": {RULES},\n"));
    out.push_str(&format!("  \"rounds\": {},\n", r.rounds));
    out.push_str("  \"sweep\": [\n");
    for (i, s) in r.sweep.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"interval\": {}, \"rate_ppm\": {}, \"offered\": {}, \"goodput_ppm\": {}, \"faults\": {}, \"respawns\": {}, \"snapshots_taken\": {}, \"warm_restores\": {}, \"cold_restores\": {}, \"snapshot_rejects\": {}, \"state_items_lost\": {}, \"final_state_items\": {}, \"unaccounted\": {}}}{}\n",
            s.interval,
            s.rate_ppm,
            s.offered,
            s.goodput_ppm,
            s.faults,
            s.respawns,
            s.snapshots_taken,
            s.warm_restores,
            s.cold_restores,
            s.snapshot_rejects,
            s.state_items_lost,
            s.final_state_items,
            s.unaccounted,
            if i + 1 < r.sweep.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    let c = &r.corruption;
    out.push_str(&format!(
        "  \"corruption\": {{\"single_rejects\": {}, \"single_restored_epoch\": {}, \"single_items_restored\": {}, \"single_items_lost\": {}, \"double_rejects\": {}, \"double_cold_restores\": {}, \"double_items_lost\": {}}},\n",
        c.single_rejects,
        c.single_restored_epoch,
        c.single_items_restored,
        c.single_items_lost,
        c.double_rejects,
        c.double_cold_restores,
        c.double_items_lost,
    ));
    let e = &r.encode;
    out.push_str(&format!(
        "  \"encode_fault\": {{\"faults\": {}, \"warm_restores\": {}, \"cold_restores\": {}, \"snapshot_rejects\": {}, \"first_restored_epoch\": {}}}\n",
        e.faults, e.warm_restores, e.cold_restores, e.snapshot_rejects, e.first_restored_epoch,
    ));
    out.push_str("}\n");
    out
}

/// Regenerates the recovery table, writing `BENCH_recovery.json` beside
/// it.
pub fn run(quick: bool) -> String {
    let rounds = if quick { 24 } else { 80 };
    let results = measure(rounds);

    let mut t = Table::new(&[
        "interval",
        "fault rate",
        "goodput %",
        "faults",
        "snapshots",
        "warm",
        "cold",
        "state lost",
        "final state",
    ]);
    for s in &results.sweep {
        t.row_owned(vec![
            if s.interval == 0 {
                "off".to_owned()
            } else {
                s.interval.to_string()
            },
            format!("{:.2}%", f64::from(s.rate_ppm) / 10_000.0),
            format!("{:.2}", s.goodput_ppm as f64 / 10_000.0),
            s.faults.to_string(),
            s.snapshots_taken.to_string(),
            s.warm_restores.to_string(),
            s.cold_restores.to_string(),
            s.state_items_lost.to_string(),
            s.final_state_items.to_string(),
        ]);
    }

    let mut out =
        String::from("E11 — warm recovery: state survival across crashes, by snapshot cadence\n");
    out.push_str(&t.render());
    let c = &results.corruption;
    out.push_str(&format!(
        "\ncorruption: latest rejected ({} reject) → previous restored epoch {} with {} items \
         ({} lost to staleness); both corrupted → {} rejects, cold restart, {} items lost\n",
        c.single_rejects,
        c.single_restored_epoch,
        c.single_items_restored,
        c.single_items_lost,
        c.double_rejects,
        c.double_items_lost,
    ));
    let e = &results.encode;
    out.push_str(&format!(
        "encode fault: {} faults contained, {} warm restores from epoch {}, {} rejects — \
         a failed encode commits nothing\n",
        e.faults, e.warm_restores, e.first_restored_epoch, e.snapshot_rejects,
    ));

    let json_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_recovery.json");
    match std::fs::write(json_path, to_json(&results)) {
        Ok(()) => out.push_str(&format!("\nwrote {json_path}\n")),
        Err(e) => out.push_str(&format!("\ncould not write {json_path}: {e}\n")),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshotting_off_is_the_cold_baseline() {
        let p = measure_sweep_point(0, 10_000, 12);
        assert_eq!(p.snapshots_taken, 0);
        assert_eq!(p.warm_restores + p.cold_restores, 0);
        assert_eq!(p.unaccounted, 0);
    }

    #[test]
    fn one_percent_point_recovers_warm() {
        let p = measure_sweep_point(2, 10_000, 12);
        assert!(p.warm_restores >= 1, "no warm restore at 1% faults");
        assert!(p.snapshots_taken >= 1);
        assert_eq!(p.snapshot_rejects, 0);
        assert_eq!(p.unaccounted, 0);
    }

    #[test]
    fn sweep_points_are_deterministic() {
        let a = measure_sweep_point(2, 50_000, 12);
        let b = measure_sweep_point(2, 50_000, 12);
        assert!(a.faults > 0, "5% over 12 rounds injects something");
        assert_eq!(a.goodput_ppm, b.goodput_ppm);
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.respawns, b.respawns);
        assert_eq!(a.snapshots_taken, b.snapshots_taken);
        assert_eq!(a.warm_restores, b.warm_restores);
        assert_eq!(a.cold_restores, b.cold_restores);
        assert_eq!(a.state_items_lost, b.state_items_lost);
        assert_eq!(a.final_state_items, b.final_state_items);
    }

    #[test]
    fn corruption_outcome_is_exact() {
        let c = measure_corruption();
        // The previous buffer held the tick-3 image (48 flows); the
        // gauge at crash held 72, so the staleness costs exactly 24.
        assert_eq!(c.single_restored_epoch, 3);
        assert_eq!(c.single_items_restored, 48);
        assert_eq!(c.single_items_lost, 24);
        assert_eq!(c.double_items_lost, 72);
    }

    #[test]
    fn encode_fault_outcome_is_exact() {
        let e = measure_encode_fault();
        assert_eq!(e.first_restored_epoch, 1);
        assert!(e.warm_restores >= 1);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let r = RecoveryResults {
            rounds: 1,
            sweep: vec![RecoveryPoint {
                interval: 2,
                rate_ppm: 10_000,
                offered: 256,
                goodput_ppm: 980_000,
                faults: 1,
                respawns: 1,
                snapshots_taken: 4,
                warm_restores: 1,
                cold_restores: 0,
                snapshot_rejects: 0,
                state_items_lost: 12,
                final_state_items: 300,
                unaccounted: 0,
            }],
            corruption: CorruptionOutcome {
                single_rejects: 1,
                single_restored_epoch: 3,
                single_items_restored: 48,
                single_items_lost: 24,
                double_rejects: 2,
                double_cold_restores: 1,
                double_items_lost: 72,
            },
            encode: EncodeFaultOutcome {
                faults: 1,
                warm_restores: 1,
                cold_restores: 0,
                snapshot_rejects: 0,
                first_restored_epoch: 1,
            },
        };
        let j = to_json(&r);
        assert!(j.contains("\"experiment\": \"e11_recovery\""));
        assert!(j.contains("\"interval\": 2"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
