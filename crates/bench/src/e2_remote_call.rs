//! E2 — §3: the cost of one protected method call.
//!
//! "Our SFI implementation introduces the overhead of 90 cycles per
//! protected method call and has zero runtime overhead during normal
//! execution." We measure a direct call against the identical call made
//! through an [`RRef`], on a counter object (the cheapest realistic
//! callee, so the difference is pure isolation machinery).

use rbs_core::cycles::CycleTimer;
use rbs_core::stats::Summary;
use rbs_core::table::{fmt_f64, Table};
use rbs_sfi::{DomainManager, RRef};

/// Measured costs of direct vs. remote invocation.
#[derive(Debug, Clone, Copy)]
pub struct CallCosts {
    /// Median cycles per direct (monomorphized, same-domain) call.
    pub direct_cycles: f64,
    /// Median cycles per remote invocation.
    pub remote_cycles: f64,
}

impl CallCosts {
    /// The isolation overhead per protected call.
    pub fn overhead(&self) -> f64 {
        self.remote_cycles - self.direct_cycles
    }
}

/// A minimal callee: bump and read a counter.
struct CounterService {
    count: u64,
}

impl CounterService {
    #[inline(never)]
    fn bump(&mut self) -> u64 {
        self.count = self.count.wrapping_add(1);
        self.count
    }
}

/// Measures `iters` calls each way, sampled in chunks.
pub fn measure(iters: usize) -> CallCosts {
    let chunk = (iters / 50).max(1);

    // Direct baseline.
    let mut local = CounterService { count: 0 };
    let mut direct_samples = Vec::new();
    let mut done = 0;
    while done < iters {
        let t = CycleTimer::start();
        for _ in 0..chunk {
            std::hint::black_box(local.bump());
        }
        direct_samples.push(t.elapsed() as f64 / chunk as f64);
        done += chunk;
    }

    // Remote invocation.
    let mgr = DomainManager::new();
    let domain = mgr.create_domain("counter").expect("no quota");
    let rref = RRef::new(&domain, CounterService { count: 0 });
    let mut remote_samples = Vec::new();
    let mut done = 0;
    while done < iters {
        let t = CycleTimer::start();
        for _ in 0..chunk {
            std::hint::black_box(rref.invoke_mut(|svc| svc.bump()).expect("healthy domain"));
        }
        remote_samples.push(t.elapsed() as f64 / chunk as f64);
        done += chunk;
    }

    let p50 = |s: &[f64]| Summary::of(s).expect("non-empty samples").p50;
    CallCosts {
        direct_cycles: p50(&direct_samples),
        remote_cycles: p50(&remote_samples),
    }
}

/// Ablation: the marginal cost of the optional machinery — an installed
/// interposition policy, and per-domain cycle accounting.
pub fn measure_ablations(iters: usize) -> Vec<(&'static str, f64)> {
    use rbs_sfi::AclPolicy;
    use rbs_sfi::KERNEL_DOMAIN;
    let chunk = (iters / 50).max(1);
    let mut rows = Vec::new();
    for (name, with_policy, with_accounting) in [
        ("baseline", false, false),
        ("with ACL policy", true, false),
        ("with cycle accounting", false, true),
        ("with both", true, true),
    ] {
        let mgr = DomainManager::new();
        let domain = mgr.create_domain("counter").expect("no quota");
        if with_policy {
            domain.set_policy(AclPolicy::new().grant(KERNEL_DOMAIN, "invoke"));
        }
        domain.set_accounting(with_accounting);
        let rref = RRef::new(&domain, CounterService { count: 0 });
        let mut samples = Vec::new();
        let mut done = 0;
        while done < iters {
            let t = CycleTimer::start();
            for _ in 0..chunk {
                std::hint::black_box(rref.invoke_mut(|svc| svc.bump()).expect("healthy"));
            }
            samples.push(t.elapsed() as f64 / chunk as f64);
            done += chunk;
        }
        rows.push((name, Summary::of(&samples).expect("non-empty").p50));
    }
    rows
}

/// Regenerates the §3 per-call numbers as a text table.
pub fn run(quick: bool) -> String {
    let iters = if quick { 50_000 } else { 500_000 };
    let costs = measure(iters);
    let mut t = Table::new(&["metric", "cycles"]);
    t.row_owned(vec!["direct call".into(), fmt_f64(costs.direct_cycles, 1)]);
    t.row_owned(vec![
        "remote invocation".into(),
        fmt_f64(costs.remote_cycles, 1),
    ]);
    t.row_owned(vec![
        "isolation overhead/call".into(),
        fmt_f64(costs.overhead(), 1),
    ]);
    let mut out =
        String::from("E2 — protected method call overhead (paper: ~90 cycles per call)\n");
    out.push_str(&t.render());
    out.push_str("\nAblation — marginal cost of optional machinery:\n");
    let mut at = Table::new(&["configuration", "cycles/call"]);
    for (name, cycles) in measure_ablations(iters / 2) {
        at.row_owned(vec![name.into(), fmt_f64(cycles, 1)]);
    }
    out.push_str(&at.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remote_costs_more_but_bounded() {
        let c = measure(30_000);
        assert!(
            c.remote_cycles > c.direct_cycles,
            "isolation cannot be cheaper than a direct call: {c:?}"
        );
        // Order-of-magnitude sanity even in debug builds: the overhead
        // is cycles-scale machinery, not microseconds of syscalls.
        assert!(c.overhead() < 50_000.0, "{c:?}");
        assert!(c.direct_cycles >= 0.0);
    }

    #[test]
    fn run_renders() {
        let out = run(true);
        assert!(out.contains("isolation overhead/call"), "{out}");
        assert!(out.contains("with ACL policy"), "{out}");
    }

    #[test]
    fn ablations_are_ordered_sanely() {
        let rows = measure_ablations(20_000);
        let get = |n: &str| rows.iter().find(|(name, _)| *name == n).unwrap().1;
        // Optional machinery costs something but stays cycles-scale.
        assert!(get("with both") < get("baseline") + 10_000.0, "{rows:?}");
        assert!(rows.iter().all(|&(_, c)| c > 0.0));
    }
}
