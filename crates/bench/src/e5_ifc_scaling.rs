//! E5 — §4: cost and precision of ownership-based IFC vs. the
//! conventional alias-analysis pipeline, and the compositional-summary
//! speedup.
//!
//! Three sweeps:
//!
//! 1. **Alias cost**: on `alias_chain(n)` the Andersen baseline builds a
//!    points-to relation that grows quadratically with the chain, while
//!    move-mode analysis stays linear;
//! 2. **Precision**: on `rebind_churn(n)` the flow-insensitive baseline
//!    reports `n` false positives; move-mode reports none;
//! 3. **Summaries**: on `call_diamond(d)` monolithic inlining re-analyzes
//!    callees 2^d times, summaries once each — the paper's
//!    "compositional reasoning" improvement.

use rbs_core::table::{fmt_f64, Table};
use rbs_ifc::{alias, interp, progen, summary};
use std::time::Instant;

/// One alias-cost sweep point.
#[derive(Debug, Clone, Copy)]
pub struct AliasCostRow {
    /// Chain length.
    pub n: usize,
    /// Move-mode analysis time, microseconds.
    pub move_us: f64,
    /// Alias-baseline analysis time, microseconds.
    pub alias_us: f64,
    /// Total points-to edges materialized by the baseline.
    pub pts_edges: usize,
}

/// One summary-vs-inline sweep point.
#[derive(Debug, Clone, Copy)]
pub struct DiamondRow {
    /// Diamond depth (2^depth inlined leaf visits).
    pub depth: usize,
    /// Monolithic (inlining) time, microseconds.
    pub monolithic_us: f64,
    /// Summary-based time, microseconds.
    pub summary_us: f64,
}

fn time_us(mut f: impl FnMut()) -> f64 {
    // Run at least a few times, keep the best (analysis is deterministic;
    // the minimum is the least-noise estimate).
    let mut best = f64::MAX;
    for _ in 0..3 {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e6);
    }
    best
}

/// Sweep 1: alias-analysis cost growth.
pub fn alias_cost_sweep(sizes: &[usize]) -> Vec<AliasCostRow> {
    sizes
        .iter()
        .map(|&n| {
            let p = progen::alias_chain(n);
            let move_us = time_us(|| {
                interp::analyze(&p).expect("no recursion in generated programs");
            });
            let mut edges = 0;
            let alias_us = time_us(|| {
                let (_, stats) = alias::analyze_alias(&p);
                edges = stats.pts_edges;
            });
            AliasCostRow {
                n,
                move_us,
                alias_us,
                pts_edges: edges,
            }
        })
        .collect()
}

/// Sweep 2: precision — false positives of the baseline on safe
/// rebinding churn. Returns `(n, move_mode_fps, alias_fps)`.
pub fn precision_sweep(sizes: &[usize]) -> Vec<(usize, usize, usize)> {
    sizes
        .iter()
        .map(|&n| {
            let p = progen::rebind_churn(n);
            let move_fps = interp::analyze(&p).expect("non-recursive").len();
            let (alias_v, _) = alias::analyze_alias(&p);
            (n, move_fps, alias_v.len())
        })
        .collect()
}

/// Sweep 3: compositional summaries vs. monolithic inlining.
pub fn diamond_sweep(depths: &[usize]) -> Vec<DiamondRow> {
    depths
        .iter()
        .map(|&depth| {
            let p = progen::call_diamond(depth);
            let monolithic_us = time_us(|| {
                let v = interp::analyze(&p).expect("diamond is acyclic");
                assert_eq!(v.len(), 1);
            });
            let summary_us = time_us(|| {
                let v = summary::analyze_with_summaries(&p).expect("diamond is acyclic");
                assert_eq!(v.len(), 1);
            });
            DiamondRow {
                depth,
                monolithic_us,
                summary_us,
            }
        })
        .collect()
}

/// Regenerates all three sweeps as text tables.
pub fn run(quick: bool) -> String {
    let chain_sizes: &[usize] = if quick {
        &[8, 32, 128]
    } else {
        &[8, 32, 128, 512, 1024]
    };
    let depths: &[usize] = if quick {
        &[4, 8, 12]
    } else {
        &[4, 8, 12, 16, 18]
    };
    let churn_sizes: &[usize] = &[5, 20, 80];

    let mut out = String::from("E5 — IFC analysis cost and precision\n\n");

    out.push_str("(a) alias-analysis cost on buffer chains:\n");
    let mut t = Table::new(&["chain n", "move-mode us", "alias-baseline us", "pts edges"]);
    for r in alias_cost_sweep(chain_sizes) {
        t.row_owned(vec![
            r.n.to_string(),
            fmt_f64(r.move_us, 1),
            fmt_f64(r.alias_us, 1),
            r.pts_edges.to_string(),
        ]);
    }
    out.push_str(&t.render());

    out.push_str("\n(b) precision on safe rebinding churn (ground truth: 0 leaks):\n");
    let mut t = Table::new(&[
        "rounds",
        "move-mode false positives",
        "alias-baseline false positives",
    ]);
    for (n, mv, al) in precision_sweep(churn_sizes) {
        t.row_owned(vec![n.to_string(), mv.to_string(), al.to_string()]);
    }
    out.push_str(&t.render());

    out.push_str("\n(c) compositional summaries vs. monolithic inlining (call diamond):\n");
    let mut t = Table::new(&["depth", "monolithic us", "summaries us", "speedup"]);
    for r in diamond_sweep(depths) {
        t.row_owned(vec![
            r.depth.to_string(),
            fmt_f64(r.monolithic_us, 1),
            fmt_f64(r.summary_us, 1),
            fmt_f64(r.monolithic_us / r.summary_us.max(0.001), 1),
        ]);
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alias_edges_grow_superlinearly() {
        let rows = alias_cost_sweep(&[8, 32]);
        let (small, large) = (rows[0], rows[1]);
        // 4x the chain must give much more than 4x the edges.
        assert!(
            large.pts_edges > 8 * small.pts_edges,
            "small={small:?} large={large:?}"
        );
    }

    #[test]
    fn precision_gap_matches_ground_truth() {
        for (n, move_fps, alias_fps) in precision_sweep(&[3, 10]) {
            assert_eq!(move_fps, 0, "move mode is precise at n={n}");
            assert_eq!(alias_fps, n, "baseline pays one FP per round at n={n}");
        }
    }

    #[test]
    fn summaries_beat_inlining_at_depth() {
        let rows = diamond_sweep(&[12]);
        let r = rows[0];
        // 2^12 leaf visits vs. 13 summaries: the gap must be large.
        assert!(
            r.monolithic_us > 5.0 * r.summary_us,
            "expected a big compositional speedup: {r:?}"
        );
    }

    #[test]
    fn both_analyses_agree_on_diamond_verdict() {
        // Shape guard embedded in diamond_sweep's assertions.
        let _ = diamond_sweep(&[6]);
    }

    #[test]
    fn run_renders_three_tables() {
        let out = run(true);
        assert!(
            out.contains("(a)") && out.contains("(b)") && out.contains("(c)"),
            "{out}"
        );
    }
}
