//! E8 — validating the Maglev substrate the way its own paper does.
//!
//! Figure 2 leans on Maglev as the realistic-workload yardstick, so this
//! experiment demonstrates the substrate reproduces the Maglev paper's
//! two headline table properties: near-uniform load across backends
//! (imbalance → 1 as the table grows) and minimal disruption when the
//! backend set changes (entries moved ≈ the departed/arrived share).

use rbs_core::table::{fmt_f64, Table};
use rbs_maglev::baseline::compare_removal;
use rbs_maglev::table::next_prime;
use rbs_maglev::{Backend, MaglevTable};

/// One balance sweep point.
#[derive(Debug, Clone, Copy)]
pub struct BalanceRow {
    /// Backend count.
    pub backends: usize,
    /// Table size (prime).
    pub table_size: usize,
    /// max/min normalized entry share.
    pub imbalance: f64,
}

/// Balance as a function of table size.
pub fn balance_sweep(backends: usize, sizes: &[usize]) -> Vec<BalanceRow> {
    sizes
        .iter()
        .map(|&s| {
            let size = next_prime(s);
            let t = MaglevTable::new(names(backends), size).expect("valid set");
            BalanceRow {
                backends,
                table_size: size,
                imbalance: t.imbalance(),
            }
        })
        .collect()
}

/// One disruption sweep point: fraction of entries that changed backend.
#[derive(Debug, Clone, Copy)]
pub struct DisruptionRow {
    /// Backends before the change.
    pub backends: usize,
    /// Fraction moved after removing one backend.
    pub remove_one: f64,
    /// Fraction moved after adding one backend.
    pub add_one: f64,
    /// The ideal minimum for removal (the departed share, 1/n).
    pub ideal_remove: f64,
}

/// Disruption when the backend set changes by one.
pub fn disruption_sweep(backend_counts: &[usize], table_size: usize) -> Vec<DisruptionRow> {
    let size = next_prime(table_size);
    backend_counts
        .iter()
        .map(|&n| {
            let full = MaglevTable::new(names(n), size).expect("valid set");
            let mut fewer = names(n);
            fewer.remove(n / 2);
            let removed = MaglevTable::new(fewer, size).expect("valid set");
            let added = MaglevTable::new(names(n + 1), size).expect("valid set");
            DisruptionRow {
                backends: n,
                remove_one: full.disruption(&removed),
                add_one: full.disruption(&added),
                ideal_remove: 1.0 / n as f64,
            }
        })
        .collect()
}

fn names(n: usize) -> Vec<Backend> {
    (0..n)
        .map(|i| Backend::new(format!("backend-{i}")))
        .collect()
}

/// Regenerates the Maglev validation tables.
pub fn run(quick: bool) -> String {
    let sizes: &[usize] = if quick {
        &[1_000, 10_000]
    } else {
        &[1_000, 10_000, 65_537]
    };
    let counts: &[usize] = if quick { &[10, 50] } else { &[10, 50, 100] };

    let mut out = String::from("E8 — Maglev substrate validation\n\n(a) load balance vs. table size (ideal imbalance = 1.0):\n");
    let mut t = Table::new(&["backends", "table size", "imbalance max/min"]);
    for r in balance_sweep(16, sizes) {
        t.row_owned(vec![
            r.backends.to_string(),
            r.table_size.to_string(),
            fmt_f64(r.imbalance, 4),
        ]);
    }
    out.push_str(&t.render());

    out.push_str("\n(b) disruption on backend change (ideal = departed share):\n");
    let mut t = Table::new(&["backends", "remove one (frac)", "ideal", "add one (frac)"]);
    for r in disruption_sweep(counts, 10_007) {
        t.row_owned(vec![
            r.backends.to_string(),
            fmt_f64(r.remove_one, 4),
            fmt_f64(r.ideal_remove, 4),
            fmt_f64(r.add_one, 4),
        ]);
    }
    out.push_str(&t.render());

    out.push_str("\n(c) consistent hashing vs. the `hash mod N` strawman (one backend removed):\n");
    let mut t = Table::new(&["backends", "maglev moved", "mod-N moved", "ideal"]);
    for &n in counts {
        let c = compare_removal(n, 10_007).expect("valid comparison");
        t.row_owned(vec![
            c.backends.to_string(),
            fmt_f64(c.maglev, 4),
            fmt_f64(c.mod_n, 4),
            fmt_f64(c.ideal, 4),
        ]);
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balance_improves_with_table_size() {
        let rows = balance_sweep(16, &[1_000, 50_000]);
        assert!(rows[0].imbalance >= rows[1].imbalance);
        assert!(rows[1].imbalance < 1.01, "{rows:?}");
    }

    #[test]
    fn disruption_near_ideal() {
        for r in disruption_sweep(&[10, 50], 10_007) {
            assert!(r.remove_one >= r.ideal_remove * 0.9, "{r:?}");
            assert!(
                r.remove_one <= r.ideal_remove * 2.5,
                "collateral too high: {r:?}"
            );
            assert!(r.add_one <= 2.5 / (r.backends as f64 + 1.0), "{r:?}");
        }
    }

    #[test]
    fn run_renders_three_tables() {
        let out = run(true);
        assert!(
            out.contains("(a)") && out.contains("(b)") && out.contains("(c)"),
            "{out}"
        );
        assert!(out.contains("mod-N moved"), "{out}");
    }
}
