//! E13 — the isolation-tax spectrum: what does a domain crossing cost?
//!
//! The paper's argument is that language-based isolation moves the
//! protection boundary from hardware into the type system, making the
//! per-crossing cost *zero* — no page-table switch, no copy, no
//! serialization. This experiment measures that claim against the
//! alternatives by running the same pipelines on three interchangeable
//! [`rbs_sfi::IsolationBackend`]s:
//!
//! - **typed-sfi** — the paper's model: ownership transfer over linear
//!   types. Crossing hooks compile to one predictable branch; the
//!   backend records nothing.
//! - **mpk-sim** — an Intel MPK-style protection-key switch, simulated
//!   by spinning the calibrated per-crossing cycle cost (`wrpkru` plus
//!   the hardened entry/exit gate) at every boundary.
//! - **copy-boundary** — classic process-style isolation cost: every
//!   crossing pays a real `memcpy` of the payload in both directions.
//!
//! The *mechanism* is identical in all three (same channels, same
//! reference tables, same fault semantics — pinned by the
//! `backend_invariants` proptests in `rbs-sfi`); only the per-crossing
//! cost model differs. Each (backend × workload × batch-size) point
//! reports:
//!
//! 1. **Crossing census** — crossings and boundary bytes observed over
//!    the measured window. Deterministic: the dispatcher's flow-hash and
//!    the seeded generator fix how many shard batches exist, and each
//!    one costs exactly send + recv + call + return. typed-sfi records
//!    zero by design (its hooks are compiled out of the hot path).
//! 2. **Modeled tax** — `model_cycles` from the backend's cost model, a
//!    pure function of the census, so byte-stable across runs and hosts.
//!    The spectrum `typed-sfi ≤ mpk-sim ≤ copy-boundary` is asserted.
//! 3. **End-to-end throughput** — wall-clock Mpps, the timing record.
//!
//! Results land in `BENCH_isolation.json`, one record per line, tagged
//! `"kind": "stable"` (byte-identical across runs) or `"kind":
//! "timing"`. CI diffs two runs after `grep -v '"kind": "timing"'`.

use std::net::Ipv4Addr;
use std::time::{Duration, Instant};

use rbs_core::table::{fmt_f64, Table};
use rbs_fwtrie::{Action, FirewallOp, FwTrie, Rule};
use rbs_netfx::operators::NullFilter;
use rbs_netfx::pktgen::{PacketGen, TrafficConfig};
use rbs_netfx::{FlowTracker, PipelineSpec};
use rbs_runtime::{BackendKind, RuntimeConfig, ShardedRuntime};

/// Worker (= shard) count for every point. Two is the smallest count
/// that exercises the flow-hash split, keeping the crossing census
/// non-trivial without drowning the tax in scheduling noise.
const WORKERS: usize = 2;

/// Per-worker input queue depth, in batches.
const QUEUE_CAPACITY: usize = 64;

/// Rounds dispatched before the measured window opens.
const WARMUP_ROUNDS: usize = 32;

/// Firewall rules in the stateful workload's trie.
const RULES: usize = 64;

/// The two workloads: the cheapest possible pipeline (pure crossing
/// tax) and a representative stateful NF chain (tax amortized over
/// real per-packet work).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Single pass-through stage — the crossing cost is the workload.
    NullFilter,
    /// Firewall (trie lookup) + flow tracker (stateful table).
    FirewallFlowtrack,
}

impl Workload {
    /// Both workloads, in sweep order.
    pub const ALL: [Workload; 2] = [Workload::NullFilter, Workload::FirewallFlowtrack];

    /// Stable identifier used in records and tables.
    pub fn name(self) -> &'static str {
        match self {
            Workload::NullFilter => "null-filter",
            Workload::FirewallFlowtrack => "fw-flowtrack",
        }
    }

    fn spec(self) -> PipelineSpec {
        match self {
            Workload::NullFilter => PipelineSpec::new().stage(NullFilter::new),
            Workload::FirewallFlowtrack => PipelineSpec::new()
                .stage(|| FirewallOp::new(rule_db(), Action::Allow))
                .stage(|| FlowTracker::new(100_000)),
        }
    }
}

/// Small aliased rule database for the stateful workload (shape borrowed
/// from E11's, shrunk — the rules are scenery here, not the subject).
fn rule_db() -> FwTrie {
    let mut t = FwTrie::new();
    for i in 0..RULES {
        let base = Ipv4Addr::from(0x0D00_0000u32 | ((i as u32) << 8));
        let rule = Rule::new(
            i as u32,
            format!("e13 rule {i}"),
            base,
            24,
            if i % 4 == 0 {
                Action::Deny
            } else {
                Action::Allow
            },
        );
        t.insert(rule);
    }
    t
}

fn generator() -> PacketGen {
    PacketGen::new(TrafficConfig {
        flows: 4096,
        payload_len: 64,
        seed: 0x0E13,
        ..Default::default()
    })
}

/// One measured configuration.
#[derive(Debug, Clone)]
pub struct IsolationPoint {
    /// Which isolation backend ran the domains.
    pub backend: BackendKind,
    /// Which pipeline processed the packets.
    pub workload: Workload,
    /// Packets per generated batch.
    pub batch_size: usize,
    /// Batches dispatched inside the measured window.
    pub rounds: usize,
    /// Packets offered inside the measured window.
    pub packets: u64,
    /// Boundary crossings the backend observed (warmup included —
    /// crossings are charged from the first dispatch; still
    /// deterministic because the warmup schedule is too).
    pub crossings: u64,
    /// Payload bytes carried across those crossings.
    pub boundary_bytes: u64,
    /// Modeled cycle cost of the crossings — deterministic, unlike
    /// wall-clock time.
    pub model_cycles: u64,
    /// Runtime ledger balance: offered == packets_in + lost + shed.
    pub conservation_ok: bool,
    /// Wall-clock nanoseconds for the measured window.
    pub elapsed_ns: u128,
    /// Million packets per second over the window.
    pub mpps: f64,
}

impl IsolationPoint {
    /// Modeled per-crossing cost in cycles (0 for a zero-cost backend).
    pub fn model_cycles_per_crossing(&self) -> f64 {
        if self.crossings == 0 {
            0.0
        } else {
            self.model_cycles as f64 / self.crossings as f64
        }
    }

    /// Modeled isolation tax per packet, in cycles.
    pub fn model_cycles_per_packet(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.model_cycles as f64 / self.packets as f64
        }
    }
}

/// Runs one (backend × workload × batch size) point: warmup rounds,
/// then `rounds` measured batches, full drain, census capture, orderly
/// shutdown.
pub fn measure_point(
    backend: BackendKind,
    workload: Workload,
    batch_size: usize,
    rounds: usize,
) -> IsolationPoint {
    let mut rt = ShardedRuntime::new(
        workload.spec(),
        RuntimeConfig {
            workers: WORKERS,
            queue_capacity: QUEUE_CAPACITY,
            backend,
            // No snapshots, no recycling, no faults: every crossing in
            // the census is a data-path crossing, and the census is a
            // pure function of the traffic schedule.
            snapshot_interval_ticks: 0,
            recycle_capacity: 0,
            ..RuntimeConfig::default()
        },
    )
    .expect("runtime construction");
    let mut gen = generator();
    for _ in 0..WARMUP_ROUNDS {
        rt.dispatch(gen.next_batch(batch_size))
            .expect("warmup dispatch");
    }

    let start = Instant::now();
    for _ in 0..rounds {
        rt.dispatch(gen.next_batch(batch_size))
            .expect("clean dispatch");
    }
    let drained = rt.drain(Duration::from_secs(60));
    let elapsed = start.elapsed();
    assert!(drained, "measured window drains within a minute");

    // Census BEFORE shutdown: the orderly-stop items shutdown() sends
    // are themselves crossings, but their count depends on how the
    // final queue states interleave — everything up to the settled
    // drain is deterministic, so that is where the stable record ends.
    let totals = rt.backend_totals();
    let report = rt.shutdown();
    let packets = (rounds * batch_size) as u64;
    let conservation_ok =
        report.offered_packets == report.packets_in + report.lost_packets + report.shed_packets;
    IsolationPoint {
        backend,
        workload,
        batch_size,
        rounds,
        packets,
        crossings: totals.crossings,
        boundary_bytes: totals.bytes,
        model_cycles: totals.model_cycles,
        conservation_ok,
        elapsed_ns: elapsed.as_nanos(),
        mpps: packets as f64 / elapsed.as_secs_f64() / 1e6,
    }
}

/// The full experiment result set.
#[derive(Debug, Clone)]
pub struct IsolationResults {
    /// Host parallelism the run actually had available.
    pub host_cpus: usize,
    /// Batches per measured window.
    pub rounds: usize,
    /// Sweep points: backend-major, workload, then batch size.
    pub points: Vec<IsolationPoint>,
}

impl IsolationResults {
    fn find(&self, b: BackendKind, w: Workload, batch: usize) -> Option<&IsolationPoint> {
        self.points
            .iter()
            .find(|p| p.backend == b && p.workload == w && p.batch_size == batch)
    }

    /// True when `typed-sfi ≤ mpk-sim ≤ copy-boundary` holds on modeled
    /// cycles at every (workload × batch) cell.
    pub fn spectrum_ordered(&self, batch_sizes: &[usize]) -> bool {
        Workload::ALL.iter().all(|&w| {
            batch_sizes.iter().all(|&batch| {
                match (
                    self.find(BackendKind::TypedSfi, w, batch),
                    self.find(BackendKind::MpkSim, w, batch),
                    self.find(BackendKind::CopyBoundary, w, batch),
                ) {
                    (Some(t), Some(m), Some(c)) => {
                        t.model_cycles <= m.model_cycles && m.model_cycles <= c.model_cycles
                    }
                    _ => false,
                }
            })
        })
    }
}

/// Runs the sweep: every backend × workload × batch size.
pub fn measure(rounds: usize, batch_sizes: &[usize]) -> IsolationResults {
    let mut points = Vec::new();
    for backend in BackendKind::ALL {
        for workload in Workload::ALL {
            for &batch in batch_sizes {
                points.push(measure_point(backend, workload, batch, rounds));
            }
        }
    }
    IsolationResults {
        host_cpus: std::thread::available_parallelism().map_or(1, |n| n.get()),
        rounds,
        points,
    }
}

/// Renders the result set as the `BENCH_isolation.json` payload: one
/// record per line, tagged stable/timing.
pub fn to_json(r: &IsolationResults, batch_sizes: &[usize]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"e13_isolation\",\n");
    out.push_str(&format!(
        "  \"workers\": {WORKERS},\n  \"warmup_rounds\": {WARMUP_ROUNDS},\n  \"rounds\": {},\n",
        r.rounds
    ));
    out.push_str(&format!(
        "  \"spectrum_ordered\": {},\n",
        r.spectrum_ordered(batch_sizes)
    ));
    out.push_str("  \"records\": [\n");
    let n = r.points.len();
    for (i, p) in r.points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"kind\": \"stable\", \"backend\": \"{}\", \"workload\": \"{}\", \"batch_size\": {}, \"rounds\": {}, \"packets\": {}, \"crossings\": {}, \"boundary_bytes\": {}, \"model_cycles\": {}, \"model_cycles_per_crossing\": {:.2}, \"model_cycles_per_packet\": {:.2}, \"conservation_ok\": {}}},\n",
            p.backend,
            p.workload.name(),
            p.batch_size,
            p.rounds,
            p.packets,
            p.crossings,
            p.boundary_bytes,
            p.model_cycles,
            p.model_cycles_per_crossing(),
            p.model_cycles_per_packet(),
            p.conservation_ok,
        ));
        out.push_str(&format!(
            "    {{\"kind\": \"timing\", \"backend\": \"{}\", \"workload\": \"{}\", \"batch_size\": {}, \"elapsed_ns\": {}, \"mpps\": {:.4}}}{}\n",
            p.backend,
            p.workload.name(),
            p.batch_size,
            p.elapsed_ns,
            p.mpps,
            if i + 1 < n { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Regenerates the isolation-tax table, writing `BENCH_isolation.json`
/// beside it.
pub fn run(quick: bool) -> String {
    let rounds = if quick { 64 } else { 512 };
    let batch_sizes: &[usize] = if quick { &[64, 256] } else { &[64, 256, 512] };
    let results = measure(rounds, batch_sizes);

    let mut t = Table::new(&[
        "backend",
        "workload",
        "batch",
        "crossings",
        "bytes",
        "cyc/crossing",
        "cyc/pkt tax",
        "Mpps",
    ]);
    for p in &results.points {
        t.row_owned(vec![
            p.backend.to_string(),
            p.workload.name().to_string(),
            p.batch_size.to_string(),
            p.crossings.to_string(),
            p.boundary_bytes.to_string(),
            fmt_f64(p.model_cycles_per_crossing(), 1),
            fmt_f64(p.model_cycles_per_packet(), 2),
            fmt_f64(p.mpps, 3),
        ]);
    }

    let mut out = format!(
        "E13 — isolation-tax spectrum ({} CPUs available; {WORKERS} workers, {} rounds)\n",
        results.host_cpus, results.rounds,
    );
    out.push_str(&t.render());

    for p in &results.points {
        assert!(p.conservation_ok, "packet ledger must balance");
    }
    // The census must be a property of the traffic, not the backend: the
    // two charging backends see identical crossings and bytes at every
    // cell, and typed-sfi sees none (its hooks are compiled out).
    for &w in &Workload::ALL {
        for &batch in batch_sizes {
            let typed = results.find(BackendKind::TypedSfi, w, batch).unwrap();
            let mpk = results.find(BackendKind::MpkSim, w, batch).unwrap();
            let copy = results.find(BackendKind::CopyBoundary, w, batch).unwrap();
            assert_eq!(typed.crossings, 0, "typed-sfi records no crossings");
            assert_eq!(typed.model_cycles, 0, "typed-sfi charges no cycles");
            assert_eq!(
                (mpk.crossings, mpk.boundary_bytes),
                (copy.crossings, copy.boundary_bytes),
                "census diverged between charging backends at {} batch {batch}",
                w.name()
            );
        }
    }
    assert!(
        results.spectrum_ordered(batch_sizes),
        "modeled tax must order typed-sfi <= mpk-sim <= copy-boundary"
    );
    out.push_str(
        "isolation tax (modeled cycles): typed-sfi <= mpk-sim <= copy-boundary at every point\n",
    );

    let json_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_isolation.json");
    match std::fs::write(json_path, to_json(&results, batch_sizes)) {
        Ok(()) => out.push_str(&format!("\nwrote {json_path}\n")),
        Err(e) => out.push_str(&format!("\ncould not write {json_path}: {e}\n")),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_sfi_point_is_zero_cost_and_conserves() {
        let p = measure_point(BackendKind::TypedSfi, Workload::NullFilter, 64, 12);
        assert_eq!(p.packets, 12 * 64);
        assert!(p.conservation_ok);
        assert_eq!(p.crossings, 0, "zero-cost backend records nothing");
        assert_eq!(p.model_cycles, 0);
        assert!(p.mpps > 0.0);
    }

    #[test]
    fn charging_point_census_is_deterministic() {
        let a = measure_point(BackendKind::CopyBoundary, Workload::NullFilter, 64, 12);
        let b = measure_point(BackendKind::CopyBoundary, Workload::NullFilter, 64, 12);
        assert!(a.crossings > 0, "charging backend observed the data path");
        assert!(a.boundary_bytes > 0);
        assert_eq!(
            (a.crossings, a.boundary_bytes, a.model_cycles),
            (b.crossings, b.boundary_bytes, b.model_cycles),
            "census must replay identically"
        );
    }

    #[test]
    fn spectrum_orders_on_a_small_sweep() {
        let batch_sizes = &[64usize];
        let mut points = Vec::new();
        for backend in BackendKind::ALL {
            points.push(measure_point(backend, Workload::NullFilter, 64, 8));
            points.push(measure_point(backend, Workload::FirewallFlowtrack, 64, 8));
        }
        let r = IsolationResults {
            host_cpus: 1,
            rounds: 8,
            points,
        };
        assert!(r.spectrum_ordered(batch_sizes));
        let j = to_json(&r, batch_sizes);
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        for line in j.lines() {
            if line.contains("mpps") || line.contains("elapsed_ns") {
                assert!(
                    line.contains("\"kind\": \"timing\""),
                    "timing field on a stable line: {line}"
                );
            }
            if line.contains("crossings") {
                assert!(line.contains("\"kind\": \"stable\""));
            }
        }
        let stable: String = j
            .lines()
            .filter(|l| !l.contains("\"kind\": \"timing\""))
            .collect();
        assert!(stable.contains("\"spectrum_ordered\": true"));
        assert!(!stable.contains("mpps"));
    }
}
