//! E3 — §3: the cost of fault recovery.
//!
//! "Finally, we measure the cost of recovery by simulating a panic in
//! the null-filter and measuring the time it takes to catch it, clean up
//! the old domain, and create a new one. The recovery took 4389 cycles
//! on average."
//!
//! Measured here as the duration of the faulting invocation itself: it
//! begins when the callee panics and ends when the caller gets its error
//! back — by which point the stack is unwound, the reference table is
//! cleared, and the recovery function has rebuilt the operator.

use crate::harness::silence_panics;
use rbs_core::cycles::CycleTimer;
use rbs_core::stats::Summary;
use rbs_core::table::{fmt_f64, Table};
use rbs_netfx::batch::PacketBatch;
use rbs_netfx::operators::PanicAfter;
use rbs_netfx::pipeline::Operator;
use rbs_sfi::{Domain, DomainManager, RRef};

/// Distribution of recovery costs in cycles.
#[derive(Debug, Clone)]
pub struct RecoveryCosts {
    /// Summary over all measured recoveries.
    pub cycles: Summary,
}

/// Measures `rounds` fault-recovery cycles on a null-filter domain.
pub fn measure(rounds: usize) -> RecoveryCosts {
    silence_panics();
    let mgr = DomainManager::new();
    let domain = mgr.create_domain("null-filter").expect("no quota");
    // Recovery re-creates the (immediately faulting) operator so every
    // round exercises the identical catch/clean/rebuild path.
    let slot: std::sync::Arc<parking_lot::Mutex<Option<RRef<PanicAfter>>>> =
        std::sync::Arc::new(parking_lot::Mutex::new(None));
    {
        let slot = std::sync::Arc::clone(&slot);
        domain.set_recovery(move |d: &Domain| {
            *slot.lock() = Some(RRef::new(d, PanicAfter::new(0)));
        });
    }
    let mut rref = RRef::new(&domain, PanicAfter::new(0));

    // Warmup: the first panic pays one-time unwinder initialization that
    // a long-running system would have amortized long ago.
    for _ in 0..5.min(rounds) {
        let _ = rref.invoke_mut(|op| {
            let b = op.process(PacketBatch::new());
            b.len()
        });
        if let Some(fresh) = slot.lock().take() {
            rref = fresh;
        }
    }

    let mut samples = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let t = CycleTimer::start();
        let err = rref.invoke_mut(|op| {
            let b = op.process(PacketBatch::new());
            b.len()
        });
        let c = t.elapsed();
        assert!(err.is_err(), "the injected fault must fire");
        samples.push(c as f64);
        rref = slot.lock().take().expect("recovery repopulated the slot");
    }
    RecoveryCosts {
        cycles: Summary::of(&samples).expect("rounds > 0"),
    }
}

/// Regenerates the §3 recovery number as a text table.
pub fn run(quick: bool) -> String {
    let rounds = if quick { 300 } else { 3_000 };
    let costs = measure(rounds);
    let s = &costs.cycles;
    let mut t = Table::new(&["metric", "cycles"]);
    t.row_owned(vec!["recoveries measured".into(), s.count.to_string()]);
    t.row_owned(vec!["mean".into(), fmt_f64(s.mean, 0)]);
    t.row_owned(vec!["median".into(), fmt_f64(s.p50, 0)]);
    t.row_owned(vec!["p99".into(), fmt_f64(s.p99, 0)]);
    t.row_owned(vec!["min".into(), fmt_f64(s.min, 0)]);
    let mut out = String::from("E3 — fault recovery cost (paper: 4389 cycles on average)\n");
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovery_is_thousands_not_millions_of_cycles() {
        let costs = measure(100);
        let median = costs.cycles.p50;
        // The paper reports ~4.4k cycles on a 2008 Xeon in release mode.
        // Accept a wide band (debug build, unwinder variance, different
        // silicon), but insist on the order of magnitude: more than a
        // bare call, less than a millisecond.
        assert!(median > 500.0, "suspiciously cheap recovery: {median}");
        assert!(
            median < 3_000_000.0,
            "recovery should be microseconds-scale: {median}"
        );
    }

    #[test]
    fn every_round_actually_recovers() {
        let costs = measure(20);
        assert_eq!(costs.cycles.count, 20);
    }

    #[test]
    fn run_renders() {
        let out = run(true);
        assert!(out.contains("median"), "{out}");
    }
}
