//! E15 — tenant blast-radius containment at wall-clock scale:
//! multi-tenant SLA under aggressor traffic, breaker churn, warm
//! recovery, and priority-aware cross-tenant work stealing on real lane
//! threads.
//!
//! Every cell places N tenant domains onto four [`TenantLaneRuntime`]
//! lane *threads* by the weighted placement policy and turns tenant 1
//! into an aggressor while the rest carry steady traffic:
//!
//! - **flood** — the aggressor's flow population offers a large multiple
//!   of its share against a tight admission contract. Containment is
//!   the token bucket: the flood sheds at ingress (`shed_admission`)
//!   and never reaches a lane.
//! - **fault-loop** — the aggressor's chain panics on every batch.
//!   Containment is the circuit breaker: strikes throttle then open it
//!   (domain destroyed, ingress shed at zero cost), half-open probes
//!   keep re-testing, and the loop keeps re-opening it.
//! - **slow-operator** — the aggressor's chain costs 8× per packet.
//!   Containment is the work budget: over-budget ticks strike the
//!   breaker exactly like faults do.
//!
//! All cells run the full storm besides the aggressor: background chaos
//! panics (any tenant), snapshot-cadence warm recovery, and mid-run
//! tenant churn — the last tenant is removed at ⅓ of the run and
//! re-added at ⅔, forcing two live Maglev rebuilds whose remap counts
//! the report records. The SLA gate asserted in every cell: **every
//! non-aggressor tenant keeps ≥ 99% goodput**, with per-tenant
//! conservation exact (`offered == processed + lost + shed`) including
//! steal credits, and **zero priority inversions** across every
//! schedule the lane threads happen to take.
//!
//! Results are also emitted as `BENCH_tenant.json` in the repo root.
//! Records are split into stable lines (tick-clock and ledger derived —
//! byte-identical across runs of the same build) and `"kind": "timing"`
//! lines (wall-clock throughput and who-stole-what, which depend on
//! scheduling). CI diffs two runs after `grep -v '"kind": "timing"'`.

use std::sync::Arc;
use std::time::Instant;

use rbs_core::fault::{FaultKind, FaultPlan, FaultSite};
use rbs_core::table::Table;
use rbs_netfx::flow::FiveTuple;
use rbs_netfx::pktgen::{PacketGen, TrafficConfig};
use rbs_runtime::{
    LaneOccupancy, TenantLaneConfig, TenantLaneRuntime, TenantOutcome, TenantReport, TenantSpec,
};

use crate::harness::silence_panics;

/// Baseline packets per tenant per tick (the wave scales with N so the
/// per-tenant load is comparable at 8 and at 64 tenants).
const WAVE_PER_TENANT: usize = 24;

/// Extra aggressor packets per tick in flood cells.
const FLOOD_EXTRA: usize = 256;

/// Distinct flows in the baseline population.
const FLOWS: usize = 4096;

/// The one seed behind every cell.
const SEED: u64 = 0x0E15;

/// Background chaos rate applied to every tenant's batches, in ppm.
const CHAOS_PPM: u32 = 400;

/// The tenant that misbehaves (always index 1).
const AGGRESSOR: usize = 1;

/// Lane threads per cell.
const LANES: usize = 4;

/// Maglev table size (prime).
const TABLE_SIZE: usize = 251;

/// Per-tenant admission contract for well-behaved tenants.
const BASE_RATE: u64 = 400;
const BASE_BURST: u64 = 800;

/// The flood cell's aggressor contract: tokens per tick and burst.
const FLOOD_RATE: u64 = 25;
const FLOOD_BURST: u64 = 50;

/// Per-packet work cost of the slow aggressor's chain.
const SLOW_COST: u64 = 8;

/// Per-tick work budget in slow-operator cells: three times the heaviest
/// *innocent* tenant's expected draw, so legitimate heavy traffic never
/// strikes while the 8×-cost hog overruns every tick. An operator sets
/// this from the contracted loads; the matrix derives it the same way.
fn work_budget(wave: usize, specs: &[TenantSpec]) -> u64 {
    let total_w: u64 = specs.iter().map(|s| u64::from(s.weight)).sum();
    let max_innocent_w = specs
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != AGGRESSOR)
        .map(|(_, s)| u64::from(s.weight))
        .max()
        .unwrap_or(1);
    3 * (wave as u64) * max_innocent_w / total_w.max(1)
}

/// How tenant load is skewed across the population.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Skew {
    /// Every tenant weighted equally in the steering table.
    Uniform,
    /// Zipf-like integer weights (8, 5, 3, 2, 1, 1, ...): a few heavy
    /// tenants, a long light tail.
    Zipf,
}

impl Skew {
    /// Stable name used in tables and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Skew::Uniform => "uniform",
            Skew::Zipf => "zipf",
        }
    }

    /// The Maglev weight of tenant `i` under this skew.
    fn weight(self, i: usize) -> u32 {
        match self {
            Skew::Uniform => 1,
            Skew::Zipf => match i {
                0 => 8,
                1 => 5,
                2 => 3,
                3 => 2,
                _ => 1,
            },
        }
    }
}

/// What tenant 1 does to the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggressor {
    /// Offers far more than its admission contract.
    Flood,
    /// Panics on every executed batch.
    FaultLoop,
    /// Costs 8× lane work per packet.
    SlowOperator,
}

impl Aggressor {
    /// Every profile, in report order.
    pub const ALL: [Aggressor; 3] = [
        Aggressor::Flood,
        Aggressor::FaultLoop,
        Aggressor::SlowOperator,
    ];

    /// Stable name used in tables and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Aggressor::Flood => "flood",
            Aggressor::FaultLoop => "fault-loop",
            Aggressor::SlowOperator => "slow-operator",
        }
    }
}

/// A tenant's role in the cell.
fn role(idx: usize, tenants: usize) -> &'static str {
    if idx == AGGRESSOR {
        "aggressor"
    } else if idx == tenants - 1 {
        "churn"
    } else {
        "victim"
    }
}

/// One tenant's row in a cell's result.
#[derive(Debug, Clone)]
pub struct TenantRow {
    /// `"victim"`, `"aggressor"`, or `"churn"`.
    pub role: &'static str,
    /// The runtime's full outcome for this tenant.
    pub outcome: TenantOutcome,
    /// The tenant's Maglev weight in this cell.
    pub weight: u32,
}

/// One (tenants × skew × aggressor) cell of the matrix.
#[derive(Debug, Clone)]
pub struct TenantCell {
    /// Tenant count.
    pub tenants: usize,
    /// Load skew.
    pub skew: Skew,
    /// Aggressor profile.
    pub aggressor: Aggressor,
    /// Ticks of offered traffic (the drain at shutdown adds more).
    pub ticks: u64,
    /// Per-tenant rows, index order.
    pub rows: Vec<TenantRow>,
    /// Maglev entries remapped when the churn tenant left.
    pub remap_entries_out: usize,
    /// Maglev entries remapped when it returned (equal by determinism).
    pub remap_entries_back: usize,
    /// Batches shed by the lane high-water mark.
    pub hwm_sheds: u64,
    /// Times the aggressor's breaker opened.
    pub aggressor_opens: u64,
    /// The SLA gate: every non-aggressor kept ≥ 99% goodput.
    pub victims_contained: bool,
    /// Per-lane placement and steal observability from the report.
    pub occupancy: Vec<LaneOccupancy>,
    /// Total packets offered across tenants.
    pub offered: u64,
    /// Wall-clock time of the offered-traffic loop, nanoseconds.
    pub elapsed_ns: u128,
}

impl TenantCell {
    /// Stable cell name, e.g. `t8-zipf-fault-loop`.
    pub fn name(&self) -> String {
        format!(
            "t{}-{}-{}",
            self.tenants,
            self.skew.name(),
            self.aggressor.name()
        )
    }

    /// Lowest goodput among non-aggressor tenants, in ppm.
    pub fn worst_victim_goodput_ppm(&self) -> u64 {
        self.rows
            .iter()
            .filter(|r| r.role != "aggressor")
            .map(|r| r.outcome.ledger.goodput_ppm())
            .min()
            .unwrap_or(1_000_000)
    }

    /// Offered throughput over the traffic loop, in Mpps (wall-clock —
    /// a timing quantity, never part of the stable record).
    pub fn mpps(&self) -> f64 {
        self.offered as f64 / (self.elapsed_ns as f64 / 1e9) / 1e6
    }

    /// Work items stolen across lanes (scheduling-dependent).
    pub fn steals(&self) -> u64 {
        self.occupancy.iter().map(|l| l.steals_in).sum()
    }

    /// Wire bytes charged as the steal tax (scheduling-dependent).
    pub fn steal_bytes(&self) -> u64 {
        self.occupancy.iter().map(|l| l.steal_bytes).sum()
    }

    /// Packets credited to origin-tenant `stolen` ledgers.
    pub fn stolen_packets(&self) -> u64 {
        self.rows.iter().map(|r| r.outcome.ledger.stolen).sum()
    }

    /// Priority inversions observed by the steal audit (must be zero).
    pub fn priority_inversions(&self) -> u64 {
        self.occupancy.iter().map(|l| l.priority_inversions).sum()
    }
}

/// Builds the cell's tenant population.
fn population(tenants: usize, skew: Skew, aggressor: Aggressor) -> Vec<TenantSpec> {
    (0..tenants)
        .map(|i| {
            let mut spec = TenantSpec::new(format!("tenant-{i}"))
                .weight(skew.weight(i))
                .rate(BASE_RATE, BASE_BURST)
                .priority(if i == AGGRESSOR { 1 } else { 2 });
            if i == AGGRESSOR {
                match aggressor {
                    Aggressor::Flood => spec = spec.rate(FLOOD_RATE, FLOOD_BURST),
                    Aggressor::SlowOperator => spec = spec.cost_per_packet(SLOW_COST),
                    Aggressor::FaultLoop => {}
                }
            }
            spec
        })
        .collect()
}

/// The cell's fault plan: background chaos for everyone, plus the
/// scripted permanent loop on the aggressor's stream in fault-loop
/// cells.
fn plan(aggressor: Aggressor) -> FaultPlan {
    let plan = FaultPlan::new(SEED).inject(FaultSite::Operator(0), FaultKind::Panic, CHAOS_PPM);
    match aggressor {
        Aggressor::FaultLoop => plan.inject_window(
            FaultSite::Operator(0),
            FaultKind::Panic,
            AGGRESSOR as u64,
            0,
            u64::MAX,
        ),
        _ => plan,
    }
}

/// Runs one cell: `ticks` waves of steered traffic on four lane threads
/// with the aggressor active throughout, churn at ⅓ and ⅔, chaos and
/// snapshots on cadence. The wave scales with the tenant count so the
/// per-tenant load is the same at every scale.
pub fn measure_cell(tenants: usize, skew: Skew, aggressor: Aggressor, ticks: u64) -> TenantCell {
    silence_panics();
    assert!(tenants >= 4, "cells need victims, an aggressor, and churn");
    let wave = WAVE_PER_TENANT * tenants;
    let specs = population(tenants, skew, aggressor);
    let config = TenantLaneConfig {
        lanes: LANES,
        table_size: TABLE_SIZE,
        queue_hwm: 4 * tenants,
        work_budget_per_tick: match aggressor {
            Aggressor::SlowOperator => work_budget(wave, &specs),
            _ => 0,
        },
        tenants: specs,
        snapshot_every_ticks: 4,
        snapshot_full_every: 4,
        faults: Some(Arc::new(plan(aggressor))),
        ..TenantLaneConfig::default()
    };
    let weights: Vec<u32> = config.tenants.iter().map(|t| t.weight).collect();
    let mut rt = TenantLaneRuntime::new(config).expect("tenant lane runtime");

    let traffic = TrafficConfig {
        flows: FLOWS,
        payload_len: 64,
        seed: SEED ^ ((tenants as u64) << 8),
        ..Default::default()
    };
    // The flood draws only from flows that steer to the aggressor, so
    // the extra load lands squarely on its admission contract.
    let mut flood_gen = match aggressor {
        Aggressor::Flood => {
            let table = rt.table();
            Some(PacketGen::subset(
                traffic.clone(),
                0x0F_100D,
                |t: &FiveTuple| table.lookup(t.stable_hash()) == AGGRESSOR,
            ))
        }
        _ => None,
    };
    let mut gen = PacketGen::new(traffic);

    let churn_tenant = tenants - 1;
    let (leave_at, return_at) = (ticks / 3, 2 * ticks / 3);
    let mut remap_out = 0;
    let mut remap_back = 0;
    let start = Instant::now();
    for tick in 0..ticks {
        if tick == leave_at {
            remap_out = rt.remove_tenant(churn_tenant).expect("churn remove");
        }
        if tick == return_at {
            remap_back = rt.add_tenant(churn_tenant).expect("churn add");
        }
        // Two half-waves per tick: a chaos panic costs its tenant half
        // a tick's traffic, so the blast a single background fault can
        // do stays well inside the 1% SLA at every tenant scale.
        rt.offer(gen.next_batch(wave / 2));
        rt.offer(gen.next_batch(wave - wave / 2));
        if let Some(flood) = flood_gen.as_mut() {
            rt.offer(flood.next_batch(FLOOD_EXTRA));
        }
        rt.step();
    }
    let elapsed_ns = start.elapsed().as_nanos();
    let report = rt.finish();
    cell_from_report(
        tenants, skew, aggressor, ticks, weights, remap_out, remap_back, elapsed_ns, report,
    )
}

/// Audits the report against the cell's containment contract and folds
/// it into a [`TenantCell`].
#[allow(clippy::too_many_arguments)]
fn cell_from_report(
    tenants: usize,
    skew: Skew,
    aggressor: Aggressor,
    ticks: u64,
    weights: Vec<u32>,
    remap_entries_out: usize,
    remap_entries_back: usize,
    elapsed_ns: u128,
    report: TenantReport,
) -> TenantCell {
    let churn_tenant = tenants - 1;
    let rows: Vec<TenantRow> = report
        .tenants
        .iter()
        .enumerate()
        .map(|(i, outcome)| TenantRow {
            role: role(i, tenants),
            outcome: outcome.clone(),
            weight: weights[i],
        })
        .collect();
    let aggressor_opens = report.tenants[AGGRESSOR].opens;
    let victims_contained = rows
        .iter()
        .filter(|r| r.role != "aggressor")
        .all(|r| r.outcome.ledger.goodput_ppm() >= 990_000);
    let cell = TenantCell {
        tenants,
        skew,
        aggressor,
        ticks,
        offered: report.offered(),
        rows,
        remap_entries_out,
        remap_entries_back,
        hwm_sheds: report.hwm_sheds,
        aggressor_opens,
        victims_contained,
        occupancy: report.occupancy.clone(),
        elapsed_ns,
    };

    // Exact conservation, per tenant and in aggregate, with steal
    // credits a subset of processed work.
    assert_eq!(
        report.unaccounted_packets(),
        0,
        "{}: packets vanished",
        cell.name()
    );
    for row in &cell.rows {
        assert_eq!(
            row.outcome.ledger.unaccounted(),
            0,
            "{}: {} leaks packets",
            cell.name(),
            row.outcome.name
        );
        assert!(
            row.outcome.ledger.stolen <= row.outcome.ledger.processed,
            "{}: {} credited more steals than work",
            cell.name(),
            row.outcome.name
        );
    }
    // The steal audit: no schedule may claim work past a higher band,
    // and the executor and origin views must describe the same thefts.
    assert_eq!(
        cell.priority_inversions(),
        0,
        "{}: priority inverted",
        cell.name()
    );
    let by_origin: u64 = cell
        .occupancy
        .iter()
        .flat_map(|l| l.stolen_from.iter().map(|&(_, n)| n))
        .sum();
    assert_eq!(cell.steals(), by_origin, "{}", cell.name());
    // The SLA gate: non-aggressors keep ≥ 99% goodput and never trip
    // their own breakers.
    for row in cell.rows.iter().filter(|r| r.role != "aggressor") {
        assert!(
            row.outcome.ledger.goodput_ppm() >= 990_000,
            "{}: {} ({}) dropped to {} ppm",
            cell.name(),
            row.outcome.name,
            row.role,
            row.outcome.ledger.goodput_ppm()
        );
        assert_eq!(
            row.outcome.opens,
            0,
            "{}: non-aggressor {} breaker opened",
            cell.name(),
            row.outcome.name
        );
        assert_eq!(
            row.outcome.ledger.shed(),
            0,
            "{}: non-aggressor {} was shed",
            cell.name(),
            row.outcome.name
        );
    }
    assert!(cell.victims_contained);
    // Churn ran: two rebuilds, reversed exactly, fresh epoch.
    assert_eq!(report.rebuilds.len(), 2, "{}", cell.name());
    assert_eq!(remap_entries_out, remap_entries_back, "{}", cell.name());
    assert!(remap_entries_out > 0, "{}", cell.name());
    assert_eq!(report.tenants[churn_tenant].epoch, 1, "{}", cell.name());
    // The profile-specific containment signal.
    let aggr = &report.tenants[AGGRESSOR];
    match aggressor {
        Aggressor::Flood => assert!(
            aggr.ledger.shed_admission > 0,
            "{}: the flood never hit its bucket",
            cell.name()
        ),
        Aggressor::FaultLoop => {
            assert!(aggr.opens >= 1, "{}: the loop never opened", cell.name());
            assert!(aggr.ledger.shed_open > 0, "{}", cell.name());
        }
        Aggressor::SlowOperator => assert!(
            aggr.opens >= 1,
            "{}: the work budget never opened the hog",
            cell.name()
        ),
    }
    cell
}

/// The full tenants × skew × aggressor matrix.
#[derive(Debug, Clone)]
pub struct TenantResults {
    /// Ticks per cell.
    pub ticks: u64,
    /// The 12 cells, tenants-major.
    pub cells: Vec<TenantCell>,
}

/// Runs every cell: small-population and large-population tenant scale
/// on the same four lane threads.
pub fn measure(ticks: u64) -> TenantResults {
    let mut cells = Vec::new();
    for tenants in [8usize, 64] {
        for skew in [Skew::Uniform, Skew::Zipf] {
            for aggressor in Aggressor::ALL {
                cells.push(measure_cell(tenants, skew, aggressor, ticks));
            }
        }
    }
    TenantResults { ticks, cells }
}

/// Renders the result set as the `BENCH_tenant.json` payload.
///
/// Stable lines are integer-only, derived from the tick clock and the
/// ledgers: two runs of the same build produce them byte-identically.
/// Lines tagged `"kind": "timing"` carry wall-clock throughput and
/// steal attribution, which depend on scheduling; CI strips them with
/// `grep -v '"kind": "timing"'` before diffing.
pub fn to_json(r: &TenantResults) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"e15_tenants\",\n");
    out.push_str("  \"engine\": \"tenant-lanes-threaded\",\n");
    out.push_str(&format!("  \"seed\": {SEED},\n"));
    out.push_str(&format!("  \"wave_per_tenant\": {WAVE_PER_TENANT},\n"));
    out.push_str(&format!("  \"flood_extra\": {FLOOD_EXTRA},\n"));
    out.push_str(&format!("  \"flows\": {FLOWS},\n"));
    out.push_str(&format!("  \"lanes\": {LANES},\n"));
    out.push_str(&format!("  \"chaos_ppm\": {CHAOS_PPM},\n"));
    out.push_str(&format!("  \"ticks\": {},\n", r.ticks));
    out.push_str("  \"cells\": [\n");
    for (i, c) in r.cells.iter().enumerate() {
        let placement: Vec<String> = c
            .occupancy
            .iter()
            .map(|l| {
                format!(
                    "[{}]",
                    l.residents
                        .iter()
                        .map(|t| t.to_string())
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            })
            .collect();
        out.push_str(&format!(
            "    {{\"cell\": \"{}\", \"tenants\": {}, \"skew\": \"{}\", \"aggressor\": \"{}\", \"ticks\": {}, \"remap_entries_out\": {}, \"remap_entries_back\": {}, \"hwm_sheds\": {}, \"aggressor_opens\": {}, \"worst_victim_goodput_ppm\": {}, \"victims_contained\": {}, \"priority_inversions\": {}, \"placement\": [{}], \"rows\": [\n",
            c.name(),
            c.tenants,
            c.skew.name(),
            c.aggressor.name(),
            c.ticks,
            c.remap_entries_out,
            c.remap_entries_back,
            c.hwm_sheds,
            c.aggressor_opens,
            c.worst_victim_goodput_ppm(),
            c.victims_contained,
            c.priority_inversions(),
            placement.join(", "),
        ));
        for (j, row) in c.rows.iter().enumerate() {
            let o = &row.outcome;
            let l = &o.ledger;
            out.push_str(&format!(
                "      {{\"tenant\": \"{}\", \"role\": \"{}\", \"priority\": {}, \"weight\": {}, \"offered\": {}, \"processed\": {}, \"out\": {}, \"drops\": {}, \"lost\": {}, \"shed_admission\": {}, \"shed_open\": {}, \"shed_backpressure\": {}, \"shed_removed\": {}, \"goodput_ppm\": {}, \"p99_delay_ticks\": {}, \"max_delay_ticks\": {}, \"faults\": {}, \"opens\": {}, \"throttles\": {}, \"respawns\": {}, \"warm_restores\": {}, \"cold_restores\": {}, \"state_items_restored\": {}, \"final_state_items\": {}, \"epoch\": {}, \"unaccounted\": {}}}{}\n",
                o.name,
                row.role,
                o.priority,
                row.weight,
                l.offered,
                l.processed,
                l.out,
                l.drops,
                l.lost,
                l.shed_admission,
                l.shed_open,
                l.shed_backpressure,
                l.shed_removed,
                l.goodput_ppm(),
                o.p99_delay_ticks,
                o.max_delay_ticks,
                o.faults,
                o.opens,
                o.throttles,
                o.respawns,
                o.warm_restores,
                o.cold_restores,
                o.state_items_restored,
                o.final_state_items,
                o.epoch,
                l.unaccounted(),
                if j + 1 < c.rows.len() { "," } else { "" },
            ));
        }
        out.push_str(&format!(
            "    ]}}{}\n",
            if i + 1 < r.cells.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"timing\": [\n");
    for (i, c) in r.cells.iter().enumerate() {
        let by_lane: Vec<String> = c
            .occupancy
            .iter()
            .map(|l| {
                format!(
                    "{{\"lane\": {}, \"executed_batches\": {}, \"executed_packets\": {}, \"steals_in\": {}, \"steal_bytes\": {}}}",
                    l.lane, l.executed_batches, l.executed_packets, l.steals_in, l.steal_bytes
                )
            })
            .collect();
        out.push_str(&format!(
            "    {{\"kind\": \"timing\", \"cell\": \"{}\", \"elapsed_ns\": {}, \"mpps\": {:.4}, \"steals\": {}, \"steal_bytes\": {}, \"stolen_packets\": {}, \"lanes\": [{}]}}{}\n",
            c.name(),
            c.elapsed_ns,
            c.mpps(),
            c.steals(),
            c.steal_bytes(),
            c.stolen_packets(),
            by_lane.join(", "),
            if i + 1 < r.cells.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Regenerates the tenant containment matrix, writing
/// `BENCH_tenant.json` beside it.
pub fn run(quick: bool) -> String {
    let ticks = if quick { 96 } else { 120 };
    let results = measure(ticks);

    let mut t = Table::new(&[
        "cell",
        "Mpps",
        "aggr goodput %",
        "worst victim %",
        "aggr opens",
        "steals",
        "remap",
        "contained",
    ]);
    for c in &results.cells {
        let aggr = &c.rows[AGGRESSOR].outcome.ledger;
        t.row_owned(vec![
            c.name(),
            format!("{:.2}", c.mpps()),
            format!("{:.2}", aggr.goodput_ppm() as f64 / 10_000.0),
            format!("{:.2}", c.worst_victim_goodput_ppm() as f64 / 10_000.0),
            c.aggressor_opens.to_string(),
            c.steals().to_string(),
            c.remap_entries_out.to_string(),
            c.victims_contained.to_string(),
        ]);
    }

    let mut out = String::from(
        "E15 — tenant blast-radius containment on threaded lanes: breakers, admission, and priority-aware stealing under aggressor load\n",
    );
    out.push_str(&t.render());
    out.push_str(
        "\nEvery cell places its tenants onto four lane threads, churns one tenant out and back\n\
         mid-run (two live Maglev rebuilds) with background chaos and warm recovery active;\n\
         non-aggressor tenants keep >= 99% goodput in every cell, every per-tenant ledger\n\
         balances exactly (steal credits included), and the steal audit observed zero\n\
         priority inversions.\n",
    );

    let json_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_tenant.json");
    match std::fs::write(json_path, to_json(&results)) {
        Ok(()) => out.push_str(&format!("\nwrote {json_path}\n")),
        Err(e) => out.push_str(&format!("\ncould not write {json_path}: {e}\n")),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc_count;
    use rbs_runtime::{TenantConfig, TenantRuntime};

    #[test]
    fn flood_cell_contains_the_flood_at_admission() {
        let c = measure_cell(8, Skew::Uniform, Aggressor::Flood, 24);
        assert!(c.victims_contained);
        let aggr = &c.rows[AGGRESSOR].outcome.ledger;
        assert!(aggr.shed_admission > 0);
        // The flood's goodput collapses; nobody else's does.
        assert!(aggr.goodput_ppm() < 500_000);
    }

    #[test]
    fn fault_loop_cell_opens_the_breaker() {
        let c = measure_cell(8, Skew::Zipf, Aggressor::FaultLoop, 24);
        assert!(c.victims_contained);
        let aggr = &c.rows[AGGRESSOR].outcome;
        assert!(aggr.opens >= 1);
        assert!(aggr.ledger.shed_open > aggr.ledger.lost);
    }

    #[test]
    fn slow_operator_cell_trips_the_work_budget() {
        let c = measure_cell(8, Skew::Uniform, Aggressor::SlowOperator, 24);
        assert!(c.victims_contained);
        assert!(c.rows[AGGRESSOR].outcome.opens >= 1);
        assert_eq!(
            c.rows[AGGRESSOR].outcome.faults, 0,
            "the hog never faults — the budget alone contains it"
        );
    }

    #[test]
    fn tenant_scale_cell_holds_the_sla() {
        // The scale point of the matrix: 64 tenants on 4 lane threads.
        // measure_cell asserts the SLA, conservation, and the inversion
        // audit in-cell; this pins the placement shape on top.
        let c = measure_cell(64, Skew::Uniform, Aggressor::FaultLoop, 24);
        assert!(c.victims_contained);
        assert_eq!(c.occupancy.len(), LANES);
        let placed: usize = c.occupancy.iter().map(|l| l.residents.len()).sum();
        assert_eq!(placed, 64, "every tenant has a home lane");
        assert_eq!(c.priority_inversions(), 0);
    }

    /// Everything but scheduling must replay byte-identically: the
    /// stable JSON (ledgers, events-derived counters, placement) is
    /// compared after stripping `"kind": "timing"` lines, exactly like
    /// CI does.
    #[test]
    fn cells_are_deterministic() {
        let a = measure_cell(8, Skew::Zipf, Aggressor::FaultLoop, 24);
        let b = measure_cell(8, Skew::Zipf, Aggressor::FaultLoop, 24);
        let key = |c: &TenantCell| {
            c.rows
                .iter()
                .map(|r| {
                    let mut ledger = r.outcome.ledger;
                    ledger.stolen = 0; // scheduling-dependent
                    (
                        ledger,
                        r.outcome.faults,
                        r.outcome.opens,
                        r.outcome.p99_delay_ticks,
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(key(&a), key(&b));
        assert_eq!(a.remap_entries_out, b.remap_entries_out);
        let stable = |r: &TenantResults| {
            to_json(r)
                .lines()
                .filter(|l| !l.contains("\"kind\": \"timing\""))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(
            stable(&TenantResults {
                ticks: 24,
                cells: vec![a]
            }),
            stable(&TenantResults {
                ticks: 24,
                cells: vec![b]
            })
        );
    }

    #[test]
    fn json_separates_stable_from_timing() {
        let c = measure_cell(8, Skew::Uniform, Aggressor::Flood, 12);
        let j = to_json(&TenantResults {
            ticks: 12,
            cells: vec![c],
        });
        assert!(j.contains("\"experiment\": \"e15_tenants\""));
        assert!(j.contains("\"role\": \"aggressor\""));
        assert!(j.contains("\"victims_contained\": true"));
        assert!(j.contains("\"placement\": ["));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        // Every wall-clock field lives on a line CI strips before
        // diffing; every other line is byte-stable by construction.
        for line in j.lines() {
            if line.contains("\"mpps\"")
                || line.contains("\"elapsed_ns\"")
                || line.contains("\"steals\"")
            {
                assert!(
                    line.contains("\"kind\": \"timing\""),
                    "timing field on a stable line: {line}"
                );
            }
        }
    }

    /// Satellite audit for the batched-steering fast path: with cached
    /// flow hashes, `offer` performs one Maglev lookup per flow-hash
    /// run and its allocation count depends on the number of staged
    /// *batches*, not packets — offering 4× the packets costs exactly
    /// the same allocations once the staging buffers are warm.
    #[test]
    fn steering_is_alloc_free_per_packet() {
        let mut rt = TenantRuntime::new(TenantConfig {
            tenants: (0..8)
                .map(|i| TenantSpec::new(format!("steer-{i}")).rate(1 << 20, 1 << 20))
                .collect(),
            lanes: 2,
            table_size: TABLE_SIZE,
            lane_capacity: 4 << 10,
            queue_hwm: 1 << 20,
            ..TenantConfig::default()
        })
        .expect("tenant runtime");
        // A NIC delivering RSS-coalesced bursts hands the runtime runs
        // of same-flow packets; `n / 64` consecutive packets per flow
        // models that, with per-flow counts exact so every staging cell
        // sees the same share in every batch.
        let runs = |n: usize| {
            use rbs_netfx::headers::ethernet::MacAddr;
            use rbs_netfx::Packet;
            use std::net::Ipv4Addr;
            let mut pkts = Vec::with_capacity(n);
            for flow in 0..64u16 {
                for _ in 0..(n / 64) {
                    let mut p = Packet::build_udp(
                        MacAddr::ZERO,
                        MacAddr::ZERO,
                        Ipv4Addr::new(10, 0, 0, (flow % 23) as u8 + 1),
                        Ipv4Addr::new(192, 0, 2, 1),
                        flow + 1_024,
                        80,
                        16,
                    );
                    let hash = rbs_netfx::flow::packet_flow_hash(&p);
                    p.set_cached_flow_hash(hash);
                    pkts.push(p);
                }
            }
            rbs_netfx::PacketBatch::from_packets(pkts)
        };
        let small: Vec<_> = (0..4).map(|_| runs(256)).collect();
        let big: Vec<_> = (0..4).map(|_| runs(1_024)).collect();

        // Warm the staging buffers and queues past the high-water mark
        // the measured windows will reach: eight undrained offers grow
        // every Vec/VecDeque on the path beyond what four can need.
        for batch in (0..8).map(|_| runs(1_024)) {
            rt.offer(batch);
        }
        for _ in 0..8 {
            rt.step();
        }

        // Measure the offer path alone (steps drain between windows,
        // outside the measurement): its allocations are one
        // exact-capacity Vec per queued *batch*, never per packet.
        let lookups_before = rt.steering_lookups();
        let before = alloc_count::allocations();
        for batch in small {
            rt.offer(batch);
        }
        let after_small = alloc_count::allocations();
        rt.step();
        let mid = alloc_count::allocations();
        for batch in big {
            rt.offer(batch);
        }
        let after_big = alloc_count::allocations();
        rt.step();

        // Run-batched steering: far fewer lookups than packets.
        let lookups = rt.steering_lookups() - lookups_before;
        assert!(lookups > 0);
        assert!(
            lookups < (4 * 256 + 4 * 1_024) / 2,
            "steering resolved per packet: {lookups} lookups"
        );
        if alloc_count::enabled() {
            let small_allocs = after_small - before;
            let big_allocs = after_big - mid;
            assert_eq!(
                small_allocs, big_allocs,
                "steering allocations scale with packets (N: {small_allocs}, 4N: {big_allocs})"
            );
        }
        let report = rt.finish();
        assert_eq!(report.unaccounted_packets(), 0);
    }
}
