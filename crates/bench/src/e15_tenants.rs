//! E15 — tenant blast-radius containment: multi-tenant SLA under
//! aggressor traffic, breaker churn, and warm recovery.
//!
//! Every cell multiplexes N tenants onto the [`TenantRuntime`]'s
//! run-to-completion lanes and turns tenant 1 into an aggressor while
//! the rest carry steady traffic:
//!
//! - **flood** — the aggressor's flow population offers ~2.6× the whole
//!   baseline mix on top of its share, against a tight admission
//!   contract. Containment is the token bucket: the flood sheds at
//!   ingress (`shed_admission`) and never reaches a lane.
//! - **fault-loop** — the aggressor's chain panics on every batch.
//!   Containment is the circuit breaker: strikes throttle then open it
//!   (domain destroyed, ingress shed at zero cost), half-open probes
//!   keep re-testing, and the loop keeps re-opening it.
//! - **slow-operator** — the aggressor's chain costs 8× per packet.
//!   Containment is the work budget: over-budget ticks strike the
//!   breaker exactly like faults do.
//!
//! All cells run the full storm besides the aggressor: background chaos
//! panics (~0.08% of batches, any tenant), snapshot-cadence warm
//! recovery, and mid-run tenant churn — the last tenant is removed at
//! ⅓ of the run and re-added at ⅔, forcing two live Maglev rebuilds
//! whose remap counts the report records. The SLA gate asserted in
//! every cell: **every non-aggressor tenant keeps ≥ 99% goodput**, with
//! per-tenant conservation exact (`offered == processed + lost + shed`).
//!
//! Results are also emitted as `BENCH_tenant.json` in the repo root.
//! All fields are integers derived from the logical tick clock and the
//! tenant ledgers — never wall time — so two runs of the same build are
//! byte-identical (CI diffs them).

use std::sync::Arc;

use rbs_core::fault::{FaultKind, FaultPlan, FaultSite};
use rbs_core::table::Table;
use rbs_netfx::flow::FiveTuple;
use rbs_netfx::pktgen::{PacketGen, TrafficConfig};
use rbs_runtime::{TenantConfig, TenantOutcome, TenantReport, TenantRuntime, TenantSpec};

use crate::harness::silence_panics;

/// Packets in every baseline wave (one wave per tick).
const WAVE: usize = 96;

/// Extra aggressor packets per tick in flood cells.
const FLOOD_EXTRA: usize = 256;

/// Distinct flows in the baseline population.
const FLOWS: usize = 768;

/// The one seed behind every cell.
const SEED: u64 = 0x0E15;

/// Background chaos rate applied to every tenant's batches, in ppm.
const CHAOS_PPM: u32 = 800;

/// The tenant that misbehaves (always index 1).
const AGGRESSOR: usize = 1;

/// Run-to-completion lanes per cell.
const LANES: usize = 2;

/// Maglev table size (prime).
const TABLE_SIZE: usize = 251;

/// Per-tenant admission contract for well-behaved tenants.
const BASE_RATE: u64 = 400;
const BASE_BURST: u64 = 800;

/// The flood cell's aggressor contract: tokens per tick and burst.
const FLOOD_RATE: u64 = 25;
const FLOOD_BURST: u64 = 50;

/// Per-tick work budget in slow-operator cells (work units).
const WORK_BUDGET: u64 = 80;

/// Per-packet work cost of the slow aggressor's chain.
const SLOW_COST: u64 = 8;

/// How tenant load is skewed across the population.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Skew {
    /// Every tenant weighted equally in the steering table.
    Uniform,
    /// Zipf-like integer weights (8, 5, 3, 2, 1, 1, ...): a few heavy
    /// tenants, a long light tail.
    Zipf,
}

impl Skew {
    /// Stable name used in tables and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Skew::Uniform => "uniform",
            Skew::Zipf => "zipf",
        }
    }

    /// The Maglev weight of tenant `i` under this skew.
    fn weight(self, i: usize) -> u32 {
        match self {
            Skew::Uniform => 1,
            Skew::Zipf => match i {
                0 => 8,
                1 => 5,
                2 => 3,
                3 => 2,
                _ => 1,
            },
        }
    }
}

/// What tenant 1 does to the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggressor {
    /// Offers far more than its admission contract.
    Flood,
    /// Panics on every executed batch.
    FaultLoop,
    /// Costs 8× lane work per packet.
    SlowOperator,
}

impl Aggressor {
    /// Every profile, in report order.
    pub const ALL: [Aggressor; 3] = [
        Aggressor::Flood,
        Aggressor::FaultLoop,
        Aggressor::SlowOperator,
    ];

    /// Stable name used in tables and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Aggressor::Flood => "flood",
            Aggressor::FaultLoop => "fault-loop",
            Aggressor::SlowOperator => "slow-operator",
        }
    }
}

/// A tenant's role in the cell.
fn role(idx: usize, tenants: usize) -> &'static str {
    if idx == AGGRESSOR {
        "aggressor"
    } else if idx == tenants - 1 {
        "churn"
    } else {
        "victim"
    }
}

/// One tenant's row in a cell's result.
#[derive(Debug, Clone)]
pub struct TenantRow {
    /// `"victim"`, `"aggressor"`, or `"churn"`.
    pub role: &'static str,
    /// The runtime's full outcome for this tenant.
    pub outcome: TenantOutcome,
    /// The tenant's Maglev weight in this cell.
    pub weight: u32,
}

/// One (tenants × skew × aggressor) cell of the matrix.
#[derive(Debug, Clone)]
pub struct TenantCell {
    /// Tenant count.
    pub tenants: usize,
    /// Load skew.
    pub skew: Skew,
    /// Aggressor profile.
    pub aggressor: Aggressor,
    /// Ticks of offered traffic (the drain at shutdown adds more).
    pub ticks: u64,
    /// Per-tenant rows, index order.
    pub rows: Vec<TenantRow>,
    /// Maglev entries remapped when the churn tenant left.
    pub remap_entries_out: usize,
    /// Maglev entries remapped when it returned (equal by determinism).
    pub remap_entries_back: usize,
    /// Batches shed by the lane high-water mark.
    pub hwm_sheds: u64,
    /// Times the aggressor's breaker opened.
    pub aggressor_opens: u64,
    /// The SLA gate: every non-aggressor kept ≥ 99% goodput.
    pub victims_contained: bool,
}

impl TenantCell {
    /// Stable cell name, e.g. `t8-zipf-fault-loop`.
    pub fn name(&self) -> String {
        format!(
            "t{}-{}-{}",
            self.tenants,
            self.skew.name(),
            self.aggressor.name()
        )
    }

    /// Lowest goodput among non-aggressor tenants, in ppm.
    pub fn worst_victim_goodput_ppm(&self) -> u64 {
        self.rows
            .iter()
            .filter(|r| r.role != "aggressor")
            .map(|r| r.outcome.ledger.goodput_ppm())
            .min()
            .unwrap_or(1_000_000)
    }
}

/// Builds the cell's tenant population.
fn population(tenants: usize, skew: Skew, aggressor: Aggressor) -> Vec<TenantSpec> {
    (0..tenants)
        .map(|i| {
            let mut spec = TenantSpec::new(format!("tenant-{i}"))
                .weight(skew.weight(i))
                .rate(BASE_RATE, BASE_BURST)
                .priority(if i == AGGRESSOR { 1 } else { 2 });
            if i == AGGRESSOR {
                match aggressor {
                    Aggressor::Flood => spec = spec.rate(FLOOD_RATE, FLOOD_BURST),
                    Aggressor::SlowOperator => spec = spec.cost_per_packet(SLOW_COST),
                    Aggressor::FaultLoop => {}
                }
            }
            spec
        })
        .collect()
}

/// The cell's fault plan: background chaos for everyone, plus the
/// scripted permanent loop on the aggressor's stream in fault-loop
/// cells.
fn plan(aggressor: Aggressor) -> FaultPlan {
    let plan = FaultPlan::new(SEED).inject(FaultSite::Operator(0), FaultKind::Panic, CHAOS_PPM);
    match aggressor {
        Aggressor::FaultLoop => plan.inject_window(
            FaultSite::Operator(0),
            FaultKind::Panic,
            AGGRESSOR as u64,
            0,
            u64::MAX,
        ),
        _ => plan,
    }
}

/// Runs one cell: `ticks` waves of steered traffic with the aggressor
/// active throughout, churn at ⅓ and ⅔, chaos and snapshots on cadence.
pub fn measure_cell(tenants: usize, skew: Skew, aggressor: Aggressor, ticks: u64) -> TenantCell {
    silence_panics();
    assert!(tenants >= 4, "cells need victims, an aggressor, and churn");
    let config = TenantConfig {
        tenants: population(tenants, skew, aggressor),
        lanes: LANES,
        table_size: TABLE_SIZE,
        lane_capacity: 512,
        queue_hwm: 4 * tenants,
        work_budget_per_tick: match aggressor {
            Aggressor::SlowOperator => WORK_BUDGET,
            _ => 0,
        },
        snapshot_every_ticks: 4,
        snapshot_full_every: 4,
        faults: Some(Arc::new(plan(aggressor))),
        ..TenantConfig::default()
    };
    let weights: Vec<u32> = config.tenants.iter().map(|t| t.weight).collect();
    let mut rt = TenantRuntime::new(config).expect("tenant runtime");

    let traffic = TrafficConfig {
        flows: FLOWS,
        payload_len: 64,
        seed: SEED ^ ((tenants as u64) << 8),
        ..Default::default()
    };
    // The flood draws only from flows that steer to the aggressor, so
    // the extra load lands squarely on its admission contract.
    let mut flood_gen = match aggressor {
        Aggressor::Flood => {
            let table = rt.table();
            Some(PacketGen::subset(
                traffic.clone(),
                0x0F_100D,
                |t: &FiveTuple| table.lookup(t.stable_hash()) == AGGRESSOR,
            ))
        }
        _ => None,
    };
    let mut gen = PacketGen::new(traffic);

    let churn_tenant = tenants - 1;
    let (leave_at, return_at) = (ticks / 3, 2 * ticks / 3);
    let mut remap_out = 0;
    let mut remap_back = 0;
    for tick in 0..ticks {
        if tick == leave_at {
            remap_out = rt.remove_tenant(churn_tenant).expect("churn remove");
        }
        if tick == return_at {
            remap_back = rt.add_tenant(churn_tenant).expect("churn add");
        }
        rt.offer(gen.next_batch(WAVE));
        if let Some(flood) = flood_gen.as_mut() {
            rt.offer(flood.next_batch(FLOOD_EXTRA));
        }
        rt.step();
    }
    let report = rt.finish();
    cell_from_report(
        tenants, skew, aggressor, ticks, weights, remap_out, remap_back, report,
    )
}

/// Audits the report against the cell's containment contract and folds
/// it into a [`TenantCell`].
#[allow(clippy::too_many_arguments)]
fn cell_from_report(
    tenants: usize,
    skew: Skew,
    aggressor: Aggressor,
    ticks: u64,
    weights: Vec<u32>,
    remap_entries_out: usize,
    remap_entries_back: usize,
    report: TenantReport,
) -> TenantCell {
    let churn_tenant = tenants - 1;
    let rows: Vec<TenantRow> = report
        .tenants
        .iter()
        .enumerate()
        .map(|(i, outcome)| TenantRow {
            role: role(i, tenants),
            outcome: outcome.clone(),
            weight: weights[i],
        })
        .collect();
    let aggressor_opens = report.tenants[AGGRESSOR].opens;
    let victims_contained = rows
        .iter()
        .filter(|r| r.role != "aggressor")
        .all(|r| r.outcome.ledger.goodput_ppm() >= 990_000);
    let cell = TenantCell {
        tenants,
        skew,
        aggressor,
        ticks,
        rows,
        remap_entries_out,
        remap_entries_back,
        hwm_sheds: report.hwm_sheds,
        aggressor_opens,
        victims_contained,
    };

    // Exact conservation, per tenant and in aggregate.
    assert_eq!(
        report.unaccounted_packets(),
        0,
        "{}: packets vanished",
        cell.name()
    );
    for row in &cell.rows {
        assert_eq!(
            row.outcome.ledger.unaccounted(),
            0,
            "{}: {} leaks packets",
            cell.name(),
            row.outcome.name
        );
    }
    // The SLA gate: non-aggressors keep ≥ 99% goodput and never trip
    // their own breakers.
    for row in cell.rows.iter().filter(|r| r.role != "aggressor") {
        assert!(
            row.outcome.ledger.goodput_ppm() >= 990_000,
            "{}: {} ({}) dropped to {} ppm",
            cell.name(),
            row.outcome.name,
            row.role,
            row.outcome.ledger.goodput_ppm()
        );
        assert_eq!(
            row.outcome.opens,
            0,
            "{}: non-aggressor {} breaker opened",
            cell.name(),
            row.outcome.name
        );
        assert_eq!(
            row.outcome.ledger.shed(),
            0,
            "{}: non-aggressor {} was shed",
            cell.name(),
            row.outcome.name
        );
    }
    assert!(cell.victims_contained);
    // Churn ran: two rebuilds, reversed exactly, fresh epoch.
    assert_eq!(report.rebuilds.len(), 2, "{}", cell.name());
    assert_eq!(remap_entries_out, remap_entries_back, "{}", cell.name());
    assert!(remap_entries_out > 0, "{}", cell.name());
    assert_eq!(report.tenants[churn_tenant].epoch, 1, "{}", cell.name());
    // The profile-specific containment signal.
    let aggr = &report.tenants[AGGRESSOR];
    match aggressor {
        Aggressor::Flood => assert!(
            aggr.ledger.shed_admission > 0,
            "{}: the flood never hit its bucket",
            cell.name()
        ),
        Aggressor::FaultLoop => {
            assert!(aggr.opens >= 1, "{}: the loop never opened", cell.name());
            assert!(aggr.ledger.shed_open > 0, "{}", cell.name());
        }
        Aggressor::SlowOperator => assert!(
            aggr.opens >= 1,
            "{}: the work budget never opened the hog",
            cell.name()
        ),
    }
    cell
}

/// The full tenants × skew × aggressor matrix.
#[derive(Debug, Clone)]
pub struct TenantResults {
    /// Ticks per cell.
    pub ticks: u64,
    /// The 12 cells, tenants-major.
    pub cells: Vec<TenantCell>,
}

/// Runs every cell.
pub fn measure(ticks: u64) -> TenantResults {
    let mut cells = Vec::new();
    for tenants in [4usize, 8] {
        for skew in [Skew::Uniform, Skew::Zipf] {
            for aggressor in Aggressor::ALL {
                cells.push(measure_cell(tenants, skew, aggressor, ticks));
            }
        }
    }
    TenantResults { ticks, cells }
}

/// Renders the result set as the `BENCH_tenant.json` payload.
///
/// Integer-only by construction: two runs of the same build must
/// produce byte-identical output (CI diffs them).
pub fn to_json(r: &TenantResults) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"e15_tenants\",\n");
    out.push_str(&format!("  \"seed\": {SEED},\n"));
    out.push_str(&format!("  \"wave\": {WAVE},\n"));
    out.push_str(&format!("  \"flood_extra\": {FLOOD_EXTRA},\n"));
    out.push_str(&format!("  \"flows\": {FLOWS},\n"));
    out.push_str(&format!("  \"lanes\": {LANES},\n"));
    out.push_str(&format!("  \"chaos_ppm\": {CHAOS_PPM},\n"));
    out.push_str(&format!("  \"ticks\": {},\n", r.ticks));
    out.push_str("  \"cells\": [\n");
    for (i, c) in r.cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"cell\": \"{}\", \"tenants\": {}, \"skew\": \"{}\", \"aggressor\": \"{}\", \"ticks\": {}, \"remap_entries_out\": {}, \"remap_entries_back\": {}, \"hwm_sheds\": {}, \"aggressor_opens\": {}, \"worst_victim_goodput_ppm\": {}, \"victims_contained\": {}, \"rows\": [\n",
            c.name(),
            c.tenants,
            c.skew.name(),
            c.aggressor.name(),
            c.ticks,
            c.remap_entries_out,
            c.remap_entries_back,
            c.hwm_sheds,
            c.aggressor_opens,
            c.worst_victim_goodput_ppm(),
            c.victims_contained,
        ));
        for (j, row) in c.rows.iter().enumerate() {
            let o = &row.outcome;
            let l = &o.ledger;
            out.push_str(&format!(
                "      {{\"tenant\": \"{}\", \"role\": \"{}\", \"priority\": {}, \"weight\": {}, \"offered\": {}, \"processed\": {}, \"out\": {}, \"drops\": {}, \"lost\": {}, \"shed_admission\": {}, \"shed_open\": {}, \"shed_backpressure\": {}, \"shed_removed\": {}, \"goodput_ppm\": {}, \"p99_delay_ticks\": {}, \"max_delay_ticks\": {}, \"faults\": {}, \"opens\": {}, \"throttles\": {}, \"respawns\": {}, \"warm_restores\": {}, \"cold_restores\": {}, \"state_items_restored\": {}, \"final_state_items\": {}, \"epoch\": {}, \"unaccounted\": {}}}{}\n",
                o.name,
                row.role,
                o.priority,
                row.weight,
                l.offered,
                l.processed,
                l.out,
                l.drops,
                l.lost,
                l.shed_admission,
                l.shed_open,
                l.shed_backpressure,
                l.shed_removed,
                l.goodput_ppm(),
                o.p99_delay_ticks,
                o.max_delay_ticks,
                o.faults,
                o.opens,
                o.throttles,
                o.respawns,
                o.warm_restores,
                o.cold_restores,
                o.state_items_restored,
                o.final_state_items,
                o.epoch,
                l.unaccounted(),
                if j + 1 < c.rows.len() { "," } else { "" },
            ));
        }
        out.push_str(&format!(
            "    ]}}{}\n",
            if i + 1 < r.cells.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Regenerates the tenant containment matrix, writing
/// `BENCH_tenant.json` beside it.
pub fn run(quick: bool) -> String {
    let ticks = if quick { 48 } else { 120 };
    let results = measure(ticks);

    let mut t = Table::new(&[
        "cell",
        "aggr goodput %",
        "worst victim %",
        "aggr opens",
        "shed adm",
        "shed open",
        "remap",
        "contained",
    ]);
    for c in &results.cells {
        let aggr = &c.rows[AGGRESSOR].outcome.ledger;
        t.row_owned(vec![
            c.name(),
            format!("{:.2}", aggr.goodput_ppm() as f64 / 10_000.0),
            format!("{:.2}", c.worst_victim_goodput_ppm() as f64 / 10_000.0),
            c.aggressor_opens.to_string(),
            aggr.shed_admission.to_string(),
            aggr.shed_open.to_string(),
            c.remap_entries_out.to_string(),
            c.victims_contained.to_string(),
        ]);
    }

    let mut out = String::from(
        "E15 — tenant blast-radius containment: per-tenant breakers and admission under aggressor load\n",
    );
    out.push_str(&t.render());
    out.push_str(
        "\nEvery cell churns one tenant out and back mid-run (two live Maglev rebuilds) with\n\
         background chaos and warm recovery active; non-aggressor tenants keep >= 99% goodput\n\
         in every cell and every per-tenant ledger balances exactly.\n",
    );

    let json_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_tenant.json");
    match std::fs::write(json_path, to_json(&results)) {
        Ok(()) => out.push_str(&format!("\nwrote {json_path}\n")),
        Err(e) => out.push_str(&format!("\ncould not write {json_path}: {e}\n")),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flood_cell_contains_the_flood_at_admission() {
        let c = measure_cell(4, Skew::Uniform, Aggressor::Flood, 24);
        assert!(c.victims_contained);
        let aggr = &c.rows[AGGRESSOR].outcome.ledger;
        assert!(aggr.shed_admission > 0);
        // The flood's goodput collapses; nobody else's does.
        assert!(aggr.goodput_ppm() < 500_000);
    }

    #[test]
    fn fault_loop_cell_opens_the_breaker() {
        let c = measure_cell(4, Skew::Zipf, Aggressor::FaultLoop, 24);
        assert!(c.victims_contained);
        let aggr = &c.rows[AGGRESSOR].outcome;
        assert!(aggr.opens >= 1);
        assert!(aggr.ledger.shed_open > aggr.ledger.lost);
    }

    #[test]
    fn slow_operator_cell_trips_the_work_budget() {
        let c = measure_cell(4, Skew::Uniform, Aggressor::SlowOperator, 24);
        assert!(c.victims_contained);
        assert!(c.rows[AGGRESSOR].outcome.opens >= 1);
        assert_eq!(
            c.rows[AGGRESSOR].outcome.faults, 0,
            "the hog never faults — the budget alone contains it"
        );
    }

    #[test]
    fn cells_are_deterministic() {
        let a = measure_cell(8, Skew::Zipf, Aggressor::FaultLoop, 24);
        let b = measure_cell(8, Skew::Zipf, Aggressor::FaultLoop, 24);
        let key = |c: &TenantCell| {
            c.rows
                .iter()
                .map(|r| {
                    (
                        r.outcome.ledger,
                        r.outcome.faults,
                        r.outcome.opens,
                        r.outcome.p99_delay_ticks,
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(key(&a), key(&b));
        assert_eq!(a.remap_entries_out, b.remap_entries_out);
        assert_eq!(
            to_json(&TenantResults {
                ticks: 24,
                cells: vec![a]
            }),
            to_json(&TenantResults {
                ticks: 24,
                cells: vec![b]
            })
        );
    }

    #[test]
    fn json_is_well_formed_enough() {
        let c = measure_cell(4, Skew::Uniform, Aggressor::Flood, 12);
        let j = to_json(&TenantResults {
            ticks: 12,
            cells: vec![c],
        });
        assert!(j.contains("\"experiment\": \"e15_tenants\""));
        assert!(j.contains("\"role\": \"aggressor\""));
        assert!(j.contains("\"victims_contained\": true"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }
}
