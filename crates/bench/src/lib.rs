//! The experiment harness: one module per paper artifact.
//!
//! Every quantitative claim in the paper maps to a module here (the
//! experiment ids follow DESIGN.md):
//!
//! | module | paper artifact |
//! |--------|----------------|
//! | [`e1_isolation`] | Figure 2 — remote-invocation overhead vs. batch size, against Maglev |
//! | [`e2_remote_call`] | §3 — ~90-cycle cost of one protected call |
//! | [`e3_recovery`] | §3 — fault recovery cost (paper: 4389 cycles) |
//! | [`e4_ifc`] | §4 — buffer example + secure store verification |
//! | [`e5_ifc_scaling`] | §4 — ownership IFC vs. alias-analysis baseline vs. summaries |
//! | [`e6_checkpoint`] | Figure 3 / §5 — dedup vs. address-set vs. naïve checkpointing |
//! | [`e7_budget`] | §1 — line-rate cycle budgets |
//! | [`e8_maglev`] | §3 context — Maglev balance & disruption validation |
//! | [`e9_scaling`] | ROADMAP north star — sharded runtime throughput scaling + recovery under load |
//! | [`e10_chaos`] | ROADMAP robustness — goodput retained & recovery latency under deterministic fault injection |
//! | [`e11_recovery`] | ROADMAP robustness — checkpoint-backed warm recovery: state survival by snapshot cadence |
//! | [`e12_hotpath`] | ROADMAP perf — zero-allocation hot path: pooled buffers, batch recycling, single-pass dispatch |
//! | [`e13_isolation`] | ROADMAP isolation — the isolation-tax spectrum: typed-sfi vs. mpk-sim vs. copy-boundary backends |
//! | [`e14_upgrade`] | ROADMAP robustness — live rolling upgrade under load: zero-loss commit, chaos-driven rollback |
//! | [`e15_tenants`] | ROADMAP robustness — tenant blast-radius containment: breakers, admission, and the multi-tenant SLA |
//!
//! Each module exposes a `run(quick) -> String` that regenerates the
//! table/series as text (the `experiments` binary prints them), plus
//! typed result structs the tests assert *shape* properties on — who
//! wins, by roughly what factor, where crossovers fall.

pub mod alloc_count;
pub mod e10_chaos;
pub mod e11_recovery;
pub mod e12_hotpath;
pub mod e13_isolation;
pub mod e14_upgrade;
pub mod e15_tenants;
pub mod e1_isolation;
pub mod e2_remote_call;
pub mod e3_recovery;
pub mod e4_ifc;
pub mod e5_ifc_scaling;
pub mod e6_checkpoint;
pub mod e7_budget;
pub mod e8_maglev;
pub mod e9_scaling;
pub mod harness;
