//! E10 — chaos experiment: goodput retained and recovery latency under
//! deterministic fault injection.
//!
//! Three scenarios against the `rbs-runtime` supervisor, all driven by a
//! seeded [`FaultPlan`] so every number here replays bit-identically:
//!
//! 1. **Fault-rate sweep** — the same pipeline and offered load at
//!    injected fault rates from 0 to 5%, mixing mid-pipeline panics,
//!    torn channels, spawn-time crashes, and micro-delays. Reported per
//!    rate: goodput retained, unserved packets (lost + shed), recovery
//!    latency percentiles in supervision ticks, and breaker activity.
//!    The acceptance bar — ≥ 90% goodput at a 1% fault rate with zero
//!    unaccounted packets — is asserted, not just printed.
//! 2. **Crash loop** — a worker that dies at every (re)spawn must trip
//!    its circuit breaker within the restart budget, probe after the
//!    cooldown, and reopen when the probe dies.
//! 3. **Watchdog** — a worker that *hangs* mid-batch is detected by the
//!    heartbeat watchdog, force-failed, and replaced; the hung batch
//!    still lands in the ledger when the abandoned thread finishes.
//!
//! Results are also emitted as `BENCH_chaos.json` in the repo root. All
//! JSON fields are integers derived from the logical supervision clock
//! and the packet ledgers — never wall time — which is what makes two
//! runs of the same seed byte-identical.

use std::sync::Arc;
use std::time::Duration;

use rbs_core::fault::{FaultKind, FaultPlan, FaultSite};
use rbs_core::table::{fmt_f64, Table};
use rbs_netfx::operators::{ChaosPoint, MacSwap, TtlDecrement};
use rbs_netfx::pktgen::{PacketGen, TrafficConfig};
use rbs_netfx::{PacketBatch, PipelineSpec};
use rbs_runtime::{
    shard_of_packet, RestartPolicy, RuntimeConfig, RuntimeReport, ShardedRuntime,
    SupervisorEventKind,
};

use crate::harness::silence_panics;

/// Packets per dispatched batch.
const BATCH_SIZE: usize = 256;

/// Workers in the sweep runtime.
const WORKERS: usize = 4;

/// The one seed behind every scenario.
const SEED: u64 = 0x10_CA05;

/// The representative pipeline: a chaos point ahead of two real
/// header-rewriting stages.
fn spec() -> PipelineSpec {
    PipelineSpec::new()
        .stage(|| ChaosPoint::new(0))
        .stage(TtlDecrement::new)
        .stage(MacSwap::new)
}

/// The supervision policy under test: tight budget, real backoff.
fn policy() -> RestartPolicy {
    RestartPolicy {
        max_consecutive_faults: 3,
        backoff_base_ticks: 1,
        backoff_cap_ticks: 8,
        breaker_cooldown_ticks: 6,
        backoff_jitter_ticks: 2,
    }
}

fn traffic(batches: usize) -> Vec<PacketBatch> {
    let mut g = PacketGen::new(TrafficConfig {
        flows: 4096,
        payload_len: 64,
        seed: SEED,
        ..Default::default()
    });
    (0..batches).map(|_| g.next_batch(BATCH_SIZE)).collect()
}

/// Goodput as integer parts-per-million of offered load — exact, so it
/// is comparable byte-for-byte across runs.
fn goodput_ppm(report: &RuntimeReport) -> u64 {
    if report.offered_packets == 0 {
        return 1_000_000;
    }
    report.packets_out * 1_000_000 / report.offered_packets
}

/// Per-worker `Fault → Respawn` tick deltas from the journal: how long
/// each crash kept its shard out of rotation.
fn recovery_latencies(report: &RuntimeReport) -> Vec<u64> {
    let mut out = Vec::new();
    for w in 0..report.workers.len() {
        let mut pending: Option<u64> = None;
        for e in report.events.iter().filter(|e| e.worker == w) {
            match e.kind {
                SupervisorEventKind::Fault => {
                    pending.get_or_insert(e.tick);
                }
                SupervisorEventKind::Respawn => {
                    if let Some(start) = pending.take() {
                        out.push(e.tick - start);
                    }
                }
                _ => {}
            }
        }
    }
    out.sort_unstable();
    out
}

fn percentile(sorted: &[u64], tenths: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[(sorted.len() * tenths / 10).min(sorted.len() - 1)]
}

/// One point of the fault-rate sweep.
#[derive(Debug, Clone)]
pub struct ChaosPoint10 {
    /// Injected fault rate at the primary (panic) site, in ppm.
    pub rate_ppm: u32,
    /// Packets offered to the dispatcher.
    pub offered: u64,
    /// Packets that made it out of a pipeline.
    pub packets_out: u64,
    /// Goodput in ppm of offered (integer-exact).
    pub goodput_ppm: u64,
    /// Packets lost to faults or shed with accounting. The split between
    /// the two depends on panic timing; the sum does not.
    pub unserved: u64,
    /// Packets rerouted away from down shards (kept flowing).
    pub redistributed: u64,
    /// Contained panics.
    pub faults: u64,
    /// Supervisor respawns.
    pub respawns: u64,
    /// Breaker openings.
    pub breaker_opens: u64,
    /// Fault→respawn latency percentiles, in supervision ticks.
    pub recovery_ticks_p50: u64,
    /// 90th percentile of the same.
    pub recovery_ticks_p90: u64,
    /// Worst case of the same.
    pub recovery_ticks_max: u64,
    /// Conservation residue — asserted zero.
    pub unaccounted: i64,
}

/// Crash-loop scenario outcome.
#[derive(Debug, Clone)]
pub struct CrashLoopOutcome {
    /// Tick at which the breaker first opened.
    pub ticks_to_open: u64,
    /// Restart budget it had to stay within.
    pub budget_faults: u32,
    /// Total breaker openings (≥ 2: the half-open probe died too).
    pub breaker_opens: u64,
    /// Half-open probes admitted.
    pub breaker_half_opens: u64,
    /// Goodput in ppm while the victim's flows were redistributed.
    pub goodput_ppm: u64,
    /// Packets rerouted off the crash-looping shard.
    pub redistributed: u64,
    /// Conservation residue — asserted zero.
    pub unaccounted: i64,
}

/// Watchdog scenario outcome.
#[derive(Debug, Clone)]
pub struct WatchdogOutcome {
    /// Hung workers force-failed (exactly 1).
    pub watchdog_kills: u64,
    /// Supervisor respawns (≥ 1).
    pub respawns: u64,
    /// Goodput in ppm — 1_000_000: the hung batch completes in the
    /// abandoned thread and still counts.
    pub goodput_ppm: u64,
    /// Conservation residue — asserted zero.
    pub unaccounted: i64,
}

/// The full experiment result set.
#[derive(Debug, Clone)]
pub struct ChaosResults {
    /// Rounds (= supervision ticks carrying traffic) per sweep point.
    pub rounds: usize,
    /// Sweep over injected fault rates.
    pub sweep: Vec<ChaosPoint10>,
    /// The scripted crash loop.
    pub crash_loop: CrashLoopOutcome,
    /// The scripted hang.
    pub watchdog: WatchdogOutcome,
}

/// The sweep plan at `rate_ppm`: panics dominate, with torn channels and
/// spawn-time crashes at a fifth of the rate and micro-delays alongside.
fn sweep_plan(rate_ppm: u32) -> FaultPlan {
    FaultPlan::new(SEED)
        .inject(FaultSite::Operator(0), FaultKind::Panic, rate_ppm)
        .inject(
            FaultSite::Operator(0),
            FaultKind::Delay { micros: 50 },
            rate_ppm,
        )
        .inject(
            FaultSite::ChannelSend,
            FaultKind::CloseChannel,
            rate_ppm / 5,
        )
        .inject(FaultSite::DomainAttach, FaultKind::Panic, rate_ppm / 5)
}

/// Runs one sweep point: `rounds` lockstep dispatch+drain rounds of the
/// same pre-generated traffic under `rate_ppm` injection.
pub fn measure_sweep_point(rate_ppm: u32, rounds: usize) -> ChaosPoint10 {
    silence_panics();
    let mut rt = ShardedRuntime::new(
        spec(),
        RuntimeConfig {
            workers: WORKERS,
            queue_capacity: 64,
            restart: policy(),
            supervisor_seed: SEED,
            faults: Some(Arc::new(sweep_plan(rate_ppm))),
            ..RuntimeConfig::default()
        },
    )
    .expect("runtime construction");
    for batch in traffic(rounds) {
        rt.dispatch(batch).expect("dispatch under chaos");
        assert!(
            rt.drain(Duration::from_secs(30)),
            "every round drains, faults included"
        );
    }
    let report = rt.shutdown();
    let latencies = recovery_latencies(&report);
    let point = ChaosPoint10 {
        rate_ppm,
        offered: report.offered_packets,
        packets_out: report.packets_out,
        goodput_ppm: goodput_ppm(&report),
        unserved: report.lost_packets + report.shed_packets,
        redistributed: report.redistributed_packets,
        faults: report.faults,
        respawns: report.respawns,
        breaker_opens: report.breaker_opens,
        recovery_ticks_p50: percentile(&latencies, 5),
        recovery_ticks_p90: percentile(&latencies, 9),
        recovery_ticks_max: latencies.last().copied().unwrap_or(0),
        unaccounted: report.unaccounted_packets(),
    };
    assert_eq!(point.unaccounted, 0, "packets vanished at {rate_ppm} ppm");
    point
}

/// Scripted crash loop: worker 0 dies at every (re)spawn; the breaker
/// must open within the budget while the peer absorbs the flows.
pub fn measure_crash_loop() -> CrashLoopOutcome {
    silence_panics();
    const VICTIM: usize = 0;
    let plan = FaultPlan::new(SEED).inject_window(
        FaultSite::DomainAttach,
        FaultKind::Panic,
        VICTIM as u64,
        0,
        1_000_000,
    );
    let pol = policy();
    let mut rt = ShardedRuntime::new(
        spec(),
        RuntimeConfig {
            workers: 2,
            queue_capacity: 64,
            restart: pol.clone(),
            supervisor_seed: SEED,
            faults: Some(Arc::new(plan)),
            ..RuntimeConfig::default()
        },
    )
    .expect("runtime construction");

    let opened = |rt: &ShardedRuntime| {
        rt.events()
            .iter()
            .filter(|e| matches!(e.kind, SupervisorEventKind::BreakerOpened { .. }))
            .count() as u64
    };
    // Supervision-only ticks until the breaker opens.
    while opened(&rt) == 0 {
        assert!(rt.tick() < 64, "breaker failed to open within budget");
        rt.dispatch(PacketBatch::new()).expect("supervision tick");
    }
    let ticks_to_open = rt.tick();

    // Degraded traffic: the victim's flows must reroute to the peer.
    // Fewer rounds than the breaker cooldown, so no round lands on the
    // half-open probe (which is stillborn and would shed its shard).
    let degraded_rounds = (pol.breaker_cooldown_ticks as usize)
        .saturating_sub(2)
        .max(1);
    for batch in traffic(degraded_rounds) {
        rt.dispatch(batch).expect("degraded dispatch");
        assert!(rt.drain(Duration::from_secs(30)), "degraded drain");
    }
    // Keep ticking until the half-open probe has died and reopened the
    // breaker.
    while opened(&rt) < 2 {
        assert!(rt.tick() < 128, "probe failure failed to reopen breaker");
        rt.dispatch(PacketBatch::new()).expect("supervision tick");
    }

    let report = rt.shutdown();
    let out = CrashLoopOutcome {
        ticks_to_open,
        budget_faults: pol.max_consecutive_faults,
        breaker_opens: report.breaker_opens,
        breaker_half_opens: report.breaker_half_opens,
        goodput_ppm: goodput_ppm(&report),
        redistributed: report.redistributed_packets,
        unaccounted: report.unaccounted_packets(),
    };
    assert_eq!(out.unaccounted, 0, "crash loop lost packets");
    assert_eq!(
        out.goodput_ppm, 1_000_000,
        "the healthy peer must absorb every redistributed flow"
    );
    out
}

/// Scripted hang: worker 0's first batch stalls far past the hang
/// timeout; the watchdog reclaims the shard while the runtime keeps
/// serving, and the stalled batch still lands in the ledger.
pub fn measure_watchdog() -> WatchdogOutcome {
    silence_panics();
    const N: usize = 2;
    let plan = FaultPlan::new(SEED).inject_window(
        FaultSite::Operator(0),
        FaultKind::Stall { millis: 1_500 },
        0,
        0,
        1,
    );
    let mut rt = ShardedRuntime::new(
        spec(),
        RuntimeConfig {
            workers: N,
            queue_capacity: 64,
            hang_timeout: Duration::from_millis(40),
            supervisor_seed: SEED,
            faults: Some(Arc::new(plan)),
            ..RuntimeConfig::default()
        },
    )
    .expect("runtime construction");

    // One fixed wave reaching both shards; shard 0's batch hangs.
    let mut wave = traffic(1).pop().expect("one batch");
    // Ensure both shards are actually touched (the generator's flow
    // population covers them; this is a belt-and-braces check, not a
    // mutation).
    assert!(
        (0..N).all(|s| wave.iter().any(|p| shard_of_packet(p, N) == s)),
        "wave must cover every shard"
    );
    rt.dispatch(std::mem::take(&mut wave))
        .expect("hang dispatch");

    // Supervision-only ticks (empty dispatches — deterministic ledgers)
    // until the heartbeat ages past the timeout and the watchdog fires.
    let kills = |rt: &ShardedRuntime| {
        rt.events()
            .iter()
            .filter(|e| e.kind == SupervisorEventKind::WatchdogKill)
            .count() as u64
    };
    for _ in 0..2_000 {
        if kills(&rt) > 0 {
            break;
        }
        rt.dispatch(PacketBatch::new()).expect("supervision tick");
        std::thread::sleep(Duration::from_millis(2));
    }

    // The healthy shard keeps serving while the zombie's stall pends.
    // (Shard 0 stays unfed: the fault window is per worker generation,
    // so fresh traffic would hang the replacement too.)
    let shard1: Vec<PacketBatch> = traffic(6)
        .into_iter()
        .map(|b| {
            b.into_iter()
                .filter(|p| shard_of_packet(p, N) == 1)
                .collect()
        })
        .collect();
    for batch in shard1 {
        rt.dispatch(batch).expect("post-kill dispatch");
        assert!(rt.drain(Duration::from_secs(30)), "post-kill drain");
    }

    let report = rt.shutdown();
    let out = WatchdogOutcome {
        watchdog_kills: report.watchdog_kills,
        respawns: report.respawns,
        goodput_ppm: goodput_ppm(&report),
        unaccounted: report.unaccounted_packets(),
    };
    assert_eq!(out.watchdog_kills, 1, "exactly one kill");
    assert_eq!(out.unaccounted, 0, "hang lost packets");
    assert_eq!(
        out.goodput_ppm, 1_000_000,
        "the zombie's batch completes and counts"
    );
    out
}

/// Runs the full experiment. The 1% point must retain ≥ 90% goodput.
pub fn measure(rounds: usize) -> ChaosResults {
    let rates = [0u32, 2_500, 10_000, 50_000];
    let sweep: Vec<ChaosPoint10> = rates
        .into_iter()
        .map(|r| measure_sweep_point(r, rounds))
        .collect();
    let one_percent = sweep
        .iter()
        .find(|p| p.rate_ppm == 10_000)
        .expect("1% point is in the sweep");
    assert!(
        one_percent.goodput_ppm >= 900_000,
        "goodput at 1% faults fell to {} ppm",
        one_percent.goodput_ppm
    );
    ChaosResults {
        rounds,
        sweep,
        crash_loop: measure_crash_loop(),
        watchdog: measure_watchdog(),
    }
}

/// Renders the result set as the `BENCH_chaos.json` payload.
///
/// Integer-only by construction: two runs of the same build and seed
/// must produce byte-identical output (CI diffs them).
pub fn to_json(r: &ChaosResults) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"e10_chaos\",\n");
    out.push_str(&format!("  \"seed\": {SEED},\n"));
    out.push_str(&format!("  \"workers\": {WORKERS},\n"));
    out.push_str(&format!("  \"batch_size\": {BATCH_SIZE},\n"));
    out.push_str(&format!("  \"rounds\": {},\n", r.rounds));
    let p = policy();
    out.push_str(&format!(
        "  \"policy\": {{\"max_consecutive_faults\": {}, \"backoff_base_ticks\": {}, \"backoff_cap_ticks\": {}, \"breaker_cooldown_ticks\": {}, \"backoff_jitter_ticks\": {}}},\n",
        p.max_consecutive_faults,
        p.backoff_base_ticks,
        p.backoff_cap_ticks,
        p.breaker_cooldown_ticks,
        p.backoff_jitter_ticks,
    ));
    out.push_str("  \"sweep\": [\n");
    for (i, s) in r.sweep.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"rate_ppm\": {}, \"offered\": {}, \"packets_out\": {}, \"goodput_ppm\": {}, \"unserved\": {}, \"redistributed\": {}, \"faults\": {}, \"respawns\": {}, \"breaker_opens\": {}, \"recovery_ticks_p50\": {}, \"recovery_ticks_p90\": {}, \"recovery_ticks_max\": {}, \"unaccounted\": {}}}{}\n",
            s.rate_ppm,
            s.offered,
            s.packets_out,
            s.goodput_ppm,
            s.unserved,
            s.redistributed,
            s.faults,
            s.respawns,
            s.breaker_opens,
            s.recovery_ticks_p50,
            s.recovery_ticks_p90,
            s.recovery_ticks_max,
            s.unaccounted,
            if i + 1 < r.sweep.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    let c = &r.crash_loop;
    out.push_str(&format!(
        "  \"crash_loop\": {{\"ticks_to_open\": {}, \"budget_faults\": {}, \"breaker_opens\": {}, \"breaker_half_opens\": {}, \"goodput_ppm\": {}, \"redistributed\": {}, \"unaccounted\": {}}},\n",
        c.ticks_to_open,
        c.budget_faults,
        c.breaker_opens,
        c.breaker_half_opens,
        c.goodput_ppm,
        c.redistributed,
        c.unaccounted,
    ));
    let w = &r.watchdog;
    out.push_str(&format!(
        "  \"watchdog\": {{\"watchdog_kills\": {}, \"respawns\": {}, \"goodput_ppm\": {}, \"unaccounted\": {}}}\n",
        w.watchdog_kills, w.respawns, w.goodput_ppm, w.unaccounted,
    ));
    out.push_str("}\n");
    out
}

/// Regenerates the chaos table, writing `BENCH_chaos.json` beside it.
pub fn run(quick: bool) -> String {
    let rounds = if quick { 40 } else { 150 };
    let results = measure(rounds);

    let mut t = Table::new(&[
        "fault rate",
        "offered",
        "goodput %",
        "unserved",
        "rerouted",
        "faults",
        "respawns",
        "opens",
        "rec p50/p90 (ticks)",
    ]);
    for s in &results.sweep {
        t.row_owned(vec![
            format!("{:.2}%", s.rate_ppm as f64 / 10_000.0),
            s.offered.to_string(),
            fmt_f64(s.goodput_ppm as f64 / 10_000.0, 2),
            s.unserved.to_string(),
            s.redistributed.to_string(),
            s.faults.to_string(),
            s.respawns.to_string(),
            s.breaker_opens.to_string(),
            format!("{}/{}", s.recovery_ticks_p50, s.recovery_ticks_p90),
        ]);
    }

    let mut out = String::from("E10 — chaos: goodput and recovery under injected faults\n");
    out.push_str(&t.render());
    let c = &results.crash_loop;
    out.push_str(&format!(
        "\ncrash loop: breaker opened at tick {} (budget {} faults), reopened after \
         half-open probe died; {} packets rerouted, goodput {:.2}%\n",
        c.ticks_to_open,
        c.budget_faults,
        c.redistributed,
        c.goodput_ppm as f64 / 10_000.0,
    ));
    let w = &results.watchdog;
    out.push_str(&format!(
        "watchdog: {} hung worker killed, {} respawns, goodput {:.2}% \
         (the stalled batch completed in the abandoned thread)\n",
        w.watchdog_kills,
        w.respawns,
        w.goodput_ppm as f64 / 10_000.0,
    ));

    let json_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_chaos.json");
    match std::fs::write(json_path, to_json(&results)) {
        Ok(()) => out.push_str(&format!("\nwrote {json_path}\n")),
        Err(e) => out.push_str(&format!("\ncould not write {json_path}: {e}\n")),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_point_has_full_goodput() {
        let p = measure_sweep_point(0, 10);
        assert_eq!(p.goodput_ppm, 1_000_000);
        assert_eq!(p.faults, 0);
        assert_eq!(p.unserved, 0);
        assert_eq!(p.unaccounted, 0);
    }

    #[test]
    fn one_percent_point_retains_goodput() {
        let p = measure_sweep_point(10_000, 25);
        assert!(p.goodput_ppm >= 900_000, "goodput {} ppm", p.goodput_ppm);
        assert_eq!(p.unaccounted, 0);
    }

    #[test]
    fn five_percent_point_is_deterministic() {
        let a = measure_sweep_point(50_000, 25);
        let b = measure_sweep_point(50_000, 25);
        assert!(a.faults > 0, "5% over 25 rounds injects something");
        assert!(a.respawns > 0, "the supervisor healed");
        // Bit-stability of every reported field.
        assert_eq!(a.offered, b.offered);
        assert_eq!(a.packets_out, b.packets_out);
        assert_eq!(a.goodput_ppm, b.goodput_ppm);
        assert_eq!(a.unserved, b.unserved);
        assert_eq!(a.redistributed, b.redistributed);
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.respawns, b.respawns);
        assert_eq!(a.breaker_opens, b.breaker_opens);
        assert_eq!(a.recovery_ticks_p50, b.recovery_ticks_p50);
        assert_eq!(a.recovery_ticks_p90, b.recovery_ticks_p90);
        assert_eq!(a.recovery_ticks_max, b.recovery_ticks_max);
    }

    #[test]
    fn crash_loop_trips_breaker_on_schedule() {
        let c = measure_crash_loop();
        assert!(c.ticks_to_open <= 8, "opened at tick {}", c.ticks_to_open);
        assert!(c.breaker_opens >= 2);
        assert_eq!(c.breaker_half_opens, 1);
        assert!(c.redistributed > 0);
        // And the schedule replays.
        let d = measure_crash_loop();
        assert_eq!(c.ticks_to_open, d.ticks_to_open);
        assert_eq!(c.redistributed, d.redistributed);
    }

    #[test]
    fn watchdog_scenario_is_clean() {
        let w = measure_watchdog();
        assert_eq!(w.watchdog_kills, 1);
        assert!(w.respawns >= 1);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let r = ChaosResults {
            rounds: 1,
            sweep: vec![ChaosPoint10 {
                rate_ppm: 10_000,
                offered: 256,
                packets_out: 250,
                goodput_ppm: 976_562,
                unserved: 6,
                redistributed: 12,
                faults: 1,
                respawns: 1,
                breaker_opens: 0,
                recovery_ticks_p50: 2,
                recovery_ticks_p90: 2,
                recovery_ticks_max: 2,
                unaccounted: 0,
            }],
            crash_loop: CrashLoopOutcome {
                ticks_to_open: 6,
                budget_faults: 3,
                breaker_opens: 2,
                breaker_half_opens: 1,
                goodput_ppm: 1_000_000,
                redistributed: 1024,
                unaccounted: 0,
            },
            watchdog: WatchdogOutcome {
                watchdog_kills: 1,
                respawns: 1,
                goodput_ppm: 1_000_000,
                unaccounted: 0,
            },
        };
        let j = to_json(&r);
        assert!(j.contains("\"experiment\": \"e10_chaos\""));
        assert!(j.contains("\"rate_ppm\": 10000"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
