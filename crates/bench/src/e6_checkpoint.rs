//! E6 — Figure 3 / §5: checkpointing the firewall rule database.
//!
//! Builds a trie of `R` rules where a fraction are shared across `A`
//! extra prefixes each (Figure 3a), then checkpoints it three ways:
//!
//! - **epoch flag** (the paper's mechanism, `DedupMode::EpochFlag`);
//! - **address set** (what a conventional language must do);
//! - **naïve** (no dedup — Figure 3b's redundant copies).
//!
//! Reported per mode: wall time, rule copies made, snapshot size. The
//! shape claims: epoch ≤ address-set in time with identical output, and
//! the naïve snapshot inflates by roughly the sharing factor.

use rbs_checkpoint::{checkpoint_with_mode, codec, diff, restore, Checkpoint, CkArc, DedupMode};
use rbs_core::table::{fmt_f64, Table};
use rbs_fwtrie::{Action, FwTrie, Rule};
use std::net::Ipv4Addr;
use std::time::Instant;

/// Builds a firewall database: `rules` total rules, each aliased into
/// `aliases` extra prefixes (0 = no sharing).
pub fn build_database(rules: usize, aliases: usize) -> FwTrie {
    let mut t = FwTrie::new();
    for i in 0..rules {
        let base = Ipv4Addr::from(0x0A00_0000u32 | ((i as u32) << 8));
        // Rules carry a realistic description/pattern payload; this is
        // what naïve traversal duplicates per alias (Figure 3b).
        let rule = Rule::new(
            i as u32,
            format!(
                "rule-{i}: block scanner signature {}",
                "deadbeef".repeat(32)
            ),
            base,
            24,
            if i % 3 == 0 {
                Action::Deny
            } else {
                Action::Allow
            },
        )
        .dports(0, 1023);
        let handle = t.insert(rule);
        for a in 0..aliases {
            // Spread aliases across a different part of the address space.
            let alias_net = Ipv4Addr::from(0xC0A8_0000u32 | ((i * 31 + a) as u32 & 0xFFFF));
            t.alias_at(alias_net, 32, handle.clone());
        }
    }
    t
}

/// One mode's measurements.
#[derive(Debug, Clone, Copy)]
pub struct ModeRow {
    /// The dedup mode measured.
    pub mode: DedupMode,
    /// Median wall time per checkpoint, microseconds.
    pub time_us: f64,
    /// Rule copies made (shared_copied, or duplicate_copies for naïve).
    pub copies: u64,
    /// Snapshot size in nodes.
    pub nodes: usize,
    /// Approximate snapshot bytes.
    pub bytes: usize,
}

/// Measures all three modes on the same database.
pub fn measure_modes(trie: &FwTrie, reps: usize) -> Vec<ModeRow> {
    [DedupMode::EpochFlag, DedupMode::AddressSet, DedupMode::None]
        .iter()
        .map(|&mode| {
            let mut best = f64::MAX;
            let mut cp: Option<Checkpoint> = None;
            for _ in 0..reps.max(1) {
                let t = Instant::now();
                let c = checkpoint_with_mode(trie, mode);
                best = best.min(t.elapsed().as_secs_f64() * 1e6);
                cp = Some(c);
            }
            let cp = cp.expect("reps >= 1");
            ModeRow {
                mode,
                time_us: best,
                copies: if mode == DedupMode::None {
                    cp.stats.duplicate_copies
                } else {
                    cp.stats.shared_copied
                },
                nodes: cp.total_nodes(),
                bytes: cp.approx_bytes(),
            }
        })
        .collect()
}

/// End-to-end restore check: sharing survives the roundtrip.
pub fn verify_restore_sharing(trie: &FwTrie) -> bool {
    let cp = checkpoint_with_mode(trie, DedupMode::EpochFlag);
    let back: FwTrie = match restore(&cp) {
        Ok(t) => t,
        Err(_) => return false,
    };
    // Count distinct rule objects by address: must equal the original.
    let distinct = |t: &FwTrie| {
        let mut addrs: Vec<usize> = t
            .iter_refs()
            .iter()
            .map(|r| CkArc::as_ptr_addr(r))
            .collect();
        addrs.sort_unstable();
        addrs.dedup();
        addrs.len()
    };
    distinct(&back) == distinct(trie) && back.rule_refs() == trie.rule_refs()
}

/// Regenerates the Figure 3 comparison as text tables.
pub fn run(quick: bool) -> String {
    let (rules, aliases, reps) = if quick { (200, 4, 3) } else { (2_000, 4, 10) };
    let trie = build_database(rules, aliases);
    let rows = measure_modes(&trie, reps);

    let mut out = format!(
        "E6 — checkpointing a firewall DB: {rules} rules, each shared across {} leaves\n",
        aliases + 1
    );
    let mut t = Table::new(&[
        "dedup mode",
        "time us",
        "rule copies",
        "snapshot nodes",
        "bytes",
    ]);
    for r in &rows {
        t.row_owned(vec![
            format!("{:?}", r.mode),
            fmt_f64(r.time_us, 1),
            r.copies.to_string(),
            r.nodes.to_string(),
            r.bytes.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nrestore preserves sharing: {}\n",
        if verify_restore_sharing(&trie) {
            "PASS"
        } else {
            "FAIL"
        }
    ));

    // Persistence and incremental replication on the same database.
    let cp = checkpoint_with_mode(&trie, DedupMode::EpochFlag);
    let t0 = Instant::now();
    let bytes = codec::encode(&cp);
    let encode_us = t0.elapsed().as_secs_f64() * 1e6;
    let t0 = Instant::now();
    let decoded = codec::decode(&bytes).expect("self-produced bytes decode");
    let decode_us = t0.elapsed().as_secs_f64() * 1e6;
    assert_eq!(decoded.root, cp.root);

    let mut mutated: rbs_fwtrie::FwTrie = restore(&cp).expect("restores");
    mutated.insert(Rule::new(
        u32::MAX,
        "one-new-rule",
        Ipv4Addr::new(198, 51, 100, 0),
        24,
        Action::Deny,
    ));
    let next = checkpoint_with_mode(&mutated, DedupMode::EpochFlag);
    let t0 = Instant::now();
    let delta = diff(&cp, &next);
    let diff_us = t0.elapsed().as_secs_f64() * 1e6;

    out.push_str("\npersistence & incremental replication (EpochFlag checkpoint):\n");
    let mut t = Table::new(&["operation", "time us", "size"]);
    t.row_owned(vec![
        "encode to bytes".into(),
        fmt_f64(encode_us, 1),
        format!("{} B", bytes.len()),
    ]);
    t.row_owned(vec![
        "decode from bytes".into(),
        fmt_f64(decode_us, 1),
        format!("{} nodes", decoded.total_nodes()),
    ]);
    t.row_owned(vec![
        "delta after 1-rule change".into(),
        fmt_f64(diff_us, 1),
        format!("{} of {} nodes", delta.payload_nodes(), next.total_nodes()),
    ]);
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn database_builder_shares() {
        let t = build_database(10, 3);
        assert_eq!(t.rule_refs(), 10 * 4);
        let mut addrs: Vec<usize> = t
            .iter_refs()
            .iter()
            .map(|r| CkArc::as_ptr_addr(r))
            .collect();
        addrs.sort_unstable();
        addrs.dedup();
        assert_eq!(addrs.len(), 10, "ten distinct rule objects");
    }

    #[test]
    fn figure3_copy_counts() {
        let t = build_database(50, 3);
        let rows = measure_modes(&t, 1);
        let flag = rows[0];
        let addr = rows[1];
        let naive = rows[2];
        // Dedup modes copy each rule once.
        assert_eq!(flag.copies, 50);
        assert_eq!(addr.copies, 50);
        // Naïve copies once per reference: 4x.
        assert_eq!(naive.copies, 200);
        // And the snapshot inflates accordingly. The trie skeleton is
        // shared by all modes, so the full 4x shows up only in the rule
        // payload; end-to-end the naïve snapshot is substantially larger.
        assert!(
            naive.bytes as f64 > 1.5 * flag.bytes as f64,
            "naive={naive:?} flag={flag:?}"
        );
        assert!(
            naive.nodes > flag.nodes,
            "duplicated rule subtrees add nodes"
        );
        // Identical snapshots for the two dedup modes.
        assert_eq!(flag.nodes, addr.nodes);
    }

    #[test]
    fn epoch_flag_not_slower_than_address_set() {
        // Timing comparisons are noisy; require only that the epoch flag
        // is not dramatically slower (it does strictly less work).
        let t = build_database(500, 4);
        let rows = measure_modes(&t, 5);
        let (flag, addr) = (rows[0], rows[1]);
        assert!(
            flag.time_us < addr.time_us * 2.0,
            "flag={flag:?} addr={addr:?}"
        );
    }

    #[test]
    fn restore_sharing_verified() {
        let t = build_database(30, 2);
        assert!(verify_restore_sharing(&t));
    }

    #[test]
    fn run_renders() {
        let out = run(true);
        assert!(out.contains("EpochFlag") && out.contains("None"), "{out}");
        assert!(out.contains("restore preserves sharing: PASS"), "{out}");
        assert!(out.contains("encode to bytes"), "{out}");
        assert!(out.contains("delta after 1-rule change"), "{out}");
    }

    #[test]
    fn delta_is_much_smaller_than_full_snapshot() {
        let trie = build_database(200, 2);
        let cp = checkpoint_with_mode(&trie, DedupMode::EpochFlag);
        let mut mutated: FwTrie = restore(&cp).unwrap();
        mutated.insert(Rule::new(
            9999,
            "new",
            Ipv4Addr::new(198, 51, 100, 0),
            24,
            Action::Deny,
        ));
        let next = checkpoint_with_mode(&mutated, DedupMode::EpochFlag);
        let delta = diff(&cp, &next);
        assert!(
            delta.payload_nodes() * 10 < next.total_nodes(),
            "delta {} vs full {}",
            delta.payload_nodes(),
            next.total_nodes()
        );
        let rebuilt = rbs_checkpoint::apply(&cp, &delta).unwrap();
        assert_eq!(rebuilt.root, next.root);
        assert_eq!(rebuilt.shared, next.shared);
    }
}
