//! E4 — §4: verification of the paper's IFC examples.
//!
//! Regenerates the section's qualitative results: the buffer program
//! leaks at line 16; the line-17 alias exploit is rejected by ownership
//! in Rust mode and needs points-to analysis in C mode; the secure data
//! store verifies; the seeded access-check bug is discovered.

use rbs_ifc::alias;
use rbs_ifc::examples;
use rbs_ifc::verify::{verify, Verdict};

/// The qualitative outcomes of the section's four checks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IfcOutcomes {
    /// Line 16 leak found in the buffer program.
    pub buffer_leak_found: bool,
    /// Line 17 exploit rejected by the ownership discipline.
    pub alias_exploit_ownership_rejected: bool,
    /// Line 17 exploit caught by the alias-analysis baseline (C mode).
    pub alias_exploit_caught_with_points_to: bool,
    /// Line 17 exploit missed by per-variable taint (C mode, no
    /// points-to).
    pub alias_exploit_missed_without_points_to: bool,
    /// The correct secure store verifies.
    pub secure_store_safe: bool,
    /// The seeded bug is discovered.
    pub seeded_bug_found: bool,
}

/// Runs all E4 checks.
pub fn outcomes() -> IfcOutcomes {
    let buffer = examples::buffer_leak_source();
    let exploit = examples::buffer_alias_exploit_source();
    let store_ok = examples::secure_store_source();
    let store_bad = examples::secure_store_buggy_source();

    let line17 = |v: &rbs_ifc::Violation| v.loc.0 == "main[5]";
    let (alias_violations, _) = alias::analyze_alias(&exploit);
    let naive_violations = alias::analyze_naive(&exploit);

    IfcOutcomes {
        buffer_leak_found: matches!(verify(&buffer), Verdict::Leaky(v) if v.len() == 1),
        alias_exploit_ownership_rejected: matches!(
            verify(&exploit),
            Verdict::OwnershipRejected(errs) if errs.iter().any(|e| e.var == "nonsec")
        ),
        alias_exploit_caught_with_points_to: alias_violations.iter().any(line17),
        alias_exploit_missed_without_points_to: !naive_violations.iter().any(line17),
        secure_store_safe: verify(&store_ok).is_safe(),
        seeded_bug_found: matches!(verify(&store_bad), Verdict::Leaky(v) if v.len() == 1),
    }
}

/// Regenerates the section's narrative as text.
pub fn run(_quick: bool) -> String {
    let o = outcomes();
    let check = |b: bool| if b { "PASS" } else { "FAIL" };
    let mut out = String::from("E4 — IFC verification of the paper's examples\n");
    out.push_str(&format!(
        "  [{}] buffer program: line-16 leak detected by label analysis\n",
        check(o.buffer_leak_found)
    ));
    out.push_str(&format!(
        "  [{}] line-17 alias exploit: rejected by the compiler (ownership)\n",
        check(o.alias_exploit_ownership_rejected)
    ));
    out.push_str(&format!(
        "  [{}] same exploit in C mode: caught only WITH alias analysis\n",
        check(o.alias_exploit_caught_with_points_to && o.alias_exploit_missed_without_points_to)
    ));
    out.push_str(&format!(
        "  [{}] secure data store: verified safe\n",
        check(o.secure_store_safe)
    ));
    out.push_str(&format!(
        "  [{}] seeded access-check bug: discovered by the verifier\n",
        check(o.seeded_bug_found)
    ));
    out.push('\n');
    out.push_str(
        &rbs_ifc::verify::Report::for_program(&examples::secure_store_buggy_source()).to_string(),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_section4_outcomes_hold() {
        let o = outcomes();
        assert_eq!(
            o,
            IfcOutcomes {
                buffer_leak_found: true,
                alias_exploit_ownership_rejected: true,
                alias_exploit_caught_with_points_to: true,
                alias_exploit_missed_without_points_to: true,
                secure_store_safe: true,
                seeded_bug_found: true,
            }
        );
    }

    #[test]
    fn run_reports_all_pass() {
        let out = run(true);
        assert!(!out.contains("FAIL"), "{out}");
        assert_eq!(out.matches("PASS").count(), 5, "{out}");
    }
}
