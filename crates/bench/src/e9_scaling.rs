//! E9 — sharded runtime scaling and recovery under load.
//!
//! Two questions about the `rbs-runtime` execution model:
//!
//! 1. **Scaling** — aggregate throughput of the same pipeline at 1, 2, 4
//!    and 8 workers, identical offered load. On a many-core host the
//!    1→4 curve rises monotonically (shards are independent: no shared
//!    operator state, no cross-worker locks on the hot path); on the
//!    single-core CI host the curve is honest and flat — the run prints
//!    the host's parallelism next to the numbers so the reader can tell
//!    which regime they are looking at.
//! 2. **Recovery under load** — a poison packet crashes one worker in
//!    the middle of a run. The other workers keep draining their queues
//!    while the supervisor recovers the victim's domain and respawns it;
//!    the report proves containment (exactly one fault, survivors lose
//!    nothing) and rejoin (the victim processes traffic again after the
//!    heal).
//!
//! Results are also emitted as `BENCH_scaling.json` in the repo root for
//! machine consumption.

use std::time::Instant;

use rbs_core::table::{fmt_f64, Table};
use rbs_netfx::flow::FiveTuple;
use rbs_netfx::operators::{MacSwap, NullFilter, TtlDecrement};
use rbs_netfx::pktgen::{PacketGen, TrafficConfig};
use rbs_netfx::{Operator, PacketBatch, PipelineSpec};
use rbs_runtime::{shard_of_packet, RuntimeConfig, ShardedRuntime};

use crate::harness::silence_panics;

/// Destination port that trips the poison operator.
const POISON_PORT: u16 = 0xDEAD;

/// Packets per dispatched batch.
const BATCH_SIZE: usize = 256;

/// Panics the moment it sees a packet addressed to [`POISON_PORT`] — the
/// crafted-input crash of the recovery experiment.
struct PoisonPort;

impl Operator for PoisonPort {
    fn process(&mut self, batch: PacketBatch) -> PacketBatch {
        for p in batch.iter() {
            if let Ok(t) = FiveTuple::of(p) {
                assert_ne!(t.dst_port, POISON_PORT, "poison packet");
            }
        }
        batch
    }

    fn name(&self) -> &str {
        "poison-port"
    }
}

/// The representative NF pipeline every experiment variant runs.
fn spec() -> PipelineSpec {
    PipelineSpec::new()
        .stage(NullFilter::new)
        .stage(TtlDecrement::new)
        .stage(MacSwap::new)
        .stage(|| PoisonPort)
}

fn traffic(batches: usize) -> Vec<PacketBatch> {
    let mut g = PacketGen::new(TrafficConfig {
        flows: 4096,
        payload_len: 64,
        seed: 0xE9,
        ..Default::default()
    });
    (0..batches).map(|_| g.next_batch(BATCH_SIZE)).collect()
}

/// One point on the scaling curve.
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    /// Worker (= shard) count.
    pub workers: usize,
    /// Packets pushed through the runtime.
    pub packets: u64,
    /// Wall-clock nanoseconds from first dispatch to full drain.
    pub elapsed_ns: u128,
    /// Aggregate throughput in million packets per second.
    pub mpps: f64,
    /// Median per-batch processing cycles inside the workers.
    pub cycles_per_batch_p50: Option<f64>,
}

/// Outcome of the crash-one-worker-mid-run experiment.
#[derive(Debug, Clone)]
pub struct RecoveryOutcome {
    /// Worker count of the run.
    pub workers: usize,
    /// Shard the poison packet was routed to.
    pub victim: usize,
    /// Contained panics observed (must be exactly 1).
    pub faults: u64,
    /// Worker respawns performed by the supervisor.
    pub respawns: u64,
    /// Batches lost with the crash (the poison batch, plus anything
    /// queued behind it on the victim).
    pub lost_batches: u64,
    /// Batches the victim processed — across the crash, so > 0 proves it
    /// rejoined.
    pub victim_processed: u64,
    /// Fewest batches processed by any survivor (all of its share).
    pub survivor_processed_min: u64,
    /// Faults on survivors (must be 0).
    pub survivor_faults: u64,
    /// Packets processed end to end.
    pub packets: u64,
}

/// The full experiment result set.
#[derive(Debug, Clone)]
pub struct ScalingResults {
    /// Batches offered per point.
    pub batches: usize,
    /// Host parallelism the run actually had available.
    pub host_cpus: usize,
    /// Throughput at 1/2/4/8 workers.
    pub points: Vec<ScalingPoint>,
    /// The recovery-under-load run (4 workers).
    pub recovery: RecoveryOutcome,
}

/// Pushes `batches` pre-generated batches through an `n`-worker runtime
/// and measures dispatch-to-drain wall time.
pub fn measure_point(n: usize, batches: usize) -> ScalingPoint {
    let mut rt = ShardedRuntime::new(
        spec(),
        RuntimeConfig {
            workers: n,
            queue_capacity: 64,
            ..RuntimeConfig::default()
        },
    )
    .expect("runtime construction");
    let load = traffic(batches);
    let packets: u64 = load.iter().map(|b| b.len() as u64).sum();
    let start = Instant::now();
    for batch in load {
        rt.dispatch(batch).expect("healthy dispatch");
    }
    assert!(
        rt.drain(std::time::Duration::from_secs(60)),
        "drain within a minute"
    );
    let elapsed = start.elapsed();
    let report = rt.shutdown();
    assert_eq!(report.packets_in, packets, "no packet went missing");
    assert_eq!(report.faults, 0);
    ScalingPoint {
        workers: n,
        packets,
        elapsed_ns: elapsed.as_nanos(),
        mpps: packets as f64 / elapsed.as_secs_f64() / 1e6,
        cycles_per_batch_p50: report.cycles.as_ref().map(|s| s.p50),
    }
}

/// Crashes one of 4 workers mid-run and verifies containment + rejoin.
pub fn measure_recovery(batches: usize) -> RecoveryOutcome {
    silence_panics();
    const WORKERS: usize = 4;
    let mut rt = ShardedRuntime::new(
        spec(),
        RuntimeConfig {
            workers: WORKERS,
            queue_capacity: 64,
            ..RuntimeConfig::default()
        },
    )
    .expect("runtime construction");
    let load = traffic(batches);
    let packets_offered: u64 = load.iter().map(|b| b.len() as u64).sum();

    // The poison flow determines its own victim via the same RSS hash as
    // any other flow.
    let poison = rbs_netfx::Packet::build_udp(
        rbs_netfx::headers::ethernet::MacAddr::ZERO,
        rbs_netfx::headers::ethernet::MacAddr::ZERO,
        std::net::Ipv4Addr::new(192, 0, 2, 1),
        std::net::Ipv4Addr::new(192, 0, 2, 2),
        31337,
        POISON_PORT,
        16,
    );
    let victim = shard_of_packet(&poison, WORKERS);
    // Packets are linear (no Clone); the poison moves out exactly once.
    let mut poison = Some(poison);

    let half = batches / 2;
    for (i, batch) in load.into_iter().enumerate() {
        if i == half {
            let mut b = PacketBatch::new();
            b.push(poison.take().expect("poison dispatched once"));
            rt.dispatch(b).expect("poison dispatch");
        }
        rt.dispatch(batch).expect("dispatch under fault");
    }
    // The single-pass dispatcher can enqueue the entire load before the
    // victim even reaches the poison batch sitting in its queue; the
    // crash would then only surface while draining, which deliberately
    // never advances the supervision clock (no respawns during drain).
    // Real deployments dispatch continuously — model that by pumping
    // extra traffic (with a short yield so the victim gets cycles to hit
    // the poison) until the supervisor has healed it, then a little more
    // so the healed worker provably processes post-crash packets.
    let mut pump = PacketGen::new(TrafficConfig {
        flows: 4096,
        payload_len: 64,
        seed: 0xE9_0002,
        ..Default::default()
    });
    let mut packets_offered = packets_offered;
    for _ in 0..512 {
        if rt.snapshots()[victim].respawns >= 1 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
        let b = pump.next_batch(BATCH_SIZE);
        packets_offered += b.len() as u64;
        rt.dispatch(b).expect("recovery pump dispatch");
    }
    for _ in 0..8 {
        let b = pump.next_batch(BATCH_SIZE);
        packets_offered += b.len() as u64;
        rt.dispatch(b).expect("post-heal dispatch");
    }
    assert!(
        rt.drain(std::time::Duration::from_secs(60)),
        "drain despite the crash"
    );
    let report = rt.shutdown();

    let victim_snap = &report.workers[victim];
    let survivors: Vec<_> = report
        .workers
        .iter()
        .filter(|w| w.index != victim)
        .collect();
    // Offered = processed + lost-with-the-crash (poison batch included);
    // lost batches carry packets that were never counted in.
    assert!(report.packets_in <= packets_offered + 1);
    RecoveryOutcome {
        workers: WORKERS,
        victim,
        faults: report.faults,
        respawns: report.respawns,
        lost_batches: report.lost_batches,
        victim_processed: victim_snap.processed,
        survivor_processed_min: survivors.iter().map(|w| w.processed).min().unwrap_or(0),
        survivor_faults: survivors.iter().map(|w| w.faults).sum(),
        packets: report.packets_in,
    }
}

/// Runs the full experiment.
pub fn measure(batches: usize) -> ScalingResults {
    let points = [1usize, 2, 4, 8]
        .into_iter()
        .map(|n| measure_point(n, batches))
        .collect();
    ScalingResults {
        batches,
        host_cpus: std::thread::available_parallelism().map_or(1, |n| n.get()),
        points,
        recovery: measure_recovery(batches),
    }
}

/// Renders the result set as the `BENCH_scaling.json` payload.
pub fn to_json(r: &ScalingResults) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"e9_scaling\",\n");
    out.push_str(&format!("  \"host_cpus\": {},\n", r.host_cpus));
    out.push_str(&format!("  \"batch_size\": {BATCH_SIZE},\n"));
    out.push_str(&format!("  \"batches_per_point\": {},\n", r.batches));
    out.push_str(
        "  \"pipeline\": [\"null-filter\", \"ttl-decrement\", \"mac-swap\", \"poison-port\"],\n",
    );
    out.push_str("  \"points\": [\n");
    for (i, p) in r.points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workers\": {}, \"packets\": {}, \"elapsed_ns\": {}, \"mpps\": {:.4}, \"cycles_per_batch_p50\": {}}}{}\n",
            p.workers,
            p.packets,
            p.elapsed_ns,
            p.mpps,
            p.cycles_per_batch_p50
                .map_or_else(|| "null".to_string(), |c| format!("{c:.0}")),
            if i + 1 < r.points.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    let rec = &r.recovery;
    out.push_str(&format!(
        "  \"recovery_under_load\": {{\"workers\": {}, \"victim\": {}, \"faults\": {}, \"respawns\": {}, \"lost_batches\": {}, \"victim_processed\": {}, \"survivor_processed_min\": {}, \"survivor_faults\": {}, \"packets\": {}}}\n",
        rec.workers,
        rec.victim,
        rec.faults,
        rec.respawns,
        rec.lost_batches,
        rec.victim_processed,
        rec.survivor_processed_min,
        rec.survivor_faults,
        rec.packets,
    ));
    out.push_str("}\n");
    out
}

/// Regenerates the scaling table, writing `BENCH_scaling.json` beside it.
pub fn run(quick: bool) -> String {
    let batches = if quick { 200 } else { 2_000 };
    let results = measure(batches);

    let mut t = Table::new(&["workers", "packets", "elapsed ms", "Mpps", "p50 cyc/batch"]);
    for p in &results.points {
        t.row_owned(vec![
            p.workers.to_string(),
            p.packets.to_string(),
            fmt_f64(p.elapsed_ns as f64 / 1e6, 2),
            fmt_f64(p.mpps, 3),
            p.cycles_per_batch_p50
                .map_or_else(|| "-".into(), |c| fmt_f64(c, 0)),
        ]);
    }

    let rec = &results.recovery;
    let mut out = format!(
        "E9 — sharded runtime scaling ({} CPUs available; scaling needs >1)\n",
        results.host_cpus
    );
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nrecovery under load ({} workers): victim={} faults={} respawns={} \
         lost_batches={} victim_processed={} survivor_min={} survivor_faults={}\n",
        rec.workers,
        rec.victim,
        rec.faults,
        rec.respawns,
        rec.lost_batches,
        rec.victim_processed,
        rec.survivor_processed_min,
        rec.survivor_faults,
    ));

    let json_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scaling.json");
    match std::fs::write(json_path, to_json(&results)) {
        Ok(()) => out.push_str(&format!("\nwrote {json_path}\n")),
        Err(e) => out.push_str(&format!("\ncould not write {json_path}: {e}\n")),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_points_conserve_packets() {
        let p = measure_point(2, 20);
        assert_eq!(p.workers, 2);
        assert_eq!(p.packets, 20 * BATCH_SIZE as u64);
        assert!(p.mpps > 0.0);
        assert!(p.cycles_per_batch_p50.is_some());
    }

    #[test]
    fn recovery_under_load_is_contained() {
        let rec = measure_recovery(40);
        assert_eq!(rec.faults, 1, "exactly the poison panic");
        assert_eq!(rec.respawns, 1, "the supervisor healed once");
        assert_eq!(rec.survivor_faults, 0, "no fault leaked");
        assert!(rec.lost_batches >= 1, "the poison batch died");
        assert!(
            rec.victim_processed > 0,
            "the victim rejoined and processed traffic"
        );
        assert!(
            rec.survivor_processed_min > 0,
            "every survivor kept processing"
        );
    }

    #[test]
    fn json_is_well_formed_enough() {
        let r = ScalingResults {
            batches: 1,
            host_cpus: 1,
            points: vec![ScalingPoint {
                workers: 1,
                packets: 256,
                elapsed_ns: 1000,
                mpps: 0.5,
                cycles_per_batch_p50: None,
            }],
            recovery: RecoveryOutcome {
                workers: 4,
                victim: 0,
                faults: 1,
                respawns: 1,
                lost_batches: 1,
                victim_processed: 2,
                survivor_processed_min: 3,
                survivor_faults: 0,
                packets: 1024,
            },
        };
        let j = to_json(&r);
        assert!(j.contains("\"experiment\": \"e9_scaling\""));
        assert!(j.contains("\"cycles_per_batch_p50\": null"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
