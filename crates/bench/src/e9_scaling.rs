//! E9 — scaling: run-to-completion lanes vs the central dispatcher.
//!
//! Three questions about the `rbs-runtime` execution models:
//!
//! 1. **Lane scaling** — aggregate throughput of the same pipeline at 1,
//!    2, 4 and 8 run-to-completion lanes ([`rbs_runtime::LaneRuntime`]),
//!    identical whole-mix offered load. Each lane generates its own RSS
//!    slice, processes it in its own domain and recycles locally — no
//!    central dispatcher on the steady path, so on a many-core host the
//!    curve rises monotonically up to the core count. The run reports
//!    the host's *logical and physical* core counts next to the numbers
//!    and flags every oversubscribed point (more lanes than cores), so a
//!    flat curve on a small host reads as honest, not broken.
//! 2. **Skew and stealing** — the same fleet under a Zipf(1.2) flow mix
//!    loads lanes unevenly. With work stealing off, the hottest lane's
//!    quota dominates the wall clock; with Chase–Lev stealing on, idle
//!    lanes pull batches from loaded deques (paying the isolation
//!    crossing tax per stolen batch) and the gap closes. The cell
//!    reports both runs and the speedup.
//! 3. **Recovery under load** — a poison packet crashes one dispatcher
//!    worker mid-run; the report proves containment and rejoin. (Kept on
//!    the dispatcher runtime, whose supervisor owns respawn policy.)
//!
//! The dispatcher-mode curve at the same points is kept as the
//! comparison baseline. Results are also emitted as `BENCH_scaling.json`
//! in the repo root for machine consumption.

use std::time::Instant;

use rbs_core::table::{fmt_f64, Table};
use rbs_netfx::flow::FiveTuple;
use rbs_netfx::operators::{MacSwap, NullFilter, TtlDecrement};
use rbs_netfx::pktgen::{FlowDistribution, PacketGen, TrafficConfig};
use rbs_netfx::{Operator, PacketBatch, PipelineSpec};
use rbs_runtime::{
    shard_of_packet, LaneConfig, LaneRuntime, RuntimeConfig, ShardedRuntime, VictimOrder,
};

use crate::harness::silence_panics;

/// Destination port that trips the poison operator.
const POISON_PORT: u16 = 0xDEAD;

/// Packets per dispatched/generated batch.
const BATCH_SIZE: usize = 256;

/// Zipf exponent of the skew cell (heavy-tailed Internet-like mix).
const ZIPF_S: f64 = 1.2;

/// Lanes in the skew cell.
const SKEW_LANES: usize = 4;

/// Panics the moment it sees a packet addressed to [`POISON_PORT`] — the
/// crafted-input crash of the recovery experiment.
struct PoisonPort;

impl Operator for PoisonPort {
    fn process(&mut self, batch: PacketBatch) -> PacketBatch {
        for p in batch.iter() {
            if let Ok(t) = FiveTuple::of(p) {
                assert_ne!(t.dst_port, POISON_PORT, "poison packet");
            }
        }
        batch
    }

    fn name(&self) -> &str {
        "poison-port"
    }
}

/// The representative NF pipeline every experiment variant runs.
fn spec() -> PipelineSpec {
    PipelineSpec::new()
        .stage(NullFilter::new)
        .stage(TtlDecrement::new)
        .stage(MacSwap::new)
        .stage(|| PoisonPort)
}

fn uniform_traffic() -> TrafficConfig {
    TrafficConfig {
        flows: 4096,
        payload_len: 64,
        seed: 0xE9,
        ..Default::default()
    }
}

fn traffic(batches: usize) -> Vec<PacketBatch> {
    let mut g = PacketGen::new(uniform_traffic());
    (0..batches).map(|_| g.next_batch(BATCH_SIZE)).collect()
}

/// What the run actually had to scale onto.
#[derive(Debug, Clone)]
pub struct HostInfo {
    /// Logical CPUs (hardware threads) visible to the process.
    pub logical_cores: usize,
    /// Physical cores behind them (unique `(physical id, core id)`
    /// pairs from `/proc/cpuinfo`; falls back to the logical count when
    /// the file is absent or unparsable).
    pub physical_cores: usize,
}

impl HostInfo {
    pub fn detect() -> Self {
        let logical = std::thread::available_parallelism().map_or(1, |n| n.get());
        Self {
            logical_cores: logical,
            physical_cores: physical_cores_from(
                &std::fs::read_to_string("/proc/cpuinfo").unwrap_or_default(),
            )
            .unwrap_or(logical),
        }
    }
}

/// Counts unique `(physical id, core id)` pairs in `/proc/cpuinfo` text.
/// `None` when the fields are missing (ARM, containers with masked
/// cpuinfo) — caller falls back to the logical count.
fn physical_cores_from(text: &str) -> Option<usize> {
    let mut pairs = std::collections::HashSet::new();
    let (mut phys, mut core) = (None, None);
    let mut flush = |phys: &mut Option<usize>, core: &mut Option<usize>| {
        if let (Some(p), Some(c)) = (phys.take(), core.take()) {
            pairs.insert((p, c));
        }
    };
    for line in text.lines() {
        if line.trim().is_empty() {
            flush(&mut phys, &mut core);
            continue;
        }
        let (key, val) = match line.split_once(':') {
            Some((k, v)) => (k.trim(), v.trim()),
            None => continue,
        };
        match key {
            "physical id" => phys = val.parse().ok(),
            "core id" => core = val.parse().ok(),
            _ => {}
        }
    }
    flush(&mut phys, &mut core);
    if pairs.is_empty() {
        None
    } else {
        Some(pairs.len())
    }
}

/// One point on a scaling curve (either execution model).
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    /// Worker (dispatcher mode) or lane (lane mode) count.
    pub workers: usize,
    /// Packets pushed through the runtime in the measured window.
    pub packets: u64,
    /// Wall-clock nanoseconds of the measured window.
    pub elapsed_ns: u128,
    /// Aggregate throughput in million packets per second.
    pub mpps: f64,
    /// Median per-batch processing cycles (dispatcher mode only).
    pub cycles_per_batch_p50: Option<f64>,
    /// Batches that changed lanes via stealing (lane mode only).
    pub stolen_batches: u64,
    /// More workers than logical cores: the point measures
    /// oversubscription, not scaling.
    pub oversubscribed: bool,
}

/// One run of the skew cell (stealing on or off).
#[derive(Debug, Clone)]
pub struct SkewRun {
    /// Whether stealing was enabled (`steal_batch > 0`).
    pub steal: bool,
    /// Packets through the fleet in the measured window.
    pub packets: u64,
    /// Wall-clock nanoseconds of the measured window.
    pub elapsed_ns: u128,
    /// Aggregate throughput in million packets per second.
    pub mpps: f64,
    /// Batches executed by a lane other than their origin.
    pub stolen_batches: u64,
    /// Wire bytes charged as the steal crossing tax.
    pub steal_bytes: u64,
    /// Largest per-lane share of the whole mix (the hot lane).
    pub max_share: f64,
}

/// Outcome of the crash-one-worker-mid-run experiment.
#[derive(Debug, Clone)]
pub struct RecoveryOutcome {
    /// Worker count of the run.
    pub workers: usize,
    /// Shard the poison packet was routed to.
    pub victim: usize,
    /// Contained panics observed (must be exactly 1).
    pub faults: u64,
    /// Worker respawns performed by the supervisor.
    pub respawns: u64,
    /// Batches lost with the crash (the poison batch, plus anything
    /// queued behind it on the victim).
    pub lost_batches: u64,
    /// Batches the victim processed — across the crash, so > 0 proves it
    /// rejoined.
    pub victim_processed: u64,
    /// Fewest batches processed by any survivor (all of its share).
    pub survivor_processed_min: u64,
    /// Faults on survivors (must be 0).
    pub survivor_faults: u64,
    /// Packets processed end to end.
    pub packets: u64,
    /// Deepest any worker input queue got during the run.
    pub queue_depth_hwm: u64,
}

/// The full experiment result set.
#[derive(Debug, Clone)]
pub struct ScalingResults {
    /// Batches offered per point.
    pub batches: usize,
    /// Detected host topology.
    pub host: HostInfo,
    /// Lane-mode (run-to-completion) throughput at 1/2/4/8 lanes.
    pub lane_points: Vec<ScalingPoint>,
    /// Dispatcher-mode throughput at the same points — the baseline.
    pub dispatcher_points: Vec<ScalingPoint>,
    /// The Zipf(1.2) skew cell, stealing off then on.
    pub skew: Vec<SkewRun>,
    /// The recovery-under-load run (4 workers).
    pub recovery: RecoveryOutcome,
}

impl ScalingResults {
    /// True when the lane curve never went down from each point to the
    /// next, over the points that fit in the host's cores (capped at 4).
    /// Trivially true on a single-core host.
    pub fn lane_curve_monotone(&self) -> bool {
        let cap = self.host.logical_cores.min(4);
        let in_cap: Vec<_> = self
            .lane_points
            .iter()
            .filter(|p| p.workers <= cap)
            .collect();
        in_cap.windows(2).all(|w| w[1].mpps >= w[0].mpps * 0.95)
    }
}

/// Runs an `n`-lane fleet over the whole-mix `traffic` and measures the
/// steady-state window (warmup batches excluded via the rendezvous).
fn measure_lane_run(
    n: usize,
    batches: usize,
    traffic: TrafficConfig,
    steal_batch: usize,
) -> (u64, u128, u64, u64, f64, Option<f64>) {
    let warmup = (batches as u64 / 10).clamp(n as u64, 64);
    let rt = LaneRuntime::start(
        spec(),
        LaneConfig {
            lanes: n,
            traffic,
            total_batches: batches as u64,
            batch_size: BATCH_SIZE,
            steal_batch,
            victim_order: VictimOrder::RingNearest,
            warmup_batches: Some(warmup),
            ..LaneConfig::default()
        },
    );
    rt.wait_warmed();
    let start = Instant::now();
    rt.release_warm();
    rt.wait_done();
    let elapsed = start.elapsed();
    rt.release_exit();
    let report = rt.join();

    assert_eq!(report.unaccounted_packets(), 0, "lane conservation");
    assert_eq!(report.outstanding_buffers(), 0, "every buffer came home");
    assert!(report.lanes.iter().all(|l| !l.dead), "no lane died");
    assert_eq!(report.lost(), 0, "fault-free run");
    let measured = (batches * BATCH_SIZE) as u64;
    assert_eq!(
        report.offered(),
        measured + warmup * BATCH_SIZE as u64,
        "full quota generated"
    );
    let stolen: u64 = report.lanes.iter().map(|l| l.stolen_in_batches).sum();
    let steal_bytes: u64 = report.lanes.iter().map(|l| l.steal_bytes).sum();
    let max_share = report.lanes.iter().map(|l| l.share).fold(0.0, f64::max);
    let cycles_p50 = report.cycles().map(|s| s.p50);
    (
        measured,
        elapsed.as_nanos(),
        stolen,
        steal_bytes,
        max_share,
        cycles_p50,
    )
}

/// One lane-mode point on the uniform-mix scaling curve.
pub fn measure_lane_point(n: usize, batches: usize, host: &HostInfo) -> ScalingPoint {
    let (packets, elapsed_ns, stolen, _, _, cycles_p50) = measure_lane_run(
        n,
        batches,
        uniform_traffic(),
        LaneConfig::default().steal_batch,
    );
    ScalingPoint {
        workers: n,
        packets,
        elapsed_ns,
        mpps: packets as f64 / (elapsed_ns as f64 / 1e9) / 1e6,
        cycles_per_batch_p50: cycles_p50,
        stolen_batches: stolen,
        oversubscribed: n > host.logical_cores,
    }
}

/// One skew-cell run: [`SKEW_LANES`] lanes, Zipf([`ZIPF_S`]) mix.
pub fn measure_skew_run(batches: usize, steal: bool) -> SkewRun {
    let mix = TrafficConfig {
        flows: 4096,
        distribution: FlowDistribution::Zipf(ZIPF_S),
        payload_len: 64,
        seed: 0xE9_5EED,
        ..Default::default()
    };
    let steal_batch = if steal { 2 } else { 0 };
    let (packets, elapsed_ns, stolen, steal_bytes, max_share, _) =
        measure_lane_run(SKEW_LANES, batches, mix, steal_batch);
    SkewRun {
        steal,
        packets,
        elapsed_ns,
        mpps: packets as f64 / (elapsed_ns as f64 / 1e9) / 1e6,
        stolen_batches: stolen,
        steal_bytes,
        max_share,
    }
}

/// Pushes `batches` pre-generated batches through an `n`-worker
/// dispatcher runtime and measures dispatch-to-drain wall time.
pub fn measure_point(n: usize, batches: usize) -> ScalingPoint {
    let mut rt = ShardedRuntime::new(
        spec(),
        RuntimeConfig {
            workers: n,
            queue_capacity: 64,
            ..RuntimeConfig::default()
        },
    )
    .expect("runtime construction");
    let load = traffic(batches);
    let packets: u64 = load.iter().map(|b| b.len() as u64).sum();
    let start = Instant::now();
    for batch in load {
        rt.dispatch(batch).expect("healthy dispatch");
    }
    assert!(
        rt.drain(std::time::Duration::from_secs(60)),
        "drain within a minute"
    );
    let elapsed = start.elapsed();
    let report = rt.shutdown();
    assert_eq!(report.packets_in, packets, "no packet went missing");
    assert_eq!(report.faults, 0);
    let logical = std::thread::available_parallelism().map_or(1, |c| c.get());
    ScalingPoint {
        workers: n,
        packets,
        elapsed_ns: elapsed.as_nanos(),
        mpps: packets as f64 / elapsed.as_secs_f64() / 1e6,
        cycles_per_batch_p50: report.cycles.as_ref().map(|s| s.p50),
        stolen_batches: 0,
        oversubscribed: n > logical,
    }
}

/// Crashes one of 4 workers mid-run and verifies containment + rejoin.
pub fn measure_recovery(batches: usize) -> RecoveryOutcome {
    silence_panics();
    const WORKERS: usize = 4;
    let mut rt = ShardedRuntime::new(
        spec(),
        RuntimeConfig {
            workers: WORKERS,
            queue_capacity: 64,
            ..RuntimeConfig::default()
        },
    )
    .expect("runtime construction");
    let load = traffic(batches);
    let packets_offered: u64 = load.iter().map(|b| b.len() as u64).sum();

    // The poison flow determines its own victim via the same RSS hash as
    // any other flow.
    let poison = rbs_netfx::Packet::build_udp(
        rbs_netfx::headers::ethernet::MacAddr::ZERO,
        rbs_netfx::headers::ethernet::MacAddr::ZERO,
        std::net::Ipv4Addr::new(192, 0, 2, 1),
        std::net::Ipv4Addr::new(192, 0, 2, 2),
        31337,
        POISON_PORT,
        16,
    );
    let victim = shard_of_packet(&poison, WORKERS);
    // Packets are linear (no Clone); the poison moves out exactly once.
    let mut poison = Some(poison);

    let half = batches / 2;
    for (i, batch) in load.into_iter().enumerate() {
        if i == half {
            let mut b = PacketBatch::new();
            b.push(poison.take().expect("poison dispatched once"));
            rt.dispatch(b).expect("poison dispatch");
        }
        rt.dispatch(batch).expect("dispatch under fault");
    }
    // The single-pass dispatcher can enqueue the entire load before the
    // victim even reaches the poison batch sitting in its queue; the
    // crash would then only surface while draining, which deliberately
    // never advances the supervision clock (no respawns during drain).
    // Real deployments dispatch continuously — model that by pumping
    // extra traffic (with a short yield so the victim gets cycles to hit
    // the poison) until the supervisor has healed it, then a little more
    // so the healed worker provably processes post-crash packets.
    let mut pump = PacketGen::new(TrafficConfig {
        flows: 4096,
        payload_len: 64,
        seed: 0xE9_0002,
        ..Default::default()
    });
    let mut packets_offered = packets_offered;
    for _ in 0..512 {
        if rt.snapshots()[victim].respawns >= 1 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
        let b = pump.next_batch(BATCH_SIZE);
        packets_offered += b.len() as u64;
        rt.dispatch(b).expect("recovery pump dispatch");
    }
    for _ in 0..8 {
        let b = pump.next_batch(BATCH_SIZE);
        packets_offered += b.len() as u64;
        rt.dispatch(b).expect("post-heal dispatch");
    }
    assert!(
        rt.drain(std::time::Duration::from_secs(60)),
        "drain despite the crash"
    );
    let report = rt.shutdown();

    let victim_snap = &report.workers[victim];
    let survivors: Vec<_> = report
        .workers
        .iter()
        .filter(|w| w.index != victim)
        .collect();
    // Offered = processed + lost-with-the-crash (poison batch included);
    // lost batches carry packets that were never counted in.
    assert!(report.packets_in <= packets_offered + 1);
    RecoveryOutcome {
        workers: WORKERS,
        victim,
        faults: report.faults,
        respawns: report.respawns,
        lost_batches: report.lost_batches,
        victim_processed: victim_snap.processed,
        survivor_processed_min: survivors.iter().map(|w| w.processed).min().unwrap_or(0),
        survivor_faults: survivors.iter().map(|w| w.faults).sum(),
        packets: report.packets_in,
        queue_depth_hwm: report.queue_depth_hwm,
    }
}

/// Runs the full experiment.
pub fn measure(batches: usize) -> ScalingResults {
    let host = HostInfo::detect();
    let counts = [1usize, 2, 4, 8];
    ScalingResults {
        batches,
        lane_points: counts
            .into_iter()
            .map(|n| measure_lane_point(n, batches, &host))
            .collect(),
        dispatcher_points: counts
            .into_iter()
            .map(|n| measure_point(n, batches))
            .collect(),
        skew: vec![
            measure_skew_run(batches, false),
            measure_skew_run(batches, true),
        ],
        recovery: measure_recovery(batches),
        host,
    }
}

fn point_json(p: &ScalingPoint, last: bool) -> String {
    format!(
        "    {{\"workers\": {}, \"packets\": {}, \"elapsed_ns\": {}, \"mpps\": {:.4}, \"cycles_per_batch_p50\": {}, \"stolen_batches\": {}, \"oversubscribed\": {}}}{}\n",
        p.workers,
        p.packets,
        p.elapsed_ns,
        p.mpps,
        p.cycles_per_batch_p50
            .map_or_else(|| "null".to_string(), |c| format!("{c:.0}")),
        p.stolen_batches,
        p.oversubscribed,
        if last { "" } else { "," },
    )
}

/// Renders the result set as the `BENCH_scaling.json` payload.
pub fn to_json(r: &ScalingResults) -> String {
    let oversub: Vec<String> = r
        .lane_points
        .iter()
        .filter(|p| p.oversubscribed)
        .map(|p| p.workers.to_string())
        .collect();
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"e9_scaling\",\n");
    out.push_str(&format!(
        "  \"host\": {{\"logical_cores\": {}, \"physical_cores\": {}, \"oversubscribed_points\": [{}], \"warning\": {}}},\n",
        r.host.logical_cores,
        r.host.physical_cores,
        oversub.join(", "),
        if oversub.is_empty() {
            "null".to_string()
        } else {
            format!(
                "\"points at {} workers exceed the {} logical cores: they measure oversubscription, not scaling\"",
                oversub.join("/"),
                r.host.logical_cores
            )
        },
    ));
    out.push_str(&format!("  \"batch_size\": {BATCH_SIZE},\n"));
    out.push_str(&format!("  \"batches_per_point\": {},\n", r.batches));
    out.push_str(
        "  \"pipeline\": [\"null-filter\", \"ttl-decrement\", \"mac-swap\", \"poison-port\"],\n",
    );
    out.push_str(&format!(
        "  \"lane_curve_monotone_within_cores\": {},\n",
        r.lane_curve_monotone()
    ));
    out.push_str("  \"lane_points\": [\n");
    for (i, p) in r.lane_points.iter().enumerate() {
        out.push_str(&point_json(p, i + 1 == r.lane_points.len()));
    }
    out.push_str("  ],\n");
    out.push_str("  \"dispatcher_points\": [\n");
    for (i, p) in r.dispatcher_points.iter().enumerate() {
        out.push_str(&point_json(p, i + 1 == r.dispatcher_points.len()));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"skew\": {{\"lanes\": {SKEW_LANES}, \"zipf_s\": {ZIPF_S}, \"runs\": [\n"
    ));
    for (i, s) in r.skew.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"steal\": {}, \"packets\": {}, \"elapsed_ns\": {}, \"mpps\": {:.4}, \"stolen_batches\": {}, \"steal_bytes\": {}, \"max_share\": {:.4}}}{}\n",
            s.steal,
            s.packets,
            s.elapsed_ns,
            s.mpps,
            s.stolen_batches,
            s.steal_bytes,
            s.max_share,
            if i + 1 < r.skew.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]},\n");
    let rec = &r.recovery;
    out.push_str(&format!(
        "  \"recovery_under_load\": {{\"workers\": {}, \"victim\": {}, \"faults\": {}, \"respawns\": {}, \"lost_batches\": {}, \"victim_processed\": {}, \"survivor_processed_min\": {}, \"survivor_faults\": {}, \"packets\": {}, \"queue_depth_hwm\": {}}}\n",
        rec.workers,
        rec.victim,
        rec.faults,
        rec.respawns,
        rec.lost_batches,
        rec.victim_processed,
        rec.survivor_processed_min,
        rec.survivor_faults,
        rec.packets,
        rec.queue_depth_hwm,
    ));
    out.push_str("}\n");
    out
}

/// Regenerates the scaling table, writing `BENCH_scaling.json` beside it.
pub fn run(quick: bool) -> String {
    let batches = if quick { 200 } else { 2_000 };
    let results = measure(batches);

    let render_curve = |label: &str, points: &[ScalingPoint]| {
        let mut t = Table::new(&["workers", "packets", "elapsed ms", "Mpps", "note"]);
        for p in points {
            t.row_owned(vec![
                p.workers.to_string(),
                p.packets.to_string(),
                fmt_f64(p.elapsed_ns as f64 / 1e6, 2),
                fmt_f64(p.mpps, 3),
                if p.oversubscribed {
                    "oversubscribed".into()
                } else if p.stolen_batches > 0 {
                    format!("{} stolen", p.stolen_batches)
                } else {
                    "-".into()
                },
            ]);
        }
        format!("{label}\n{}", t.render())
    };

    let mut out = format!(
        "E9 — scaling: lanes vs dispatcher ({} logical / {} physical cores; scaling needs >1)\n",
        results.host.logical_cores, results.host.physical_cores
    );
    out.push_str(&render_curve(
        "lane mode (run-to-completion):",
        &results.lane_points,
    ));
    out.push_str(&render_curve(
        "dispatcher mode (baseline):",
        &results.dispatcher_points,
    ));

    out.push_str(&format!(
        "\nskew cell ({SKEW_LANES} lanes, Zipf({ZIPF_S})):\n"
    ));
    for s in &results.skew {
        out.push_str(&format!(
            "  steal={}: {} Mpps, {} batches stolen, {} steal bytes (hot lane share {:.2})\n",
            if s.steal { "on " } else { "off" },
            fmt_f64(s.mpps, 3),
            s.stolen_batches,
            s.steal_bytes,
            s.max_share,
        ));
    }

    let rec = &results.recovery;
    out.push_str(&format!(
        "\nrecovery under load ({} workers): victim={} faults={} respawns={} \
         lost_batches={} victim_processed={} survivor_min={} survivor_faults={} queue_hwm={}\n",
        rec.workers,
        rec.victim,
        rec.faults,
        rec.respawns,
        rec.lost_batches,
        rec.victim_processed,
        rec.survivor_processed_min,
        rec.survivor_faults,
        rec.queue_depth_hwm,
    ));

    let json_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scaling.json");
    match std::fs::write(json_path, to_json(&results)) {
        Ok(()) => out.push_str(&format!("\nwrote {json_path}\n")),
        Err(e) => out.push_str(&format!("\ncould not write {json_path}: {e}\n")),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_points_conserve_packets() {
        let p = measure_point(2, 20);
        assert_eq!(p.workers, 2);
        assert_eq!(p.packets, 20 * BATCH_SIZE as u64);
        assert!(p.mpps > 0.0);
        assert!(p.cycles_per_batch_p50.is_some());
    }

    #[test]
    fn lane_points_conserve_packets() {
        let host = HostInfo::detect();
        let p = measure_lane_point(2, 20, &host);
        assert_eq!(p.workers, 2);
        // Conservation, buffer return, and full-quota generation are
        // asserted inside measure_lane_run.
        assert_eq!(p.packets, 20 * BATCH_SIZE as u64);
        assert!(p.mpps > 0.0);
    }

    #[test]
    fn skew_cell_steals_only_when_enabled() {
        let off = measure_skew_run(24, false);
        assert_eq!(off.stolen_batches, 0);
        assert_eq!(off.steal_bytes, 0);
        let on = measure_skew_run(24, true);
        assert!(on.max_share > 1.0 / SKEW_LANES as f64, "mix is skewed");
        // On a single-core host stealing may not fire in a short run;
        // when it does, the tax must be metered.
        if on.stolen_batches > 0 {
            assert!(on.steal_bytes > 0, "steal crossings were charged");
        }
    }

    #[test]
    fn physical_core_parse_counts_unique_pairs() {
        let text = "processor: 0\nphysical id: 0\ncore id: 0\n\n\
                    processor: 1\nphysical id: 0\ncore id: 1\n\n\
                    processor: 2\nphysical id: 0\ncore id: 0\n\n\
                    processor: 3\nphysical id: 0\ncore id: 1\n";
        assert_eq!(physical_cores_from(text), Some(2));
        assert_eq!(physical_cores_from("model name: weird\n"), None);
    }

    #[test]
    fn recovery_under_load_is_contained() {
        let rec = measure_recovery(40);
        assert_eq!(rec.faults, 1, "exactly the poison panic");
        assert_eq!(rec.respawns, 1, "the supervisor healed once");
        assert_eq!(rec.survivor_faults, 0, "no fault leaked");
        assert!(rec.lost_batches >= 1, "the poison batch died");
        assert!(
            rec.victim_processed > 0,
            "the victim rejoined and processed traffic"
        );
        assert!(
            rec.survivor_processed_min > 0,
            "every survivor kept processing"
        );
        assert!(rec.queue_depth_hwm >= 1, "queue depth was sampled");
    }

    #[test]
    fn json_is_well_formed_enough() {
        let point = ScalingPoint {
            workers: 1,
            packets: 256,
            elapsed_ns: 1000,
            mpps: 0.5,
            cycles_per_batch_p50: None,
            stolen_batches: 0,
            oversubscribed: false,
        };
        let lane_point = ScalingPoint {
            cycles_per_batch_p50: Some(124.0),
            ..point.clone()
        };
        let r = ScalingResults {
            batches: 1,
            host: HostInfo {
                logical_cores: 1,
                physical_cores: 1,
            },
            lane_points: vec![lane_point],
            dispatcher_points: vec![point],
            skew: vec![SkewRun {
                steal: true,
                packets: 256,
                elapsed_ns: 1000,
                mpps: 0.5,
                stolen_batches: 3,
                steal_bytes: 300,
                max_share: 0.6,
            }],
            recovery: RecoveryOutcome {
                workers: 4,
                victim: 0,
                faults: 1,
                respawns: 1,
                lost_batches: 1,
                victim_processed: 2,
                survivor_processed_min: 3,
                survivor_faults: 0,
                packets: 1024,
                queue_depth_hwm: 5,
            },
        };
        let j = to_json(&r);
        assert!(j.contains("\"experiment\": \"e9_scaling\""));
        // The dispatcher fixture point has no histogram; the lane point
        // carries one — both renderings must survive.
        assert!(j.contains("\"cycles_per_batch_p50\": null"));
        assert!(j.contains("\"cycles_per_batch_p50\": 124"));
        assert!(j.contains("\"lane_points\""));
        assert!(j.contains("\"skew\""));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
