//! Process-wide allocation counting for the zero-allocation claim.
//!
//! `e12_hotpath` asserts that the steady-state data path — pool take,
//! packet build, dispatch, pipeline, recycle, pool put — touches the
//! global allocator exactly zero times. A claim like that cannot be
//! trusted to code review; it has to be *measured*. This module installs
//! a counting [`GlobalAlloc`] wrapper around the system allocator when
//! the crate is built with `--features alloc-count`, and the experiment
//! diffs the counter across its measured window.
//!
//! The counter is process-wide and thread-global on purpose: worker
//! threads, the supervisor, and the driver all share one allocator, so
//! an allocation smuggled in *anywhere* on the hot path shows up. The
//! cost is that the measured window must be quiet — `e12_hotpath` runs
//! it around a dispatch→drain→reclaim cycle with nothing else going on
//! in the process, which is exactly how the CI perf-smoke job invokes
//! it.
//!
//! Without the feature the module still compiles (so experiment code
//! needs no `cfg` spaghetti); [`enabled`] reports `false` and the
//! counter never moves.

use std::sync::atomic::{AtomicU64, Ordering};

#[cfg(feature = "alloc-count")]
use std::alloc::{GlobalAlloc, Layout, System};

/// Allocation events observed since process start (`alloc`,
/// `alloc_zeroed`, and `realloc`). Frees are not counted — the claim is
/// about *acquiring* memory on the hot path, and a dealloc without a
/// matching alloc is impossible anyway.
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Byte sizes of the most recent allocations, in a fixed ring (written
/// lock- and allocation-free from inside the allocator). Purely a
/// diagnostic: when a supposedly quiet window shows a nonzero count,
/// the sizes are often enough to identify the culprit.
static RECENT_SIZES: [AtomicU64; 8] = [const { AtomicU64::new(0) }; 8];

/// Sizes of the last allocations (oldest first is not guaranteed; this
/// is a ring indexed by the global counter). All zeros when counting is
/// disabled or nothing allocated yet.
pub fn recent_sizes() -> [u64; 8] {
    let mut out = [0u64; 8];
    for (slot, v) in RECENT_SIZES.iter().zip(out.iter_mut()) {
        *v = slot.load(Ordering::Relaxed);
    }
    out
}

/// The counting wrapper. Installed as `#[global_allocator]` only under
/// the `alloc-count` feature; defined unconditionally so it is unit
/// testable.
pub struct CountingAllocator;

#[cfg(feature = "alloc-count")]
// SAFETY: defers every operation verbatim to `System`; the only added
// behavior is a relaxed atomic increment, which allocates nothing.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let n = ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        RECENT_SIZES[(n % 8) as usize].store(layout.size() as u64, Ordering::Relaxed);
        // SAFETY: caller upholds `GlobalAlloc::alloc`'s contract.
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let n = ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        RECENT_SIZES[(n % 8) as usize].store(layout.size() as u64, Ordering::Relaxed);
        // SAFETY: caller upholds `GlobalAlloc::alloc_zeroed`'s contract.
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let n = ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        RECENT_SIZES[(n % 8) as usize].store(new_size as u64, Ordering::Relaxed);
        // SAFETY: caller upholds `GlobalAlloc::realloc`'s contract.
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: caller upholds `GlobalAlloc::dealloc`'s contract.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[cfg(feature = "alloc-count")]
#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Whether the counting allocator is actually installed in this build.
pub fn enabled() -> bool {
    cfg!(feature = "alloc-count")
}

/// Allocation events since process start. Monotonic; diff two reads to
/// count the events inside a window. Always `0` when [`enabled`] is
/// `false`.
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_monotonic_and_tracks_feature() {
        let before = allocations();
        let v: Vec<u64> = (0..64).collect();
        let after = allocations();
        assert!(after >= before, "counter never goes backwards");
        if enabled() {
            assert!(after > before, "a fresh Vec must be counted");
        } else {
            assert_eq!(after, 0, "without the feature the counter is dead");
        }
        drop(v);
        assert!(allocations() >= after, "frees are not subtracted");
    }
}
