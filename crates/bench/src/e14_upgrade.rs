//! E14 — live upgrade: zero-downtime rolling reconfiguration under load.
//!
//! Every cell runs a sharded stateful pipeline (firewall rules + a
//! per-flow tracker) under sustained traffic, then walks a rolling
//! upgrade through the fleet one worker at a time while the load keeps
//! coming. Three upgrade shapes × three isolation backends:
//!
//! 1. **Operator bugfix** — same chain, same state schema (a tracker
//!    capacity bump). State restores directly; the compatible path must
//!    account **exactly zero** lost packets.
//! 2. **Rule push** — a new firewall rule database. The state schema
//!    changes; a [`StageStateMap`] migrator rebuilds the firewall slot
//!    fresh (new rules) while carrying every tracked flow across.
//! 3. **Chain reshape** — a counter stage spliced into the chain. The
//!    migrator remaps both the firewall and tracker slots into their
//!    new positions.
//!
//! Two chaos cells per backend then kill a worker mid-upgrade — once at
//! the [`UpgradeQuiesce`](FaultSite::UpgradeQuiesce) site, once at
//! [`UpgradeRestore`](FaultSite::UpgradeRestore) — and assert the walk
//! reverses: already-upgraded workers return to the old spec from their
//! latest snapshots and the fleet ends **uniform**, never mixed.
//!
//! Results are also emitted as `BENCH_upgrade.json` in the repo root.
//! All JSON fields are integers derived from the logical supervision
//! clock and the packet/state ledgers — never wall time — so two runs
//! of the same seed are byte-identical (CI diffs them).

use std::net::Ipv4Addr;
use std::sync::Arc;
use std::time::Duration;

use rbs_core::fault::{FaultKind, FaultPlan, FaultSite};
use rbs_core::table::Table;
use rbs_fwtrie::{Action, FirewallOp, FwTrie, Rule};
use rbs_netfx::operators::{ChaosPoint, Counter};
use rbs_netfx::pktgen::{PacketGen, TrafficConfig};
use rbs_netfx::{FlowTracker, PipelineSpec, StageStateMap};
use rbs_runtime::{
    BackendKind, RestartPolicy, RuntimeConfig, RuntimeReport, ShardedRuntime, UpgradeOutcome,
    UpgradePolicy,
};

use crate::harness::silence_panics;

/// Packets per dispatched batch.
const BATCH_SIZE: usize = 256;

/// Workers in every cell's runtime.
const WORKERS: usize = 4;

/// Distinct flows in the traffic population.
const FLOWS: usize = 512;

/// The one seed behind every cell.
const SEED: u64 = 0x14_06AD;

/// The worker the chaos cells kill mid-upgrade.
const CHAOS_WORKER: u64 = 2;

/// Builds a small firewall rule database; `generation` changes the rule
/// set so a rule push is observable as different state, not a no-op.
fn rule_db(generation: u32) -> FwTrie {
    let mut t = FwTrie::new();
    for i in 0..16u32 {
        let base = Ipv4Addr::from(0x0E00_0000u32 | (i << 8) | (generation << 20));
        t.insert(Rule::new(
            i,
            format!("e14 g{generation} rule {i}"),
            base,
            24,
            if i % 4 == 0 {
                Action::Deny
            } else {
                Action::Allow
            },
        ));
    }
    t
}

/// The running pipeline: chaos point → firewall (generation-1 rules) →
/// flow tracker. Schema 1.
fn spec_v1() -> PipelineSpec {
    PipelineSpec::new()
        .stage(|| ChaosPoint::new(0))
        .stage(|| FirewallOp::new(rule_db(1), Action::Allow))
        .stage(|| FlowTracker::new(100_000))
        .with_state_schema(1)
}

/// The five upgrade cells run against every backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// Same schema: tracker capacity bump, direct restore both ways.
    OperatorBugfix,
    /// New rule database (schema 2): firewall slot rebuilt fresh, flows
    /// migrated across.
    RulePush,
    /// Counter stage spliced in (schema 3): firewall *and* tracker
    /// slots remapped into their new positions.
    ChainReshape,
    /// The bugfix upgrade with the target worker killed at its quiesce.
    ChaosQuiesce,
    /// The bugfix upgrade with the first worker killed at its restore.
    ChaosRestore,
}

impl Scenario {
    /// Every cell, in report order.
    pub const ALL: [Scenario; 5] = [
        Scenario::OperatorBugfix,
        Scenario::RulePush,
        Scenario::ChainReshape,
        Scenario::ChaosQuiesce,
        Scenario::ChaosRestore,
    ];

    /// Stable name used in tables and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Scenario::OperatorBugfix => "operator-bugfix",
            Scenario::RulePush => "rule-push",
            Scenario::ChainReshape => "chain-reshape",
            Scenario::ChaosQuiesce => "chaos-quiesce",
            Scenario::ChaosRestore => "chaos-restore",
        }
    }

    /// True when the cell is expected to commit (no chaos).
    pub fn expects_commit(self) -> bool {
        !matches!(self, Scenario::ChaosQuiesce | Scenario::ChaosRestore)
    }

    /// The spec the fleet upgrades to.
    fn target(self) -> PipelineSpec {
        match self {
            Scenario::OperatorBugfix | Scenario::ChaosQuiesce | Scenario::ChaosRestore => {
                PipelineSpec::new()
                    .stage(|| ChaosPoint::new(0))
                    .stage(|| FirewallOp::new(rule_db(1), Action::Allow))
                    .stage(|| FlowTracker::new(200_000))
                    .with_state_schema(1)
            }
            Scenario::RulePush => PipelineSpec::new()
                .stage(|| ChaosPoint::new(0))
                .stage(|| FirewallOp::new(rule_db(2), Action::Allow))
                .stage(|| FlowTracker::new(100_000))
                .with_state_schema(2),
            Scenario::ChainReshape => PipelineSpec::new()
                .stage(|| ChaosPoint::new(0))
                .stage(|| FirewallOp::new(rule_db(1), Action::Allow))
                .stage(Counter::new)
                .stage(|| FlowTracker::new(100_000))
                .with_state_schema(3),
        }
    }

    /// The upgrade policy: schema-changing cells carry a stage-state
    /// migrator; same-schema cells need none.
    fn policy(self) -> UpgradePolicy {
        match self {
            Scenario::OperatorBugfix | Scenario::ChaosQuiesce | Scenario::ChaosRestore => {
                UpgradePolicy::default()
            }
            // Old stages: 0 chaos, 1 firewall, 2 tracker. The firewall
            // slot goes fresh (the push is the point); flows carry.
            Scenario::RulePush => UpgradePolicy::default().with_migrator(Arc::new(
                StageStateMap::new(1, 2, vec![None, None, Some(2)]),
            )),
            // The reshape keeps the firewall state and moves the
            // tracker down one slot past the inserted counter.
            Scenario::ChainReshape => UpgradePolicy::default().with_migrator(Arc::new(
                StageStateMap::new(1, 3, vec![None, Some(1), None, Some(2)]),
            )),
        }
    }

    /// The chaos plan for this cell, if any.
    fn plan(self) -> Option<FaultPlan> {
        match self {
            Scenario::ChaosQuiesce => Some(FaultPlan::new(SEED).inject_window(
                FaultSite::UpgradeQuiesce,
                FaultKind::Panic,
                CHAOS_WORKER,
                0,
                1,
            )),
            Scenario::ChaosRestore => Some(FaultPlan::new(SEED).inject_window(
                FaultSite::UpgradeRestore,
                FaultKind::Panic,
                0,
                0,
                1,
            )),
            _ => None,
        }
    }
}

/// One (backend × scenario) cell of the matrix.
#[derive(Debug, Clone)]
pub struct UpgradeCell {
    /// Isolation backend the domains ran on.
    pub backend: BackendKind,
    /// Which upgrade shape ran.
    pub scenario: Scenario,
    /// "committed" or "rolled-back".
    pub outcome: &'static str,
    /// Workers walked (upgraded on commit, swapped back on rollback).
    pub workers_walked: u64,
    /// Supervision ticks worker ingress was paused, fleet total.
    pub pause_ticks: u64,
    /// Packets drained from paused queues after ingress stopped.
    pub drained_packets: u64,
    /// State items carried across a schema change by the migrator.
    pub state_items_migrated: u64,
    /// Packets offered to the dispatcher over the whole run.
    pub offered: u64,
    /// Packets lost — asserted zero on every compatible path.
    pub lost_packets: u64,
    /// Packets shed with accounting (chaos cells only).
    pub shed_packets: u64,
    /// Packets rerouted off paused shards by the degradation machinery.
    pub redistributed_packets: u64,
    /// Goodput in ppm of offered (integer-exact).
    pub goodput_ppm: u64,
    /// Spec generation every worker ended on (uniform by assertion).
    pub spec_generation: u64,
    /// Live state items summed over workers at shutdown.
    pub final_state_items: u64,
    /// Conservation residue — asserted zero.
    pub unaccounted: i64,
}

fn goodput_ppm(report: &RuntimeReport) -> u64 {
    if report.offered_packets == 0 {
        return 1_000_000;
    }
    report.packets_out * 1_000_000 / report.offered_packets
}

/// Runs one cell: `rounds` pre-upgrade rounds of lockstep traffic, the
/// rolling walk under continued load, then `rounds` more to show the
/// new fleet keeps processing.
pub fn measure_cell(backend: BackendKind, scenario: Scenario, rounds: usize) -> UpgradeCell {
    silence_panics();
    let mut rt = ShardedRuntime::new(
        spec_v1(),
        RuntimeConfig {
            workers: WORKERS,
            queue_capacity: 64,
            restart: RestartPolicy::default(),
            supervisor_seed: SEED,
            snapshot_interval_ticks: 2,
            snapshot_full_every: 1,
            backend,
            faults: scenario.plan().map(Arc::new),
            ..RuntimeConfig::default()
        },
    )
    .expect("runtime construction");
    let mut gen = PacketGen::new(TrafficConfig {
        flows: FLOWS,
        payload_len: 64,
        seed: SEED,
        ..Default::default()
    });
    let mut step = |rt: &mut ShardedRuntime| {
        rt.dispatch(gen.next_batch(BATCH_SIZE)).expect("dispatch");
        assert!(rt.drain(Duration::from_secs(30)), "every round drains");
    };
    for _ in 0..rounds {
        step(&mut rt);
    }
    rt.upgrade_pipeline(scenario.target(), scenario.policy())
        .expect("upgrade accepted");
    let mut guard = 0;
    while rt.upgrade_in_progress() {
        step(&mut rt);
        guard += 1;
        assert!(guard < 64, "{} walk failed to terminate", scenario.name());
    }
    for _ in 0..rounds {
        step(&mut rt);
    }

    let report = rt.shutdown();
    let outcome = *report
        .upgrades
        .last()
        .expect("the walk recorded an outcome");
    let (outcome_name, workers_walked) = match outcome {
        UpgradeOutcome::Committed { workers, .. } => ("committed", workers as u64),
        UpgradeOutcome::RolledBack {
            workers_rolled_back,
            ..
        } => ("rolled-back", workers_rolled_back as u64),
    };
    let generations: Vec<u64> = report.workers.iter().map(|w| w.spec_generation).collect();
    assert!(
        generations.iter().all(|&g| g == generations[0]),
        "{}: fleet ended mixed: {generations:?}",
        scenario.name()
    );
    let cell = UpgradeCell {
        backend,
        scenario,
        outcome: outcome_name,
        workers_walked,
        pause_ticks: report.upgrade_pause_ticks,
        drained_packets: report.upgrade_drained_packets,
        state_items_migrated: report.state_items_migrated,
        offered: report.offered_packets,
        lost_packets: report.lost_packets,
        shed_packets: report.shed_packets,
        redistributed_packets: report.redistributed_packets,
        goodput_ppm: goodput_ppm(&report),
        spec_generation: generations[0],
        final_state_items: report.workers.iter().map(|w| w.state_items).sum(),
        unaccounted: report.unaccounted_packets(),
    };
    assert_eq!(
        cell.unaccounted,
        0,
        "{}: packets vanished on {backend}",
        scenario.name()
    );
    if scenario.expects_commit() {
        assert_eq!(cell.outcome, "committed");
        assert_eq!(
            cell.lost_packets,
            0,
            "{}: a compatible upgrade loses nothing",
            scenario.name()
        );
        assert_eq!(cell.shed_packets, 0, "peers absorbed every paused shard");
        assert_eq!(cell.spec_generation, 1);
        assert_eq!(cell.workers_walked, WORKERS as u64);
    } else {
        assert_eq!(cell.outcome, "rolled-back");
        assert_eq!(
            cell.spec_generation,
            0,
            "{}: rollback returns the whole fleet to the old spec",
            scenario.name()
        );
    }
    if matches!(scenario, Scenario::RulePush | Scenario::ChainReshape) {
        assert!(
            cell.state_items_migrated > 0,
            "{}: the migrator carried the flow tables",
            scenario.name()
        );
    }
    cell
}

/// The full backend × scenario matrix.
#[derive(Debug, Clone)]
pub struct UpgradeResults {
    /// Pre- and post-upgrade rounds per cell.
    pub rounds: usize,
    /// Cells, backend-major then scenario order.
    pub cells: Vec<UpgradeCell>,
}

/// Runs every cell.
pub fn measure(rounds: usize) -> UpgradeResults {
    let mut cells = Vec::new();
    for backend in BackendKind::ALL {
        for scenario in Scenario::ALL {
            cells.push(measure_cell(backend, scenario, rounds));
        }
    }
    UpgradeResults { rounds, cells }
}

/// Renders the result set as the `BENCH_upgrade.json` payload.
///
/// Integer-only by construction: two runs of the same build and seed
/// must produce byte-identical output (CI diffs them).
pub fn to_json(r: &UpgradeResults) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"e14_upgrade\",\n");
    out.push_str(&format!("  \"seed\": {SEED},\n"));
    out.push_str(&format!("  \"workers\": {WORKERS},\n"));
    out.push_str(&format!("  \"batch_size\": {BATCH_SIZE},\n"));
    out.push_str(&format!("  \"flows\": {FLOWS},\n"));
    out.push_str(&format!("  \"rounds\": {},\n", r.rounds));
    out.push_str("  \"cells\": [\n");
    for (i, c) in r.cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"backend\": \"{}\", \"scenario\": \"{}\", \"outcome\": \"{}\", \"workers_walked\": {}, \"pause_ticks\": {}, \"drained_packets\": {}, \"state_items_migrated\": {}, \"offered\": {}, \"lost_packets\": {}, \"shed_packets\": {}, \"redistributed_packets\": {}, \"goodput_ppm\": {}, \"spec_generation\": {}, \"final_state_items\": {}, \"unaccounted\": {}}}{}\n",
            c.backend,
            c.scenario.name(),
            c.outcome,
            c.workers_walked,
            c.pause_ticks,
            c.drained_packets,
            c.state_items_migrated,
            c.offered,
            c.lost_packets,
            c.shed_packets,
            c.redistributed_packets,
            c.goodput_ppm,
            c.spec_generation,
            c.final_state_items,
            c.unaccounted,
            if i + 1 < r.cells.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Regenerates the upgrade matrix, writing `BENCH_upgrade.json` beside
/// it.
pub fn run(quick: bool) -> String {
    let rounds = if quick { 12 } else { 40 };
    let results = measure(rounds);

    let mut t = Table::new(&[
        "backend",
        "scenario",
        "outcome",
        "walked",
        "pause ticks",
        "drained",
        "migrated",
        "lost",
        "shed",
        "goodput %",
        "gen",
    ]);
    for c in &results.cells {
        t.row_owned(vec![
            c.backend.to_string(),
            c.scenario.name().to_owned(),
            c.outcome.to_owned(),
            c.workers_walked.to_string(),
            c.pause_ticks.to_string(),
            c.drained_packets.to_string(),
            c.state_items_migrated.to_string(),
            c.lost_packets.to_string(),
            c.shed_packets.to_string(),
            format!("{:.2}", c.goodput_ppm as f64 / 10_000.0),
            c.spec_generation.to_string(),
        ]);
    }

    let mut out = String::from(
        "E14 — live upgrade: rolling reconfiguration under load, by backend and upgrade shape\n",
    );
    out.push_str(&t.render());
    out.push_str(
        "\nCompatible cells commit with exactly 0 lost packets; chaos cells roll the fleet\n\
         back to a uniform generation-0 spec with every packet accounted.\n",
    );

    let json_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_upgrade.json");
    match std::fs::write(json_path, to_json(&results)) {
        Ok(()) => out.push_str(&format!("\nwrote {json_path}\n")),
        Err(e) => out.push_str(&format!("\ncould not write {json_path}: {e}\n")),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bugfix_upgrade_commits_zero_loss() {
        let c = measure_cell(BackendKind::TypedSfi, Scenario::OperatorBugfix, 8);
        assert_eq!(c.outcome, "committed");
        assert_eq!(c.lost_packets, 0);
        assert_eq!(c.shed_packets, 0);
        assert!(c.drained_packets > 0, "pause-tick batches drained");
        assert!(c.redistributed_packets > 0, "paused shards redistributed");
        assert_eq!(c.state_items_migrated, 0, "same schema: direct restore");
    }

    #[test]
    fn rule_push_migrates_flows() {
        let c = measure_cell(BackendKind::CopyBoundary, Scenario::RulePush, 8);
        assert_eq!(c.outcome, "committed");
        assert_eq!(c.lost_packets, 0);
        assert!(c.state_items_migrated > 0);
    }

    #[test]
    fn chaos_cells_roll_back_uniform() {
        let q = measure_cell(BackendKind::TypedSfi, Scenario::ChaosQuiesce, 8);
        assert_eq!(q.outcome, "rolled-back");
        assert_eq!(q.spec_generation, 0);
        assert_eq!(q.unaccounted, 0);
        let r = measure_cell(BackendKind::TypedSfi, Scenario::ChaosRestore, 8);
        assert_eq!(r.outcome, "rolled-back");
        assert_eq!(r.spec_generation, 0);
        assert_eq!(r.lost_packets, 0, "the drain finished before the kill");
    }

    #[test]
    fn cells_are_deterministic() {
        let a = measure_cell(BackendKind::MpkSim, Scenario::ChainReshape, 8);
        let b = measure_cell(BackendKind::MpkSim, Scenario::ChainReshape, 8);
        assert_eq!(a.offered, b.offered);
        assert_eq!(a.goodput_ppm, b.goodput_ppm);
        assert_eq!(a.pause_ticks, b.pause_ticks);
        assert_eq!(a.drained_packets, b.drained_packets);
        assert_eq!(a.state_items_migrated, b.state_items_migrated);
        assert_eq!(a.final_state_items, b.final_state_items);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let r = UpgradeResults {
            rounds: 1,
            cells: vec![UpgradeCell {
                backend: BackendKind::TypedSfi,
                scenario: Scenario::OperatorBugfix,
                outcome: "committed",
                workers_walked: 4,
                pause_ticks: 8,
                drained_packets: 120,
                state_items_migrated: 0,
                offered: 4096,
                lost_packets: 0,
                shed_packets: 0,
                redistributed_packets: 96,
                goodput_ppm: 1_000_000,
                spec_generation: 1,
                final_state_items: 512,
                unaccounted: 0,
            }],
        };
        let j = to_json(&r);
        assert!(j.contains("\"experiment\": \"e14_upgrade\""));
        assert!(j.contains("\"scenario\": \"operator-bugfix\""));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
