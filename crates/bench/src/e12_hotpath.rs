//! E12 — the zero-allocation hot path: pooled buffers end to end.
//!
//! The claim under test is DPDK's, transplanted into safe Rust: once the
//! [`PacketPool`] is warm, the steady-state data path — pool take →
//! packet build → single-pass dispatch → pipeline → recycle give → pool
//! put — touches the global allocator **zero** times per packet.
//! Ownership transfer is the only synchronization on the recycle ring
//! (workers give spent batches back over an `sfi` channel; the borrow
//! checker rules out "recycled but still referenced"), so there are no
//! refcounts or locks to pay for either.
//!
//! Three measurements per (workers × batch-size) point:
//!
//! 1. **Throughput** — Mpps over the measured window (generation from
//!    the pool, dispatch, full drain, final reclaim). Unlike E9, packet
//!    *generation* is inside the window: that is the point — buffers
//!    cycle driver → worker → driver without ever visiting the
//!    allocator.
//! 2. **Allocations per packet** — when built with `--features
//!    alloc-count`, a counting global allocator is diffed across the
//!    window. With the pool enabled the count must be exactly zero; a
//!    pool-disabled baseline point documents what the allocator would
//!    otherwise charge.
//! 3. **Conservation** — `offered == packets_in + lost + shed` on the
//!    runtime ledger, and `taken == returned + outstanding` with
//!    `outstanding == 0` on the pool's (no faults here, so nothing may
//!    leak).
//!
//! Results land in `BENCH_hotpath.json` as one record per line, each
//! tagged `"kind": "stable"` (byte-identical across runs on any host)
//! or `"kind": "timing"` (wall-clock dependent). CI diffs two runs after
//! `grep -v '"kind": "timing"'`.

use std::time::{Duration, Instant};

use rbs_core::table::{fmt_f64, Table};
use rbs_netfx::operators::{MacSwap, NullFilter, TtlDecrement};
use rbs_netfx::pktgen::{PacketGen, TrafficConfig};
use rbs_netfx::pool::PacketPool;
use rbs_netfx::PipelineSpec;
use rbs_runtime::{LaneConfig, LaneRuntime, RuntimeConfig, ShardedRuntime};

use crate::alloc_count;

/// Byte capacity of each pooled slab — comfortably above the ~120-byte
/// frames the generator emits, mirroring a real NIC mempool's fixed
/// mbuf size.
const SLAB_BYTES: usize = 2048;

/// Per-worker input queue depth, in batches.
const QUEUE_CAPACITY: usize = 64;

/// Rounds dispatched before the measured window opens: long enough for
/// every shell and scratch batch in circulation to reach its high-water
/// capacity and for every thread to have parked once.
const WARMUP_ROUNDS: usize = 64;

/// The representative NF pipeline (E9's, minus the poison stage — this
/// experiment is about the clean path).
fn spec() -> PipelineSpec {
    PipelineSpec::new()
        .stage(NullFilter::new)
        .stage(TtlDecrement::new)
        .stage(MacSwap::new)
}

fn generator() -> PacketGen {
    PacketGen::new(TrafficConfig {
        flows: 4096,
        payload_len: 64,
        seed: 0x0E12,
        ..Default::default()
    })
}

/// One measured configuration.
#[derive(Debug, Clone)]
pub struct HotpathPoint {
    /// Worker (= shard) count.
    pub workers: usize,
    /// Packets per generated batch.
    pub batch_size: usize,
    /// Batches dispatched inside the measured window.
    pub rounds: usize,
    /// Whether the packet pool + recycle path were enabled.
    pub pooled: bool,
    /// Packets offered inside the measured window (= rounds × batch).
    pub packets: u64,
    /// Wall-clock nanoseconds for the measured window.
    pub elapsed_ns: u128,
    /// Million packets per second over the window.
    pub mpps: f64,
    /// Median per-batch processing cycles inside the workers.
    pub cycles_per_batch_p50: Option<f64>,
    /// Allocation events inside the window (`None` without the
    /// `alloc-count` feature).
    pub allocs_steady: Option<u64>,
    /// Allocations per packet (`None` without the feature).
    pub allocs_per_packet: Option<f64>,
    /// Runtime ledger balance: offered == packets_in + lost + shed.
    pub conservation_ok: bool,
    /// Pool ledger balance at quiescence: taken == returned exactly
    /// (vacuously true when the pool is disabled).
    pub pool_balanced: bool,
    /// Pool take hits inside the whole run (warmup included).
    pub pool_hits: u64,
    /// Pool takes that had to allocate.
    pub pool_misses: u64,
    /// Output batches the workers gave back through the recycle path.
    pub recycled_batches: u64,
    /// Gives dropped on a full/revoked recycle path.
    pub recycle_drops: u64,
}

impl HotpathPoint {
    /// True when the zero-allocation claim was measured and held.
    pub fn zero_alloc(&self) -> Option<bool> {
        self.allocs_steady.map(|n| n == 0)
    }
}

/// Drains the recycle path until at least `need` buffers sit free in the
/// pool (driver backpressure: never generate faster than buffers come
/// back). Gives up after `deadline` — the caller's miss counters will
/// show it.
fn wait_for_buffers(
    rt: &mut ShardedRuntime,
    pool: &mut PacketPool,
    need: usize,
    deadline: Duration,
) {
    let until = Instant::now() + deadline;
    loop {
        // Reclaim unconditionally — even when buffers are plentiful the
        // dispatcher's shell bank needs its per-burst refill, and letting
        // the recycle channel accumulate only defers the work.
        rt.reclaim_buffers(pool);
        if pool.free_buffers() >= need || Instant::now() >= until {
            return;
        }
        std::thread::yield_now();
    }
}

/// Runs one configuration: warmup rounds (unmeasured), then `rounds`
/// batches through generate→dispatch→drain→reclaim with the allocation
/// counter diffed across the measured window.
pub fn measure_point(
    workers: usize,
    batch_size: usize,
    rounds: usize,
    pooled: bool,
) -> HotpathPoint {
    let mut rt = ShardedRuntime::new(
        spec(),
        RuntimeConfig {
            workers,
            queue_capacity: QUEUE_CAPACITY,
            recycle_capacity: if pooled {
                workers * QUEUE_CAPACITY + 32
            } else {
                0
            },
            scratch_capacity: batch_size,
            ..RuntimeConfig::default()
        },
    )
    .expect("runtime construction");
    // Buffer prewarm doubles as the pacing bound: the backpressure loop
    // keeps at most `inflight_rounds` generator batches outstanding.
    // Every in-flight round can fan out into up to `workers` shard
    // batches, each holding a shell, so the worst-case shell demand is
    // inflight_rounds * workers (in flight) + workers + 2 (dispatcher
    // bank) + 1 (generator). Clamping the depth keeps that demand
    // inside the pool's fixed shell reservoir, which is what makes the
    // zero-allocation claim deterministic rather than timing-lucky.
    let inflight_rounds = (workers + 4).min(48 / workers);
    let prewarm = batch_size * inflight_rounds;
    let mut pool = PacketPool::new(SLAB_BYTES, prewarm);
    let mut gen = generator();
    if pooled {
        pool.prewarm(prewarm);
        pool.prewarm_shells(inflight_rounds * workers + workers + 3, batch_size);
    }

    let reclaim_deadline = Duration::from_secs(30);
    let offer = |rt: &mut ShardedRuntime, pool: &mut PacketPool, gen: &mut PacketGen| {
        let batch = if pooled {
            wait_for_buffers(rt, pool, batch_size, reclaim_deadline);
            gen.next_batch_from_pool(batch_size, pool)
        } else {
            gen.next_batch(batch_size)
        };
        rt.dispatch(batch).expect("clean dispatch");
    };

    for _ in 0..WARMUP_ROUNDS {
        offer(&mut rt, &mut pool, &mut gen);
    }
    // Deliberately NO drain here: a drain would reset the system to a
    // burst-start transient (the dispatcher outruns the workers until
    // buffer backpressure engages, and during that gap no shells flow
    // back). Warmup ends with the ring at its paced equilibrium, which
    // is exactly the state "steady state" means.

    // ---- measured window: nothing below may allocate in pooled mode ----
    let allocs_before = alloc_count::allocations();
    let start = Instant::now();
    for _ in 0..rounds {
        offer(&mut rt, &mut pool, &mut gen);
    }
    let drained = rt.drain(Duration::from_secs(60));
    rt.reclaim_buffers(&mut pool);
    let elapsed = start.elapsed();
    let allocs_after = alloc_count::allocations();
    // ---- end of measured window ----

    assert!(drained, "measured window drains within a minute");
    let report = rt.shutdown();
    let packets = (rounds * batch_size) as u64;
    let offered_total = ((rounds + WARMUP_ROUNDS) * batch_size) as u64;
    assert_eq!(
        report.offered_packets, offered_total,
        "dispatcher saw every packet"
    );
    let conservation_ok =
        report.offered_packets == report.packets_in + report.lost_packets + report.shed_packets;
    let stats = pool.stats();
    let pool_balanced = !pooled || pool.outstanding() == 0;
    let allocs_steady = alloc_count::enabled().then(|| allocs_after - allocs_before);
    HotpathPoint {
        workers,
        batch_size,
        rounds,
        pooled,
        packets,
        elapsed_ns: elapsed.as_nanos(),
        mpps: packets as f64 / elapsed.as_secs_f64() / 1e6,
        cycles_per_batch_p50: report.cycles.as_ref().map(|s| s.p50),
        allocs_steady,
        allocs_per_packet: allocs_steady.map(|n| n as f64 / packets as f64),
        conservation_ok,
        pool_balanced,
        pool_hits: stats.hits,
        pool_misses: stats.misses,
        recycled_batches: report.recycled_batches,
        recycle_drops: report.recycle_drops,
    }
}

/// One lane-mode (run-to-completion) configuration: each lane generates
/// its RSS slice from its own pool, processes it in its own domain and
/// recycles locally — the whole packet lifecycle never leaves the lane
/// thread, so the zero-allocation claim covers generation too.
///
/// Stealing is off here by design: a thief recycles stolen buffers into
/// its *own* pool, so buffers migrate between pools and a receiving
/// pool's free list can outgrow its prewarm — an allocation that is the
/// price of stealing, not of the steady path. E9's skew cell measures
/// that price; this cell isolates the claim the pool exists for.
#[derive(Debug, Clone)]
pub struct LanePoint {
    /// Lane (= thread) count.
    pub lanes: usize,
    /// Packets per generated batch.
    pub batch_size: usize,
    /// Whole-mix batches in the measured window.
    pub rounds: usize,
    /// Packets generated inside the measured window.
    pub packets: u64,
    /// Wall-clock nanoseconds of the measured window.
    pub elapsed_ns: u128,
    /// Million packets per second over the window.
    pub mpps: f64,
    /// Allocation events inside the window (`None` without the
    /// `alloc-count` feature).
    pub allocs_steady: Option<u64>,
    /// Ledger balance: every generated packet handled exactly once.
    pub conservation_ok: bool,
    /// Every buffer taken from a lane pool was returned to one.
    pub pool_balanced: bool,
}

impl LanePoint {
    /// True when the zero-allocation claim was measured and held.
    pub fn zero_alloc(&self) -> Option<bool> {
        self.allocs_steady.map(|n| n == 0)
    }
}

/// Runs one lane-mode configuration. The warmup rendezvous brackets the
/// window exactly: every lane finishes its warmup quota and parks, the
/// allocator counter is read, the fleet is released, and the counter is
/// read again only after every lane has parked on the exit rendezvous.
pub fn measure_lane_point(lanes: usize, batch_size: usize, rounds: usize) -> LanePoint {
    let rt = LaneRuntime::start(
        spec(),
        LaneConfig {
            lanes,
            traffic: TrafficConfig {
                flows: 4096,
                payload_len: 64,
                seed: 0x0E12,
                ..Default::default()
            },
            total_batches: rounds as u64,
            batch_size,
            steal_batch: 0,
            pool_slab_bytes: SLAB_BYTES,
            warmup_batches: Some(WARMUP_ROUNDS as u64),
            ..LaneConfig::default()
        },
    );
    rt.wait_warmed();
    // ---- measured window: nothing below may allocate ----
    let allocs_before = alloc_count::allocations();
    let start = Instant::now();
    rt.release_warm();
    rt.wait_done();
    let elapsed = start.elapsed();
    let allocs_after = alloc_count::allocations();
    // ---- end of measured window ----
    rt.release_exit();
    let report = rt.join();

    let packets = (rounds * batch_size) as u64;
    let offered_total = ((rounds + WARMUP_ROUNDS) * batch_size) as u64;
    assert_eq!(report.offered(), offered_total, "full quota generated");
    assert!(report.lanes.iter().all(|l| !l.dead), "no lane died");
    let allocs_steady = alloc_count::enabled().then(|| allocs_after - allocs_before);
    LanePoint {
        lanes,
        batch_size,
        rounds,
        packets,
        elapsed_ns: elapsed.as_nanos(),
        mpps: packets as f64 / elapsed.as_secs_f64() / 1e6,
        allocs_steady,
        conservation_ok: report.unaccounted_packets() == 0,
        pool_balanced: report.outstanding_buffers() == 0,
    }
}

/// The full experiment result set.
#[derive(Debug, Clone)]
pub struct HotpathResults {
    /// Host parallelism the run actually had available.
    pub host_cpus: usize,
    /// Whether the counting allocator was compiled in.
    pub alloc_counting: bool,
    /// Pooled sweep points plus the unpooled baseline (last).
    pub points: Vec<HotpathPoint>,
    /// Lane-mode (run-to-completion) points.
    pub lane_points: Vec<LanePoint>,
}

/// Runs the sweep: every worker count × batch size with the pool on,
/// plus one pool-off baseline at (4, 256) for the allocator comparison.
pub fn measure(rounds: usize, batch_sizes: &[usize]) -> HotpathResults {
    let mut points = Vec::new();
    for &batch in batch_sizes {
        for workers in [1usize, 2, 4, 8] {
            points.push(measure_point(workers, batch, rounds, true));
        }
    }
    points.push(measure_point(4, 256, rounds, false));
    HotpathResults {
        host_cpus: std::thread::available_parallelism().map_or(1, |n| n.get()),
        alloc_counting: alloc_count::enabled(),
        points,
        lane_points: [1usize, 2, 4]
            .into_iter()
            .map(|n| measure_lane_point(n, 256, rounds))
            .collect(),
    }
}

fn fmt_opt_u64(v: Option<u64>) -> String {
    v.map_or_else(|| "null".into(), |n| n.to_string())
}

/// Renders the result set as the `BENCH_hotpath.json` payload: one
/// record per line, tagged stable/timing.
pub fn to_json(r: &HotpathResults) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"e12_hotpath\",\n");
    out.push_str(&format!(
        "  \"alloc_counting\": {},\n  \"slab_bytes\": {SLAB_BYTES},\n  \"warmup_rounds\": {WARMUP_ROUNDS},\n",
        r.alloc_counting
    ));
    out.push_str("  \"records\": [\n");
    let n = r.points.len();
    for (i, p) in r.points.iter().enumerate() {
        let zero = p
            .zero_alloc()
            .map_or_else(|| "null".into(), |b| b.to_string());
        out.push_str(&format!(
            "    {{\"kind\": \"stable\", \"workers\": {}, \"batch_size\": {}, \"pooled\": {}, \"rounds\": {}, \"packets\": {}, \"conservation_ok\": {}, \"pool_balanced\": {}, \"zero_alloc_steady\": {}, \"allocs_steady\": {}}},\n",
            p.workers,
            p.batch_size,
            p.pooled,
            p.rounds,
            p.packets,
            p.conservation_ok,
            p.pool_balanced,
            zero,
            fmt_opt_u64(p.allocs_steady),
        ));
        out.push_str(&format!(
            "    {{\"kind\": \"timing\", \"workers\": {}, \"batch_size\": {}, \"pooled\": {}, \"elapsed_ns\": {}, \"mpps\": {:.4}, \"cycles_per_batch_p50\": {}, \"pool_hits\": {}, \"pool_misses\": {}, \"recycled_batches\": {}, \"recycle_drops\": {}}}{}\n",
            p.workers,
            p.batch_size,
            p.pooled,
            p.elapsed_ns,
            p.mpps,
            p.cycles_per_batch_p50
                .map_or_else(|| "null".to_string(), |c| format!("{c:.0}")),
            p.pool_hits,
            p.pool_misses,
            p.recycled_batches,
            p.recycle_drops,
            if i + 1 < n || !r.lane_points.is_empty() {
                ","
            } else {
                ""
            },
        ));
    }
    let m = r.lane_points.len();
    for (i, p) in r.lane_points.iter().enumerate() {
        let zero = p
            .zero_alloc()
            .map_or_else(|| "null".into(), |b| b.to_string());
        out.push_str(&format!(
            "    {{\"kind\": \"stable\", \"mode\": \"lane\", \"lanes\": {}, \"batch_size\": {}, \"rounds\": {}, \"packets\": {}, \"conservation_ok\": {}, \"pool_balanced\": {}, \"zero_alloc_steady\": {}, \"allocs_steady\": {}}},\n",
            p.lanes,
            p.batch_size,
            p.rounds,
            p.packets,
            p.conservation_ok,
            p.pool_balanced,
            zero,
            fmt_opt_u64(p.allocs_steady),
        ));
        out.push_str(&format!(
            "    {{\"kind\": \"timing\", \"mode\": \"lane\", \"lanes\": {}, \"batch_size\": {}, \"elapsed_ns\": {}, \"mpps\": {:.4}}}{}\n",
            p.lanes,
            p.batch_size,
            p.elapsed_ns,
            p.mpps,
            if i + 1 < m { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Regenerates the hot-path table, writing `BENCH_hotpath.json` beside
/// it.
pub fn run(quick: bool) -> String {
    let rounds = if quick { 128 } else { 1_024 };
    let batch_sizes: &[usize] = if quick { &[64, 256] } else { &[64, 256, 512] };
    let results = measure(rounds, batch_sizes);

    let mut t = Table::new(&[
        "workers",
        "batch",
        "pooled",
        "Mpps",
        "p50 cyc/batch",
        "allocs/pkt",
        "misses",
    ]);
    for p in &results.points {
        t.row_owned(vec![
            p.workers.to_string(),
            p.batch_size.to_string(),
            p.pooled.to_string(),
            fmt_f64(p.mpps, 3),
            p.cycles_per_batch_p50
                .map_or_else(|| "-".into(), |c| fmt_f64(c, 0)),
            p.allocs_per_packet
                .map_or_else(|| "n/a".into(), |a| fmt_f64(a, 4)),
            p.pool_misses.to_string(),
        ]);
    }

    let mut out = format!(
        "E12 — zero-allocation hot path ({} CPUs available; allocation counting {})\n",
        results.host_cpus,
        if results.alloc_counting {
            "ON"
        } else {
            "OFF — build with --features alloc-count"
        },
    );
    out.push_str(&t.render());

    // Document the scaling ratio the acceptance gate asks about.
    let ratio = |batch: usize| {
        let at = |w: usize| {
            results
                .points
                .iter()
                .find(|p| p.pooled && p.workers == w && p.batch_size == batch)
                .map(|p| p.mpps)
        };
        match (at(1), at(8)) {
            (Some(one), Some(eight)) if one > 0.0 => Some(eight / one),
            _ => None,
        }
    };
    for &batch in batch_sizes {
        if let Some(x) = ratio(batch) {
            out.push_str(&format!(
                "8-worker vs 1-worker Mpps at batch {batch}: {:.2}x\n",
                x
            ));
        }
    }
    out.push_str("\nlane mode (run-to-completion, stealing off):\n");
    let mut lt = Table::new(&["lanes", "batch", "Mpps", "allocs", "balanced"]);
    for p in &results.lane_points {
        lt.row_owned(vec![
            p.lanes.to_string(),
            p.batch_size.to_string(),
            fmt_f64(p.mpps, 3),
            p.allocs_steady
                .map_or_else(|| "n/a".into(), |n| n.to_string()),
            p.pool_balanced.to_string(),
        ]);
    }
    out.push_str(&lt.render());
    for p in &results.points {
        assert!(p.conservation_ok, "packet ledger must balance");
        assert!(p.pool_balanced, "pool ledger must balance");
    }
    for p in &results.lane_points {
        assert!(p.conservation_ok, "lane ledger must balance");
        assert!(p.pool_balanced, "lane pools must balance");
    }
    if results.alloc_counting {
        let dirty: Vec<_> = results
            .points
            .iter()
            .filter(|p| p.pooled && p.zero_alloc() == Some(false))
            .collect();
        if dirty.is_empty() {
            out.push_str(
                "steady-state allocations with pool enabled: 0 per packet at every point\n",
            );
        } else {
            for p in &dirty {
                out.push_str(&format!(
                    "WARNING: {} allocs in steady state at workers={} batch={}\n",
                    p.allocs_steady.unwrap_or(0),
                    p.workers,
                    p.batch_size,
                ));
            }
        }
        for p in results
            .lane_points
            .iter()
            .filter(|p| p.zero_alloc() == Some(false))
        {
            out.push_str(&format!(
                "WARNING: {} allocs in lane steady state at lanes={} batch={}\n",
                p.allocs_steady.unwrap_or(0),
                p.lanes,
                p.batch_size,
            ));
        }
    }

    let json_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hotpath.json");
    match std::fs::write(json_path, to_json(&results)) {
        Ok(()) => out.push_str(&format!("\nwrote {json_path}\n")),
        Err(e) => out.push_str(&format!("\ncould not write {json_path}: {e}\n")),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pooled_point_conserves_and_balances() {
        let p = measure_point(2, 64, 24, true);
        assert_eq!(p.packets, 24 * 64);
        assert!(p.conservation_ok, "offered == in + lost + shed");
        assert!(p.pool_balanced, "every taken buffer came back");
        assert!(p.mpps > 0.0);
        assert!(p.recycled_batches > 0, "workers fed the recycle path");
        if alloc_count::enabled() {
            assert_eq!(
                p.allocs_steady,
                Some(0),
                "pooled steady state must not allocate (recent sizes: {:?})",
                alloc_count::recent_sizes()
            );
        } else {
            assert!(p.allocs_steady.is_none());
        }
    }

    #[test]
    fn unpooled_point_still_conserves() {
        let p = measure_point(2, 64, 12, false);
        assert!(p.conservation_ok);
        assert!(p.pool_balanced, "vacuous without a pool");
        assert_eq!(p.pool_hits + p.pool_misses, 0, "the pool was never touched");
        assert_eq!(p.recycled_batches, 0, "no recycle path configured");
        if alloc_count::enabled() {
            assert!(
                p.allocs_per_packet.unwrap() >= 1.0,
                "without the pool every packet costs at least its buffer"
            );
        }
    }

    #[test]
    fn lane_point_conserves_and_balances() {
        let p = measure_lane_point(2, 64, 24);
        assert_eq!(p.packets, 24 * 64);
        assert!(p.conservation_ok, "every generated packet handled once");
        assert!(p.pool_balanced, "every buffer returned to a lane pool");
        assert!(p.mpps > 0.0);
        if alloc_count::enabled() {
            assert_eq!(
                p.allocs_steady,
                Some(0),
                "lane steady state must not allocate (recent sizes: {:?})",
                alloc_count::recent_sizes()
            );
        } else {
            assert!(p.allocs_steady.is_none());
        }
    }

    #[test]
    fn json_separates_stable_from_timing() {
        let point = HotpathPoint {
            workers: 4,
            batch_size: 256,
            rounds: 10,
            pooled: true,
            packets: 2560,
            elapsed_ns: 1000,
            mpps: 1.0,
            cycles_per_batch_p50: None,
            allocs_steady: Some(0),
            allocs_per_packet: Some(0.0),
            conservation_ok: true,
            pool_balanced: true,
            pool_hits: 100,
            pool_misses: 0,
            recycled_batches: 10,
            recycle_drops: 0,
        };
        let r = HotpathResults {
            host_cpus: 1,
            alloc_counting: true,
            points: vec![point],
            lane_points: vec![LanePoint {
                lanes: 2,
                batch_size: 256,
                rounds: 10,
                packets: 2560,
                elapsed_ns: 1000,
                mpps: 1.0,
                allocs_steady: Some(0),
                conservation_ok: true,
                pool_balanced: true,
            }],
        };
        let j = to_json(&r);
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        // Every wall-clock-dependent field lives on a line CI can strip.
        for line in j.lines() {
            if line.contains("mpps") || line.contains("elapsed_ns") || line.contains("pool_hits") {
                assert!(
                    line.contains("\"kind\": \"timing\""),
                    "timing field on a stable line: {line}"
                );
            }
            if line.contains("zero_alloc_steady") {
                assert!(line.contains("\"kind\": \"stable\""));
            }
        }
        let stable: String = j
            .lines()
            .filter(|l| !l.contains("\"kind\": \"timing\""))
            .collect();
        assert!(stable.contains("\"zero_alloc_steady\": true"));
        assert!(!stable.contains("mpps"));
    }
}
