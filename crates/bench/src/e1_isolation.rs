//! E1 — Figure 2: remote-invocation overhead vs. batch size.
//!
//! "We measure the cost of isolation by constructing a pipeline of
//! null-filters ... We vary the length of the pipeline and the number of
//! packets per batch, and measure the average number of cycles to
//! process a batch with and without protection. The difference between
//! the two divided by the pipeline length gives us the overhead of a
//! remote invocation over regular function call." (§3)
//!
//! The paper reports 90→122 cycles per invocation across batch sizes
//! 1→256, overhead independent of pipeline length, and isolation under
//! 1% of Maglev's per-batch processing cost for batches of ≥32 packets.

use crate::harness::{measure_batch_loop, median, test_batch};
use rbs_core::table::{fmt_f64, Table};
use rbs_maglev::{Backend, MaglevLb};
use rbs_netfx::operators::NullFilter;
use rbs_netfx::pipeline::{Operator, Pipeline};
use rust_beyond_safety::IsolatedPipeline;
use std::net::Ipv4Addr;

/// The batch sizes on Figure 2's x-axis.
pub const BATCH_SIZES: [usize; 9] = [1, 2, 4, 8, 16, 32, 64, 128, 256];

/// The pipeline length Figure 2 fixes ("the results for the length of 5").
pub const PIPELINE_LEN: usize = 5;

/// One Figure 2 data point.
#[derive(Debug, Clone, Copy)]
pub struct Fig2Row {
    /// Packets per batch.
    pub batch_size: usize,
    /// Cycles/batch through the direct (function call) pipeline.
    pub direct_cycles: f64,
    /// Cycles/batch through the SFI-isolated pipeline.
    pub isolated_cycles: f64,
    /// Per-invocation overhead: `(isolated - direct) / PIPELINE_LEN`.
    pub overhead_per_call: f64,
    /// Cycles/batch for the Maglev load balancer on the same traffic.
    pub maglev_cycles: f64,
}

impl Fig2Row {
    /// Per-invocation isolation overhead relative to Maglev's batch
    /// processing cost, in percent. Figure 2 plots these two series
    /// against each other, and the "<1%" claim compares them pointwise.
    pub fn overhead_pct_of_maglev(&self) -> f64 {
        self.overhead_per_call / self.maglev_cycles * 100.0
    }

    /// Whole-pipeline (5 crossings) overhead relative to Maglev.
    pub fn pipeline_overhead_pct_of_maglev(&self) -> f64 {
        (self.isolated_cycles - self.direct_cycles) / self.maglev_cycles * 100.0
    }
}

fn direct_pipeline(len: usize) -> Pipeline {
    let mut p = Pipeline::new();
    for _ in 0..len {
        p.add_boxed(Box::new(NullFilter::new()));
    }
    p
}

fn isolated_pipeline(len: usize) -> IsolatedPipeline {
    let mut p = IsolatedPipeline::new();
    for i in 0..len {
        p.add_stage(&format!("null-{i}"), || Box::new(NullFilter::new()))
            .expect("no quota configured");
    }
    p
}

fn maglev_lb() -> MaglevLb {
    let backends = (0..8).map(|i| Backend::new(format!("be-{i}"))).collect();
    let addrs = (0..8).map(|i| Ipv4Addr::new(10, 1, 0, i + 1)).collect();
    MaglevLb::new(backends, addrs, 65537).expect("valid backend set")
}

/// Measures one Figure 2 row.
pub fn measure_point(batch_size: usize, iters: usize) -> Fig2Row {
    let chunk = (iters / 30).max(1);

    let mut direct = direct_pipeline(PIPELINE_LEN);
    let direct_samples = measure_batch_loop(test_batch(batch_size), iters, chunk, |b| {
        direct.run_batch(b)
    });

    let mut isolated = isolated_pipeline(PIPELINE_LEN);
    let isolated_samples = measure_batch_loop(test_batch(batch_size), iters, chunk, |b| {
        isolated.run_batch(b).expect("null filters do not fault")
    });

    let mut maglev = maglev_lb();
    let maglev_samples =
        measure_batch_loop(test_batch(batch_size), iters, chunk, |b| maglev.process(b));

    let direct_cycles = median(&direct_samples);
    let isolated_cycles = median(&isolated_samples);
    Fig2Row {
        batch_size,
        direct_cycles,
        isolated_cycles,
        overhead_per_call: (isolated_cycles - direct_cycles) / PIPELINE_LEN as f64,
        maglev_cycles: median(&maglev_samples),
    }
}

/// Measures the full Figure 2 series.
pub fn measure_series(quick: bool) -> Vec<Fig2Row> {
    let iters = if quick { 2_000 } else { 20_000 };
    BATCH_SIZES
        .iter()
        .map(|&n| measure_point(n, iters))
        .collect()
}

/// Verifies the paper's "independent of the pipeline length" claim:
/// per-invocation overhead at several lengths.
pub fn measure_length_independence(quick: bool) -> Vec<(usize, f64)> {
    let iters = if quick { 2_000 } else { 10_000 };
    let chunk = (iters / 30).max(1);
    [2usize, 5, 8]
        .iter()
        .map(|&len| {
            let mut direct = direct_pipeline(len);
            let d = median(&measure_batch_loop(test_batch(32), iters, chunk, |b| {
                direct.run_batch(b)
            }));
            let mut iso = isolated_pipeline(len);
            let i = median(&measure_batch_loop(test_batch(32), iters, chunk, |b| {
                iso.run_batch(b).expect("null filters do not fault")
            }));
            (len, (i - d) / len as f64)
        })
        .collect()
}

/// Regenerates Figure 2 as a text table.
pub fn run(quick: bool) -> String {
    let rows = measure_series(quick);
    let mut t = Table::new(&[
        "packets/batch",
        "direct cyc/batch",
        "isolated cyc/batch",
        "overhead cyc/call",
        "maglev cyc/batch",
        "overhead/call % of maglev",
        "5-stage overhead %",
    ]);
    for r in &rows {
        t.row_owned(vec![
            r.batch_size.to_string(),
            fmt_f64(r.direct_cycles, 0),
            fmt_f64(r.isolated_cycles, 0),
            fmt_f64(r.overhead_per_call, 1),
            fmt_f64(r.maglev_cycles, 0),
            fmt_f64(r.overhead_pct_of_maglev(), 2),
            fmt_f64(r.pipeline_overhead_pct_of_maglev(), 2),
        ]);
    }
    let mut out = String::from("Figure 2 — isolation overhead vs. Maglev processing cost\n");
    out.push_str(&t.render());
    out.push_str("\nPipeline-length independence (batch = 32):\n");
    let mut lt = Table::new(&["pipeline length", "overhead cyc/call"]);
    for (len, ov) in measure_length_independence(quick) {
        t_push(&mut lt, len, ov);
    }
    out.push_str(&lt.render());
    out
}

fn t_push(t: &mut Table, len: usize, ov: f64) {
    t.row_owned(vec![len.to_string(), fmt_f64(ov, 1)]);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The shape claims of Figure 2, with debug-build slack: isolation
    /// costs something per call, far less than Maglev's work on large
    /// batches.
    #[test]
    fn figure2_shape() {
        let small = measure_point(1, 3_000);
        let large = measure_point(128, 3_000);

        // Isolation is never free...
        assert!(small.overhead_per_call > 0.0, "{small:?}");
        // ...but it is bounded: well under a few thousand cycles even in
        // debug builds (the paper's release number is ~90).
        assert!(small.overhead_per_call < 20_000.0, "{small:?}");
        // Maglev does real per-packet work, so at large batches the
        // relative overhead collapses (paper: <1% at >=32; allow <30%
        // for unoptimized debug builds on shared CI).
        assert!(
            large.overhead_pct_of_maglev() < 10.0,
            "relative per-call overhead too high: {large:?}"
        );
        // And the relative overhead shrinks as batches grow.
        assert!(
            large.overhead_pct_of_maglev() < small.overhead_pct_of_maglev(),
            "small={small:?} large={large:?}"
        );
    }

    #[test]
    fn overhead_roughly_length_independent() {
        let points = measure_length_independence(true);
        assert_eq!(points.len(), 3);
        let ovs: Vec<f64> = points.iter().map(|&(_, o)| o.max(1.0)).collect();
        let max = ovs.iter().cloned().fold(f64::MIN, f64::max);
        let min = ovs.iter().cloned().fold(f64::MAX, f64::min);
        // Per-call overhead should not scale with pipeline length; allow
        // generous noise on shared machines.
        assert!(max / min < 8.0, "{points:?}");
    }

    #[test]
    fn run_produces_all_rows() {
        let out = run(true);
        for n in BATCH_SIZES {
            assert!(
                out.lines()
                    .any(|l| l.trim_start().starts_with(&n.to_string())),
                "missing row {n}:\n{out}"
            );
        }
        assert!(out.contains("overhead/call % of maglev"));
    }
}
