//! Regenerates every table and figure of the paper.
//!
//! ```text
//! experiments [EXPERIMENT ...] [--quick]
//!
//! EXPERIMENT: fig2 | e1 | e2 | e3 | e4 | e5 | e6 | e7 | e8 | e9 | e10 | e11 | e12 | e13 | e14 | e15 | all (default)
//! --quick: smaller iteration counts for a fast smoke run
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut selected: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    if selected.is_empty() {
        selected.push("all");
    }

    let all = [
        "fig2", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14",
        "e15",
    ];
    let runs: Vec<&str> = if selected.contains(&"all") {
        all.to_vec()
    } else {
        selected
    };

    for name in &runs {
        let output = match *name {
            "fig2" | "e1" => rbs_bench::e1_isolation::run(quick),
            "e2" => rbs_bench::e2_remote_call::run(quick),
            "e3" => rbs_bench::e3_recovery::run(quick),
            "e4" => rbs_bench::e4_ifc::run(quick),
            "e5" => rbs_bench::e5_ifc_scaling::run(quick),
            "e6" => rbs_bench::e6_checkpoint::run(quick),
            "e7" => rbs_bench::e7_budget::run(quick),
            "e8" => rbs_bench::e8_maglev::run(quick),
            "e9" => rbs_bench::e9_scaling::run(quick),
            "e10" => rbs_bench::e10_chaos::run(quick),
            "e11" => rbs_bench::e11_recovery::run(quick),
            "e12" => rbs_bench::e12_hotpath::run(quick),
            "e13" => rbs_bench::e13_isolation::run(quick),
            "e14" => rbs_bench::e14_upgrade::run(quick),
            "e15" => rbs_bench::e15_tenants::run(quick),
            other => {
                eprintln!(
                    "unknown experiment {other:?}; known: fig2 e2 e3 e4 e5 e6 e7 e8 e9 e10 e11 e12 e13 e14 e15 all"
                );
                return ExitCode::FAILURE;
            }
        };
        println!("{}", "=".repeat(72));
        println!("{output}");
    }
    ExitCode::SUCCESS
}
