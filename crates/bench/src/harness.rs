//! Shared measurement plumbing.

use rbs_core::cycles::CycleTimer;
use rbs_core::stats::Summary;
use rbs_netfx::batch::PacketBatch;
use rbs_netfx::pktgen::{PacketGen, TrafficConfig};
use std::sync::Once;

/// Installs a silent panic hook once, so fault-injection experiments do
/// not spend cycles (or terminal space) printing panic messages — the
/// measured path is catch + cleanup + recovery, not I/O.
pub fn silence_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        std::panic::set_hook(Box::new(|_| {}));
    });
}

/// A deterministic batch of `n` UDP packets for pipeline experiments.
pub fn test_batch(n: usize) -> PacketBatch {
    let mut g = PacketGen::new(TrafficConfig {
        flows: 4096,
        payload_len: 64,
        seed: 0xF162,
        ..Default::default()
    });
    g.next_batch(n)
}

/// Measures `iters` repetitions of a batch-consuming, batch-returning
/// pipeline step, reusing the returned batch; reports cycles/iteration
/// samples (one sample per `chunk` iterations, amortizing timer cost).
pub fn measure_batch_loop(
    mut batch: PacketBatch,
    iters: usize,
    chunk: usize,
    mut step: impl FnMut(PacketBatch) -> PacketBatch,
) -> Vec<f64> {
    assert!(chunk > 0 && iters >= chunk);
    // Warmup: touch caches, resolve lazy init.
    for _ in 0..chunk {
        batch = step(batch);
    }
    let mut samples = Vec::with_capacity(iters / chunk);
    let mut done = 0;
    while done < iters {
        let t = CycleTimer::start();
        for _ in 0..chunk {
            batch = step(batch);
        }
        let c = t.elapsed();
        samples.push(c as f64 / chunk as f64);
        done += chunk;
    }
    samples
}

/// The median of a measured sample set (the honest point estimate on a
/// noisy multi-tasking host).
pub fn median(samples: &[f64]) -> f64 {
    Summary::of(samples).map(|s| s.p50).unwrap_or(f64::NAN)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_is_deterministic() {
        let a = test_batch(8);
        let b = test_batch(8);
        assert_eq!(a.len(), 8);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.as_slice(), y.as_slice());
        }
    }

    #[test]
    fn measure_returns_expected_sample_count() {
        let samples = measure_batch_loop(test_batch(4), 100, 10, |b| b);
        assert_eq!(samples.len(), 10);
        assert!(samples.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn median_of_known() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert!(median(&[]).is_nan());
    }

    #[test]
    fn silence_panics_is_idempotent() {
        silence_panics();
        silence_panics();
        let r = std::panic::catch_unwind(|| panic!("quiet"));
        assert!(r.is_err());
    }
}
