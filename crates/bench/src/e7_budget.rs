//! E7 — §1: line-rate cycle budgets, and where our pipeline sits.
//!
//! Reproduces the introduction's napkin numbers — "to saturate a 10Gbps
//! network link ... a budget of 835 ns per 1K packet (or 1670 cycles on
//! a 2GHz machine)", with "the memory access latency of 96-146 ns ...
//! a handful of cache misses in the critical path" — and then measures
//! our Maglev pipeline's per-packet cycles against the budget.

use crate::harness::{measure_batch_loop, median, test_batch};
use rbs_core::cycles::cycles_per_ns;
use rbs_core::table::{fmt_f64, Table};
use rbs_maglev::{Backend, MaglevLb};
use rbs_netfx::budget::Budget;
use rbs_netfx::pipeline::Operator;
use std::net::Ipv4Addr;

/// The paper's budget row plus neighbours.
pub fn budget_rows() -> Vec<(f64, usize, Budget)> {
    [
        (10.0, 60),   // minimum-size frames at 10G
        (10.0, 1024), // the paper's "1K packet"
        (10.0, 1500), // full MTU
        (40.0, 1024), // faster links shrink the budget
        (100.0, 1024),
    ]
    .iter()
    .map(|&(gbps, frame)| (gbps, frame, Budget::new(gbps, frame, 2.0)))
    .collect()
}

/// Measured per-packet cost of the Maglev stage at a given batch size.
pub fn measured_cycles_per_packet(batch_size: usize, iters: usize) -> f64 {
    let backends = (0..8).map(|i| Backend::new(format!("be-{i}"))).collect();
    let addrs = (0..8).map(|i| Ipv4Addr::new(10, 1, 0, i + 1)).collect();
    let mut lb = MaglevLb::new(backends, addrs, 65537).expect("valid backends");
    let chunk = (iters / 20).max(1);
    let per_batch = median(&measure_batch_loop(
        test_batch(batch_size),
        iters,
        chunk,
        |b| lb.process(b),
    ));
    per_batch / batch_size as f64
}

/// Regenerates the budget table and the measured comparison.
pub fn run(quick: bool) -> String {
    let mut out = String::from(
        "E7 — line-rate budgets (paper: 835 ns / 1670 cycles per 1K packet at 10 Gb/s, 2 GHz)\n",
    );
    let mut t = Table::new(&[
        "link",
        "frame B",
        "ns/packet",
        "cycles/packet @2GHz",
        "misses@96ns",
        "misses@146ns",
    ]);
    for (gbps, frame, b) in budget_rows() {
        t.row_owned(vec![
            format!("{gbps:.0}G"),
            frame.to_string(),
            fmt_f64(b.ns_per_packet(), 0),
            fmt_f64(b.cycles_per_packet(), 0),
            fmt_f64(b.cache_misses_in_budget(96.0), 1),
            fmt_f64(b.cache_misses_in_budget(146.0), 1),
        ]);
    }
    out.push_str(&t.render());

    let iters = if quick { 2_000 } else { 20_000 };
    let measured = measured_cycles_per_packet(64, iters);
    let budget = Budget::new(10.0, 1024, cycles_per_ns());
    out.push_str(&format!(
        "\nmeasured Maglev stage: {measured:.0} cycles/packet on this host \
         ({:.1}% of the 10G/1KB budget at the host clock)\n",
        budget.utilization(measured) * 100.0
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_row_reproduced() {
        let rows = budget_rows();
        let (_, _, b) = rows
            .iter()
            .find(|&&(g, f, _)| g == 10.0 && f == 1024)
            .unwrap();
        assert!((b.ns_per_packet() - 835.0).abs() / 835.0 < 0.01);
        assert!((b.cycles_per_packet() - 1670.0).abs() / 1670.0 < 0.01);
    }

    #[test]
    fn measured_cost_is_positive_and_finite() {
        let c = measured_cycles_per_packet(32, 2_000);
        assert!(c > 0.0 && c.is_finite(), "{c}");
    }

    #[test]
    fn run_renders_budget_table() {
        let out = run(true);
        assert!(out.contains("1670") || out.contains("1676"), "{out}");
        assert!(out.contains("measured Maglev stage"), "{out}");
    }
}
