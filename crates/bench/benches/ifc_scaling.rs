//! Criterion counterpart of E5: move-mode analysis vs. the Andersen
//! baseline, and monolithic inlining vs. compositional summaries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rbs_ifc::{alias, interp, progen, summary};

fn bench_ifc(c: &mut Criterion) {
    let mut group = c.benchmark_group("ifc_scaling");

    for &n in &[32usize, 128, 512] {
        let p = progen::alias_chain(n);
        group.bench_with_input(BenchmarkId::new("move_mode", n), &p, |b, p| {
            b.iter(|| interp::analyze(p).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("alias_baseline", n), &p, |b, p| {
            b.iter(|| alias::analyze_alias(p))
        });
    }

    for &d in &[8usize, 12] {
        let p = progen::call_diamond(d);
        group.bench_with_input(BenchmarkId::new("monolithic_diamond", d), &p, |b, p| {
            b.iter(|| interp::analyze(p).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("summaries_diamond", d), &p, |b, p| {
            b.iter(|| summary::analyze_with_summaries(p).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ifc);
criterion_main!(benches);
