//! Criterion counterpart of E6 (Figure 3): checkpointing the shared-rule
//! firewall database under the three dedup strategies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rbs_bench::e6_checkpoint::build_database;
use rbs_checkpoint::{checkpoint_with_mode, restore, DedupMode};
use rbs_fwtrie::FwTrie;

fn bench_checkpoint(c: &mut Criterion) {
    let mut group = c.benchmark_group("checkpoint_firewall");
    let trie = build_database(1_000, 4);

    for (name, mode) in [
        ("epoch_flag", DedupMode::EpochFlag),
        ("address_set", DedupMode::AddressSet),
        ("naive_duplicate", DedupMode::None),
    ] {
        group.bench_with_input(BenchmarkId::new("checkpoint", name), &mode, |b, &mode| {
            b.iter(|| checkpoint_with_mode(&trie, mode))
        });
    }

    let cp = checkpoint_with_mode(&trie, DedupMode::EpochFlag);
    group.bench_function("restore", |b| {
        b.iter(|| {
            let t: FwTrie = restore(&cp).unwrap();
            t.rule_refs()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_checkpoint);
criterion_main!(benches);
