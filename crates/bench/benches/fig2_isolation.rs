//! Criterion counterpart of Figure 2: batch processing cost with and
//! without SFI isolation, plus the Maglev yardstick, per batch size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rbs_bench::harness::test_batch;
use rbs_maglev::{Backend, MaglevLb};
use rbs_netfx::operators::NullFilter;
use rbs_netfx::pipeline::{Operator, Pipeline};
use rust_beyond_safety::IsolatedPipeline;
use std::net::Ipv4Addr;

fn bench_fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2");
    for &size in &[1usize, 8, 32, 256] {
        group.throughput(Throughput::Elements(size as u64));

        group.bench_with_input(BenchmarkId::new("direct-5xnull", size), &size, |b, &n| {
            let mut p = Pipeline::new();
            for _ in 0..5 {
                p.add_boxed(Box::new(NullFilter::new()));
            }
            let mut batch = Some(test_batch(n));
            b.iter(|| {
                let out = p.run_batch(batch.take().expect("recycled"));
                batch = Some(out);
            });
        });

        group.bench_with_input(BenchmarkId::new("isolated-5xnull", size), &size, |b, &n| {
            let mut p = IsolatedPipeline::new();
            for i in 0..5 {
                p.add_stage(&format!("null-{i}"), || Box::new(NullFilter::new()))
                    .unwrap();
            }
            let mut batch = Some(test_batch(n));
            b.iter(|| {
                let out = p.run_batch(batch.take().expect("recycled")).unwrap();
                batch = Some(out);
            });
        });

        group.bench_with_input(BenchmarkId::new("maglev", size), &size, |b, &n| {
            let backends = (0..8).map(|i| Backend::new(format!("be-{i}"))).collect();
            let addrs = (0..8).map(|i| Ipv4Addr::new(10, 1, 0, i + 1)).collect();
            let mut lb = MaglevLb::new(backends, addrs, 65537).unwrap();
            let mut batch = Some(test_batch(n));
            b.iter(|| {
                let out = lb.process(batch.take().expect("recycled"));
                batch = Some(out);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
