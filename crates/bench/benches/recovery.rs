//! Criterion counterpart of E3: domain fault recovery (paper: 4389
//! cycles on average).

use criterion::{criterion_group, criterion_main, Criterion};
use parking_lot::Mutex;
use rbs_netfx::batch::PacketBatch;
use rbs_netfx::operators::PanicAfter;
use rbs_netfx::pipeline::Operator;
use rbs_sfi::{Domain, DomainManager, RRef};
use std::sync::Arc;

fn bench_recovery(c: &mut Criterion) {
    rbs_bench::harness::silence_panics();
    c.bench_function("fault_catch_clean_recover", |b| {
        let mgr = DomainManager::new();
        let d = mgr.create_domain("null-filter").unwrap();
        let slot: Arc<Mutex<Option<RRef<PanicAfter>>>> = Arc::new(Mutex::new(None));
        {
            let slot = Arc::clone(&slot);
            d.set_recovery(move |dom: &Domain| {
                *slot.lock() = Some(RRef::new(dom, PanicAfter::new(0)));
            });
        }
        let mut rref = RRef::new(&d, PanicAfter::new(0));
        b.iter(|| {
            let err = rref.invoke_mut(|op| op.process(PacketBatch::new()).len());
            assert!(err.is_err());
            rref = slot.lock().take().expect("recovery ran");
        });
    });
}

criterion_group!(benches, bench_recovery);
criterion_main!(benches);
