//! Criterion counterpart of E2: one protected method call vs. a direct
//! call (paper: ~90 cycles of overhead).

use criterion::{criterion_group, criterion_main, Criterion};
use rbs_sfi::{DomainManager, RRef};

fn bench_calls(c: &mut Criterion) {
    let mut group = c.benchmark_group("remote_call");

    group.bench_function("direct", |b| {
        let mut counter = 0u64;
        b.iter(|| {
            counter = counter.wrapping_add(1);
            std::hint::black_box(counter)
        });
    });

    group.bench_function("rref_invoke_mut", |b| {
        let mgr = DomainManager::new();
        let d = mgr.create_domain("counter").unwrap();
        let rref = RRef::new(&d, 0u64);
        b.iter(|| {
            rref.invoke_mut(|v| {
                *v = v.wrapping_add(1);
                *v
            })
            .unwrap()
        });
    });

    group.bench_function("rref_invoke_shared", |b| {
        let mgr = DomainManager::new();
        let d = mgr.create_domain("counter").unwrap();
        let rref = RRef::new(&d, 7u64);
        b.iter(|| rref.invoke(|v| *v).unwrap());
    });

    group.finish();
}

criterion_group!(benches, bench_calls);
criterion_main!(benches);
