//! Criterion: cross-domain communication primitives side by side —
//! remote invocation vs. ownership-transferring channel send/recv.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rbs_sfi::{channel, DomainManager, RRef};

fn bench_channel(c: &mut Criterion) {
    let mut group = c.benchmark_group("cross_domain_comm");
    group.throughput(Throughput::Elements(1));

    group.bench_function("rref_invoke_push_pop", |b| {
        let mgr = DomainManager::new();
        let d = mgr.create_domain("sink").unwrap();
        let sink: RRef<Vec<u64>> = RRef::new(&d, Vec::with_capacity(64));
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            sink.invoke_mut(move |v| {
                v.push(i);
                v.pop()
            })
            .unwrap()
        });
    });

    group.bench_function("channel_send_recv", |b| {
        let mgr = DomainManager::new();
        let d = mgr.create_domain("consumer").unwrap();
        let (tx, rx) = channel::<u64>(&d, 64);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            tx.send(i).unwrap();
            rx.recv().unwrap()
        });
    });

    group.bench_function("channel_try_send_try_recv", |b| {
        let mgr = DomainManager::new();
        let d = mgr.create_domain("consumer").unwrap();
        let (tx, rx) = channel::<u64>(&d, 64);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            tx.try_send(i).unwrap();
            rx.try_recv().unwrap()
        });
    });

    group.finish();
}

criterion_group!(benches, bench_channel);
criterion_main!(benches);
