//! Criterion counterpart of E8: Maglev table construction and lookup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rbs_maglev::{Backend, MaglevTable};

fn backends(n: usize) -> Vec<Backend> {
    (0..n)
        .map(|i| Backend::new(format!("backend-{i}")))
        .collect()
}

fn bench_maglev(c: &mut Criterion) {
    let mut group = c.benchmark_group("maglev");

    for &n in &[10usize, 100] {
        group.bench_with_input(BenchmarkId::new("build_65537", n), &n, |b, &n| {
            b.iter(|| MaglevTable::new(backends(n), 65537).unwrap())
        });
    }

    let table = MaglevTable::new(backends(100), 65537).unwrap();
    group.bench_function("lookup", |b| {
        let mut h = 0u64;
        b.iter(|| {
            h = h.wrapping_add(0x9E3779B97F4A7C15);
            table.lookup(h)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_maglev);
criterion_main!(benches);
