//! Firewall rules.

use rbs_checkpoint::checkpointable;
use rbs_netfx::flow::FiveTuple;
use rbs_netfx::headers::IpProto;
use std::fmt;
use std::net::Ipv4Addr;

/// What to do with a matching packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Forward the packet.
    Allow,
    /// Drop the packet.
    Deny,
    /// Forward but mark for rate limiting at the given packets/sec.
    RateLimit(u64),
}

checkpointable!(
    enum Action {
        Allow,
        Deny,
        RateLimit(u64),
    }
);

/// One filter rule. The destination prefix is the trie index key; the
/// remaining fields are checked on candidate rules at lookup time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// Unique id; doubles as priority (lower id wins among equally
    /// specific matches).
    pub id: u32,
    /// Human-readable name.
    pub name: String,
    /// Destination network (host-order bits) and prefix length.
    pub dst_net: u32,
    /// Destination prefix length (0..=32).
    pub dst_len: u8,
    /// Source network (host-order bits) and prefix length.
    pub src_net: u32,
    /// Source prefix length (0..=32).
    pub src_len: u8,
    /// Destination port range, inclusive.
    pub dport_lo: u16,
    /// Destination port range, inclusive.
    pub dport_hi: u16,
    /// Transport protocol, `None` = any (stored as a raw protocol number
    /// so the rule stays checkpointable with the stock macro).
    pub proto: Option<u8>,
    /// The action to take.
    pub action: Action,
}

checkpointable!(struct Rule {
    id,
    name,
    dst_net,
    dst_len,
    src_net,
    src_len,
    dport_lo,
    dport_hi,
    proto,
    action,
});

impl Rule {
    /// A permissive rule matching everything to `dst` with the given
    /// action; refine with the builder methods.
    pub fn new(
        id: u32,
        name: impl Into<String>,
        dst: Ipv4Addr,
        dst_len: u8,
        action: Action,
    ) -> Rule {
        assert!(dst_len <= 32, "prefix length {dst_len} out of range");
        Rule {
            id,
            name: name.into(),
            dst_net: mask_net(u32::from(dst), dst_len),
            dst_len,
            src_net: 0,
            src_len: 0,
            dport_lo: 0,
            dport_hi: u16::MAX,
            proto: None,
            action,
        }
    }

    /// Restricts the source prefix.
    pub fn src(mut self, src: Ipv4Addr, src_len: u8) -> Rule {
        assert!(src_len <= 32, "prefix length {src_len} out of range");
        self.src_net = mask_net(u32::from(src), src_len);
        self.src_len = src_len;
        self
    }

    /// Restricts the destination port range (inclusive).
    pub fn dports(mut self, lo: u16, hi: u16) -> Rule {
        assert!(lo <= hi, "empty port range {lo}..={hi}");
        self.dport_lo = lo;
        self.dport_hi = hi;
        self
    }

    /// Restricts the transport protocol.
    pub fn proto(mut self, proto: IpProto) -> Rule {
        self.proto = Some(u8::from(proto));
        self
    }

    /// True when the rule's non-index fields accept this flow. The
    /// destination prefix is assumed already matched by trie position.
    pub fn matches_residual(&self, flow: &FiveTuple) -> bool {
        prefix_contains(self.src_net, self.src_len, u32::from(flow.src_ip))
            && (self.dport_lo..=self.dport_hi).contains(&flow.dst_port)
            && self.proto.is_none_or(|p| p == u8::from(flow.proto))
    }

    /// Full match check, including the destination prefix (used by the
    /// linear-scan reference implementation in tests).
    pub fn matches(&self, flow: &FiveTuple) -> bool {
        prefix_contains(self.dst_net, self.dst_len, u32::from(flow.dst_ip))
            && self.matches_residual(flow)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{} {}: dst {}/{} ports {}-{} -> {:?}",
            self.id,
            self.name,
            Ipv4Addr::from(self.dst_net),
            self.dst_len,
            self.dport_lo,
            self.dport_hi,
            self.action
        )
    }
}

/// Zeroes the host bits of `net` beyond `len`.
pub fn mask_net(net: u32, len: u8) -> u32 {
    if len == 0 {
        0
    } else {
        net & (u32::MAX << (32 - u32::from(len)))
    }
}

/// True when `addr` is inside `net/len`.
pub fn prefix_contains(net: u32, len: u8, addr: u32) -> bool {
    mask_net(addr, len) == net
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbs_checkpoint::{checkpoint, restore};

    fn flow(src: [u8; 4], dst: [u8; 4], dport: u16, proto: IpProto) -> FiveTuple {
        FiveTuple {
            src_ip: Ipv4Addr::from(src),
            dst_ip: Ipv4Addr::from(dst),
            src_port: 1000,
            dst_port: dport,
            proto,
        }
    }

    #[test]
    fn mask_and_contains() {
        assert_eq!(
            mask_net(u32::from(Ipv4Addr::new(10, 1, 2, 3)), 8),
            u32::from(Ipv4Addr::new(10, 0, 0, 0))
        );
        assert_eq!(mask_net(0xFFFF_FFFF, 0), 0);
        assert_eq!(mask_net(0x1234_5678, 32), 0x1234_5678);
        assert!(prefix_contains(
            u32::from(Ipv4Addr::new(10, 0, 0, 0)),
            8,
            u32::from(Ipv4Addr::new(10, 255, 0, 1))
        ));
        assert!(!prefix_contains(
            u32::from(Ipv4Addr::new(10, 0, 0, 0)),
            8,
            u32::from(Ipv4Addr::new(11, 0, 0, 1))
        ));
        assert!(prefix_contains(0, 0, u32::MAX), "/0 contains everything");
    }

    #[test]
    fn builder_and_matching() {
        let r = Rule::new(1, "web", Ipv4Addr::new(10, 0, 0, 0), 8, Action::Allow)
            .dports(80, 443)
            .proto(IpProto::Tcp)
            .src(Ipv4Addr::new(192, 168, 0, 0), 16);
        assert!(r.matches(&flow([192, 168, 1, 1], [10, 9, 8, 7], 80, IpProto::Tcp)));
        assert!(
            !r.matches(&flow([192, 168, 1, 1], [10, 9, 8, 7], 80, IpProto::Udp)),
            "wrong proto"
        );
        assert!(
            !r.matches(&flow([192, 168, 1, 1], [10, 9, 8, 7], 8080, IpProto::Tcp)),
            "port out of range"
        );
        assert!(
            !r.matches(&flow([172, 16, 1, 1], [10, 9, 8, 7], 80, IpProto::Tcp)),
            "wrong src"
        );
        assert!(
            !r.matches(&flow([192, 168, 1, 1], [11, 9, 8, 7], 80, IpProto::Tcp)),
            "wrong dst"
        );
    }

    #[test]
    fn any_proto_and_any_src_by_default() {
        let r = Rule::new(2, "any", Ipv4Addr::new(0, 0, 0, 0), 0, Action::Deny);
        assert!(r.matches(&flow([1, 1, 1, 1], [2, 2, 2, 2], 9, IpProto::Udp)));
        assert!(r.matches(&flow([3, 3, 3, 3], [4, 4, 4, 4], 65535, IpProto::Tcp)));
    }

    #[test]
    fn constructor_masks_host_bits() {
        let r = Rule::new(3, "m", Ipv4Addr::new(10, 1, 2, 3), 8, Action::Allow);
        assert_eq!(r.dst_net, u32::from(Ipv4Addr::new(10, 0, 0, 0)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_prefix_rejected() {
        Rule::new(1, "x", Ipv4Addr::UNSPECIFIED, 33, Action::Allow);
    }

    #[test]
    #[should_panic(expected = "empty port range")]
    fn inverted_ports_rejected() {
        Rule::new(1, "x", Ipv4Addr::UNSPECIFIED, 0, Action::Allow).dports(100, 10);
    }

    #[test]
    fn rule_checkpoints() {
        let r = Rule::new(
            7,
            "ckpt",
            Ipv4Addr::new(172, 16, 0, 0),
            12,
            Action::RateLimit(500),
        )
        .dports(53, 53)
        .proto(IpProto::Udp);
        let back: Rule = restore(&checkpoint(&r)).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn display_is_readable() {
        let r = Rule::new(1, "ssh", Ipv4Addr::new(10, 0, 0, 0), 8, Action::Deny).dports(22, 22);
        let s = r.to_string();
        assert!(
            s.contains("ssh") && s.contains("10.0.0.0/8") && s.contains("22-22"),
            "{s}"
        );
    }
}
