//! The firewall as a pipeline stage.
//!
//! Wraps [`FwTrie`] as a `rbs-netfx` [`Operator`] so it can run inside
//! the (optionally SFI-isolated) pipelines of §3, and exposes the
//! checkpoint hooks so a running firewall can be snapshotted and rolled
//! back — the §5 scenario end to end.

use crate::rule::Action;
use crate::trie::FwTrie;
use rbs_checkpoint::{checkpoint, restore, Checkpoint, SnapshotError};
use rbs_netfx::batch::PacketBatch;
use rbs_netfx::flow::FiveTuple;
use rbs_netfx::pipeline::Operator;

/// Packet-filtering pipeline stage backed by the rule trie.
pub struct FirewallOp {
    trie: FwTrie,
    /// Applied when no rule matches.
    default_action: Action,
    allowed: u64,
    denied: u64,
    rate_limited: u64,
}

impl FirewallOp {
    /// Wraps `trie` with a default action for unmatched packets.
    pub fn new(trie: FwTrie, default_action: Action) -> Self {
        Self {
            trie,
            default_action,
            allowed: 0,
            denied: 0,
            rate_limited: 0,
        }
    }

    /// The decision for one flow.
    pub fn decide(&self, flow: &FiveTuple) -> Action {
        self.trie
            .lookup(flow)
            .map(|r| r.action)
            .unwrap_or(self.default_action)
    }

    /// Read access to the rule database.
    pub fn trie(&self) -> &FwTrie {
        &self.trie
    }

    /// Mutable access to the rule database (control plane).
    pub fn trie_mut(&mut self) -> &mut FwTrie {
        &mut self.trie
    }

    /// Packets forwarded so far.
    pub fn allowed(&self) -> u64 {
        self.allowed
    }

    /// Packets dropped so far.
    pub fn denied(&self) -> u64 {
        self.denied
    }

    /// Packets forwarded under a rate-limit rule.
    pub fn rate_limited(&self) -> u64 {
        self.rate_limited
    }

    /// Snapshots the rule database (counters are data-path state, not
    /// configuration, and are not part of the checkpoint).
    pub fn checkpoint_rules(&self) -> Checkpoint {
        checkpoint(&self.trie)
    }

    /// Replaces the rule database from a checkpoint — §3's recovery
    /// function uses this to re-initialize a failed firewall domain.
    pub fn restore_rules(&mut self, cp: &Checkpoint) -> Result<(), SnapshotError> {
        self.trie = restore(cp)?;
        Ok(())
    }
}

impl Operator for FirewallOp {
    fn process(&mut self, batch: PacketBatch) -> PacketBatch {
        let mut out = PacketBatch::with_capacity(batch.len());
        for packet in batch {
            let action = match FiveTuple::of(&packet) {
                Ok(flow) => self.decide(&flow),
                // Non-flow traffic is dropped, like any default-deny box.
                Err(_) => Action::Deny,
            };
            match action {
                Action::Allow => {
                    self.allowed += 1;
                    out.push(packet);
                }
                Action::Deny => {
                    self.denied += 1;
                }
                Action::RateLimit(_) => {
                    self.rate_limited += 1;
                    out.push(packet);
                }
            }
        }
        out
    }

    fn name(&self) -> &str {
        "firewall"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::Rule;
    use rbs_netfx::headers::ethernet::MacAddr;
    use rbs_netfx::headers::IpProto;
    use rbs_netfx::packet::Packet;
    use std::net::Ipv4Addr;

    fn packet(dst: Ipv4Addr, dport: u16) -> Packet {
        Packet::build_udp(
            MacAddr::ZERO,
            MacAddr::ZERO,
            Ipv4Addr::new(1, 1, 1, 1),
            dst,
            999,
            dport,
            0,
        )
    }

    fn firewall() -> FirewallOp {
        let mut t = FwTrie::new();
        t.insert(
            Rule::new(1, "allow-dns", Ipv4Addr::new(10, 0, 0, 0), 8, Action::Allow).dports(53, 53),
        );
        t.insert(Rule::new(
            2,
            "deny-ten",
            Ipv4Addr::new(10, 0, 0, 0),
            8,
            Action::Deny,
        ));
        t.insert(
            Rule::new(
                3,
                "limit-web",
                Ipv4Addr::new(20, 0, 0, 0),
                8,
                Action::RateLimit(100),
            )
            .dports(80, 80)
            .proto(IpProto::Udp),
        );
        FirewallOp::new(t, Action::Deny)
    }

    #[test]
    fn filtering_by_action() {
        let mut fw = firewall();
        let batch: PacketBatch = vec![
            packet(Ipv4Addr::new(10, 1, 1, 1), 53), // allow (id 1, dns)
            packet(Ipv4Addr::new(10, 1, 1, 1), 80), // deny (id 2)
            packet(Ipv4Addr::new(20, 1, 1, 1), 80), // rate-limit (id 3)
            packet(Ipv4Addr::new(30, 1, 1, 1), 80), // default deny
        ]
        .into_iter()
        .collect();
        let out = fw.process(batch);
        assert_eq!(out.len(), 2);
        assert_eq!(fw.allowed(), 1);
        assert_eq!(fw.denied(), 2);
        assert_eq!(fw.rate_limited(), 1);
    }

    #[test]
    fn default_action_applies_when_no_match() {
        let mut t = FwTrie::new();
        t.insert(Rule::new(
            1,
            "r",
            Ipv4Addr::new(10, 0, 0, 0),
            8,
            Action::Deny,
        ));
        let mut fw = FirewallOp::new(t, Action::Allow);
        let out = fw.process(
            vec![packet(Ipv4Addr::new(99, 9, 9, 9), 1)]
                .into_iter()
                .collect(),
        );
        assert_eq!(out.len(), 1);
        assert_eq!(fw.allowed(), 1);
    }

    #[test]
    fn non_flow_traffic_dropped() {
        let mut fw = FirewallOp::new(FwTrie::new(), Action::Allow);
        let mut p = packet(Ipv4Addr::new(10, 0, 0, 1), 1);
        p.ipv4_mut().unwrap().set_protocol(IpProto::Icmp);
        let out = fw.process(vec![p].into_iter().collect());
        assert_eq!(out.len(), 0);
        assert_eq!(fw.denied(), 1);
    }

    #[test]
    fn checkpoint_rollback_cycle() {
        let mut fw = firewall();
        let cp = fw.checkpoint_rules();
        // Control plane mutates: everything to 30/8 allowed.
        fw.trie_mut().insert(Rule::new(
            4,
            "new",
            Ipv4Addr::new(30, 0, 0, 0),
            8,
            Action::Allow,
        ));
        let f = FiveTuple {
            src_ip: Ipv4Addr::new(1, 1, 1, 1),
            dst_ip: Ipv4Addr::new(30, 1, 1, 1),
            src_port: 9,
            dst_port: 9,
            proto: IpProto::Udp,
        };
        assert_eq!(fw.decide(&f), Action::Allow);
        fw.restore_rules(&cp).unwrap();
        assert_eq!(fw.decide(&f), Action::Deny, "rolled back to default deny");
    }

    #[test]
    fn operator_name() {
        assert_eq!(firewall().name(), "firewall");
    }
}
