//! The firewall as a pipeline stage.
//!
//! Wraps [`FwTrie`] as a `rbs-netfx` [`Operator`] so it can run inside
//! the (optionally SFI-isolated) pipelines of §3, and exposes the
//! checkpoint hooks so a running firewall can be snapshotted and rolled
//! back — the §5 scenario end to end.

use crate::rule::Action;
use crate::trie::FwTrie;
use rbs_checkpoint::{
    checkpoint, restore, Checkpoint, CheckpointCtx, Checkpointable, RestoreCtx, Snapshot,
    SnapshotError,
};
use rbs_netfx::batch::PacketBatch;
use rbs_netfx::flow::FiveTuple;
use rbs_netfx::pipeline::Operator;

/// Packet-filtering pipeline stage backed by the rule trie.
pub struct FirewallOp {
    trie: FwTrie,
    /// Applied when no rule matches.
    default_action: Action,
    allowed: u64,
    denied: u64,
    rate_limited: u64,
}

impl FirewallOp {
    /// Wraps `trie` with a default action for unmatched packets.
    pub fn new(trie: FwTrie, default_action: Action) -> Self {
        Self {
            trie,
            default_action,
            allowed: 0,
            denied: 0,
            rate_limited: 0,
        }
    }

    /// The decision for one flow.
    pub fn decide(&self, flow: &FiveTuple) -> Action {
        self.trie
            .lookup(flow)
            .map(|r| r.action)
            .unwrap_or(self.default_action)
    }

    /// Read access to the rule database.
    pub fn trie(&self) -> &FwTrie {
        &self.trie
    }

    /// Mutable access to the rule database (control plane).
    pub fn trie_mut(&mut self) -> &mut FwTrie {
        &mut self.trie
    }

    /// Packets forwarded so far.
    pub fn allowed(&self) -> u64 {
        self.allowed
    }

    /// Packets dropped so far.
    pub fn denied(&self) -> u64 {
        self.denied
    }

    /// Packets forwarded under a rate-limit rule.
    pub fn rate_limited(&self) -> u64 {
        self.rate_limited
    }

    /// Snapshots the rule database (counters are data-path state, not
    /// configuration, and are not part of the checkpoint).
    pub fn checkpoint_rules(&self) -> Checkpoint {
        checkpoint(&self.trie)
    }

    /// Replaces the rule database from a checkpoint — §3's recovery
    /// function uses this to re-initialize a failed firewall domain.
    pub fn restore_rules(&mut self, cp: &Checkpoint) -> Result<(), SnapshotError> {
        self.trie = restore(cp)?;
        Ok(())
    }
}

impl Operator for FirewallOp {
    fn process(&mut self, batch: PacketBatch) -> PacketBatch {
        let mut out = PacketBatch::with_capacity(batch.len());
        for packet in batch {
            let action = match FiveTuple::of(&packet) {
                Ok(flow) => self.decide(&flow),
                // Non-flow traffic is dropped, like any default-deny box.
                Err(_) => Action::Deny,
            };
            match action {
                Action::Allow => {
                    self.allowed += 1;
                    out.push(packet);
                }
                Action::Deny => {
                    self.denied += 1;
                }
                Action::RateLimit(_) => {
                    self.rate_limited += 1;
                    out.push(packet);
                }
            }
        }
        out
    }

    fn name(&self) -> &str {
        "firewall"
    }

    // The pipeline-level state hooks delegate to the trie's
    // `Checkpointable` impl inside the *shared* pipeline context, so
    // `CkArc`-aliased rules deduplicate across stages too. Counters stay
    // out, matching `checkpoint_rules`.
    fn checkpoint_state(&self, ctx: &mut CheckpointCtx) -> Option<Snapshot> {
        Some(self.trie.checkpoint(ctx))
    }

    fn restore_state(
        &mut self,
        snap: &Snapshot,
        ctx: &mut RestoreCtx<'_>,
    ) -> Result<(), SnapshotError> {
        self.trie = FwTrie::restore(snap, ctx)?;
        Ok(())
    }

    fn state_items(&self) -> u64 {
        self.trie.rule_refs() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::Rule;
    use rbs_netfx::headers::ethernet::MacAddr;
    use rbs_netfx::headers::IpProto;
    use rbs_netfx::packet::Packet;
    use std::net::Ipv4Addr;

    fn packet(dst: Ipv4Addr, dport: u16) -> Packet {
        Packet::build_udp(
            MacAddr::ZERO,
            MacAddr::ZERO,
            Ipv4Addr::new(1, 1, 1, 1),
            dst,
            999,
            dport,
            0,
        )
    }

    fn firewall() -> FirewallOp {
        let mut t = FwTrie::new();
        t.insert(
            Rule::new(1, "allow-dns", Ipv4Addr::new(10, 0, 0, 0), 8, Action::Allow).dports(53, 53),
        );
        t.insert(Rule::new(
            2,
            "deny-ten",
            Ipv4Addr::new(10, 0, 0, 0),
            8,
            Action::Deny,
        ));
        t.insert(
            Rule::new(
                3,
                "limit-web",
                Ipv4Addr::new(20, 0, 0, 0),
                8,
                Action::RateLimit(100),
            )
            .dports(80, 80)
            .proto(IpProto::Udp),
        );
        FirewallOp::new(t, Action::Deny)
    }

    #[test]
    fn filtering_by_action() {
        let mut fw = firewall();
        let batch: PacketBatch = vec![
            packet(Ipv4Addr::new(10, 1, 1, 1), 53), // allow (id 1, dns)
            packet(Ipv4Addr::new(10, 1, 1, 1), 80), // deny (id 2)
            packet(Ipv4Addr::new(20, 1, 1, 1), 80), // rate-limit (id 3)
            packet(Ipv4Addr::new(30, 1, 1, 1), 80), // default deny
        ]
        .into_iter()
        .collect();
        let out = fw.process(batch);
        assert_eq!(out.len(), 2);
        assert_eq!(fw.allowed(), 1);
        assert_eq!(fw.denied(), 2);
        assert_eq!(fw.rate_limited(), 1);
    }

    #[test]
    fn default_action_applies_when_no_match() {
        let mut t = FwTrie::new();
        t.insert(Rule::new(
            1,
            "r",
            Ipv4Addr::new(10, 0, 0, 0),
            8,
            Action::Deny,
        ));
        let mut fw = FirewallOp::new(t, Action::Allow);
        let out = fw.process(
            vec![packet(Ipv4Addr::new(99, 9, 9, 9), 1)]
                .into_iter()
                .collect(),
        );
        assert_eq!(out.len(), 1);
        assert_eq!(fw.allowed(), 1);
    }

    #[test]
    fn non_flow_traffic_dropped() {
        let mut fw = FirewallOp::new(FwTrie::new(), Action::Allow);
        let mut p = packet(Ipv4Addr::new(10, 0, 0, 1), 1);
        p.ipv4_mut().unwrap().set_protocol(IpProto::Icmp);
        let out = fw.process(vec![p].into_iter().collect());
        assert_eq!(out.len(), 0);
        assert_eq!(fw.denied(), 1);
    }

    #[test]
    fn checkpoint_rollback_cycle() {
        let mut fw = firewall();
        let cp = fw.checkpoint_rules();
        // Control plane mutates: everything to 30/8 allowed.
        fw.trie_mut().insert(Rule::new(
            4,
            "new",
            Ipv4Addr::new(30, 0, 0, 0),
            8,
            Action::Allow,
        ));
        let f = FiveTuple {
            src_ip: Ipv4Addr::new(1, 1, 1, 1),
            dst_ip: Ipv4Addr::new(30, 1, 1, 1),
            src_port: 9,
            dst_port: 9,
            proto: IpProto::Udp,
        };
        assert_eq!(fw.decide(&f), Action::Allow);
        fw.restore_rules(&cp).unwrap();
        assert_eq!(fw.decide(&f), Action::Deny, "rolled back to default deny");
    }

    #[test]
    fn operator_name() {
        assert_eq!(firewall().name(), "firewall");
    }

    #[test]
    fn pipeline_state_hooks_rebuild_a_warm_firewall() {
        use rbs_netfx::pipeline::PipelineSpec;

        let spec = PipelineSpec::new().stage(|| FirewallOp::new(FwTrie::new(), Action::Deny));
        let live = spec.build();
        assert_eq!(live.state_items(), 0);

        // Control plane installs rules into the *live* pipeline only.
        // (The spec's factory still builds empty firewalls — exactly the
        // state a cold restart would lose.)
        let stateless_replica = spec.build();
        assert_eq!(stateless_replica.state_items(), 0);
        drop(stateless_replica);
        // No mutable stage access on Pipeline; drive state through a
        // fresh op instead and checkpoint at the operator level.
        let mut fw = firewall();
        fw.trie_mut().insert(Rule::new(
            9,
            "extra",
            Ipv4Addr::new(30, 0, 0, 0),
            8,
            Action::Allow,
        ));
        let rules = fw.trie().rule_refs();
        assert!(rules >= 4);

        let spec2 = {
            let seed = fw.checkpoint_rules();
            PipelineSpec::new().stage(move || {
                let mut op = FirewallOp::new(FwTrie::new(), Action::Deny);
                op.restore_rules(&seed).unwrap();
                op
            })
        };
        let warm = spec2.build();
        assert_eq!(warm.state_items(), rules as u64);

        // And the pipeline-level export/import path round-trips the same
        // rule database.
        let cp = warm.export_state();
        let replica = spec2.build_with_state(&cp).unwrap();
        assert_eq!(replica.state_items(), rules as u64);
        assert_eq!(replica.export_state().root, cp.root);
    }
}
