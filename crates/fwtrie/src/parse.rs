//! A textual firewall configuration format.
//!
//! One rule per line, iptables-flavoured but tiny:
//!
//! ```text
//! # comments and blank lines are ignored
//! allow dst 10.0.0.0/8 dport 80-443 proto tcp        # web in
//! deny  dst 10.0.0.0/8                               # default for the net
//! limit 500 dst 20.0.0.0/8 src 172.16.0.0/12         # rate-limited peering
//! ```
//!
//! Rule ids are assigned in file order (earlier = higher priority at
//! equal prefix length), so a config file reads top-down like most
//! firewall languages.

use crate::rule::{Action, Rule};
use crate::trie::FwTrie;
use rbs_netfx::headers::IpProto;
use std::fmt;
use std::net::Ipv4Addr;

/// A configuration parse error with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// Line the error occurred on.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ConfigError {}

fn err(line: usize, msg: impl Into<String>) -> ConfigError {
    ConfigError {
        line,
        msg: msg.into(),
    }
}

fn parse_prefix(line: usize, s: &str) -> Result<(Ipv4Addr, u8), ConfigError> {
    let (addr, len) = match s.split_once('/') {
        Some((a, l)) => (
            a,
            l.parse::<u8>()
                .map_err(|_| err(line, format!("bad prefix length {l:?}")))?,
        ),
        None => (s, 32),
    };
    if len > 32 {
        return Err(err(line, format!("prefix length {len} out of range")));
    }
    let ip: Ipv4Addr = addr
        .parse()
        .map_err(|_| err(line, format!("bad IPv4 address {addr:?}")))?;
    Ok((ip, len))
}

fn parse_port_range(line: usize, s: &str) -> Result<(u16, u16), ConfigError> {
    let (lo, hi) = match s.split_once('-') {
        Some((a, b)) => (
            a.parse::<u16>()
                .map_err(|_| err(line, format!("bad port {a:?}")))?,
            b.parse::<u16>()
                .map_err(|_| err(line, format!("bad port {b:?}")))?,
        ),
        None => {
            let p = s
                .parse::<u16>()
                .map_err(|_| err(line, format!("bad port {s:?}")))?;
            (p, p)
        }
    };
    if lo > hi {
        return Err(err(line, format!("empty port range {lo}-{hi}")));
    }
    Ok((lo, hi))
}

/// Parses one rule line (without comments); `id` is its priority.
fn parse_rule(line_num: usize, id: u32, line: &str) -> Result<Rule, ConfigError> {
    let mut tokens = line.split_whitespace();
    let action = match tokens.next() {
        Some("allow") => Action::Allow,
        Some("deny") => Action::Deny,
        Some("limit") => {
            let pps = tokens
                .next()
                .ok_or_else(|| err(line_num, "limit needs a packets/sec argument"))?;
            Action::RateLimit(
                pps.parse::<u64>()
                    .map_err(|_| err(line_num, format!("bad rate {pps:?}")))?,
            )
        }
        Some(other) => {
            return Err(err(line_num, format!("unknown action {other:?}")));
        }
        None => return Err(err(line_num, "empty rule")),
    };

    let mut dst: Option<(Ipv4Addr, u8)> = None;
    let mut src: Option<(Ipv4Addr, u8)> = None;
    let mut dports: Option<(u16, u16)> = None;
    let mut proto: Option<IpProto> = None;

    while let Some(key) = tokens.next() {
        let value = tokens
            .next()
            .ok_or_else(|| err(line_num, format!("{key} needs a value")))?;
        match key {
            "dst" => dst = Some(parse_prefix(line_num, value)?),
            "src" => src = Some(parse_prefix(line_num, value)?),
            "dport" => dports = Some(parse_port_range(line_num, value)?),
            "proto" => {
                proto = Some(match value {
                    "tcp" => IpProto::Tcp,
                    "udp" => IpProto::Udp,
                    "icmp" => IpProto::Icmp,
                    other => {
                        return Err(err(line_num, format!("unknown protocol {other:?}")));
                    }
                });
            }
            other => return Err(err(line_num, format!("unknown keyword {other:?}"))),
        }
    }

    let (dst_ip, dst_len) = dst.ok_or_else(|| err(line_num, "rule needs a dst prefix"))?;
    let mut rule = Rule::new(id, format!("line-{line_num}"), dst_ip, dst_len, action);
    if let Some((ip, len)) = src {
        rule = rule.src(ip, len);
    }
    if let Some((lo, hi)) = dports {
        rule = rule.dports(lo, hi);
    }
    if let Some(p) = proto {
        rule = rule.proto(p);
    }
    Ok(rule)
}

/// Parses a whole configuration into rules (file order = priority order).
pub fn parse_rules(config: &str) -> Result<Vec<Rule>, ConfigError> {
    let mut rules = Vec::new();
    for (i, raw) in config.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let id = rules.len() as u32;
        rules.push(parse_rule(i + 1, id, line)?);
    }
    Ok(rules)
}

/// Parses a configuration straight into a lookup trie.
pub fn parse_config(config: &str) -> Result<FwTrie, ConfigError> {
    let mut trie = FwTrie::new();
    for rule in parse_rules(config)? {
        trie.insert(rule);
    }
    Ok(trie)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbs_netfx::flow::FiveTuple;

    fn flow(dst: [u8; 4], dport: u16, proto: IpProto) -> FiveTuple {
        FiveTuple {
            src_ip: Ipv4Addr::new(172, 16, 1, 1),
            dst_ip: Ipv4Addr::from(dst),
            src_port: 999,
            dst_port: dport,
            proto,
        }
    }

    const SAMPLE: &str = "
        # corporate egress policy
        allow dst 10.0.0.0/8 dport 80-443 proto tcp
        allow dst 10.0.0.0/8 dport 53 proto udp      # dns
        limit 500 dst 20.0.0.0/8 src 172.16.0.0/12
        deny  dst 0.0.0.0/0
    ";

    #[test]
    fn sample_config_parses_and_classifies() {
        let trie = parse_config(SAMPLE).unwrap();
        assert_eq!(trie.rule_refs(), 4);
        assert_eq!(
            trie.lookup(&flow([10, 1, 1, 1], 443, IpProto::Tcp))
                .unwrap()
                .action,
            Action::Allow
        );
        assert_eq!(
            trie.lookup(&flow([10, 1, 1, 1], 53, IpProto::Udp))
                .unwrap()
                .action,
            Action::Allow
        );
        assert_eq!(
            trie.lookup(&flow([20, 1, 1, 1], 9, IpProto::Udp))
                .unwrap()
                .action,
            Action::RateLimit(500)
        );
        // Port 22 to 10/8 falls through to the catch-all deny.
        assert_eq!(
            trie.lookup(&flow([10, 1, 1, 1], 22, IpProto::Tcp))
                .unwrap()
                .action,
            Action::Deny
        );
    }

    #[test]
    fn file_order_is_priority_order() {
        let rules = parse_rules("deny dst 10.0.0.0/8\nallow dst 10.0.0.0/8").unwrap();
        assert_eq!(rules[0].id, 0);
        assert_eq!(rules[1].id, 1);
        let trie = parse_config("deny dst 10.0.0.0/8\nallow dst 10.0.0.0/8").unwrap();
        // Equal specificity: the earlier (lower-id) rule wins.
        assert_eq!(
            trie.lookup(&flow([10, 0, 0, 1], 1, IpProto::Udp))
                .unwrap()
                .action,
            Action::Deny
        );
    }

    #[test]
    fn host_rule_without_slash() {
        let rules = parse_rules("deny dst 8.8.8.8").unwrap();
        assert_eq!(rules[0].dst_len, 32);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_rules("allow dst 10.0.0.0/8\nbogus dst 1.2.3.4").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.msg.contains("unknown action"), "{e}");

        let e = parse_rules("allow dst 10.0.0.0/40").unwrap_err();
        assert!(e.msg.contains("out of range"), "{e}");

        let e = parse_rules("allow dport 80").unwrap_err();
        assert!(e.msg.contains("needs a dst prefix"), "{e}");

        let e = parse_rules("allow dst 10.0.0.0/8 dport 90-80").unwrap_err();
        assert!(e.msg.contains("empty port range"), "{e}");

        let e = parse_rules("limit x dst 10.0.0.0/8").unwrap_err();
        assert!(e.msg.contains("bad rate"), "{e}");

        let e = parse_rules("allow dst 10.0.0.0/8 proto gre").unwrap_err();
        assert!(e.msg.contains("unknown protocol"), "{e}");

        let e = parse_rules("allow dst").unwrap_err();
        assert!(e.msg.contains("needs a value"), "{e}");
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let rules = parse_rules("\n# only a comment\n\nallow dst 1.0.0.0/8 # trailing\n").unwrap();
        assert_eq!(rules.len(), 1);
    }

    #[test]
    fn parsed_rules_checkpoint() {
        use rbs_checkpoint::{checkpoint, restore};
        let trie = parse_config(SAMPLE).unwrap();
        let back: FwTrie = restore(&checkpoint(&trie)).unwrap();
        assert_eq!(back.rule_refs(), trie.rule_refs());
    }
}
