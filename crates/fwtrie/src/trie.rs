//! The longest-prefix-match rule trie (Figure 3a).
//!
//! A binary trie over destination-address bits. Rules live behind
//! [`CkArc`]; the *same* rule object can be attached under several
//! prefixes ([`FwTrie::alias_at`]), which is exactly the sharing that
//! makes naïve checkpoint traversal duplicate rules (Figure 3b) and that
//! [`rbs_checkpoint`]'s epoch-flag dedup handles in O(1) per alias.
//!
//! Lookup is classic LPM: walk the destination bits, remember the most
//! specific node whose rule list matches the flow's residual fields,
//! tie-break equal depth by rule id.

use crate::rule::{mask_net, Rule};
use rbs_checkpoint::{CheckpointCtx, Checkpointable, CkArc, RestoreCtx, Snapshot, SnapshotError};
use rbs_netfx::flow::FiveTuple;
use std::net::Ipv4Addr;

#[derive(Debug, Default)]
struct Node {
    zero: Option<Box<Node>>,
    one: Option<Box<Node>>,
    rules: Vec<CkArc<Rule>>,
}

impl Checkpointable for Node {
    fn checkpoint(&self, ctx: &mut CheckpointCtx) -> Snapshot {
        Snapshot::Seq(vec![
            match &self.zero {
                Some(n) => Snapshot::Opt(Some(Box::new(n.checkpoint(ctx)))),
                None => Snapshot::Opt(None),
            },
            match &self.one {
                Some(n) => Snapshot::Opt(Some(Box::new(n.checkpoint(ctx)))),
                None => Snapshot::Opt(None),
            },
            self.rules.checkpoint(ctx),
        ])
    }

    fn restore(snap: &Snapshot, ctx: &mut RestoreCtx<'_>) -> Result<Self, SnapshotError> {
        let Snapshot::Seq(items) = snap else {
            return Err(SnapshotError::TypeMismatch {
                expected: "trie node",
                found: "non-seq",
            });
        };
        if items.len() != 3 {
            return Err(SnapshotError::WrongLength {
                expected: 3,
                got: items.len(),
            });
        }
        let restore_child =
            |s: &Snapshot, ctx: &mut RestoreCtx<'_>| -> Result<Option<Box<Node>>, SnapshotError> {
                match s {
                    Snapshot::Opt(None) => Ok(None),
                    Snapshot::Opt(Some(inner)) => Ok(Some(Box::new(Node::restore(inner, ctx)?))),
                    other => Err(SnapshotError::TypeMismatch {
                        expected: "optional child",
                        found: if matches!(other, Snapshot::Seq(_)) {
                            "seq"
                        } else {
                            "other"
                        },
                    }),
                }
            };
        Ok(Node {
            zero: restore_child(&items[0], ctx)?,
            one: restore_child(&items[1], ctx)?,
            rules: Vec::<CkArc<Rule>>::restore(&items[2], ctx)?,
        })
    }
}

/// The firewall rule database: a binary LPM trie over destination
/// addresses with `CkArc`-shared rules.
#[derive(Debug, Default)]
pub struct FwTrie {
    root: Node,
    rule_refs: usize,
}

impl FwTrie {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts `rule` under its own destination prefix, returning the
    /// shared handle (use it with [`FwTrie::alias_at`] to attach the same
    /// rule elsewhere).
    pub fn insert(&mut self, rule: Rule) -> CkArc<Rule> {
        let handle = CkArc::new(rule);
        let (net, len) = (handle.dst_net, handle.dst_len);
        self.attach(net, len, handle.clone());
        handle
    }

    /// Attaches an existing (possibly already attached) rule under an
    /// additional prefix — the Figure 3a sharing.
    pub fn alias_at(&mut self, net: Ipv4Addr, len: u8, rule: CkArc<Rule>) {
        assert!(len <= 32, "prefix length {len} out of range");
        self.attach(mask_net(u32::from(net), len), len, rule);
    }

    fn attach(&mut self, net: u32, len: u8, rule: CkArc<Rule>) {
        let mut node = &mut self.root;
        for depth in 0..len {
            let bit = (net >> (31 - u32::from(depth))) & 1;
            let child = if bit == 0 {
                &mut node.zero
            } else {
                &mut node.one
            };
            node = child.get_or_insert_with(Box::default);
        }
        node.rules.push(rule);
        self.rule_refs += 1;
    }

    /// Looks up the best rule for `flow`: the deepest (most specific)
    /// matching prefix; equal depth resolved by smallest rule id.
    pub fn lookup(&self, flow: &FiveTuple) -> Option<&CkArc<Rule>> {
        let dst = u32::from(flow.dst_ip);
        let mut best: Option<&CkArc<Rule>> = None;
        let mut node = Some(&self.root);
        let mut depth = 0u8;
        while let Some(n) = node {
            // Candidates at this depth: the prefix matched by position.
            let candidate = n
                .rules
                .iter()
                .filter(|r| r.matches_residual(flow))
                .min_by_key(|r| r.id);
            if candidate.is_some() {
                // Deeper nodes are visited later, so overwriting keeps
                // the longest prefix.
                best = candidate;
            }
            if depth == 32 {
                break;
            }
            let bit = (dst >> (31 - u32::from(depth))) & 1;
            node = if bit == 0 {
                n.zero.as_deref()
            } else {
                n.one.as_deref()
            };
            depth += 1;
        }
        best
    }

    /// Removes every attachment of the rule with id `id` (all aliases),
    /// pruning emptied trie nodes. Returns how many references were
    /// removed.
    pub fn remove_rule(&mut self, id: u32) -> usize {
        fn walk(node: &mut Node, id: u32) -> usize {
            let before = node.rules.len();
            node.rules.retain(|r| r.id != id);
            let mut removed = before - node.rules.len();
            for child in [&mut node.zero, &mut node.one] {
                if let Some(c) = child {
                    removed += walk(c, id);
                    if c.rules.is_empty() && c.zero.is_none() && c.one.is_none() {
                        *child = None;
                    }
                }
            }
            removed
        }
        let removed = walk(&mut self.root, id);
        self.rule_refs -= removed;
        removed
    }

    /// Number of rule *references* in the trie (aliases included).
    pub fn rule_refs(&self) -> usize {
        self.rule_refs
    }

    /// Number of trie nodes.
    pub fn node_count(&self) -> usize {
        fn count(n: &Node) -> usize {
            1 + n.zero.as_deref().map_or(0, count) + n.one.as_deref().map_or(0, count)
        }
        count(&self.root)
    }

    /// All rule references, depth-first (aliased rules appear once per
    /// attachment — the traversal a naïve checkpointer would make).
    pub fn iter_refs(&self) -> Vec<&CkArc<Rule>> {
        fn walk<'a>(n: &'a Node, out: &mut Vec<&'a CkArc<Rule>>) {
            out.extend(n.rules.iter());
            if let Some(z) = &n.zero {
                walk(z, out);
            }
            if let Some(o) = &n.one {
                walk(o, out);
            }
        }
        let mut out = Vec::new();
        walk(&self.root, &mut out);
        out
    }
}

impl Checkpointable for FwTrie {
    fn checkpoint(&self, ctx: &mut CheckpointCtx) -> Snapshot {
        Snapshot::Seq(vec![
            self.root.checkpoint(ctx),
            Snapshot::UInt(self.rule_refs as u64),
        ])
    }

    fn restore(snap: &Snapshot, ctx: &mut RestoreCtx<'_>) -> Result<Self, SnapshotError> {
        let Snapshot::Seq(items) = snap else {
            return Err(SnapshotError::TypeMismatch {
                expected: "fwtrie",
                found: "non-seq",
            });
        };
        if items.len() != 2 {
            return Err(SnapshotError::WrongLength {
                expected: 2,
                got: items.len(),
            });
        }
        let Snapshot::UInt(refs) = items[1] else {
            return Err(SnapshotError::TypeMismatch {
                expected: "rule_refs",
                found: "non-uint",
            });
        };
        Ok(FwTrie {
            root: Node::restore(&items[0], ctx)?,
            rule_refs: refs as usize,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::Action;
    use proptest::prelude::*;
    use rbs_checkpoint::{checkpoint, checkpoint_with_mode, restore, DedupMode};
    use rbs_netfx::headers::IpProto;

    fn flow(dst: [u8; 4], dport: u16) -> FiveTuple {
        FiveTuple {
            src_ip: Ipv4Addr::new(172, 16, 0, 1),
            dst_ip: Ipv4Addr::from(dst),
            src_port: 1000,
            dst_port: dport,
            proto: IpProto::Udp,
        }
    }

    fn sample_trie() -> FwTrie {
        let mut t = FwTrie::new();
        t.insert(Rule::new(
            1,
            "ten-net",
            Ipv4Addr::new(10, 0, 0, 0),
            8,
            Action::Allow,
        ));
        t.insert(Rule::new(
            2,
            "ten-one",
            Ipv4Addr::new(10, 1, 0, 0),
            16,
            Action::Deny,
        ));
        t.insert(
            Rule::new(3, "dns-only", Ipv4Addr::new(10, 1, 1, 0), 24, Action::Allow).dports(53, 53),
        );
        t
    }

    #[test]
    fn longest_prefix_wins() {
        let t = sample_trie();
        assert_eq!(t.lookup(&flow([10, 2, 0, 1], 80)).unwrap().id, 1);
        assert_eq!(t.lookup(&flow([10, 1, 9, 9], 80)).unwrap().id, 2);
        assert_eq!(t.lookup(&flow([10, 1, 1, 9], 53)).unwrap().id, 3);
        // Port 80 fails rule 3's residual; falls back to /16.
        assert_eq!(t.lookup(&flow([10, 1, 1, 9], 80)).unwrap().id, 2);
        assert!(t.lookup(&flow([11, 0, 0, 1], 80)).is_none());
    }

    #[test]
    fn same_depth_tie_breaks_by_id() {
        let mut t = FwTrie::new();
        t.insert(Rule::new(
            9,
            "b",
            Ipv4Addr::new(10, 0, 0, 0),
            8,
            Action::Deny,
        ));
        t.insert(Rule::new(
            2,
            "a",
            Ipv4Addr::new(10, 0, 0, 0),
            8,
            Action::Allow,
        ));
        assert_eq!(t.lookup(&flow([10, 5, 5, 5], 1)).unwrap().id, 2);
    }

    #[test]
    fn default_route_matches_everything() {
        let mut t = FwTrie::new();
        t.insert(Rule::new(
            99,
            "default-deny",
            Ipv4Addr::UNSPECIFIED,
            0,
            Action::Deny,
        ));
        assert_eq!(t.lookup(&flow([8, 8, 8, 8], 443)).unwrap().id, 99);
    }

    #[test]
    fn full_length_prefix() {
        let mut t = FwTrie::new();
        t.insert(Rule::new(
            1,
            "host",
            Ipv4Addr::new(10, 0, 0, 1),
            32,
            Action::Deny,
        ));
        assert_eq!(t.lookup(&flow([10, 0, 0, 1], 1)).unwrap().id, 1);
        assert!(t.lookup(&flow([10, 0, 0, 2], 1)).is_none());
    }

    #[test]
    fn aliasing_shares_rule_objects() {
        let mut t = FwTrie::new();
        let shared = t.insert(Rule::new(
            1,
            "shared",
            Ipv4Addr::new(10, 0, 0, 0),
            8,
            Action::Allow,
        ));
        t.alias_at(Ipv4Addr::new(192, 168, 0, 0), 16, shared.clone());
        assert_eq!(t.rule_refs(), 2);
        let a = t.lookup(&flow([10, 1, 1, 1], 1)).unwrap();
        let b = t.lookup(&flow([192, 168, 1, 1], 1)).unwrap();
        assert!(CkArc::ptr_eq(a, b), "both prefixes reach the same object");
        assert_eq!(CkArc::strong_count(&shared), 3);
    }

    /// Figure 3: checkpointing the shared-rule database makes exactly one
    /// copy of the shared rule; naïve traversal makes one per leaf.
    #[test]
    fn figure3_dedup_vs_naive() {
        let mut t = FwTrie::new();
        let shared = t.insert(Rule::new(
            1,
            "r1",
            Ipv4Addr::new(10, 0, 0, 0),
            8,
            Action::Allow,
        ));
        t.alias_at(Ipv4Addr::new(192, 168, 0, 0), 16, shared.clone());
        t.alias_at(Ipv4Addr::new(172, 16, 0, 0), 12, shared);
        t.insert(Rule::new(
            2,
            "r2",
            Ipv4Addr::new(8, 8, 8, 0),
            24,
            Action::Deny,
        ));

        let dedup = checkpoint(&t);
        assert_eq!(dedup.stats.shared_copied, 2, "two distinct rules");
        assert_eq!(dedup.stats.shared_hits, 2, "two extra aliases of r1");

        let naive = checkpoint_with_mode(&t, DedupMode::None);
        assert_eq!(naive.stats.duplicate_copies, 4, "one copy per reference");
        assert!(naive.total_nodes() > dedup.total_nodes());
    }

    #[test]
    fn restore_preserves_sharing_and_semantics() {
        let mut t = FwTrie::new();
        let shared = t.insert(Rule::new(
            1,
            "r1",
            Ipv4Addr::new(10, 0, 0, 0),
            8,
            Action::Allow,
        ));
        t.alias_at(Ipv4Addr::new(192, 168, 0, 0), 16, shared);
        t.insert(Rule::new(2, "dns", Ipv4Addr::new(10, 1, 0, 0), 16, Action::Deny).dports(53, 53));

        let cp = checkpoint(&t);
        let back: FwTrie = restore(&cp).unwrap();
        assert_eq!(back.rule_refs(), t.rule_refs());
        assert_eq!(back.node_count(), t.node_count());
        // Same decisions.
        for (dst, port) in [
            ([10, 1, 0, 1], 53u16),
            ([10, 2, 0, 1], 80),
            ([192, 168, 0, 9], 1),
            ([9, 9, 9, 9], 9),
        ] {
            let orig = t.lookup(&flow(dst, port)).map(|r| r.id);
            let rest = back.lookup(&flow(dst, port)).map(|r| r.id);
            assert_eq!(orig, rest, "dst {dst:?} port {port}");
        }
        // Sharing reconstructed.
        let a = back.lookup(&flow([10, 5, 5, 5], 1)).unwrap();
        let b = back.lookup(&flow([192, 168, 1, 1], 1)).unwrap();
        assert!(CkArc::ptr_eq(a, b));
    }

    #[test]
    fn restore_after_mutation_rolls_back() {
        let mut t = sample_trie();
        let cp = checkpoint(&t);
        t.insert(Rule::new(
            50,
            "new",
            Ipv4Addr::new(99, 0, 0, 0),
            8,
            Action::Deny,
        ));
        assert!(t.lookup(&flow([99, 1, 1, 1], 1)).is_some());
        let back: FwTrie = restore(&cp).unwrap();
        assert!(
            back.lookup(&flow([99, 1, 1, 1], 1)).is_none(),
            "rollback to snapshot"
        );
    }

    #[test]
    fn remove_rule_prunes_all_aliases_and_nodes() {
        let mut t = FwTrie::new();
        let shared = t.insert(Rule::new(
            1,
            "shared",
            Ipv4Addr::new(10, 0, 0, 0),
            8,
            Action::Allow,
        ));
        t.alias_at(Ipv4Addr::new(192, 168, 0, 0), 16, shared.clone());
        t.insert(Rule::new(
            2,
            "other",
            Ipv4Addr::new(20, 0, 0, 0),
            8,
            Action::Deny,
        ));
        let nodes_before = t.node_count();

        assert_eq!(t.remove_rule(1), 2, "both attachments removed");
        assert_eq!(t.rule_refs(), 1);
        assert!(t.lookup(&flow([10, 1, 1, 1], 1)).is_none());
        assert!(t.lookup(&flow([192, 168, 1, 1], 1)).is_none());
        assert_eq!(t.lookup(&flow([20, 1, 1, 1], 1)).unwrap().id, 2);
        assert!(t.node_count() < nodes_before, "emptied branches pruned");
        // The caller's handle keeps the object alive; the trie let go.
        assert_eq!(CkArc::strong_count(&shared), 1);

        assert_eq!(t.remove_rule(99), 0, "unknown id is a no-op");
    }

    #[test]
    fn remove_then_reinsert_same_prefix() {
        let mut t = FwTrie::new();
        t.insert(Rule::new(
            1,
            "a",
            Ipv4Addr::new(10, 0, 0, 0),
            8,
            Action::Deny,
        ));
        t.remove_rule(1);
        t.insert(Rule::new(
            3,
            "b",
            Ipv4Addr::new(10, 0, 0, 0),
            8,
            Action::Allow,
        ));
        assert_eq!(t.lookup(&flow([10, 1, 1, 1], 1)).unwrap().id, 3);
    }

    #[test]
    fn iter_refs_visits_aliases() {
        let mut t = FwTrie::new();
        let shared = t.insert(Rule::new(
            1,
            "s",
            Ipv4Addr::new(10, 0, 0, 0),
            8,
            Action::Allow,
        ));
        t.alias_at(Ipv4Addr::new(20, 0, 0, 0), 8, shared);
        let refs = t.iter_refs();
        assert_eq!(refs.len(), 2);
        assert!(CkArc::ptr_eq(refs[0], refs[1]));
    }

    #[test]
    fn node_count_grows_with_prefix_depth() {
        let mut t = FwTrie::new();
        assert_eq!(t.node_count(), 1);
        t.insert(Rule::new(
            1,
            "r",
            Ipv4Addr::new(128, 0, 0, 0),
            1,
            Action::Allow,
        ));
        assert_eq!(t.node_count(), 2);
        t.insert(Rule::new(
            2,
            "r2",
            Ipv4Addr::new(128, 0, 0, 0),
            3,
            Action::Allow,
        ));
        assert_eq!(t.node_count(), 4);
    }

    proptest! {
        /// Trie lookup agrees with a naive linear scan over all rules
        /// (most specific prefix, then lowest id).
        #[test]
        fn lookup_matches_linear_scan(
            rules in proptest::collection::vec(
                (any::<u32>(), 0u8..=32, any::<u16>(), any::<u16>(), 1u32..1000),
                1..40,
            ),
            dst in any::<u32>(),
            dport in any::<u16>(),
        ) {
            let mut t = FwTrie::new();
            let mut all = Vec::new();
            for (i, (net, len, lo, hi, _salt)) in rules.iter().enumerate() {
                let (lo, hi) = (*lo.min(hi), *lo.max(hi));
                let r = Rule::new(i as u32, format!("r{i}"), Ipv4Addr::from(*net), *len, Action::Allow)
                    .dports(lo, hi);
                all.push(r.clone());
                t.insert(r);
            }
            let f = flow(dst.to_be_bytes(), dport);
            let trie_best = t.lookup(&f).map(|r| r.id);
            let scan_best = all
                .iter()
                .filter(|r| r.matches(&f))
                .max_by(|a, b| a.dst_len.cmp(&b.dst_len).then(b.id.cmp(&a.id)))
                .map(|r| r.id);
            prop_assert_eq!(trie_best, scan_best);
        }

        /// Checkpoint/restore is semantics-preserving on random tries.
        #[test]
        fn checkpoint_restore_preserves_lookups(
            rules in proptest::collection::vec((any::<u32>(), 0u8..=32), 1..20),
            probes in proptest::collection::vec(any::<u32>(), 1..20),
        ) {
            let mut t = FwTrie::new();
            for (i, (net, len)) in rules.iter().enumerate() {
                t.insert(Rule::new(i as u32, format!("r{i}"), Ipv4Addr::from(*net), *len, Action::Allow));
            }
            let back: FwTrie = restore(&checkpoint(&t)).unwrap();
            for dst in probes {
                let f = flow(dst.to_be_bytes(), 80);
                prop_assert_eq!(
                    t.lookup(&f).map(|r| r.id),
                    back.lookup(&f).map(|r| r.id)
                );
            }
        }
    }
}
