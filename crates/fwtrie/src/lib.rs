//! The firewall rule database of the paper's Figure 3.
//!
//! "Consider, for instance, the task of checkpointing the state of a
//! network firewall that consists of rules indexed via a trie for fast
//! rule lookup based on packet headers. Multiple leaves of the trie can
//! point to the same rule, causing this rule to be encountered multiple
//! times during pointer traversal, potentially leading to redundant
//! copies of the rule." (§5)
//!
//! This crate is that firewall, built for real use *and* as the workload
//! for experiment E6:
//!
//! - [`rule`]: filter rules (prefixes, port range, protocol, action),
//!   checkpointable via the `checkpointable!` macro;
//! - [`trie`]: a binary longest-prefix-match trie over destination
//!   addresses whose leaves hold [`rbs_checkpoint::CkRc`]-shared rules —
//!   the same rule object may sit under many prefixes (Figure 3a), and
//!   checkpointing the trie copies it exactly once;
//! - [`operator`]: the trie wrapped as a `rbs-netfx` pipeline stage, so
//!   the firewall can run inside the SFI-isolated pipelines of §3.

pub mod operator;
pub mod parse;
pub mod rule;
pub mod trie;

pub use operator::FirewallOp;
pub use parse::{parse_config, parse_rules, ConfigError};
pub use rule::{Action, Rule};
pub use trie::FwTrie;
