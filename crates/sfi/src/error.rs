//! Errors surfaced by cross-domain invocation.

use crate::tls::DomainId;
use std::fmt;

/// Why a remote invocation did not run (or did not finish).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcError {
    /// The reference was revoked: its proxy is gone from the home
    /// domain's reference table, so the weak pointer no longer upgrades.
    /// This is what a reference revoked *cleanly* (explicit revocation,
    /// orderly destruction) returns.
    Revoked,
    /// The reference died with a domain fault: its table epoch was
    /// poisoned by fault cleanup, so the object was torn down by the
    /// crash rather than revoked deliberately. Every pre-fault `RRef`
    /// returns this after the domain recovers.
    Poisoned {
        /// The domain whose fault poisoned the reference.
        domain: DomainId,
    },
    /// The target domain is in the failed state and has no recovery
    /// function to bring it back.
    DomainFailed {
        /// The failed domain.
        domain: DomainId,
    },
    /// The target domain was destroyed by its manager.
    DomainDestroyed {
        /// The destroyed domain.
        domain: DomainId,
    },
    /// The domain's interposition policy rejected the call.
    AccessDenied {
        /// The calling domain.
        caller: DomainId,
        /// The method name presented to the policy.
        method: &'static str,
    },
    /// The callee panicked during this invocation. The stack has been
    /// unwound to the domain boundary and fault handling (table clear +
    /// recovery) has already run by the time the caller sees this.
    Fault {
        /// The domain that faulted.
        domain: DomainId,
    },
}

impl fmt::Display for RpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpcError::Revoked => write!(f, "remote reference has been revoked"),
            RpcError::Poisoned { domain } => {
                write!(f, "remote reference died with a fault in domain {domain:?}")
            }
            RpcError::DomainFailed { domain } => {
                write!(f, "domain {domain:?} has failed and was not recovered")
            }
            RpcError::DomainDestroyed { domain } => {
                write!(f, "domain {domain:?} has been destroyed")
            }
            RpcError::AccessDenied { caller, method } => {
                write!(f, "policy denied {caller:?} calling {method}")
            }
            RpcError::Fault { domain } => {
                write!(f, "callee in domain {domain:?} panicked during the call")
            }
        }
    }
}

impl std::error::Error for RpcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_descriptive() {
        let d = DomainId::new(3);
        assert!(RpcError::Revoked.to_string().contains("revoked"));
        assert!(RpcError::Poisoned { domain: d }
            .to_string()
            .contains("died with a fault"));
        assert!(RpcError::DomainFailed { domain: d }
            .to_string()
            .contains("failed"));
        assert!(RpcError::DomainDestroyed { domain: d }
            .to_string()
            .contains("destroyed"));
        assert!(RpcError::Fault { domain: d }
            .to_string()
            .contains("panicked"));
        let denied = RpcError::AccessDenied {
            caller: d,
            method: "method1",
        };
        assert!(denied.to_string().contains("method1"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(RpcError::Revoked, RpcError::Revoked);
        assert_ne!(
            RpcError::Revoked,
            RpcError::Fault {
                domain: DomainId::new(1)
            }
        );
    }
}
