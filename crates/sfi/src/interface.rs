//! Typed remote interfaces over [`RRef`].
//!
//! The paper's listing invokes *named methods* on rrefs:
//!
//! ```text
//! match rref.method1() {
//!     Ok(ret) => println!("Result: {}", ret),
//!     Err(_)  => println!("method1() failed")
//! }
//! ```
//!
//! [`remote_interface!`](crate::remote_interface) generates exactly that
//! surface: given a trait-like description, it emits a typed proxy whose
//! every method performs a remote invocation under its own method name —
//! so interposition policies can allow/deny individual methods — and
//! returns `Result<_, RpcError>`.
//!
//! ```
//! use rbs_sfi::{remote_interface, AclPolicy, DomainManager, RpcError, KERNEL_DOMAIN};
//!
//! struct KvStore {
//!     entries: Vec<(String, u64)>,
//! }
//!
//! impl KvStore {
//!     fn get(&self, key: String) -> Option<u64> {
//!         self.entries.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
//!     }
//!     fn put(&mut self, key: String, value: u64) {
//!         self.entries.push((key, value));
//!     }
//!     fn len(&self) -> usize {
//!         self.entries.len()
//!     }
//! }
//!
//! remote_interface! {
//!     /// A typed remote key-value store.
//!     proxy KvStoreRef for KvStore {
//!         fn get(&self, key: String) -> Option<u64>;
//!         fn put(&mut self, key: String, value: u64) -> ();
//!         fn len(&self) -> usize;
//!     }
//! }
//!
//! let mgr = DomainManager::new();
//! let d = mgr.create_domain("kv").unwrap();
//! let kv = KvStoreRef::export(&d, KvStore { entries: Vec::new() });
//!
//! kv.put("requests".into(), 7).unwrap();
//! assert_eq!(kv.get("requests".into()).unwrap(), Some(7));
//! assert_eq!(kv.len().unwrap(), 1);
//!
//! // Methods are individually interposable: allow reads, deny writes.
//! d.set_policy(
//!     AclPolicy::new()
//!         .grant(KERNEL_DOMAIN, "get")
//!         .grant(KERNEL_DOMAIN, "len"),
//! );
//! assert_eq!(kv.len().unwrap(), 1);
//! assert!(matches!(
//!     kv.put("blocked".into(), 1),
//!     Err(RpcError::AccessDenied { method: "put", .. })
//! ));
//! ```

/// Generates a typed remote proxy for methods of a service struct.
///
/// Grammar (per method): `fn name(&self, arg: Ty, ...) -> Ret;` or
/// `fn name(&mut self, ...) -> Ret;`. Arguments are taken by value and
/// *move* across the domain boundary; the return value moves back. Every
/// generated method returns `Result<Ret, RpcError>` and presents its own
/// name to the domain's interposition policy.
///
/// The proxy also exposes:
///
/// - `export(&Domain, service) -> Self` — place the service in the
///   domain and mint the proxy;
/// - `from_rref(RRef<S>) -> Self` / `rref(&self) -> &RRef<S>` — interop
///   with raw remote references;
/// - `revoke(&self) -> bool` — capability revocation, as on [`RRef`].
///
/// [`RRef`]: crate::RRef
#[macro_export]
macro_rules! remote_interface {
    (
        $(#[$meta:meta])*
        proxy $proxy:ident for $service:ty {
            $($methods:tt)*
        }
    ) => {
        $(#[$meta])*
        #[derive(Clone)]
        pub struct $proxy {
            rref: $crate::RRef<$service>,
        }

        // The proxy inherits the *effective* visibility of the service
        // type it wraps; suppress the lint for private-service users
        // (e.g. test modules).
        #[allow(private_interfaces)]
        impl $proxy {
            /// Exports `service` from `domain` and returns the proxy.
            pub fn export(domain: &$crate::Domain, service: $service) -> Self {
                Self {
                    rref: $crate::RRef::new(domain, service),
                }
            }

            /// Wraps an existing remote reference.
            pub fn from_rref(rref: $crate::RRef<$service>) -> Self {
                Self { rref }
            }

            /// The underlying remote reference.
            pub fn rref(&self) -> &$crate::RRef<$service> {
                &self.rref
            }

            /// Revokes the capability (all clones die together).
            pub fn revoke(&self) -> bool {
                self.rref.revoke()
            }

            remote_interface!(@methods $service, { $($methods)* });
        }
    };

    // Muncher: exclusive-access method.
    (@methods $service:ty, {
        fn $method:ident ( &mut self $(, $arg:ident : $argty:ty)* $(,)? ) -> $ret:ty;
        $($rest:tt)*
    }) => {
        /// Remote invocation of the service method of the same name
        /// (exclusive access; arguments move across the boundary).
        pub fn $method(&self, $($arg : $argty),*) -> Result<$ret, $crate::RpcError> {
            self.rref
                .invoke_mut_named(stringify!($method), move |svc: &mut $service| {
                    svc.$method($($arg),*)
                })
        }

        remote_interface!(@methods $service, { $($rest)* });
    };

    // Muncher: shared-access method.
    (@methods $service:ty, {
        fn $method:ident ( &self $(, $arg:ident : $argty:ty)* $(,)? ) -> $ret:ty;
        $($rest:tt)*
    }) => {
        /// Remote invocation of the service method of the same name
        /// (shared access; arguments move across the boundary).
        pub fn $method(&self, $($arg : $argty),*) -> Result<$ret, $crate::RpcError> {
            self.rref
                .invoke_named(stringify!($method), move |svc: &$service| {
                    svc.$method($($arg),*)
                })
        }

        remote_interface!(@methods $service, { $($rest)* });
    };

    (@methods $service:ty, {}) => {};
}

#[cfg(test)]
mod tests {
    use crate::domain::{DomainManager, DomainState};
    use crate::error::RpcError;
    use crate::policy::AclPolicy;
    use crate::tls::KERNEL_DOMAIN;

    /// A small stats service used across the tests.
    struct StatsService {
        values: Vec<i64>,
    }

    impl StatsService {
        fn record(&mut self, v: i64) -> usize {
            self.values.push(v);
            self.values.len()
        }

        fn sum(&self) -> i64 {
            self.values.iter().sum()
        }

        fn reset(&mut self) -> Vec<i64> {
            std::mem::take(&mut self.values)
        }

        fn crash(&self) -> i64 {
            panic!("injected service bug");
        }
    }

    remote_interface! {
        /// Typed access to [`StatsService`] in another domain.
        proxy StatsRef for StatsService {
            fn record(&mut self, v: i64) -> usize;
            fn sum(&self) -> i64;
            fn reset(&mut self) -> Vec<i64>;
            fn crash(&self) -> i64;
        }
    }

    fn setup() -> (DomainManager, crate::Domain, StatsRef) {
        let mgr = DomainManager::new();
        let d = mgr.create_domain("stats").unwrap();
        let proxy = StatsRef::export(&d, StatsService { values: vec![] });
        (mgr, d, proxy)
    }

    #[test]
    fn typed_calls_roundtrip() {
        let (_mgr, _d, stats) = setup();
        assert_eq!(stats.record(10).unwrap(), 1);
        assert_eq!(stats.record(32).unwrap(), 2);
        assert_eq!(stats.sum().unwrap(), 42);
        assert_eq!(stats.reset().unwrap(), vec![10, 32]);
        assert_eq!(stats.sum().unwrap(), 0);
    }

    #[test]
    fn per_method_policy() {
        let (_mgr, d, stats) = setup();
        stats.record(1).unwrap();
        d.set_policy(AclPolicy::new().grant(KERNEL_DOMAIN, "sum"));
        assert_eq!(stats.sum().unwrap(), 1);
        assert!(matches!(
            stats.record(2),
            Err(RpcError::AccessDenied {
                method: "record",
                ..
            })
        ));
        assert!(matches!(
            stats.reset(),
            Err(RpcError::AccessDenied {
                method: "reset",
                ..
            })
        ));
    }

    #[test]
    fn paper_listing_shape_with_named_method() {
        let (_mgr, _d, stats) = setup();
        // The §3 listing, verbatim shape.
        match stats.sum() {
            Ok(ret) => assert_eq!(ret, 0),
            Err(_) => panic!("method1() failed"),
        }
    }

    #[test]
    fn service_fault_flows_through_proxy() {
        let (_mgr, d, stats) = setup();
        let err = stats.crash().unwrap_err();
        assert!(matches!(err, RpcError::Fault { .. }));
        assert_eq!(d.state(), DomainState::Failed);
        // The proxy's capability died with the domain's table.
        assert_eq!(
            stats.sum().unwrap_err(),
            RpcError::Poisoned { domain: d.id() }
        );
    }

    #[test]
    fn clones_and_revocation() {
        let (_mgr, _d, stats) = setup();
        let other = stats.clone();
        other.record(5).unwrap();
        assert!(stats.revoke());
        assert_eq!(other.sum().unwrap_err(), RpcError::Revoked);
    }

    #[test]
    fn from_rref_interop() {
        let mgr = DomainManager::new();
        let d = mgr.create_domain("raw").unwrap();
        let raw = crate::RRef::new(&d, StatsService { values: vec![7] });
        let typed = StatsRef::from_rref(raw.clone());
        assert_eq!(typed.sum().unwrap(), 7);
        assert!(typed.rref().is_alive());
        raw.revoke();
        assert!(!typed.rref().is_alive());
    }
}
