//! Ownership-transferring channels between protection domains.
//!
//! The paper's cross-domain semantics cover both call paths: "after
//! passing an object reference to a function **or channel**, the caller
//! loses access to the object" (§3). [`channel`] is the channel half:
//! a typed, bounded queue whose send endpoint lives *outside* the
//! receiving domain and whose every [`DomainSender::send`] moves the
//! value — zero-copy by construction, like Singularity's exchange heap
//! but enforced statically.
//!
//! The receive side is registered in the receiving domain's reference
//! table, so the channel participates in the domain lifecycle exactly
//! like an [`crate::RRef`]: clearing the table (revocation, fault
//! cleanup, destruction) closes the channel, and senders start failing
//! with [`ChannelError::Revoked`] instead of feeding a dead domain.
//!
//! ```compile_fail
//! use rbs_sfi::{channel::channel, DomainManager};
//!
//! let mgr = DomainManager::new();
//! let d = mgr.create_domain("consumer").unwrap();
//! let (tx, _rx) = channel::<Vec<u8>>(&d, 8);
//!
//! let payload = vec![1u8, 2, 3];
//! tx.send(payload).unwrap();
//! // ERROR: `payload` moved into the other domain through the channel.
//! let _ = payload.len();
//! ```

use crate::backend::{Crossing, IsolationBackend};
use crate::domain::Domain;
use crate::reftable::SlotHandle;
use crate::tls::DomainId;
use crossbeam::channel::{bounded, Receiver, SendTimeoutError, Sender, TryRecvError};
use rbs_core::Exchangeable;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};

/// Why a channel operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChannelError {
    /// The receive endpoint's table entry is gone: the domain revoked
    /// the channel, faulted, or was destroyed.
    Revoked,
    /// The bounded queue is full (with `try_send`).
    Full,
    /// The receiver endpoint itself was dropped.
    Disconnected,
    /// No message available right now (with `try_recv`).
    Empty,
    /// The queue stayed full past the caller's deadline (with
    /// [`DomainSender::send_deadline`]): the receiving domain is alive
    /// but not draining — the signature of a stalled worker.
    TimedOut,
}

impl fmt::Display for ChannelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChannelError::Revoked => write!(f, "channel revoked by the receiving domain"),
            ChannelError::Full => write!(f, "channel is full"),
            ChannelError::Disconnected => write!(f, "receive endpoint dropped"),
            ChannelError::Empty => write!(f, "no message available"),
            ChannelError::TimedOut => write!(f, "queue stayed full past the send deadline"),
        }
    }
}

impl std::error::Error for ChannelError {}

/// The shared core. Senders hold weak references to it; the *table*
/// holds a [`TableEntry`] guard whose drop flips `closed`. The explicit
/// flag matters: senders transiently upgrade their weak pointers during
/// sends, and overlapping upgrades from several threads could otherwise
/// keep a revoked core alive indefinitely (a livelock where `upgrade()`
/// never fails) — the flag makes revocation observable regardless of the
/// core's momentary strong count.
struct ChannelCore<T: Exchangeable> {
    tx: Sender<T>,
    closed: AtomicBool,
    /// The receiving domain's isolation backend; sends charge a
    /// [`Crossing::ChannelSend`] against it when `charged` is set.
    backend: Arc<dyn IsolationBackend>,
    /// Cached `!backend.zero_cost()` (see [`crate::backend`]).
    charged: bool,
    /// Reports a value's boundary size in bytes. Defaults to
    /// `size_of::<T>()`; containers should meter their payload (e.g. a
    /// packet batch's total bytes) via [`channel_metered`].
    meter: fn(&T) -> usize,
}

/// The value actually stored in the reference table: dropping it (table
/// clear on fault/destroy, or explicit revocation) closes the channel.
struct TableEntry<T: Exchangeable> {
    core: Arc<ChannelCore<T>>,
}

impl<T: Exchangeable> Drop for TableEntry<T> {
    fn drop(&mut self) {
        self.core.closed.store(true, Ordering::Release);
    }
}

/// The sending endpoint, held outside the receiving domain.
pub struct DomainSender<T: Exchangeable> {
    core: Weak<ChannelCore<T>>,
    target: DomainId,
}

impl<T: Exchangeable> Clone for DomainSender<T> {
    fn clone(&self) -> Self {
        Self {
            core: self.core.clone(),
            target: self.target,
        }
    }
}

impl<T: Exchangeable> DomainSender<T> {
    /// The domain this sender feeds.
    pub fn target_domain(&self) -> DomainId {
        self.target
    }

    /// True while the receiving domain still accepts messages.
    pub fn is_open(&self) -> bool {
        match self.core.upgrade() {
            Some(core) => !core.closed.load(Ordering::Acquire),
            None => false,
        }
    }

    /// Moves `value` into the receiving domain, blocking while the
    /// bounded queue is full.
    ///
    /// Blocking is done in short rounds so a sender parked on a full
    /// queue still observes revocation promptly: between rounds the weak
    /// proxy is re-upgraded, and the strong reference is *not* held
    /// while parked (holding it would keep a revoked channel alive and
    /// deadlock the sender forever).
    ///
    /// On failure the value comes back in the error's payload slot —
    /// ownership returns to the caller rather than being silently
    /// dropped.
    pub fn send(&self, value: T) -> Result<(), (ChannelError, T)> {
        match self.send_rounds(value, None) {
            Ok(()) => Ok(()),
            Err((ChannelError::TimedOut, _)) => {
                unreachable!("unbounded send cannot time out")
            }
            Err(e) => Err(e),
        }
    }

    /// Like [`DomainSender::send`] but gives up once the queue has
    /// stayed full for `max_wait`, returning
    /// [`ChannelError::TimedOut`] with the value.
    ///
    /// This is the dispatcher-safe send: a worker that stops draining
    /// its queue (hung, livelocked, stalled on I/O) can delay the caller
    /// by at most `max_wait` instead of wedging it forever. Revocation
    /// is still observed promptly between rounds.
    pub fn send_deadline(
        &self,
        value: T,
        max_wait: std::time::Duration,
    ) -> Result<(), (ChannelError, T)> {
        self.send_rounds(value, Some(std::time::Instant::now() + max_wait))
    }

    fn send_rounds(
        &self,
        value: T,
        deadline: Option<std::time::Instant>,
    ) -> Result<(), (ChannelError, T)> {
        let mut value = value;
        loop {
            let Some(core) = self.core.upgrade() else {
                return Err((ChannelError::Revoked, value));
            };
            if core.closed.load(Ordering::Acquire) {
                return Err((ChannelError::Revoked, value));
            }
            let bytes = if core.charged {
                (core.meter)(&value)
            } else {
                0
            };
            match core
                .tx
                .send_timeout(value, std::time::Duration::from_millis(5))
            {
                Ok(()) => {
                    if core.charged {
                        core.backend
                            .crossing(self.target, Crossing::ChannelSend, bytes);
                    }
                    return Ok(());
                }
                Err(SendTimeoutError::Timeout(v)) => {
                    // Queue full: re-check the closed flag (and the
                    // caller's deadline) next round.
                    if let Some(d) = deadline {
                        if std::time::Instant::now() >= d {
                            return Err((ChannelError::TimedOut, v));
                        }
                    }
                    value = v;
                }
                Err(SendTimeoutError::Disconnected(v)) => {
                    return Err((ChannelError::Disconnected, v));
                }
            }
        }
    }

    /// Like [`DomainSender::send`] but fails immediately when full.
    pub fn try_send(&self, value: T) -> Result<(), (ChannelError, T)> {
        let Some(core) = self.core.upgrade() else {
            return Err((ChannelError::Revoked, value));
        };
        if core.closed.load(Ordering::Acquire) {
            return Err((ChannelError::Revoked, value));
        }
        let bytes = if core.charged {
            (core.meter)(&value)
        } else {
            0
        };
        match core.tx.try_send(value) {
            Ok(()) => {
                if core.charged {
                    core.backend
                        .crossing(self.target, Crossing::ChannelSend, bytes);
                }
                Ok(())
            }
            Err(crossbeam::channel::TrySendError::Full(v)) => Err((ChannelError::Full, v)),
            Err(crossbeam::channel::TrySendError::Disconnected(v)) => {
                Err((ChannelError::Disconnected, v))
            }
        }
    }
}

impl<T: Exchangeable> fmt::Debug for DomainSender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DomainSender")
            .field("target", &self.target)
            .field("open", &self.is_open())
            .finish()
    }
}

/// The receiving endpoint, intended to be used by code running in (or on
/// behalf of) the receiving domain.
pub struct DomainReceiver<T: Exchangeable> {
    rx: Receiver<T>,
    home: Domain,
    slot: SlotHandle,
    meter: fn(&T) -> usize,
}

impl<T: Exchangeable> DomainReceiver<T> {
    /// Charge the copy-out half of the hand-off: the value leaving the
    /// queue and landing in the receiving domain.
    #[inline]
    fn charge_recv(&self, value: &T) {
        if self.home.inner.charged {
            self.home
                .inner
                .charge(Crossing::ChannelRecv, (self.meter)(value));
        }
    }

    /// Receives the next message, blocking until one arrives or every
    /// sender is gone.
    pub fn recv(&self) -> Result<T, ChannelError> {
        let v = self.rx.recv().map_err(|_| ChannelError::Disconnected)?;
        self.charge_recv(&v);
        Ok(v)
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, ChannelError> {
        let v = self.rx.try_recv().map_err(|e| match e {
            TryRecvError::Empty => ChannelError::Empty,
            TryRecvError::Disconnected => ChannelError::Disconnected,
        })?;
        self.charge_recv(&v);
        Ok(v)
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.rx.len()
    }

    /// True when no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.rx.is_empty()
    }

    /// Closes the channel from the receiving side by revoking its table
    /// entry; queued messages remain receivable, new sends fail.
    pub fn revoke(&self) -> bool {
        self.home.inner.ref_table.remove(self.slot).is_some()
    }
}

impl<T: Exchangeable> fmt::Debug for DomainReceiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DomainReceiver")
            .field("home", &self.home.id())
            .field("queued", &self.len())
            .finish()
    }
}

/// Creates a bounded ownership-transferring channel into `receiver`'s
/// domain.
///
/// The send half is freely cloneable and shareable across domains and
/// threads; the receive half belongs to the receiving domain. The
/// channel closes when the domain's reference table is cleared (fault,
/// destruction, or explicit [`DomainReceiver::revoke`]).
pub fn channel<T: Exchangeable>(
    receiver: &Domain,
    capacity: usize,
) -> (DomainSender<T>, DomainReceiver<T>) {
    channel_metered(receiver, capacity, |_| std::mem::size_of::<T>())
}

/// Like [`channel`], with an explicit boundary meter: `meter` reports
/// how many payload bytes a value carries across the domain boundary,
/// which is what a charging isolation backend (copy boundary, MPK
/// simulation — see [`crate::backend`]) bills per hand-off.
///
/// The plain [`channel`] constructor meters `size_of::<T>()`, which is
/// right for inline values but undercounts containers; pass the real
/// payload size here (e.g. a packet batch's total bytes). Under the
/// default zero-cost backend the meter is never called.
pub fn channel_metered<T: Exchangeable>(
    receiver: &Domain,
    capacity: usize,
    meter: fn(&T) -> usize,
) -> (DomainSender<T>, DomainReceiver<T>) {
    let (tx, rx) = bounded(capacity);
    let core = Arc::new(ChannelCore {
        tx,
        closed: AtomicBool::new(false),
        backend: Arc::clone(&receiver.inner.backend),
        charged: receiver.inner.charged,
        meter,
    });
    let weak = Arc::downgrade(&core);
    let slot = receiver
        .inner
        .ref_table
        .insert(Arc::new(TableEntry { core }));
    (
        DomainSender {
            core: weak,
            target: receiver.id(),
        },
        DomainReceiver {
            rx,
            home: receiver.clone(),
            slot,
            meter,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::DomainManager;
    use crate::rref::RRef;

    fn setup() -> Domain {
        DomainManager::new().create_domain("consumer").unwrap()
    }

    #[test]
    fn values_move_through() {
        let d = setup();
        let (tx, rx) = channel::<String>(&d, 4);
        tx.send(String::from("hello")).unwrap();
        tx.send(String::from("world")).unwrap();
        assert_eq!(rx.len(), 2);
        assert_eq!(rx.recv().unwrap(), "hello");
        assert_eq!(rx.try_recv().unwrap(), "world");
        assert!(rx.is_empty());
        assert_eq!(rx.try_recv().unwrap_err(), ChannelError::Empty);
    }

    #[test]
    fn bounded_capacity_enforced() {
        let d = setup();
        let (tx, rx) = channel::<u32>(&d, 2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        let (e, v) = tx.try_send(3).unwrap_err();
        assert_eq!(e, ChannelError::Full);
        assert_eq!(v, 3, "ownership returns on failure");
        rx.recv().unwrap();
        tx.try_send(3).unwrap();
    }

    #[test]
    fn receiver_revoke_closes_sends_but_drains_queue() {
        let d = setup();
        let (tx, rx) = channel::<u32>(&d, 4);
        tx.send(7).unwrap();
        assert!(rx.revoke());
        assert!(!rx.revoke(), "second revoke is a no-op");
        assert!(!tx.is_open());
        let (e, v) = tx.send(8).unwrap_err();
        assert_eq!(e, ChannelError::Revoked);
        assert_eq!(v, 8);
        // Already-queued messages are still deliverable.
        assert_eq!(rx.recv().unwrap(), 7);
        assert_eq!(rx.recv().unwrap_err(), ChannelError::Disconnected);
    }

    #[test]
    fn domain_fault_closes_channels() {
        let d = setup();
        let (tx, _rx) = channel::<u32>(&d, 4);
        assert!(tx.is_open());
        let _ = d.execute(|| panic!("fault"));
        // Fault cleanup cleared the table; the channel died with it.
        assert!(!tx.is_open());
        assert!(matches!(tx.send(1), Err((ChannelError::Revoked, 1))));
    }

    #[test]
    fn send_deadline_times_out_on_full_queue() {
        let d = setup();
        let (tx, rx) = channel::<u32>(&d, 1);
        tx.send(1).unwrap();
        let start = std::time::Instant::now();
        let (e, v) = tx
            .send_deadline(2, std::time::Duration::from_millis(20))
            .unwrap_err();
        assert_eq!(e, ChannelError::TimedOut);
        assert_eq!(v, 2, "ownership returns on timeout");
        assert!(
            start.elapsed() < std::time::Duration::from_secs(2),
            "bounded wait must actually be bounded"
        );
        // The queue was never disturbed; draining it unblocks sends.
        assert_eq!(rx.recv().unwrap(), 1);
        tx.send_deadline(2, std::time::Duration::from_millis(100))
            .unwrap();
        assert_eq!(rx.recv().unwrap(), 2);
    }

    #[test]
    fn send_deadline_observes_revocation_while_waiting() {
        let d = setup();
        let (tx, rx) = channel::<u32>(&d, 1);
        tx.send(1).unwrap();
        let waiter =
            std::thread::spawn(move || tx.send_deadline(2, std::time::Duration::from_secs(30)));
        std::thread::sleep(std::time::Duration::from_millis(20));
        rx.revoke();
        // Revocation, not the 30s deadline, ends the wait.
        let (e, v) = waiter.join().unwrap().unwrap_err();
        assert_eq!(e, ChannelError::Revoked);
        assert_eq!(v, 2);
    }

    #[test]
    fn domain_destroy_closes_channels() {
        let d = setup();
        let (tx, _rx) = channel::<u32>(&d, 4);
        d.destroy();
        assert!(!tx.is_open());
    }

    #[test]
    fn clones_share_the_capability() {
        let d = setup();
        let (tx, rx) = channel::<u32>(&d, 8);
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv().unwrap() + rx.recv().unwrap(), 3);
        rx.revoke();
        assert!(!tx.is_open() && !tx2.is_open(), "all clones die together");
    }

    #[test]
    fn cross_thread_producer_consumer() {
        let d = setup();
        let (tx, rx) = channel::<Vec<u8>>(&d, 16);
        let producers: Vec<_> = (0..4)
            .map(|i| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for j in 0..100u8 {
                        tx.send(vec![i as u8, j]).unwrap();
                    }
                })
            })
            .collect();
        // Consume inside the domain via execute (the intended shape).
        let mut received = 0;
        while received < 400 {
            let batch: Vec<Vec<u8>> = d
                .execute(|| {
                    let mut out = Vec::new();
                    while let Ok(m) = rx.try_recv() {
                        out.push(m);
                    }
                    out
                })
                .unwrap();
            received += batch.len();
        }
        for p in producers {
            p.join().unwrap();
        }
        assert_eq!(received, 400);
    }

    #[test]
    fn channel_and_rref_coexist_in_one_table() {
        let d = setup();
        let (tx, rx) = channel::<u32>(&d, 4);
        let obj = RRef::new(&d, 0u32);
        assert_eq!(d.exported_objects(), 2);
        tx.send(5).unwrap();
        let v = rx.recv().unwrap();
        obj.invoke_mut(move |o| *o += v).unwrap();
        assert_eq!(obj.invoke(|o| *o).unwrap(), 5);
        rx.revoke();
        assert_eq!(d.exported_objects(), 1);
    }

    #[test]
    fn metered_channel_charges_backend_crossings() {
        let mgr = DomainManager::with_backend_kind(crate::backend::BackendKind::CopyBoundary);
        let d = mgr.create_domain("consumer").unwrap();
        let (tx, rx) = channel_metered::<Vec<u8>>(&d, 4, |v| v.len());
        tx.send(vec![0u8; 100]).unwrap();
        let t = mgr.backend_totals();
        assert_eq!(t.crossings, 1, "send is one crossing");
        assert_eq!(t.bytes, 100, "metered, not size_of");
        let _ = rx.recv().unwrap();
        let t = mgr.backend_totals();
        assert_eq!(t.crossings, 2, "recv is the second crossing");
        assert_eq!(t.bytes, 200);
    }

    #[test]
    fn default_backend_charges_nothing() {
        let d = setup();
        let (tx, rx) = channel_metered::<Vec<u8>>(&d, 4, |v| v.len());
        tx.send(vec![0u8; 100]).unwrap();
        let _ = rx.recv().unwrap();
        assert_eq!(
            d.backend().stats(),
            crate::backend::BackendTotals::default(),
            "zero-cost backend keeps no counters at all"
        );
    }

    #[test]
    fn sender_debug_and_target() {
        let d = setup();
        let (tx, rx) = channel::<u32>(&d, 1);
        assert_eq!(tx.target_domain(), d.id());
        assert!(format!("{tx:?}").contains("open: true"));
        assert!(format!("{rx:?}").contains("queued: 0"));
    }
}
