//! Pluggable isolation backends — the cost model behind the boundary.
//!
//! The paper's claim is that linear types make fault isolation
//! essentially *free*: moving ownership across a domain boundary compiles
//! to nothing. Related work disputes where that boundary holds —
//! copy-in/copy-out serialization is the conventional-language baseline,
//! and MPK-style guarded regions price every switch in `wrpkru` cycles.
//! This module turns that argument into a seam: every cross-domain
//! crossing in the crate (remote invocation entry/return, channel
//! hand-off, recycle-path hand-off) reports through an
//! [`IsolationBackend`], and three backends span the cost spectrum:
//!
//! - [`TypedSfi`] — the paper's model and the **default**. Zero-cost by
//!   construction: it declares itself [`IsolationBackend::zero_cost`],
//!   so the hot path never even calls into it. Behavior is byte-identical
//!   to the pre-seam crate.
//! - [`MpkSim`] — a guarded-region simulation. Data still moves by
//!   ownership (MPK domains share the address space), but every crossing
//!   burns a calibrated number of cycles standing in for the `wrpkru`
//!   pair plus call-gate hardening. Constants documented on
//!   [`MpkCostModel`].
//! - [`CopyBoundary`] — the conventional-language strawman: every
//!   crossing physically copies the payload bytes through a scratch
//!   buffer (copy-in) and back (copy-out), the way a process boundary or
//!   serializing RPC would. Ownership semantics are unchanged — the copy
//!   is a *cost*, not a transport — which keeps fault semantics identical
//!   across backends and is exactly what makes the comparison fair.
//!
//! Experiment E13 sweeps backend × workload × batch size and emits the
//! measured spectrum (`BENCH_isolation.json`).

use std::cell::RefCell;
use std::fmt;
use std::hint::black_box;
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::tls::DomainId;

/// The kind of domain crossing being charged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Crossing {
    /// Entry into a domain: `Domain::execute` or an [`crate::RRef`]
    /// invocation crossing *into* the callee's domain.
    Call,
    /// Return back out of a domain with the result value.
    Return,
    /// A value moved into a domain through a bounded channel
    /// ([`crate::channel`]) or the recycle path.
    ChannelSend,
    /// A value received out of a channel by its owning domain.
    ChannelRecv,
    /// A work-stealing transfer: a batch pulled out of another lane's
    /// deque crosses from the victim's domain into the thief's. Charged
    /// by the thief (cost attribution follows the CPU doing the work)
    /// with the batch's wire bytes, so the steal tax is visible per
    /// backend exactly like a channel hand-off.
    Steal,
}

impl Crossing {
    /// Short label used in stats and experiment records.
    pub fn label(self) -> &'static str {
        match self {
            Crossing::Call => "call",
            Crossing::Return => "return",
            Crossing::ChannelSend => "send",
            Crossing::ChannelRecv => "recv",
            Crossing::Steal => "steal",
        }
    }
}

/// Aggregate counters a backend keeps about the crossings it charged.
///
/// All counters are relaxed atomics: they are accounting, not
/// synchronization.
#[derive(Debug, Default)]
pub struct BackendStats {
    crossings: AtomicU64,
    bytes: AtomicU64,
    model_cycles: AtomicU64,
}

impl BackendStats {
    /// A zeroed stats block.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub(crate) fn record(&self, bytes: usize, model_cycles: u64) {
        self.crossings.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        self.model_cycles.fetch_add(model_cycles, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> BackendTotals {
        BackendTotals {
            crossings: self.crossings.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            model_cycles: self.model_cycles.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a backend's [`BackendStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BackendTotals {
    /// Number of crossings charged.
    pub crossings: u64,
    /// Payload bytes that crossed a boundary (as reported by the
    /// channel's meter function or the invocation's result size).
    pub bytes: u64,
    /// Cycles the backend's cost model charged for those crossings.
    /// Deterministic — a pure function of (crossings, bytes) — unlike
    /// wall-clock cycles, so experiment records built from it are
    /// byte-stable.
    pub model_cycles: u64,
}

/// The isolation backend seam.
///
/// A backend observes every cross-domain crossing and may charge a cost
/// for it. The *mechanism* of isolation (ownership moves, reference
/// tables, poisoning) is identical across backends — a backend is a cost
/// model, not a transport — so fault containment, drain/poison on
/// recovery, and the accounting invariants must hold on every backend
/// (`tests/backend_invariants.rs` proves they do).
///
/// Hot-path contract: when [`IsolationBackend::zero_cost`] returns true
/// the crate caches that fact at construction time and never calls
/// [`IsolationBackend::crossing`] at all, so the default backend adds a
/// single predictable branch to the invocation fast path (the same trick
/// the policy `interposed` flag uses).
pub trait IsolationBackend: Send + Sync + 'static {
    /// Stable machine-readable name ("typed-sfi", "copy-boundary",
    /// "mpk-sim").
    fn name(&self) -> &'static str;

    /// True when crossings are free and need not be observed. The crate
    /// reads this once per domain/channel construction and elides every
    /// hook when set.
    fn zero_cost(&self) -> bool {
        false
    }

    /// Charge one crossing of `kind` into/out of `domain` carrying
    /// `bytes` payload bytes. Only called when [`zero_cost`] is false.
    ///
    /// [`zero_cost`]: IsolationBackend::zero_cost
    fn crossing(&self, domain: DomainId, kind: Crossing, bytes: usize);

    /// Model cycles a single crossing of `bytes` costs under this
    /// backend's cost model. Pure and deterministic; E13 stable records
    /// are built from it.
    fn model_cycles(&self, bytes: usize) -> u64;

    /// Lifecycle observation: a domain was created.
    fn domain_created(&self, domain: DomainId) {
        let _ = domain;
    }

    /// Lifecycle observation: a domain faulted (panic or `force_fail`).
    fn domain_faulted(&self, domain: DomainId) {
        let _ = domain;
    }

    /// Lifecycle observation: a domain recovered.
    fn domain_recovered(&self, domain: DomainId) {
        let _ = domain;
    }

    /// Lifecycle observation: a domain was destroyed.
    fn domain_destroyed(&self, domain: DomainId) {
        let _ = domain;
    }

    /// Lifecycle observation: a thread attached to a domain.
    fn thread_attached(&self, domain: DomainId) {
        let _ = domain;
    }

    /// The backend's crossing counters.
    fn stats(&self) -> BackendTotals;
}

/// Selects one of the built-in backends; the `FromStr` impl accepts the
/// short and long spellings used by the examples' `--backend` flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// [`TypedSfi`] — linear-type SFI, zero cost (the default).
    #[default]
    TypedSfi,
    /// [`CopyBoundary`] — copy-in/copy-out at every crossing.
    CopyBoundary,
    /// [`MpkSim`] — MPK-style per-switch cycle charge.
    MpkSim,
}

impl BackendKind {
    /// All built-in kinds, in ascending expected cost order.
    pub const ALL: [BackendKind; 3] = [
        BackendKind::TypedSfi,
        BackendKind::MpkSim,
        BackendKind::CopyBoundary,
    ];

    /// The backend's stable name.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::TypedSfi => "typed-sfi",
            BackendKind::CopyBoundary => "copy-boundary",
            BackendKind::MpkSim => "mpk-sim",
        }
    }

    /// Builds a fresh backend instance of this kind with default cost
    /// models.
    pub fn instantiate(self) -> Arc<dyn IsolationBackend> {
        match self {
            BackendKind::TypedSfi => Arc::new(TypedSfi),
            BackendKind::CopyBoundary => Arc::new(CopyBoundary::new(CopyCostModel::default())),
            BackendKind::MpkSim => Arc::new(MpkSim::new(MpkCostModel::default())),
        }
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for BackendKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "typed" | "typed-sfi" | "sfi" => Ok(BackendKind::TypedSfi),
            "copy" | "copy-boundary" => Ok(BackendKind::CopyBoundary),
            "mpk" | "mpk-sim" => Ok(BackendKind::MpkSim),
            other => Err(format!(
                "unknown backend '{other}' (expected typed|copy|mpk)"
            )),
        }
    }
}

/// The paper's model: isolation enforced by the type system, crossings
/// compile to plain moves. Declares itself zero-cost, so no hook is ever
/// invoked and no counter is kept — instrumentation itself would be a
/// tax the model says does not exist.
#[derive(Debug, Default)]
pub struct TypedSfi;

impl IsolationBackend for TypedSfi {
    fn name(&self) -> &'static str {
        "typed-sfi"
    }

    fn zero_cost(&self) -> bool {
        true
    }

    fn crossing(&self, _domain: DomainId, _kind: Crossing, _bytes: usize) {}

    fn model_cycles(&self, _bytes: usize) -> u64 {
        0
    }

    fn stats(&self) -> BackendTotals {
        BackendTotals::default()
    }
}

/// Cost model for [`CopyBoundary`].
///
/// A copying boundary pays a fixed per-crossing setup (length/permission
/// checks, allocator round-trip amortized by the scratch buffer) plus a
/// per-byte charge for the copy-in/copy-out pair. The defaults model a
/// serializing IPC at memcpy speed: 2 bytes/cycle throughput per
/// direction → 1 cycle/byte for the round trip, plus 180 cycles fixed —
/// the order of magnitude the paper's §2 cites for copying/serializing
/// boundaries ("microkernels, SFI") and far from hypothetical: a
/// same-core L4-style IPC costs hundreds of cycles before touching a
/// single payload byte.
#[derive(Debug, Clone, Copy)]
pub struct CopyCostModel {
    /// Fixed cycles per crossing, payload-independent.
    pub per_crossing_cycles: u64,
    /// Model cycles charged per payload byte (round trip).
    pub cycles_per_byte_num: u64,
    /// Denominator for fractional per-byte rates.
    pub cycles_per_byte_den: u64,
}

impl Default for CopyCostModel {
    fn default() -> Self {
        Self {
            per_crossing_cycles: 180,
            cycles_per_byte_num: 1,
            cycles_per_byte_den: 1,
        }
    }
}

thread_local! {
    /// Per-thread scratch pair for [`CopyBoundary`]'s copy-in/copy-out.
    /// Grows to the largest payload seen and is then reused, so the
    /// steady-state cost is the copy itself, not allocation.
    static COPY_SCRATCH: RefCell<(Vec<u8>, Vec<u8>)> = const { RefCell::new((Vec::new(), Vec::new())) };
}

/// The conventional-language strawman: every crossing copies the payload
/// in and back out through thread-local scratch buffers.
///
/// The copy is physically performed (a real `memcpy` of `bytes` in each
/// direction, kept alive with [`black_box`]) so end-to-end throughput
/// measurements feel the true memory-system cost, while
/// [`CopyCostModel`] provides the deterministic figure used in stable
/// experiment records.
#[derive(Debug)]
pub struct CopyBoundary {
    model: CopyCostModel,
    stats: BackendStats,
}

impl CopyBoundary {
    /// A copying backend with the given cost model.
    pub fn new(model: CopyCostModel) -> Self {
        Self {
            model,
            stats: BackendStats::new(),
        }
    }

    /// The configured cost model.
    pub fn model(&self) -> CopyCostModel {
        self.model
    }
}

impl IsolationBackend for CopyBoundary {
    fn name(&self) -> &'static str {
        "copy-boundary"
    }

    fn crossing(&self, _domain: DomainId, _kind: Crossing, bytes: usize) {
        if bytes > 0 {
            COPY_SCRATCH.with(|cell| {
                let (src, dst) = &mut *cell.borrow_mut();
                if src.len() < bytes {
                    src.resize(bytes, 0xA5);
                    dst.resize(bytes, 0);
                }
                // Copy-in ...
                dst[..bytes].copy_from_slice(&src[..bytes]);
                // ... and copy-out.
                src[..bytes].copy_from_slice(&dst[..bytes]);
                black_box(&dst[..bytes]);
            });
        }
        self.stats.record(bytes, self.model_cycles(bytes));
    }

    fn model_cycles(&self, bytes: usize) -> u64 {
        self.model.per_crossing_cycles
            + (bytes as u64 * self.model.cycles_per_byte_num) / self.model.cycles_per_byte_den
    }

    fn stats(&self) -> BackendTotals {
        self.stats.snapshot()
    }
}

/// Cost model for [`MpkSim`].
///
/// Calibration (documented in DESIGN.md "Isolation backends"): a raw
/// `wrpkru` is ~26 cycles on Skylake-class parts; a hardened domain
/// switch needs two of them (enter + leave) plus register scrubbing and
/// a stack check in the call gate, which published gate implementations
/// put at ~99–130 cycles end to end. The default charges 130 cycles per
/// crossing. x86 exposes 16 protection keys with one reserved — with
/// more than 15 live domains a real deployment must virtualize keys
/// (re-program `PKRU` maps on a miss), which the simulation prices at an
/// extra switch.
#[derive(Debug, Clone, Copy)]
pub struct MpkCostModel {
    /// Cycles per domain switch (the `wrpkru` pair + call-gate
    /// hardening).
    pub per_crossing_cycles: u64,
    /// Live-domain count beyond which key virtualization kicks in.
    pub pkey_budget: u64,
    /// Extra cycles per crossing once the key budget is exceeded.
    pub virtualization_cycles: u64,
}

impl Default for MpkCostModel {
    fn default() -> Self {
        Self {
            per_crossing_cycles: 130,
            pkey_budget: 15,
            virtualization_cycles: 130,
        }
    }
}

/// MPK-style guarded-region simulation: data still moves by ownership
/// (the domains share an address space — that is MPK's selling point),
/// but every crossing spins for the modeled number of TSC cycles so
/// end-to-end measurements feel the per-switch tax.
#[derive(Debug)]
pub struct MpkSim {
    model: MpkCostModel,
    stats: BackendStats,
    live_domains: AtomicU64,
}

impl MpkSim {
    /// An MPK simulation with the given cost model.
    pub fn new(model: MpkCostModel) -> Self {
        Self {
            model,
            stats: BackendStats::new(),
            live_domains: AtomicU64::new(0),
        }
    }

    /// The configured cost model.
    pub fn model(&self) -> MpkCostModel {
        self.model
    }

    /// Live domains currently holding a (simulated) protection key.
    pub fn live_domains(&self) -> u64 {
        self.live_domains.load(Ordering::Relaxed)
    }

    #[inline]
    fn per_crossing(&self) -> u64 {
        let mut cycles = self.model.per_crossing_cycles;
        if self.live_domains() > self.model.pkey_budget {
            cycles += self.model.virtualization_cycles;
        }
        cycles
    }

    /// Burn approximately `cycles` TSC cycles.
    #[inline]
    fn spin(cycles: u64) {
        let start = rbs_core::cycles::rdtsc();
        while rbs_core::cycles::rdtsc().wrapping_sub(start) < cycles {
            std::hint::spin_loop();
        }
    }
}

impl IsolationBackend for MpkSim {
    fn name(&self) -> &'static str {
        "mpk-sim"
    }

    fn crossing(&self, _domain: DomainId, _kind: Crossing, bytes: usize) {
        let cycles = self.per_crossing();
        Self::spin(cycles);
        self.stats.record(bytes, cycles);
    }

    fn model_cycles(&self, _bytes: usize) -> u64 {
        self.per_crossing()
    }

    fn domain_created(&self, _domain: DomainId) {
        self.live_domains.fetch_add(1, Ordering::Relaxed);
    }

    fn domain_destroyed(&self, _domain: DomainId) {
        // Saturating decrement: destroy is idempotent and may be called
        // on domains created before this backend was installed.
        let _ = self
            .live_domains
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1));
    }

    fn stats(&self) -> BackendTotals {
        self.stats.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tls::KERNEL_DOMAIN;

    #[test]
    fn kind_round_trips_through_fromstr() {
        for kind in BackendKind::ALL {
            assert_eq!(kind.name().parse::<BackendKind>().unwrap(), kind);
        }
        assert_eq!(
            "typed".parse::<BackendKind>().unwrap(),
            BackendKind::TypedSfi
        );
        assert_eq!(
            "copy".parse::<BackendKind>().unwrap(),
            BackendKind::CopyBoundary
        );
        assert_eq!("mpk".parse::<BackendKind>().unwrap(), BackendKind::MpkSim);
        assert!("vmexit".parse::<BackendKind>().is_err());
    }

    #[test]
    fn typed_sfi_is_zero_cost_and_countless() {
        let b = TypedSfi;
        assert!(b.zero_cost());
        b.crossing(KERNEL_DOMAIN, Crossing::Call, 4096);
        assert_eq!(b.stats(), BackendTotals::default());
        assert_eq!(b.model_cycles(1 << 20), 0);
    }

    #[test]
    fn copy_boundary_counts_and_charges_per_byte() {
        let b = CopyBoundary::new(CopyCostModel::default());
        assert!(!b.zero_cost());
        b.crossing(KERNEL_DOMAIN, Crossing::ChannelSend, 1024);
        b.crossing(KERNEL_DOMAIN, Crossing::ChannelRecv, 0);
        let t = b.stats();
        assert_eq!(t.crossings, 2);
        assert_eq!(t.bytes, 1024);
        assert_eq!(t.model_cycles, 180 + 1024 + 180);
    }

    #[test]
    fn mpk_sim_charges_flat_per_switch() {
        let b = MpkSim::new(MpkCostModel::default());
        b.crossing(KERNEL_DOMAIN, Crossing::Call, 0);
        b.crossing(KERNEL_DOMAIN, Crossing::Return, 4096);
        let t = b.stats();
        assert_eq!(t.crossings, 2);
        assert_eq!(t.bytes, 4096);
        assert_eq!(
            t.model_cycles,
            2 * 130,
            "byte count does not change the charge"
        );
    }

    #[test]
    fn mpk_sim_prices_pkey_virtualization() {
        let model = MpkCostModel::default();
        let b = MpkSim::new(model);
        for i in 0..=model.pkey_budget {
            b.domain_created(DomainId::new(100 + i));
        }
        assert_eq!(b.live_domains(), 16);
        assert_eq!(
            b.model_cycles(0),
            model.per_crossing_cycles + model.virtualization_cycles
        );
        b.domain_destroyed(DomainId::new(100));
        assert_eq!(b.model_cycles(0), model.per_crossing_cycles);
        // Idempotent destroys never underflow.
        for _ in 0..64 {
            b.domain_destroyed(DomainId::new(100));
        }
        assert_eq!(b.live_domains(), 0);
    }

    #[test]
    fn spectrum_is_ordered_per_crossing() {
        let typed = TypedSfi;
        let mpk = MpkSim::new(MpkCostModel::default());
        let copy = CopyBoundary::new(CopyCostModel::default());
        for bytes in [0usize, 64, 1500, 64 * 1500] {
            assert!(typed.model_cycles(bytes) <= mpk.model_cycles(bytes));
            assert!(mpk.model_cycles(bytes) <= copy.model_cycles(bytes));
        }
    }
}
