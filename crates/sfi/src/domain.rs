//! Protection domains and their manager.
//!
//! A [`Domain`] is a logical protection boundary: all domains allocate
//! from the common process heap (allocation is already safe in Rust), but
//! they share no data — every object a domain exports is reachable only
//! through its reference table, and every value passed in or out moves
//! ownership. The [`DomainManager`] is the paper's "domain manager"
//! context: it creates domains, enumerates them, and can destroy them.
//!
//! # Fault recovery
//!
//! "When a panic occurs inside the domain ..., we first unwind the stack
//! of the calling thread to the domain entry point and return an error
//! code to the caller. Next, we clear the domain reference table and
//! finally run the user-provided recovery function to re-initialize the
//! domain from clean state." (§3) That sequence is implemented in
//! [`Domain::handle_fault`], invoked from [`Domain::execute`] and from
//! [`crate::RRef`] invocation when the callee panics.

use crate::backend::{BackendKind, BackendTotals, Crossing, IsolationBackend};
use crate::error::RpcError;
use crate::policy::{AllowAll, Policy};
use crate::reftable::RefTable;
use crate::stats::DomainStats;
use crate::tls::{enter_domain, DomainId};
use parking_lot::{Mutex, RwLock};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Weak};

/// Lifecycle state of a domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DomainState {
    /// Accepting invocations.
    Active,
    /// A fault occurred and no recovery function brought the domain
    /// back; all invocations fail until one is installed and
    /// [`Domain::recover`] is called.
    Failed,
    /// Destroyed by the manager; terminal.
    Destroyed,
}

/// A recovery function: re-initializes a cleared domain. It runs inside
/// the domain and typically re-populates the reference table, "making the
/// failure transparent to clients".
pub type RecoveryFn = Box<dyn Fn(&Domain) + Send + Sync>;

pub(crate) struct DomainInner {
    id: DomainId,
    name: String,
    /// Lifecycle state as an atomic (0 = Active, 1 = Failed,
    /// 2 = Destroyed): the invocation fast path is a single load.
    state: AtomicU8,
    generation: AtomicU64,
    pub(crate) ref_table: RefTable,
    pub(crate) stats: DomainStats,
    /// True once a non-default policy is installed; lets the fast path
    /// skip the policy lock entirely for uninterposed domains.
    interposed: AtomicBool,
    /// When set, invocations measure and attribute cycles to the domain.
    pub(crate) accounting: AtomicBool,
    /// The isolation cost model every crossing of this boundary reports
    /// to (see [`crate::backend`]).
    pub(crate) backend: Arc<dyn IsolationBackend>,
    /// Cached `!backend.zero_cost()`: the hot path charges crossings
    /// only when true, so the default [`crate::backend::TypedSfi`]
    /// backend costs one predictable branch (the `interposed` trick).
    pub(crate) charged: bool,
    policy: RwLock<Arc<dyn Policy>>,
    recovery: Mutex<Option<Arc<RecoveryFn>>>,
}

impl DomainInner {
    pub(crate) fn id(&self) -> DomainId {
        self.id
    }

    /// Charge one boundary crossing to the backend. Free (one branch)
    /// under a zero-cost backend.
    #[inline]
    pub(crate) fn charge(&self, kind: Crossing, bytes: usize) {
        if self.charged {
            self.backend.crossing(self.id, kind, bytes);
        }
    }

    fn load_state(&self) -> DomainState {
        match self.state.load(Ordering::Acquire) {
            0 => DomainState::Active,
            1 => DomainState::Failed,
            _ => DomainState::Destroyed,
        }
    }

    fn store_state(&self, s: DomainState) {
        let raw = match s {
            DomainState::Active => 0,
            DomainState::Failed => 1,
            DomainState::Destroyed => 2,
        };
        self.state.store(raw, Ordering::Release);
    }

    /// The invocation fast path: one atomic state load, and a policy
    /// check only when a policy has actually been installed.
    #[inline]
    pub(crate) fn check_callable(
        &self,
        caller: DomainId,
        method: &'static str,
    ) -> Result<(), RpcError> {
        match self.load_state() {
            DomainState::Active => {}
            DomainState::Failed => {
                return Err(RpcError::DomainFailed { domain: self.id });
            }
            DomainState::Destroyed => {
                return Err(RpcError::DomainDestroyed { domain: self.id });
            }
        }
        // Calls from inside the domain itself are never interposed.
        if self.interposed.load(Ordering::Acquire)
            && caller != self.id
            && !self.policy.read().allow(caller, method)
        {
            self.stats.record_denial();
            return Err(RpcError::AccessDenied { caller, method });
        }
        Ok(())
    }
}

/// A handle to a protection domain. Cloning the handle does not clone the
/// domain; all clones refer to the same boundary.
#[derive(Clone)]
pub struct Domain {
    pub(crate) inner: Arc<DomainInner>,
}

impl Domain {
    fn new(id: DomainId, name: String, backend: Arc<dyn IsolationBackend>) -> Self {
        let charged = !backend.zero_cost();
        Self {
            inner: Arc::new(DomainInner {
                id,
                name,
                state: AtomicU8::new(0),
                generation: AtomicU64::new(0),
                ref_table: RefTable::new(),
                stats: DomainStats::new(),
                interposed: AtomicBool::new(false),
                accounting: AtomicBool::new(false),
                backend,
                charged,
                policy: RwLock::new(Arc::new(AllowAll)),
                recovery: Mutex::new(None),
            }),
        }
    }

    /// The domain's identifier.
    pub fn id(&self) -> DomainId {
        self.inner.id
    }

    /// The domain's human-readable name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Current lifecycle state.
    pub fn state(&self) -> DomainState {
        self.inner.load_state()
    }

    /// How many times the domain has been recovered from a fault.
    pub fn generation(&self) -> u64 {
        self.inner.generation.load(Ordering::Relaxed)
    }

    /// Invocation statistics.
    pub fn stats(&self) -> &DomainStats {
        &self.inner.stats
    }

    /// Number of objects currently exported through the reference table.
    pub fn exported_objects(&self) -> usize {
        self.inner.ref_table.len()
    }

    /// Enables or disables per-domain cycle accounting: while on, every
    /// invocation adds its in-domain time to
    /// [`DomainStats::cycles_in_domain`]. Off by default — the two TSC
    /// reads it costs would be visible at the ~90-cycle call scale.
    pub fn set_accounting(&self, on: bool) {
        self.inner.accounting.store(on, Ordering::Release);
    }

    /// Installs an interposition policy; replaces any previous policy.
    pub fn set_policy(&self, policy: impl Policy + 'static) {
        *self.inner.policy.write() = Arc::new(policy);
        self.inner.interposed.store(true, Ordering::Release);
    }

    /// Installs the recovery function run after a fault.
    pub fn set_recovery(&self, f: impl Fn(&Domain) + Send + Sync + 'static) {
        *self.inner.recovery.lock() = Some(Arc::new(Box::new(f)));
    }

    pub(crate) fn check_callable(
        &self,
        caller: DomainId,
        method: &'static str,
    ) -> Result<(), RpcError> {
        self.inner.check_callable(caller, method)
    }

    /// Runs `f` inside the domain: the current-domain marker is switched
    /// for the duration, and a panic in `f` is caught at this boundary
    /// and triggers fault handling.
    ///
    /// This is the "domain entry point" of the paper's listing:
    ///
    /// ```
    /// use rbs_sfi::{DomainManager, RRef};
    ///
    /// let mgr = DomainManager::new();
    /// let d = mgr.create_domain("storage").unwrap();
    /// let rref = d.execute(|| RRef::new(&d, vec![1u8, 2, 3])).unwrap();
    /// assert_eq!(rref.invoke(|v| v.len()).unwrap(), 3);
    /// ```
    pub fn execute<R>(&self, f: impl FnOnce() -> R) -> Result<R, RpcError> {
        self.check_callable(crate::tls::current_domain(), "execute")?;
        self.inner.charge(Crossing::Call, 0);
        let accounting = self.inner.accounting.load(Ordering::Acquire);
        let start = if accounting {
            rbs_core::cycles::rdtsc()
        } else {
            0
        };
        let _guard = enter_domain(self.id());
        match catch_unwind(AssertUnwindSafe(f)) {
            Ok(r) => {
                if accounting {
                    self.inner
                        .stats
                        .record_cycles(rbs_core::cycles::rdtsc().saturating_sub(start));
                }
                self.inner.stats.record_invocation();
                self.inner
                    .charge(Crossing::Return, std::mem::size_of::<R>());
                Ok(r)
            }
            Err(_) => {
                drop(_guard);
                self.handle_fault();
                Err(RpcError::Fault { domain: self.id() })
            }
        }
    }

    /// Charges one boundary crossing of `kind` carrying `bytes` to this
    /// domain's backend without entering the domain.
    ///
    /// This is the metering hook for transfers that move data across
    /// the boundary outside `execute`/channel plumbing — today the
    /// work-stealing path ([`Crossing::Steal`]), where the thief charges
    /// the transfer on its own domain. Free (one cached-bool branch)
    /// under a zero-cost backend, exactly like every other crossing.
    #[inline]
    pub fn meter_crossing(&self, kind: Crossing, bytes: usize) {
        self.inner.charge(kind, bytes);
    }

    /// Dedicates the current thread to this domain until the returned
    /// attachment drops (see [`crate::tls::attach_thread`]).
    ///
    /// Worker threads owned by a domain attach once at startup; their
    /// subsequent [`Domain::execute`] calls on the *same* domain then run
    /// with `caller == self`, so installed policies never interpose on
    /// the domain's own data path.
    ///
    /// Fails when the domain is not active — a supervisor must
    /// [`Domain::recover`] before respawning a worker onto it.
    pub fn attach_thread(&self) -> Result<crate::tls::ThreadAttachment, RpcError> {
        match self.state() {
            DomainState::Active => {
                if self.inner.charged {
                    self.inner.backend.thread_attached(self.id());
                }
                Ok(crate::tls::attach_thread(self.id()))
            }
            DomainState::Failed => Err(RpcError::DomainFailed { domain: self.id() }),
            DomainState::Destroyed => Err(RpcError::DomainDestroyed { domain: self.id() }),
        }
    }

    /// The fault-handling sequence: mark failed, poison the reference
    /// table (revoking every capability, freeing every exported object,
    /// and recording which objects are still pinned by in-flight
    /// invocations), then run the recovery function if one is installed.
    ///
    /// Returns `true` when the domain is active again.
    pub(crate) fn handle_fault(&self) -> bool {
        self.inner.stats.record_fault();
        self.inner.backend.domain_faulted(self.id());
        self.inner.store_state(DomainState::Failed);
        let (_revoked, inflight) = self.inner.ref_table.poison();
        self.inner.stats.record_inflight_at_fault(inflight as u64);
        self.try_recover()
    }

    /// Forcibly fails an active domain from the outside — the
    /// supervisor's tool for a domain whose thread is *hung* rather than
    /// panicking: no unwind will ever reach the boundary, so the
    /// watchdog declares the fault instead.
    ///
    /// Runs the same first two steps as panic handling (mark failed,
    /// poison the table so every capability — channels included — is
    /// revoked) but does **not** run the recovery function: the caller
    /// decides if and when to [`Domain::recover`], typically after its
    /// restart budget allows it. No-op unless the domain is active.
    pub fn force_fail(&self) -> bool {
        if self.state() != DomainState::Active {
            return false;
        }
        self.inner.stats.record_fault();
        self.inner.backend.domain_faulted(self.id());
        self.inner.store_state(DomainState::Failed);
        let (_revoked, inflight) = self.inner.ref_table.poison();
        self.inner.stats.record_inflight_at_fault(inflight as u64);
        true
    }

    /// Attempts recovery of a failed domain; also callable manually when
    /// a recovery function is installed after the fault.
    ///
    /// Returns `true` when the domain is active afterwards.
    pub fn recover(&self) -> bool {
        if self.state() != DomainState::Failed {
            return self.state() == DomainState::Active;
        }
        self.try_recover()
    }

    fn try_recover(&self) -> bool {
        let recovery = self.inner.recovery.lock().clone();
        let Some(recovery) = recovery else {
            return false;
        };
        // Before the table is reused, wait out invocations that were
        // mid-call on the dead generation's objects: their strong
        // references pin objects the fault already disowned. The wait is
        // bounded — a call that outlives it is counted as a leaked slot
        // rather than allowed to wedge recovery forever.
        let leaked = self
            .inner
            .ref_table
            .drain_inflight(std::time::Duration::from_millis(200));
        if leaked > 0 {
            self.inner.stats.record_leaked_slots(leaked as u64);
        }
        // Run the user function inside the domain. If recovery itself
        // panics, the domain stays failed.
        let guard = enter_domain(self.id());
        let outcome = catch_unwind(AssertUnwindSafe(|| recovery(self)));
        drop(guard);
        match outcome {
            Ok(()) => {
                self.inner.store_state(DomainState::Active);
                self.inner.generation.fetch_add(1, Ordering::Relaxed);
                self.inner.stats.record_recovery();
                self.inner.backend.domain_recovered(self.id());
                true
            }
            Err(_) => false,
        }
    }

    /// Destroys the domain: clears the table (freeing exported objects)
    /// and rejects all future calls. Idempotent.
    pub fn destroy(&self) {
        let was_live = self.state() != DomainState::Destroyed;
        self.inner.store_state(DomainState::Destroyed);
        self.inner.ref_table.clear();
        if was_live {
            self.inner.backend.domain_destroyed(self.id());
        }
    }

    /// The isolation backend this domain's crossings report to.
    pub fn backend(&self) -> &Arc<dyn IsolationBackend> {
        &self.inner.backend
    }
}

impl std::fmt::Debug for Domain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Domain")
            .field("id", &self.id())
            .field("name", &self.name())
            .field("state", &self.state())
            .field("generation", &self.generation())
            .field("exported_objects", &self.exported_objects())
            .finish()
    }
}

/// Errors from domain creation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DomainError {
    /// The manager's configured domain quota is exhausted.
    QuotaExceeded {
        /// The configured limit.
        limit: usize,
    },
}

impl std::fmt::Display for DomainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DomainError::QuotaExceeded { limit } => {
                write!(f, "domain quota of {limit} exhausted")
            }
        }
    }
}

impl std::error::Error for DomainError {}

/// Creates domains and controls their lifecycle.
#[derive(Clone)]
pub struct DomainManager {
    inner: Arc<ManagerInner>,
}

struct ManagerInner {
    next_id: AtomicU64,
    registry: Mutex<Vec<Weak<DomainInner>>>,
    max_domains: Option<usize>,
    backend: Arc<dyn IsolationBackend>,
}

impl DomainManager {
    /// A manager with no domain quota, on the default zero-cost
    /// [`crate::backend::TypedSfi`] backend.
    pub fn new() -> Self {
        Self::with_quota(None)
    }

    /// A manager that refuses to create more than `max` live domains.
    pub fn with_quota(max: Option<usize>) -> Self {
        Self::with_quota_and_backend(max, BackendKind::default().instantiate())
    }

    /// A manager whose domains run on one of the built-in isolation
    /// backends.
    pub fn with_backend_kind(kind: BackendKind) -> Self {
        Self::with_quota_and_backend(None, kind.instantiate())
    }

    /// A manager whose domains run on `backend`.
    pub fn with_backend(backend: Arc<dyn IsolationBackend>) -> Self {
        Self::with_quota_and_backend(None, backend)
    }

    /// A manager with both a domain quota and an isolation backend.
    pub fn with_quota_and_backend(max: Option<usize>, backend: Arc<dyn IsolationBackend>) -> Self {
        Self {
            inner: Arc::new(ManagerInner {
                next_id: AtomicU64::new(1), // 0 is KERNEL_DOMAIN
                registry: Mutex::new(Vec::new()),
                max_domains: max,
                backend,
            }),
        }
    }

    /// The isolation backend new domains are created on.
    pub fn backend(&self) -> &Arc<dyn IsolationBackend> {
        &self.inner.backend
    }

    /// Crossing totals accumulated by this manager's backend. Always
    /// zero under the default zero-cost backend (nothing is counted, by
    /// design — instrumentation would itself be a tax).
    pub fn backend_totals(&self) -> BackendTotals {
        self.inner.backend.stats()
    }

    /// Creates a new, active protection domain.
    pub fn create_domain(&self, name: impl Into<String>) -> Result<Domain, DomainError> {
        let mut registry = self.inner.registry.lock();
        registry.retain(|w| w.strong_count() > 0);
        if let Some(limit) = self.inner.max_domains {
            let live = registry
                .iter()
                .filter_map(Weak::upgrade)
                .filter(|d| d.load_state() != DomainState::Destroyed)
                .count();
            if live >= limit {
                return Err(DomainError::QuotaExceeded { limit });
            }
        }
        let id = DomainId::new(self.inner.next_id.fetch_add(1, Ordering::Relaxed));
        let domain = Domain::new(id, name.into(), Arc::clone(&self.inner.backend));
        registry.push(Arc::downgrade(&domain.inner));
        self.inner.backend.domain_created(id);
        Ok(domain)
    }

    /// All live (not dropped) domains, including failed/destroyed ones.
    pub fn domains(&self) -> Vec<Domain> {
        self.inner
            .registry
            .lock()
            .iter()
            .filter_map(Weak::upgrade)
            .map(|inner| Domain { inner })
            .collect()
    }

    /// Finds a live domain by id.
    pub fn find(&self, id: DomainId) -> Option<Domain> {
        self.domains().into_iter().find(|d| d.id() == id)
    }

    /// Destroys `domain` (same as [`Domain::destroy`], kept on the
    /// manager because destruction is a management-plane action).
    pub fn destroy_domain(&self, domain: &Domain) {
        domain.destroy();
    }
}

impl Default for DomainManager {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rref::RRef;
    use crate::tls::{current_domain, KERNEL_DOMAIN};

    #[test]
    fn create_assigns_unique_ids_and_names() {
        let mgr = DomainManager::new();
        let a = mgr.create_domain("a").unwrap();
        let b = mgr.create_domain("b").unwrap();
        assert_ne!(a.id(), b.id());
        assert_ne!(a.id(), KERNEL_DOMAIN);
        assert_eq!(a.name(), "a");
        assert_eq!(a.state(), DomainState::Active);
        assert_eq!(a.generation(), 0);
    }

    #[test]
    fn execute_runs_inside_domain() {
        let mgr = DomainManager::new();
        let d = mgr.create_domain("d").unwrap();
        assert_eq!(current_domain(), KERNEL_DOMAIN);
        let seen = d.execute(current_domain).unwrap();
        assert_eq!(seen, d.id());
        assert_eq!(current_domain(), KERNEL_DOMAIN);
    }

    #[test]
    fn execute_returns_values_by_move() {
        let mgr = DomainManager::new();
        let d = mgr.create_domain("d").unwrap();
        let v = d.execute(|| vec![1, 2, 3]).unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn panic_in_execute_fails_domain_without_recovery() {
        let mgr = DomainManager::new();
        let d = mgr.create_domain("d").unwrap();
        let err = d.execute(|| panic!("bug")).unwrap_err();
        assert_eq!(err, RpcError::Fault { domain: d.id() });
        assert_eq!(d.state(), DomainState::Failed);
        assert_eq!(d.stats().faults(), 1);
        // Subsequent calls are rejected.
        assert_eq!(
            d.execute(|| ()).unwrap_err(),
            RpcError::DomainFailed { domain: d.id() }
        );
    }

    #[test]
    fn recovery_reinitializes_and_bumps_generation() {
        let mgr = DomainManager::new();
        let d = mgr.create_domain("d").unwrap();
        d.set_recovery(|_d| { /* re-init from clean state */ });
        let err = d.execute(|| panic!("bug")).unwrap_err();
        assert_eq!(err, RpcError::Fault { domain: d.id() });
        assert_eq!(d.state(), DomainState::Active, "recovery should reactivate");
        assert_eq!(d.generation(), 1);
        assert_eq!(d.stats().recoveries(), 1);
        assert_eq!(d.execute(|| 42).unwrap(), 42);
    }

    #[test]
    fn fault_clears_reference_table() {
        let mgr = DomainManager::new();
        let d = mgr.create_domain("d").unwrap();
        let rref = d.execute(|| RRef::new(&d, 7u32)).unwrap();
        assert_eq!(d.exported_objects(), 1);
        let _ = d.execute(|| panic!("bug"));
        assert_eq!(d.exported_objects(), 0);
        assert_eq!(
            rref.invoke(|v| *v).unwrap_err(),
            RpcError::Poisoned { domain: d.id() }
        );
    }

    #[test]
    fn force_fail_poisons_without_recovery() {
        let mgr = DomainManager::new();
        let d = mgr.create_domain("d").unwrap();
        // Recovery is installed but must NOT run: force_fail is the
        // supervisor's hammer for hung workers, and the supervisor
        // decides when (and on what) to respawn.
        d.set_recovery(|_| ());
        let rref = d.execute(|| RRef::new(&d, 9u32)).unwrap();
        assert!(d.force_fail());
        assert_eq!(d.state(), DomainState::Failed);
        assert_eq!(d.stats().faults(), 1);
        assert_eq!(d.stats().recoveries(), 0);
        assert_eq!(
            rref.invoke(|v| *v).unwrap_err(),
            RpcError::Poisoned { domain: d.id() }
        );
        // Idempotent: only the Active→Failed transition counts.
        assert!(!d.force_fail());
        assert_eq!(d.stats().faults(), 1);
        // The domain is still recoverable afterwards, on the
        // supervisor's schedule.
        assert!(d.recover());
        assert_eq!(d.state(), DomainState::Active);
    }

    #[test]
    fn recovery_can_repopulate_table() {
        let mgr = DomainManager::new();
        let d = mgr.create_domain("d").unwrap();
        let d2 = d.clone();
        d.set_recovery(move |dom| {
            let _ = RRef::new(dom, 0u32);
        });
        let _ = d2.execute(|| RRef::new(&d2, 1u32)).unwrap();
        let _ = d2.execute(|| panic!("bug"));
        assert_eq!(d2.state(), DomainState::Active);
        assert_eq!(d2.exported_objects(), 1, "recovery repopulated the table");
    }

    #[test]
    fn panicking_recovery_leaves_domain_failed() {
        let mgr = DomainManager::new();
        let d = mgr.create_domain("d").unwrap();
        d.set_recovery(|_| panic!("recovery is broken too"));
        let _ = d.execute(|| panic!("bug"));
        assert_eq!(d.state(), DomainState::Failed);
        assert_eq!(d.stats().recoveries(), 0);
    }

    #[test]
    fn late_recovery_installation() {
        let mgr = DomainManager::new();
        let d = mgr.create_domain("d").unwrap();
        let _ = d.execute(|| panic!("bug"));
        assert_eq!(d.state(), DomainState::Failed);
        assert!(!d.recover(), "no recovery function installed yet");
        d.set_recovery(|_| ());
        assert!(d.recover());
        assert_eq!(d.state(), DomainState::Active);
    }

    #[test]
    fn recover_on_active_domain_is_noop_true() {
        let mgr = DomainManager::new();
        let d = mgr.create_domain("d").unwrap();
        assert!(d.recover());
        assert_eq!(d.generation(), 0);
    }

    #[test]
    fn destroy_is_terminal() {
        let mgr = DomainManager::new();
        let d = mgr.create_domain("d").unwrap();
        let rref = d.execute(|| RRef::new(&d, 1u8)).unwrap();
        mgr.destroy_domain(&d);
        assert_eq!(d.state(), DomainState::Destroyed);
        assert_eq!(rref.invoke(|v| *v).unwrap_err(), RpcError::Revoked);
        assert_eq!(
            d.execute(|| ()).unwrap_err(),
            RpcError::DomainDestroyed { domain: d.id() }
        );
        d.destroy(); // idempotent
        assert_eq!(d.state(), DomainState::Destroyed);
    }

    #[test]
    fn quota_enforced_and_released() {
        let mgr = DomainManager::with_quota(Some(2));
        let a = mgr.create_domain("a").unwrap();
        let _b = mgr.create_domain("b").unwrap();
        assert_eq!(
            mgr.create_domain("c").unwrap_err(),
            DomainError::QuotaExceeded { limit: 2 }
        );
        // Destroying one frees a slot.
        a.destroy();
        assert!(mgr.create_domain("c").is_ok());
    }

    #[test]
    fn registry_lists_and_finds() {
        let mgr = DomainManager::new();
        let a = mgr.create_domain("a").unwrap();
        let b = mgr.create_domain("b").unwrap();
        let ids: Vec<_> = mgr.domains().iter().map(Domain::id).collect();
        assert!(ids.contains(&a.id()) && ids.contains(&b.id()));
        assert_eq!(mgr.find(a.id()).unwrap().name(), "a");
        drop(b);
        // Dropped handles disappear from the registry lazily.
        let mgr2 = mgr.clone();
        let _ = mgr2.create_domain("c").unwrap();
        assert!(mgr.domains().iter().all(|d| d.name() != "b"));
    }

    #[test]
    fn execute_respects_policy_for_external_callers() {
        let mgr = DomainManager::new();
        let d = mgr.create_domain("d").unwrap();
        d.set_policy(crate::policy::DenyAll);
        let err = d.execute(|| 1).unwrap_err();
        assert!(matches!(
            err,
            RpcError::AccessDenied {
                method: "execute",
                ..
            }
        ));
        assert_eq!(d.stats().denials(), 1);
    }

    #[test]
    fn quota_none_is_unlimited() {
        let mgr = DomainManager::new();
        for i in 0..64 {
            mgr.create_domain(format!("d{i}")).unwrap();
        }
    }

    #[test]
    fn debug_output() {
        let mgr = DomainManager::new();
        let d = mgr.create_domain("dbg").unwrap();
        let s = format!("{d:?}");
        assert!(s.contains("dbg"));
        assert!(s.contains("Active"));
    }
}
