//! Remote references.
//!
//! An [`RRef<T>`] is the paper's rref smart pointer: the object it names
//! stays in its home domain's reference table, and holders reach it only
//! through proxied invocation. Concretely the rref holds a *weak*
//! pointer to the table entry; each invocation upgrades it ("a weak
//! pointer ... must be upgraded to a strong pointer before use"), so a
//! revoked or recovered domain makes every outstanding rref fail with
//! [`RpcError::Revoked`] instead of touching freed state.
//!
//! # Ownership across the boundary
//!
//! Invocation closures follow Rust's ordinary capture rules, which is
//! exactly the paper's cross-domain semantics:
//!
//! - a closure capturing `&x` grants the callee access *for the duration
//!   of the call*;
//! - a `move` closure transfers ownership permanently — after the call
//!   the sender provably cannot touch the value:
//!
//! ```compile_fail
//! use rbs_sfi::{DomainManager, RRef};
//!
//! let mgr = DomainManager::new();
//! let d = mgr.create_domain("sink").unwrap();
//! let rref = d.execute(|| RRef::new(&d, Vec::<Vec<u8>>::new())).unwrap();
//!
//! let buffer = vec![1u8, 2, 3];
//! rref.invoke_mut(move |sink| sink.push(buffer)).unwrap();
//! // ERROR: `buffer` was moved into the other domain; zero-copy SFI
//! // means the sender loses access, enforced at compile time.
//! let _ = buffer.len();
//! ```

use crate::domain::{Domain, DomainInner};
use crate::error::RpcError;
use crate::reftable::SlotHandle;
use crate::tls::{current_domain, enter_domain};
use parking_lot::Mutex;
use rbs_core::Exchangeable;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Weak};

/// A remote reference to a `T` living in another protection domain.
///
/// Cloning an `RRef` clones the *capability*, not the object; all clones
/// are revoked together.
pub struct RRef<T: Send + 'static> {
    weak: Weak<Mutex<T>>,
    home: Arc<DomainInner>,
    slot: SlotHandle,
}

impl<T: Send + 'static> Clone for RRef<T> {
    fn clone(&self) -> Self {
        Self {
            weak: self.weak.clone(),
            home: Arc::clone(&self.home),
            slot: self.slot,
        }
    }
}

impl<T: Send + 'static> RRef<T> {
    /// Exports `value` from `home`, placing the object in the domain's
    /// reference table and returning the remote reference.
    ///
    /// The object itself never moves again: it is owned by the table
    /// until revocation, fault, or destruction.
    pub fn new(home: &Domain, value: T) -> Self {
        let strong = Arc::new(Mutex::new(value));
        let weak = Arc::downgrade(&strong);
        let slot = home.inner.ref_table.insert(strong);
        Self {
            weak,
            home: Arc::clone(&home.inner),
            slot,
        }
    }

    /// The id of the domain the object lives in.
    pub fn home_domain(&self) -> crate::tls::DomainId {
        self.home.id()
    }

    fn home_domain_handle(&self) -> Domain {
        Domain {
            inner: Arc::clone(&self.home),
        }
    }

    /// True while the reference has not been revoked.
    pub fn is_alive(&self) -> bool {
        self.weak.strong_count() > 0
    }

    /// Revokes this reference (and all its clones) by removing the proxy
    /// from the home domain's table. Returns `true` if this call did the
    /// revocation, `false` if it was already gone.
    ///
    /// The object is deallocated here unless an invocation is currently
    /// executing on another thread, in which case it is freed when that
    /// call completes.
    pub fn revoke(&self) -> bool {
        self.home.ref_table.remove(self.slot).is_some()
    }

    /// Invokes `f` with shared access to the object, under the method
    /// name `"invoke"`. See [`RRef::invoke_named`].
    pub fn invoke<R: Exchangeable>(&self, f: impl FnOnce(&T) -> R) -> Result<R, RpcError> {
        self.invoke_named("invoke", f)
    }

    /// Invokes `f` with exclusive access to the object, under the method
    /// name `"invoke"`. See [`RRef::invoke_mut_named`].
    pub fn invoke_mut<R: Exchangeable>(&self, f: impl FnOnce(&mut T) -> R) -> Result<R, RpcError> {
        self.invoke_mut_named("invoke", f)
    }

    /// Remote invocation with a method name for the interposition
    /// policy: upgrade the weak proxy, check domain state and policy,
    /// switch the current-domain marker, run `f` with shared access.
    ///
    /// On callee panic the stack unwinds to this boundary, the home
    /// domain's fault handling runs (table clear + recovery), and the
    /// caller gets [`RpcError::Fault`].
    ///
    /// # Deadlocks
    ///
    /// Re-entrant invocation on the same object from within `f`
    /// deadlocks, like any mutex re-entry. Cross-object and cross-domain
    /// nesting is fine.
    pub fn invoke_named<R: Exchangeable>(
        &self,
        method: &'static str,
        f: impl FnOnce(&T) -> R,
    ) -> Result<R, RpcError> {
        self.call(method, |obj| f(&*obj))
    }

    /// Like [`RRef::invoke_named`] with exclusive access.
    pub fn invoke_mut_named<R: Exchangeable>(
        &self,
        method: &'static str,
        f: impl FnOnce(&mut T) -> R,
    ) -> Result<R, RpcError> {
        self.call(method, f)
    }

    fn call<R: Exchangeable>(
        &self,
        method: &'static str,
        f: impl FnOnce(&mut T) -> R,
    ) -> Result<R, RpcError> {
        // Upgrade the weak proxy first; failure means the capability was
        // revoked (explicitly, by fault cleanup, or by destruction) — the
        // paper's "fail to upgrade the weak pointer and ... return an
        // error". Domain state is checked second, for the window where an
        // entry is still live but the domain is failed or destroyed.
        let Some(strong) = self.weak.upgrade() else {
            self.home.stats.record_revoked_call();
            // Distinguish a capability that died with a fault (its epoch
            // was poisoned by fault cleanup) from a clean revocation.
            if self.home.ref_table.handle_poisoned(self.slot) {
                return Err(RpcError::Poisoned {
                    domain: self.home.id(),
                });
            }
            return Err(RpcError::Revoked);
        };
        self.home.check_callable(current_domain(), method)?;
        // Entering the home domain is a boundary crossing; the return
        // value moving back out is the second one.
        self.home.charge(crate::backend::Crossing::Call, 0);
        let accounting = self
            .home
            .accounting
            .load(std::sync::atomic::Ordering::Acquire);
        let start = if accounting {
            rbs_core::cycles::rdtsc()
        } else {
            0
        };
        let guard = enter_domain(self.home_domain());
        let mut obj = strong.lock();
        let outcome = catch_unwind(AssertUnwindSafe(|| f(&mut obj)));
        drop(obj);
        drop(strong);
        drop(guard);
        if accounting {
            self.home
                .stats
                .record_cycles(rbs_core::cycles::rdtsc().saturating_sub(start));
        }
        match outcome {
            Ok(r) => {
                self.home.stats.record_invocation();
                self.home
                    .charge(crate::backend::Crossing::Return, std::mem::size_of::<R>());
                Ok(r)
            }
            Err(_) => {
                let home = self.home_domain_handle();
                home.handle_fault();
                Err(RpcError::Fault { domain: home.id() })
            }
        }
    }
}

impl<T: Send + 'static> std::fmt::Debug for RRef<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RRef")
            .field("home", &self.home_domain())
            .field("alive", &self.is_alive())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::{DomainManager, DomainState};
    use crate::policy::AclPolicy;
    use crate::tls::KERNEL_DOMAIN;

    fn setup() -> (DomainManager, Domain) {
        let mgr = DomainManager::new();
        let d = mgr.create_domain("test").unwrap();
        (mgr, d)
    }

    #[test]
    fn paper_listing_shape() {
        // Mirrors the listing in §3: create a PD, create an object inside
        // it wrapped in an RRef, invoke it from outside, handle errors.
        let (_mgr, d) = setup();
        let rref = d.execute(|| RRef::new(&d, String::from("obj"))).unwrap();
        match rref.invoke_named("method1", |s| s.len()) {
            Ok(ret) => assert_eq!(ret, 3),
            Err(e) => panic!("method1() failed: {e}"),
        }
    }

    #[test]
    fn invoke_runs_in_home_domain() {
        let (_mgr, d) = setup();
        let rref = RRef::new(&d, ());
        let seen = rref.invoke(|_| current_domain()).unwrap();
        assert_eq!(seen, d.id());
        assert_eq!(current_domain(), KERNEL_DOMAIN);
    }

    #[test]
    fn invoke_mut_mutates() {
        let (_mgr, d) = setup();
        let rref = RRef::new(&d, 0u64);
        for _ in 0..5 {
            rref.invoke_mut(|v| *v += 1).unwrap();
        }
        assert_eq!(rref.invoke(|v| *v).unwrap(), 5);
        assert_eq!(d.stats().invocations(), 6);
    }

    #[test]
    fn ownership_transfer_into_domain() {
        let (_mgr, d) = setup();
        let rref = RRef::new(&d, Vec::<String>::new());
        let s = String::from("moved across the boundary");
        rref.invoke_mut(move |sink| sink.push(s)).unwrap();
        // `s` is gone from this scope (see the compile_fail doctest).
        assert_eq!(rref.invoke(|v| v.len()).unwrap(), 1);
    }

    #[test]
    fn borrowed_arguments_for_call_duration() {
        let (_mgr, d) = setup();
        let rref = RRef::new(&d, 10u32);
        let local = 32u32;
        // The callee borrows `local` only for the duration of the call.
        let sum = rref.invoke(|v| *v + local).unwrap();
        assert_eq!(sum, 42);
        assert_eq!(local, 32, "caller keeps its borrowed value");
    }

    #[test]
    fn revoke_kills_all_clones() {
        let (_mgr, d) = setup();
        let a = RRef::new(&d, 1u8);
        let b = a.clone();
        assert!(a.is_alive() && b.is_alive());
        assert!(b.revoke());
        assert!(!a.revoke(), "second revoke is a no-op");
        assert_eq!(a.invoke(|v| *v).unwrap_err(), RpcError::Revoked);
        assert_eq!(b.invoke(|v| *v).unwrap_err(), RpcError::Revoked);
        assert_eq!(d.stats().revoked_calls(), 2);
        assert!(!a.is_alive());
    }

    #[test]
    fn revocation_deallocates_object() {
        struct DropFlag(Arc<std::sync::atomic::AtomicBool>);
        impl Drop for DropFlag {
            fn drop(&mut self) {
                self.0.store(true, std::sync::atomic::Ordering::SeqCst);
            }
        }
        let dropped = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let (_mgr, d) = setup();
        let rref = RRef::new(&d, DropFlag(Arc::clone(&dropped)));
        assert!(!dropped.load(std::sync::atomic::Ordering::SeqCst));
        rref.revoke();
        assert!(
            dropped.load(std::sync::atomic::Ordering::SeqCst),
            "revocation must free the object"
        );
    }

    #[test]
    fn callee_panic_faults_domain_and_revokes_everything() {
        let (_mgr, d) = setup();
        let a = RRef::new(&d, 1u32);
        let b = RRef::new(&d, 2u32);
        let err = a.invoke(|_| -> u32 { panic!("callee bug") }).unwrap_err();
        assert_eq!(err, RpcError::Fault { domain: d.id() });
        assert_eq!(d.state(), DomainState::Failed);
        // The *other* object is torn down too: fault cleanup poisons the
        // whole table, so its weak proxy no longer upgrades — and the
        // error says it died with the fault, not that it was revoked.
        assert_eq!(
            b.invoke(|v| *v).unwrap_err(),
            RpcError::Poisoned { domain: d.id() }
        );
    }

    #[test]
    fn recovery_makes_failure_transparent_via_new_rrefs() {
        let (_mgr, d) = setup();
        d.set_recovery(|_| ());
        let old = RRef::new(&d, 7u32);
        let _ = old.invoke(|_| -> u32 { panic!("bug") });
        assert_eq!(d.state(), DomainState::Active);
        // Old rrefs report the fault that killed them; fresh exports work.
        assert_eq!(
            old.invoke(|v| *v).unwrap_err(),
            RpcError::Poisoned { domain: d.id() }
        );
        let fresh = RRef::new(&d, 8u32);
        assert_eq!(fresh.invoke(|v| *v).unwrap(), 8);
    }

    #[test]
    fn policy_interposes_on_named_methods() {
        let (_mgr, d) = setup();
        d.set_policy(AclPolicy::new().grant(KERNEL_DOMAIN, "read"));
        let rref = RRef::new(&d, 5u32);
        assert_eq!(rref.invoke_named("read", |v| *v).unwrap(), 5);
        let err = rref.invoke_mut_named("write", |v| *v = 6).unwrap_err();
        assert_eq!(
            err,
            RpcError::AccessDenied {
                caller: KERNEL_DOMAIN,
                method: "write"
            }
        );
        assert_eq!(d.stats().denials(), 1);
        // Denied call must not have touched the object.
        assert_eq!(rref.invoke_named("read", |v| *v).unwrap(), 5);
    }

    #[test]
    fn calls_from_inside_domain_bypass_policy() {
        let (_mgr, d) = setup();
        d.set_policy(crate::policy::DenyAll);
        let rref = RRef::new(&d, 1u32);
        // From kernel: denied.
        assert!(matches!(
            rref.invoke(|v| *v),
            Err(RpcError::AccessDenied { .. })
        ));
        // From the domain itself: allowed (intra-domain calls are not
        // remote invocations). Enter via tls directly since execute() is
        // itself interposed.
        let guard = crate::tls::enter_domain(d.id());
        assert_eq!(rref.invoke(|v| *v).unwrap(), 1);
        drop(guard);
    }

    #[test]
    fn cross_domain_call_chains() {
        // Domain A holds a counter; domain B holds an object whose method
        // calls into A — nested remote invocation.
        let mgr = DomainManager::new();
        let a = mgr.create_domain("a").unwrap();
        let b = mgr.create_domain("b").unwrap();
        let counter = RRef::new(&a, 0u64);
        let proxy = RRef::new(&b, counter.clone());
        let v = proxy
            .invoke(|inner| {
                inner.invoke_mut(|c| {
                    *c += 1;
                    *c
                })
            })
            .unwrap()
            .unwrap();
        assert_eq!(v, 1);
        assert_eq!(current_domain(), KERNEL_DOMAIN);
    }

    #[test]
    fn concurrent_invocations_serialize() {
        let (_mgr, d) = setup();
        let rref = RRef::new(&d, 0u64);
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let r = rref.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        r.invoke_mut(|v| *v += 1).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(rref.invoke(|v| *v).unwrap(), 8000);
    }

    #[test]
    fn pre_fault_rref_is_poisoned_after_fault() {
        let (_mgr, d) = setup();
        let rref = RRef::new(&d, 1u32);
        let _ = d.execute(|| panic!("bug"));
        assert_eq!(
            rref.invoke(|v| *v).unwrap_err(),
            RpcError::Poisoned { domain: d.id() }
        );
    }

    #[test]
    fn live_rref_in_failed_domain_reports_domain_failed() {
        // Exporting from a failed domain produces a live table entry, so
        // the upgrade succeeds and the state check fires instead.
        let (_mgr, d) = setup();
        let _ = d.execute(|| panic!("bug"));
        assert_eq!(d.state(), DomainState::Failed);
        let rref = RRef::new(&d, 1u32);
        assert_eq!(
            rref.invoke(|v| *v).unwrap_err(),
            RpcError::DomainFailed { domain: d.id() }
        );
    }

    #[test]
    fn debug_formatting() {
        let (_mgr, d) = setup();
        let rref = RRef::new(&d, 1u32);
        let s = format!("{rref:?}");
        assert!(s.contains("alive: true"), "{s}");
    }

    #[test]
    fn accounting_attributes_cycles_when_enabled() {
        let (_mgr, d) = setup();
        let rref = RRef::new(&d, 0u64);
        // Disabled by default: no cycles attributed.
        rref.invoke_mut(|v| *v += 1).unwrap();
        assert_eq!(d.stats().cycles_in_domain(), 0);

        d.set_accounting(true);
        rref.invoke_mut(|v| {
            for i in 0..50_000u64 {
                *v = v.wrapping_add(std::hint::black_box(i));
            }
        })
        .unwrap();
        let after_work = d.stats().cycles_in_domain();
        assert!(
            after_work > 1_000,
            "50k additions cost real cycles: {after_work}"
        );

        // Turning it back off freezes the counter.
        d.set_accounting(false);
        rref.invoke_mut(|v| *v += 1).unwrap();
        assert_eq!(d.stats().cycles_in_domain(), after_work);
    }

    #[test]
    fn accounting_covers_execute_too() {
        let (_mgr, d) = setup();
        d.set_accounting(true);
        d.execute(|| {
            let mut acc = 0u64;
            for i in 0..10_000u64 {
                acc = acc.wrapping_add(std::hint::black_box(i));
            }
            std::hint::black_box(acc);
        })
        .unwrap();
        assert!(d.stats().cycles_in_domain() > 0);
    }
}
