//! Thread-local tracking of the current protection domain.
//!
//! The paper: "we use thread-local store [7] to store ID of the current
//! protection domain." Every cross-domain invocation swaps the marker for
//! the duration of the call (scoped-tls style: set, run, restore), so
//! code can always ask "which domain am I executing in?" — the policy
//! layer uses this to identify the *caller* of a remote invocation.

use std::cell::Cell;
use std::fmt;

/// An opaque protection-domain identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DomainId(u64);

impl DomainId {
    /// Constructs an id from its raw value (the manager allocates these).
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// The raw value.
    pub const fn raw(&self) -> u64 {
        self.0
    }
}

impl fmt::Debug for DomainId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == KERNEL_DOMAIN {
            write!(f, "DomainId(kernel)")
        } else {
            write!(f, "DomainId({})", self.0)
        }
    }
}

/// The distinguished domain of code that runs outside any created domain
/// (the "domain manager" context in the paper's listing).
pub const KERNEL_DOMAIN: DomainId = DomainId::new(0);

thread_local! {
    static CURRENT_DOMAIN: Cell<DomainId> = const { Cell::new(KERNEL_DOMAIN) };
}

/// The domain the current thread is executing in.
pub fn current_domain() -> DomainId {
    CURRENT_DOMAIN.with(Cell::get)
}

/// Sets the current domain for the lifetime of the returned guard;
/// restores the previous value on drop (including drop during unwind,
/// which is what lets a domain fault leave the marker consistent).
pub fn enter_domain(id: DomainId) -> DomainGuard {
    let previous = CURRENT_DOMAIN.with(|c| c.replace(id));
    DomainGuard { previous }
}

/// Restores the previous current-domain marker on drop.
#[must_use = "dropping the guard immediately exits the domain"]
pub struct DomainGuard {
    previous: DomainId,
}

impl Drop for DomainGuard {
    fn drop(&mut self) {
        CURRENT_DOMAIN.with(|c| c.set(self.previous));
    }
}

/// Dedicates the *whole current thread* to `id` until the returned guard
/// drops.
///
/// [`enter_domain`] scopes one cross-domain call; this scopes a thread's
/// lifetime. A worker thread owned by a domain attaches once at startup,
/// and from then on every `Domain::execute` on its own domain sees
/// `caller == self` — the policy interposition on the invocation fast
/// path is skipped, which is what makes a per-worker domain affordable on
/// the per-batch path.
///
/// # Panics
///
/// Panics when the thread is already inside a domain (attached or mid
/// cross-domain call): a dedicated thread must start from kernel context,
/// otherwise the marker discipline of nested [`DomainGuard`]s would be
/// silently broken.
pub fn attach_thread(id: DomainId) -> ThreadAttachment {
    let current = current_domain();
    assert_eq!(
        current, KERNEL_DOMAIN,
        "cannot attach a thread already executing in {current:?}"
    );
    CURRENT_DOMAIN.with(|c| c.set(id));
    ThreadAttachment { id }
}

/// Marks the thread as dedicated to one domain; detaches (restoring
/// kernel context) on drop — including drop during unwind, so a worker
/// panic leaves the thread reusable.
#[must_use = "dropping the attachment immediately detaches the thread"]
pub struct ThreadAttachment {
    id: DomainId,
}

impl ThreadAttachment {
    /// The domain this thread is dedicated to.
    pub fn domain(&self) -> DomainId {
        self.id
    }
}

impl Drop for ThreadAttachment {
    fn drop(&mut self) {
        CURRENT_DOMAIN.with(|c| c.set(KERNEL_DOMAIN));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_kernel() {
        assert_eq!(current_domain(), KERNEL_DOMAIN);
    }

    #[test]
    fn guard_sets_and_restores() {
        let d = DomainId::new(7);
        {
            let _g = enter_domain(d);
            assert_eq!(current_domain(), d);
        }
        assert_eq!(current_domain(), KERNEL_DOMAIN);
    }

    #[test]
    fn guards_nest() {
        let a = DomainId::new(1);
        let b = DomainId::new(2);
        let _ga = enter_domain(a);
        {
            let _gb = enter_domain(b);
            assert_eq!(current_domain(), b);
        }
        assert_eq!(current_domain(), a);
    }

    #[test]
    fn guard_restores_during_unwind() {
        let d = DomainId::new(9);
        let r = std::panic::catch_unwind(|| {
            let _g = enter_domain(d);
            panic!("boom");
        });
        assert!(r.is_err());
        assert_eq!(current_domain(), KERNEL_DOMAIN);
    }

    #[test]
    fn ids_are_per_thread() {
        let d = DomainId::new(4);
        let _g = enter_domain(d);
        std::thread::spawn(|| {
            assert_eq!(current_domain(), KERNEL_DOMAIN);
        })
        .join()
        .unwrap();
        assert_eq!(current_domain(), d);
    }

    #[test]
    fn debug_formatting() {
        assert_eq!(format!("{KERNEL_DOMAIN:?}"), "DomainId(kernel)");
        assert_eq!(format!("{:?}", DomainId::new(3)), "DomainId(3)");
    }

    #[test]
    fn attach_dedicates_thread_until_drop() {
        std::thread::spawn(|| {
            let d = DomainId::new(11);
            {
                let att = attach_thread(d);
                assert_eq!(att.domain(), d);
                assert_eq!(current_domain(), d);
                // Scoped calls still nest on top of the attachment.
                {
                    let _g = enter_domain(DomainId::new(12));
                    assert_eq!(current_domain(), DomainId::new(12));
                }
                assert_eq!(current_domain(), d);
            }
            assert_eq!(current_domain(), KERNEL_DOMAIN);
        })
        .join()
        .unwrap();
    }

    #[test]
    fn attach_detaches_during_unwind() {
        std::thread::spawn(|| {
            let r = std::panic::catch_unwind(|| {
                let _att = attach_thread(DomainId::new(21));
                panic!("worker died");
            });
            assert!(r.is_err());
            assert_eq!(current_domain(), KERNEL_DOMAIN);
        })
        .join()
        .unwrap();
    }

    #[test]
    fn double_attach_panics() {
        std::thread::spawn(|| {
            let _att = attach_thread(DomainId::new(31));
            let r = std::panic::catch_unwind(|| attach_thread(DomainId::new(32)));
            assert!(r.is_err());
        })
        .join()
        .unwrap();
    }
}
