//! The linear recycle path: returning spent resources across domains.
//!
//! A buffer pool only stays allocation-free if spent buffers find their
//! way *back*. In shared-memory systems that return path is where the
//! bugs live: a consumer that recycles a buffer while still holding a
//! pointer into it corrupts whoever takes it next. Here the return path
//! is just another ownership transfer over a [`channel`](crate::channel):
//! a worker can only `give` a value it owns, and giving moves it — after
//! the call the worker provably holds nothing (§3's channel semantics,
//! applied in reverse).
//!
//! Two deliberate asymmetries versus the forward data path:
//!
//! - **`give` never blocks and never fails loudly.** Recycling is an
//!   optimization, not a correctness obligation: if the return queue is
//!   full (or the pool's domain is gone), the value is simply dropped and
//!   its memory goes back to the global allocator. The caller learns via
//!   the `bool` so it can count drops, but no worker ever stalls on
//!   recycling.
//! - **Loss is safe by construction.** A domain that faults with
//!   in-flight values never sends them back — they drop during unwind.
//!   That is exactly the behavior a poisoned domain needs: its buffers
//!   *must not* be recycled (the fault may have left them mid-rewrite),
//!   and ownership guarantees they cannot be. The pool observes the leak
//!   as `outstanding`, never as corruption.

use crate::channel::{channel, channel_metered, DomainReceiver, DomainSender};
use crate::domain::Domain;
use rbs_core::Exchangeable;
use std::fmt;

/// The give half of a recycle path: held by workers/sinks, feeds the
/// pool owner's domain.
pub struct RecycleSender<T: Exchangeable> {
    inner: DomainSender<T>,
}

impl<T: Exchangeable> Clone for RecycleSender<T> {
    fn clone(&self) -> Self {
        Self {
            inner: self.inner.clone(),
        }
    }
}

impl<T: Exchangeable> RecycleSender<T> {
    /// Moves `value` back toward the pool. Returns `true` if it was
    /// queued for reclamation, `false` if it was dropped instead
    /// (queue full or path revoked) — never blocks either way.
    pub fn give(&self, value: T) -> bool {
        self.inner.try_send(value).is_ok()
    }

    /// True while the reclaiming domain still accepts returns.
    pub fn is_open(&self) -> bool {
        self.inner.is_open()
    }
}

impl<T: Exchangeable> fmt::Debug for RecycleSender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RecycleSender")
            .field("open", &self.is_open())
            .finish()
    }
}

/// The reclaim half, owned by the pool's home domain.
pub struct RecycleReceiver<T: Exchangeable> {
    inner: DomainReceiver<T>,
}

impl<T: Exchangeable> RecycleReceiver<T> {
    /// Drains every value currently queued, handing each to `f`
    /// (typically `pool.recycle_batch`). Returns how many were
    /// reclaimed. Never blocks.
    pub fn reclaim(&self, mut f: impl FnMut(T)) -> usize {
        let mut n = 0;
        while let Ok(v) = self.inner.try_recv() {
            f(v);
            n += 1;
        }
        n
    }

    /// Values queued but not yet reclaimed.
    pub fn pending(&self) -> usize {
        self.inner.len()
    }

    /// Closes the path: queued values remain reclaimable, new `give`s
    /// start dropping.
    pub fn revoke(&self) -> bool {
        self.inner.revoke()
    }
}

impl<T: Exchangeable> fmt::Debug for RecycleReceiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RecycleReceiver")
            .field("pending", &self.pending())
            .finish()
    }
}

/// Creates a bounded recycle path into `home` (the domain that owns the
/// pool). The sender is cloneable — every worker gets one.
pub fn recycle_path<T: Exchangeable>(
    home: &Domain,
    capacity: usize,
) -> (RecycleSender<T>, RecycleReceiver<T>) {
    let (tx, rx) = channel(home, capacity);
    (RecycleSender { inner: tx }, RecycleReceiver { inner: rx })
}

/// Like [`recycle_path`], with an explicit boundary meter (see
/// [`channel_metered`]): a charging isolation backend bills the give and
/// reclaim hand-offs by the bytes `meter` reports, since spent buffers
/// crossing back are domain crossings too.
pub fn recycle_path_metered<T: Exchangeable>(
    home: &Domain,
    capacity: usize,
    meter: fn(&T) -> usize,
) -> (RecycleSender<T>, RecycleReceiver<T>) {
    let (tx, rx) = channel_metered(home, capacity, meter);
    (RecycleSender { inner: tx }, RecycleReceiver { inner: rx })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::DomainManager;

    fn home() -> Domain {
        DomainManager::new().create_domain("pool-home").unwrap()
    }

    #[test]
    fn values_round_trip() {
        let d = home();
        let (tx, rx) = recycle_path::<Vec<u8>>(&d, 8);
        assert!(tx.give(vec![1, 2, 3]));
        assert!(tx.give(vec![4]));
        assert_eq!(rx.pending(), 2);
        let mut got = Vec::new();
        assert_eq!(rx.reclaim(|v| got.push(v)), 2);
        assert_eq!(got, vec![vec![1, 2, 3], vec![4]]);
        assert_eq!(rx.reclaim(|_| unreachable!("queue is empty")), 0);
    }

    #[test]
    fn full_queue_drops_instead_of_blocking() {
        let d = home();
        let (tx, rx) = recycle_path::<u32>(&d, 2);
        assert!(tx.give(1));
        assert!(tx.give(2));
        let start = std::time::Instant::now();
        assert!(!tx.give(3), "full path drops, never blocks");
        assert!(start.elapsed() < std::time::Duration::from_millis(100));
        let mut got = Vec::new();
        rx.reclaim(|v| got.push(v));
        assert_eq!(got, vec![1, 2], "dropped value never arrives");
    }

    #[test]
    fn revoked_path_drops_but_drains_queue() {
        let d = home();
        let (tx, rx) = recycle_path::<u32>(&d, 4);
        assert!(tx.give(7));
        assert!(rx.revoke());
        assert!(!tx.is_open());
        assert!(!tx.give(8), "give after revoke is a silent drop");
        let mut got = Vec::new();
        assert_eq!(rx.reclaim(|v| got.push(v)), 1);
        assert_eq!(got, vec![7]);
    }

    #[test]
    fn domain_fault_closes_the_path() {
        let d = home();
        let (tx, _rx) = recycle_path::<u32>(&d, 4);
        let _ = d.execute(|| panic!("fault"));
        assert!(!tx.is_open());
        assert!(!tx.give(1));
    }

    #[test]
    fn clones_feed_one_receiver() {
        let d = home();
        let (tx, rx) = recycle_path::<u32>(&d, 64);
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for j in 0..10 {
                        assert!(tx.give(i * 10 + j), "capacity 64 fits all 40 gives");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut count = 0;
        rx.reclaim(|_| count += 1);
        assert_eq!(count, 40);
    }
}
