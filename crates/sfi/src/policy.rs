//! Interposition on cross-domain calls.
//!
//! "Proxying remote invocations through the reference table gives the
//! owner of the domain complete control over its interfaces ... they can
//! intercept remote invocations for fine-grained access control" (§3).
//! A domain may install a [`Policy`]; every remote invocation consults it
//! with the caller's identity and a method name before the call runs.

use crate::tls::DomainId;
use std::collections::HashSet;

/// Decides whether a cross-domain call may proceed.
pub trait Policy: Send + Sync {
    /// Returns true when `caller` may invoke `method` on objects of the
    /// policy's domain.
    fn allow(&self, caller: DomainId, method: &str) -> bool;
}

/// Permits every call (the default when no policy is installed).
#[derive(Debug, Default, Clone, Copy)]
pub struct AllowAll;

impl Policy for AllowAll {
    fn allow(&self, _caller: DomainId, _method: &str) -> bool {
        true
    }
}

/// Denies every call — useful to quarantine a domain without destroying
/// it (existing state stays intact, nothing can reach it).
#[derive(Debug, Default, Clone, Copy)]
pub struct DenyAll;

impl Policy for DenyAll {
    fn allow(&self, _caller: DomainId, _method: &str) -> bool {
        false
    }
}

/// An allowlist of `(caller, method)` pairs, with per-caller and
/// per-method wildcards.
#[derive(Debug, Default)]
pub struct AclPolicy {
    /// Exact (caller, method) grants.
    exact: HashSet<(DomainId, String)>,
    /// Callers allowed to invoke any method.
    any_method: HashSet<DomainId>,
    /// Methods any caller may invoke.
    any_caller: HashSet<String>,
}

impl AclPolicy {
    /// Creates an empty (deny-everything) ACL.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grants `caller` access to `method`; builder style.
    pub fn grant(mut self, caller: DomainId, method: impl Into<String>) -> Self {
        self.exact.insert((caller, method.into()));
        self
    }

    /// Grants `caller` access to every method.
    pub fn grant_all_methods(mut self, caller: DomainId) -> Self {
        self.any_method.insert(caller);
        self
    }

    /// Grants every caller access to `method`.
    pub fn grant_all_callers(mut self, method: impl Into<String>) -> Self {
        self.any_caller.insert(method.into());
        self
    }
}

impl Policy for AclPolicy {
    fn allow(&self, caller: DomainId, method: &str) -> bool {
        self.any_method.contains(&caller)
            || self.any_caller.contains(method)
            || self.exact.contains(&(caller, method.to_string()))
    }
}

// Closures over (caller, method) are policies too.
impl<F: Fn(DomainId, &str) -> bool + Send + Sync> Policy for F {
    fn allow(&self, caller: DomainId, method: &str) -> bool {
        self(caller, method)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: DomainId = DomainId::new(1);
    const B: DomainId = DomainId::new(2);

    #[test]
    fn allow_all_allows() {
        assert!(AllowAll.allow(A, "anything"));
    }

    #[test]
    fn deny_all_denies() {
        assert!(!DenyAll.allow(A, "anything"));
    }

    #[test]
    fn empty_acl_denies() {
        assert!(!AclPolicy::new().allow(A, "read"));
    }

    #[test]
    fn exact_grant() {
        let p = AclPolicy::new().grant(A, "read");
        assert!(p.allow(A, "read"));
        assert!(!p.allow(A, "write"));
        assert!(!p.allow(B, "read"));
    }

    #[test]
    fn caller_wildcard() {
        let p = AclPolicy::new().grant_all_methods(A);
        assert!(p.allow(A, "read"));
        assert!(p.allow(A, "write"));
        assert!(!p.allow(B, "read"));
    }

    #[test]
    fn method_wildcard() {
        let p = AclPolicy::new().grant_all_callers("ping");
        assert!(p.allow(A, "ping"));
        assert!(p.allow(B, "ping"));
        assert!(!p.allow(A, "write"));
    }

    #[test]
    fn closure_policy() {
        let p = |caller: DomainId, method: &str| caller == A && method.starts_with("get_");
        assert!(p.allow(A, "get_stats"));
        assert!(!p.allow(A, "set_stats"));
        assert!(!p.allow(B, "get_stats"));
    }
}
