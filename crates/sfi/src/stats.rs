//! Per-domain invocation statistics.

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters maintained by the invocation and recovery paths.
///
/// All counters are relaxed atomics: they are diagnostics, not
/// synchronization, and the data path must stay cheap.
#[derive(Debug, Default)]
pub struct DomainStats {
    invocations: AtomicU64,
    faults: AtomicU64,
    recoveries: AtomicU64,
    denials: AtomicU64,
    revoked_calls: AtomicU64,
    cycles_in_domain: AtomicU64,
    inflight_at_fault: AtomicU64,
    leaked_slots: AtomicU64,
}

impl DomainStats {
    /// Creates zeroed stats.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_invocation(&self) {
        self.invocations.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_fault(&self) {
        self.faults.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_recovery(&self) {
        self.recoveries.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_denial(&self) {
        self.denials.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_revoked_call(&self) {
        self.revoked_calls.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_cycles(&self, cycles: u64) {
        self.cycles_in_domain.fetch_add(cycles, Ordering::Relaxed);
    }

    pub(crate) fn record_inflight_at_fault(&self, n: u64) {
        self.inflight_at_fault.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn record_leaked_slots(&self, n: u64) {
        self.leaked_slots.fetch_add(n, Ordering::Relaxed);
    }

    /// Completed remote invocations (successful or faulted).
    pub fn invocations(&self) -> u64 {
        self.invocations.load(Ordering::Relaxed)
    }

    /// Panics caught at the domain boundary.
    pub fn faults(&self) -> u64 {
        self.faults.load(Ordering::Relaxed)
    }

    /// Successful recoveries after a fault.
    pub fn recoveries(&self) -> u64 {
        self.recoveries.load(Ordering::Relaxed)
    }

    /// Calls rejected by the interposition policy.
    pub fn denials(&self) -> u64 {
        self.denials.load(Ordering::Relaxed)
    }

    /// Calls that failed because the reference was revoked.
    pub fn revoked_calls(&self) -> u64 {
        self.revoked_calls.load(Ordering::Relaxed)
    }

    /// CPU cycles spent executing inside the domain — populated only
    /// while accounting is enabled (see
    /// [`Domain::set_accounting`](crate::Domain::set_accounting)); the
    /// measurement itself costs two TSC reads per invocation.
    pub fn cycles_in_domain(&self) -> u64 {
        self.cycles_in_domain.load(Ordering::Relaxed)
    }

    /// Objects still pinned by in-flight invocations at fault time,
    /// summed over all faults — each one is a capability the crash could
    /// not revoke instantly.
    pub fn inflight_at_fault(&self) -> u64 {
        self.inflight_at_fault.load(Ordering::Relaxed)
    }

    /// In-flight objects that outlived the bounded drain during
    /// recovery. Nonzero means some cross-domain call held a dead
    /// generation's object across a respawn.
    pub fn leaked_slots(&self) -> u64 {
        self.leaked_slots.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_start_at_zero() {
        let s = DomainStats::new();
        assert_eq!(s.invocations(), 0);
        assert_eq!(s.faults(), 0);
        assert_eq!(s.recoveries(), 0);
        assert_eq!(s.denials(), 0);
        assert_eq!(s.revoked_calls(), 0);
    }

    #[test]
    fn counters_increment_independently() {
        let s = DomainStats::new();
        s.record_invocation();
        s.record_invocation();
        s.record_fault();
        s.record_recovery();
        s.record_denial();
        s.record_revoked_call();
        assert_eq!(s.invocations(), 2);
        assert_eq!(s.faults(), 1);
        assert_eq!(s.recoveries(), 1);
        assert_eq!(s.denials(), 1);
        assert_eq!(s.revoked_calls(), 1);
    }

    #[test]
    fn concurrent_increments_are_lossless() {
        let s = std::sync::Arc::new(DomainStats::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let s = std::sync::Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        s.record_invocation();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(s.invocations(), 40_000);
    }
}
