//! Zero-copy software fault isolation (§3 of the paper).
//!
//! Traditional SFI either copies data across protection boundaries or tags
//! every heap object and validates the tag on each dereference (>100%
//! overhead). Rust's single ownership model removes the dilemma: once a
//! value is *moved* across a boundary, the sender provably holds no
//! reference to it — the compiler enforces at zero runtime cost what other
//! systems buy with copies or tag checks.
//!
//! What ownership alone does not give you is a *management plane*: domain
//! lifecycle, revocable interfaces, access control, and recovery of failed
//! domains. This crate is that management plane, implemented as an
//! ordinary library:
//!
//! - [`Domain`] / [`DomainManager`]: protection domains sharing the
//!   common process heap but no data ([`domain`]);
//! - [`RRef`]: remote references — smart pointers whose pointee stays in
//!   its home domain and is reached only via proxied invocation; holding
//!   an `RRef` is a revocable capability ([`rref`]);
//! - [`reftable`]: the per-domain reference table that owns every object
//!   exported by the domain; clearing it revokes every capability and
//!   frees every exported resource at once;
//! - [`policy`]: interposition on cross-domain calls (access control);
//! - recovery ([`domain`]): a panic inside a domain unwinds to the call
//!   boundary, fails the domain, clears its table, and runs the
//!   user-provided recovery function — the failure can be made
//!   transparent to clients (experiment E3 measures this path);
//! - [`tls`]: the thread-local current-domain marker (the paper uses
//!   scoped-tls the same way).
//!
//! Cross-domain argument semantics follow the paper exactly: borrowed
//! references are accessible to the target for the duration of the call;
//! owned arguments change ownership permanently; `RRef` arguments keep
//! their pointee in its home domain.

pub mod backend;
pub mod channel;
pub mod domain;
pub mod error;
pub mod interface;
pub mod policy;
pub mod recycle;
pub mod reftable;
pub mod rref;
pub mod stats;
pub mod tls;

pub use backend::{
    BackendKind, BackendStats, BackendTotals, CopyBoundary, CopyCostModel, Crossing,
    IsolationBackend, MpkCostModel, MpkSim, TypedSfi,
};
pub use channel::{channel, channel_metered, ChannelError, DomainReceiver, DomainSender};
pub use domain::{Domain, DomainManager, DomainState};
pub use error::RpcError;
pub use policy::{AclPolicy, AllowAll, DenyAll, Policy};
pub use recycle::{recycle_path, recycle_path_metered, RecycleReceiver, RecycleSender};
pub use rref::RRef;
pub use stats::DomainStats;
pub use tls::{current_domain, DomainId, ThreadAttachment, KERNEL_DOMAIN};
