//! The per-domain reference table.
//!
//! Every object a domain exports lives behind an entry here: the table
//! holds the *strong* reference (an `Arc` to the object's mutex), and the
//! [`crate::RRef`] handed to other domains holds only a *weak* one. That
//! asymmetry is the whole revocation mechanism: removing the entry drops
//! the strong count to zero, after which every outstanding weak pointer
//! fails to upgrade and the object is deallocated. Clearing the table
//! therefore "automatically deallocate[s] all memory and resources owned
//! by the domain" (§3), which is the first step of fault recovery.

use parking_lot::Mutex;
use std::any::Any;
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

/// A type-erased strong entry: the `Arc<Mutex<T>>` an `RRef<T>` weakly
/// points at.
type Entry = Arc<dyn Any + Send + Sync>;

/// A slotted table of strong object references.
///
/// Slots are reused via a free list so long-lived domains exporting and
/// revoking many objects do not grow without bound.
#[derive(Default)]
pub struct RefTable {
    inner: Mutex<Slots>,
}

#[derive(Default)]
struct Slots {
    entries: Vec<Option<Entry>>,
    free: Vec<usize>,
    /// Bumped on every `clear`, so stale slot handles from before a
    /// recovery can be told apart from fresh ones.
    epoch: u64,
    /// Epochs below this were ended by a *fault* ([`RefTable::poison`]),
    /// not a clean revocation; their stale handles report poisoning.
    poison_floor: u64,
    /// Entries that were still referenced by an in-flight invocation
    /// when the table was poisoned: the table's strong reference is
    /// gone, but the object stays alive until the call returns. Tracked
    /// so recovery can wait for the old domain's objects to actually
    /// die before the table is reused.
    inflight: Vec<Weak<dyn Any + Send + Sync>>,
}

/// A handle naming a slot in a specific table epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotHandle {
    /// Slot index.
    pub index: usize,
    /// Table epoch the slot was allocated in.
    pub epoch: u64,
}

impl RefTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a strong entry, returning its slot handle.
    pub fn insert(&self, entry: Entry) -> SlotHandle {
        let mut slots = self.inner.lock();
        let epoch = slots.epoch;
        let index = match slots.free.pop() {
            Some(i) => {
                slots.entries[i] = Some(entry);
                i
            }
            None => {
                slots.entries.push(Some(entry));
                slots.entries.len() - 1
            }
        };
        SlotHandle { index, epoch }
    }

    /// Removes one entry (revoking the capability). Returns the strong
    /// reference if the slot was live in the handle's epoch.
    pub fn remove(&self, handle: SlotHandle) -> Option<Entry> {
        let mut slots = self.inner.lock();
        if handle.epoch != slots.epoch || handle.index >= slots.entries.len() {
            return None;
        }
        let taken = slots.entries[handle.index].take();
        if taken.is_some() {
            slots.free.push(handle.index);
        }
        taken
    }

    /// Drops every entry and starts a new epoch. Returns how many live
    /// entries were revoked.
    ///
    /// This is the bulk-deallocation step of domain recovery: objects
    /// whose only strong reference was the table are freed here, and all
    /// outstanding weak references die together.
    pub fn clear(&self) -> usize {
        let mut slots = self.inner.lock();
        let live = slots.entries.iter().filter(|e| e.is_some()).count();
        slots.entries.clear();
        slots.free.clear();
        slots.epoch += 1;
        live
    }

    /// Fault-path variant of [`RefTable::clear`]: drops every entry,
    /// starts a new epoch, marks all prior epochs *poisoned*, and
    /// records which objects were still held by in-flight invocations at
    /// the moment of the fault.
    ///
    /// Poisoned epochs matter for diagnosis: a stale handle from before
    /// a fault reports "died with a fault" instead of a clean
    /// revocation. The in-flight set matters for reuse: a respawned
    /// worker must not assume the dead generation's objects are gone —
    /// [`RefTable::drain_inflight`] waits them out.
    ///
    /// Returns `(revoked_entries, inflight_entries)`.
    pub fn poison(&self) -> (usize, usize) {
        let mut slots = self.inner.lock();
        let live = slots.entries.iter().filter(|e| e.is_some()).count();
        let mut inflight: Vec<Weak<dyn Any + Send + Sync>> =
            slots.entries.iter().flatten().map(Arc::downgrade).collect();
        slots.entries.clear();
        slots.free.clear();
        slots.epoch += 1;
        slots.poison_floor = slots.epoch;
        // Only objects an invocation still holds survive the clear.
        inflight.retain(|w| w.strong_count() > 0);
        let n_inflight = inflight.len();
        slots.inflight.retain(|w| w.strong_count() > 0);
        slots.inflight.append(&mut inflight);
        (live, n_inflight)
    }

    /// True when `handle` belongs to an epoch that was ended by a fault
    /// (so the object it named died with the domain, not by clean
    /// revocation).
    pub fn handle_poisoned(&self, handle: SlotHandle) -> bool {
        let slots = self.inner.lock();
        handle.epoch < slots.poison_floor
    }

    /// Objects of poisoned epochs still kept alive by in-flight
    /// invocations.
    pub fn inflight(&self) -> usize {
        let mut slots = self.inner.lock();
        slots.inflight.retain(|w| w.strong_count() > 0);
        slots.inflight.len()
    }

    /// Waits (bounded) for every object of the poisoned epochs to be
    /// dropped — i.e. for all invocations that were mid-call at fault
    /// time to return. Returns the number of objects still alive at the
    /// deadline (0 = fully drained, table safe to reuse).
    pub fn drain_inflight(&self, timeout: Duration) -> usize {
        let deadline = Instant::now() + timeout;
        loop {
            let still = self.inflight();
            if still == 0 || Instant::now() >= deadline {
                return still;
            }
            std::thread::yield_now();
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .entries
            .iter()
            .filter(|e| e.is_some())
            .count()
    }

    /// True when no entries are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The current epoch (bumped by [`RefTable::clear`]).
    pub fn epoch(&self) -> u64 {
        self.inner.lock().epoch
    }
}

impl std::fmt::Debug for RefTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let slots = self.inner.lock();
        f.debug_struct("RefTable")
            .field(
                "live",
                &slots.entries.iter().filter(|e| e.is_some()).count(),
            )
            .field("capacity", &slots.entries.len())
            .field("epoch", &slots.epoch)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Weak;

    fn entry(v: u32) -> (Entry, Weak<parking_lot::Mutex<u32>>) {
        let strong = Arc::new(parking_lot::Mutex::new(v));
        let weak = Arc::downgrade(&strong);
        (strong as Entry, weak)
    }

    #[test]
    fn insert_and_len() {
        let t = RefTable::new();
        assert!(t.is_empty());
        let (e, _) = entry(1);
        t.insert(e);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn remove_revokes_weak() {
        let t = RefTable::new();
        let (e, weak) = entry(1);
        let h = t.insert(e);
        assert!(weak.upgrade().is_some());
        assert!(t.remove(h).is_some());
        assert!(
            weak.upgrade().is_none(),
            "weak must die with the table entry"
        );
        assert!(t.is_empty());
    }

    #[test]
    fn double_remove_is_none() {
        let t = RefTable::new();
        let (e, _) = entry(1);
        let h = t.insert(e);
        assert!(t.remove(h).is_some());
        assert!(t.remove(h).is_none());
    }

    #[test]
    fn slots_are_reused() {
        let t = RefTable::new();
        let (e1, _) = entry(1);
        let h1 = t.insert(e1);
        t.remove(h1);
        let (e2, _) = entry(2);
        let h2 = t.insert(e2);
        assert_eq!(h1.index, h2.index, "freed slot should be reused");
        assert_eq!(h1.epoch, h2.epoch);
    }

    #[test]
    fn clear_kills_everything_and_bumps_epoch() {
        let t = RefTable::new();
        let weaks: Vec<_> = (0..5)
            .map(|i| {
                let (e, w) = entry(i);
                t.insert(e);
                w
            })
            .collect();
        assert_eq!(t.epoch(), 0);
        assert_eq!(t.clear(), 5);
        assert_eq!(t.epoch(), 1);
        assert!(t.is_empty());
        for w in weaks {
            assert!(w.upgrade().is_none());
        }
    }

    #[test]
    fn stale_epoch_handle_cannot_remove() {
        let t = RefTable::new();
        let (e, _) = entry(1);
        let h = t.insert(e);
        t.clear();
        let (e2, w2) = entry(2);
        let h2 = t.insert(e2);
        // Old handle may alias the same index but its epoch is stale.
        assert_eq!(h.index, h2.index);
        assert!(t.remove(h).is_none());
        assert!(
            w2.upgrade().is_some(),
            "stale handle must not revoke a fresh entry"
        );
    }

    #[test]
    fn clear_counts_only_live() {
        let t = RefTable::new();
        let (e1, _) = entry(1);
        let (e2, _) = entry(2);
        let h = t.insert(e1);
        t.insert(e2);
        t.remove(h);
        assert_eq!(t.clear(), 1);
    }

    #[test]
    fn debug_format_mentions_counts() {
        let t = RefTable::new();
        let (e, _) = entry(1);
        t.insert(e);
        let s = format!("{t:?}");
        assert!(s.contains("live: 1"), "{s}");
    }

    #[test]
    fn poison_marks_prior_epochs() {
        let t = RefTable::new();
        let (e, _) = entry(1);
        let h = t.insert(e);
        assert!(!t.handle_poisoned(h));
        let (revoked, inflight) = t.poison();
        assert_eq!((revoked, inflight), (1, 0));
        assert!(t.handle_poisoned(h), "pre-fault handle is poisoned");
        // A post-poison insert gets a clean epoch.
        let (e2, _) = entry(2);
        let h2 = t.insert(e2);
        assert!(!t.handle_poisoned(h2));
        // A clean clear does not poison.
        t.clear();
        assert!(!t.handle_poisoned(h2));
    }

    #[test]
    fn poison_tracks_and_drains_inflight() {
        let t = RefTable::new();
        let strong = Arc::new(parking_lot::Mutex::new(5u32));
        t.insert(Arc::clone(&strong) as Entry);
        // `strong` plays the role of an invocation that upgraded the
        // entry and is still mid-call when the fault hits.
        let (revoked, inflight) = t.poison();
        assert_eq!((revoked, inflight), (1, 1));
        assert_eq!(t.inflight(), 1);
        assert_eq!(
            t.drain_inflight(Duration::from_millis(10)),
            1,
            "cannot drain while the call holds the object"
        );
        drop(strong); // the in-flight call returns
        assert_eq!(t.drain_inflight(Duration::from_secs(1)), 0);
        assert_eq!(t.inflight(), 0);
    }

    #[test]
    fn repeated_poison_accumulates_only_live_inflight() {
        let t = RefTable::new();
        let s1 = Arc::new(parking_lot::Mutex::new(1u32));
        t.insert(Arc::clone(&s1) as Entry);
        t.poison();
        assert_eq!(t.inflight(), 1);
        drop(s1);
        let s2 = Arc::new(parking_lot::Mutex::new(2u32));
        t.insert(Arc::clone(&s2) as Entry);
        t.poison();
        assert_eq!(t.inflight(), 1, "dead weaks from round 1 were pruned");
        drop(s2);
        assert_eq!(t.inflight(), 0);
    }

    #[test]
    fn concurrent_insert_remove() {
        let t = Arc::new(RefTable::new());
        let mut handles = Vec::new();
        for i in 0..8 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for j in 0..100 {
                    let (e, _) = entry(i * 100 + j);
                    let h = t.insert(e);
                    if j % 2 == 0 {
                        t.remove(h);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.len(), 8 * 50);
    }
}
