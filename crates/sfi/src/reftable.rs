//! The per-domain reference table.
//!
//! Every object a domain exports lives behind an entry here: the table
//! holds the *strong* reference (an `Arc` to the object's mutex), and the
//! [`crate::RRef`] handed to other domains holds only a *weak* one. That
//! asymmetry is the whole revocation mechanism: removing the entry drops
//! the strong count to zero, after which every outstanding weak pointer
//! fails to upgrade and the object is deallocated. Clearing the table
//! therefore "automatically deallocate[s] all memory and resources owned
//! by the domain" (§3), which is the first step of fault recovery.

use parking_lot::Mutex;
use std::any::Any;
use std::sync::Arc;

/// A type-erased strong entry: the `Arc<Mutex<T>>` an `RRef<T>` weakly
/// points at.
type Entry = Arc<dyn Any + Send + Sync>;

/// A slotted table of strong object references.
///
/// Slots are reused via a free list so long-lived domains exporting and
/// revoking many objects do not grow without bound.
#[derive(Default)]
pub struct RefTable {
    inner: Mutex<Slots>,
}

#[derive(Default)]
struct Slots {
    entries: Vec<Option<Entry>>,
    free: Vec<usize>,
    /// Bumped on every `clear`, so stale slot handles from before a
    /// recovery can be told apart from fresh ones.
    epoch: u64,
}

/// A handle naming a slot in a specific table epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotHandle {
    /// Slot index.
    pub index: usize,
    /// Table epoch the slot was allocated in.
    pub epoch: u64,
}

impl RefTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a strong entry, returning its slot handle.
    pub fn insert(&self, entry: Entry) -> SlotHandle {
        let mut slots = self.inner.lock();
        let epoch = slots.epoch;
        let index = match slots.free.pop() {
            Some(i) => {
                slots.entries[i] = Some(entry);
                i
            }
            None => {
                slots.entries.push(Some(entry));
                slots.entries.len() - 1
            }
        };
        SlotHandle { index, epoch }
    }

    /// Removes one entry (revoking the capability). Returns the strong
    /// reference if the slot was live in the handle's epoch.
    pub fn remove(&self, handle: SlotHandle) -> Option<Entry> {
        let mut slots = self.inner.lock();
        if handle.epoch != slots.epoch || handle.index >= slots.entries.len() {
            return None;
        }
        let taken = slots.entries[handle.index].take();
        if taken.is_some() {
            slots.free.push(handle.index);
        }
        taken
    }

    /// Drops every entry and starts a new epoch. Returns how many live
    /// entries were revoked.
    ///
    /// This is the bulk-deallocation step of domain recovery: objects
    /// whose only strong reference was the table are freed here, and all
    /// outstanding weak references die together.
    pub fn clear(&self) -> usize {
        let mut slots = self.inner.lock();
        let live = slots.entries.iter().filter(|e| e.is_some()).count();
        slots.entries.clear();
        slots.free.clear();
        slots.epoch += 1;
        live
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .entries
            .iter()
            .filter(|e| e.is_some())
            .count()
    }

    /// True when no entries are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The current epoch (bumped by [`RefTable::clear`]).
    pub fn epoch(&self) -> u64 {
        self.inner.lock().epoch
    }
}

impl std::fmt::Debug for RefTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let slots = self.inner.lock();
        f.debug_struct("RefTable")
            .field(
                "live",
                &slots.entries.iter().filter(|e| e.is_some()).count(),
            )
            .field("capacity", &slots.entries.len())
            .field("epoch", &slots.epoch)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Weak;

    fn entry(v: u32) -> (Entry, Weak<parking_lot::Mutex<u32>>) {
        let strong = Arc::new(parking_lot::Mutex::new(v));
        let weak = Arc::downgrade(&strong);
        (strong as Entry, weak)
    }

    #[test]
    fn insert_and_len() {
        let t = RefTable::new();
        assert!(t.is_empty());
        let (e, _) = entry(1);
        t.insert(e);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn remove_revokes_weak() {
        let t = RefTable::new();
        let (e, weak) = entry(1);
        let h = t.insert(e);
        assert!(weak.upgrade().is_some());
        assert!(t.remove(h).is_some());
        assert!(
            weak.upgrade().is_none(),
            "weak must die with the table entry"
        );
        assert!(t.is_empty());
    }

    #[test]
    fn double_remove_is_none() {
        let t = RefTable::new();
        let (e, _) = entry(1);
        let h = t.insert(e);
        assert!(t.remove(h).is_some());
        assert!(t.remove(h).is_none());
    }

    #[test]
    fn slots_are_reused() {
        let t = RefTable::new();
        let (e1, _) = entry(1);
        let h1 = t.insert(e1);
        t.remove(h1);
        let (e2, _) = entry(2);
        let h2 = t.insert(e2);
        assert_eq!(h1.index, h2.index, "freed slot should be reused");
        assert_eq!(h1.epoch, h2.epoch);
    }

    #[test]
    fn clear_kills_everything_and_bumps_epoch() {
        let t = RefTable::new();
        let weaks: Vec<_> = (0..5)
            .map(|i| {
                let (e, w) = entry(i);
                t.insert(e);
                w
            })
            .collect();
        assert_eq!(t.epoch(), 0);
        assert_eq!(t.clear(), 5);
        assert_eq!(t.epoch(), 1);
        assert!(t.is_empty());
        for w in weaks {
            assert!(w.upgrade().is_none());
        }
    }

    #[test]
    fn stale_epoch_handle_cannot_remove() {
        let t = RefTable::new();
        let (e, _) = entry(1);
        let h = t.insert(e);
        t.clear();
        let (e2, w2) = entry(2);
        let h2 = t.insert(e2);
        // Old handle may alias the same index but its epoch is stale.
        assert_eq!(h.index, h2.index);
        assert!(t.remove(h).is_none());
        assert!(
            w2.upgrade().is_some(),
            "stale handle must not revoke a fresh entry"
        );
    }

    #[test]
    fn clear_counts_only_live() {
        let t = RefTable::new();
        let (e1, _) = entry(1);
        let (e2, _) = entry(2);
        let h = t.insert(e1);
        t.insert(e2);
        t.remove(h);
        assert_eq!(t.clear(), 1);
    }

    #[test]
    fn debug_format_mentions_counts() {
        let t = RefTable::new();
        let (e, _) = entry(1);
        t.insert(e);
        let s = format!("{t:?}");
        assert!(s.contains("live: 1"), "{s}");
    }

    #[test]
    fn concurrent_insert_remove() {
        let t = Arc::new(RefTable::new());
        let mut handles = Vec::new();
        for i in 0..8 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for j in 0..100 {
                    let (e, _) = entry(i * 100 + j);
                    let h = t.insert(e);
                    if j % 2 == 0 {
                        t.remove(h);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.len(), 8 * 50);
    }
}
