//! Cross-thread stress tests for ownership-transferring channels.
//!
//! The runtime crate parks worker threads on `DomainReceiver::recv` and
//! revokes channels out from under blocked senders when a worker domain
//! faults; these tests exercise exactly those races at the sfi layer:
//! many concurrent senders, a receiver draining from another thread, and
//! revocation fired mid-stream.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;

use rbs_sfi::channel::channel;
use rbs_sfi::{ChannelError, DomainManager};

#[test]
fn concurrent_senders_all_messages_arrive_exactly_once() {
    const SENDERS: usize = 8;
    const PER_SENDER: u64 = 500;

    let mgr = DomainManager::new();
    let d = mgr.create_domain("sink").unwrap();
    let (tx, rx) = channel::<u64>(&d, 16);

    let start = Arc::new(Barrier::new(SENDERS));
    let handles: Vec<_> = (0..SENDERS as u64)
        .map(|s| {
            let tx = tx.clone();
            let start = Arc::clone(&start);
            thread::spawn(move || {
                start.wait();
                for i in 0..PER_SENDER {
                    // Unique payload per (sender, seq) so duplicates or
                    // losses are detectable from the sum alone.
                    tx.send(s * PER_SENDER + i).unwrap();
                }
            })
        })
        .collect();
    drop(tx);

    // Receive the exact expected count: the underlying queue stays
    // connected as long as the table entry lives, so "drain until
    // disconnect" would never terminate.
    let total = SENDERS as u64 * PER_SENDER;
    let mut received = Vec::new();
    for _ in 0..total {
        received.push(rx.recv().unwrap());
    }
    for h in handles {
        h.join().unwrap();
    }
    assert!(rx.is_empty());
    received.sort_unstable();
    received.dedup();
    assert_eq!(received.len() as u64, total, "duplicate delivery detected");
}

#[test]
fn mid_stream_revoke_stops_every_blocked_sender() {
    const SENDERS: usize = 6;

    let mgr = DomainManager::new();
    let d = mgr.create_domain("sink").unwrap();
    // Tiny queue: most senders will be parked in `send` when the revoke
    // lands, exercising the unblock-on-close path.
    let (tx, rx) = channel::<u64>(&d, 2);

    let sent = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..SENDERS)
        .map(|_| {
            let tx = tx.clone();
            let sent = Arc::clone(&sent);
            thread::spawn(move || {
                let mut revoked = 0u64;
                for i in 0..10_000u64 {
                    match tx.send(i) {
                        Ok(()) => {
                            sent.fetch_add(1, Ordering::Relaxed);
                        }
                        Err((ChannelError::Revoked, _)) => {
                            revoked += 1;
                            break;
                        }
                        Err((e, _)) => panic!("unexpected error {e:?}"),
                    }
                }
                revoked
            })
        })
        .collect();
    drop(tx);

    // Drain a little real traffic, then revoke mid-stream.
    let mut drained = 0u64;
    for _ in 0..50 {
        if rx.recv().is_ok() {
            drained += 1;
        }
    }
    assert!(rx.revoke());

    // Every sender must observe the revoke and exit — none may remain
    // parked forever on the full queue.
    let mut revoked_count = 0u64;
    for h in handles {
        revoked_count += h.join().unwrap();
    }
    assert_eq!(revoked_count, SENDERS as u64);

    // Queued messages stay receivable after revoke; the queue then only
    // ever drains.
    while rx.try_recv().is_ok() {
        drained += 1;
    }
    assert!(drained <= sent.load(Ordering::Relaxed));
}

#[test]
fn domain_fault_closes_channel_for_remote_senders() {
    let mgr = DomainManager::new();
    let d = mgr.create_domain("worker").unwrap();
    let (tx, rx) = channel::<u64>(&d, 4);

    tx.send(1).unwrap();

    // A panic inside the domain (on another thread, as in the runtime's
    // worker loop) faults it and clears the reference table.
    let d2 = d.clone();
    thread::spawn(move || {
        let r = d2.execute(|| panic!("injected worker crash"));
        assert!(r.is_err());
    })
    .join()
    .unwrap();

    // Senders now fail with Revoked, and ownership of the rejected value
    // returns with the error.
    let (err, payload) = tx.send(2).unwrap_err();
    assert_eq!(err, ChannelError::Revoked);
    assert_eq!(payload, 2);

    // The already-queued message is still receivable by the supervisor
    // (drain-then-respawn keeps packets from vanishing).
    assert_eq!(rx.recv().unwrap(), 1);
}
