//! Backend-independence proptests.
//!
//! An [`rbs_sfi::IsolationBackend`] is a *cost model*, not a transport:
//! ownership still moves, reference tables still poison, pools still
//! conserve. These properties pin that contract by running the same
//! scripted histories under every backend in [`BackendKind::ALL`] and
//! asserting the observable traces are identical — if a backend ever
//! changed a drain/poison outcome or leaked a pool buffer, the isolation
//! tax measured by e13 would be comparing different semantics, not
//! different costs.

use proptest::prelude::*;
use rbs_netfx::pool::PacketPool;
use rbs_sfi::{
    recycle_path_metered, BackendKind, Domain, DomainManager, DomainState, RRef, RpcError,
};

/// One step of a scripted rref workload. Generated once per proptest
/// case and replayed verbatim under each backend.
#[derive(Debug, Clone, Copy)]
enum RRefOp {
    /// Read object `i % live` (if any live objects exist).
    Invoke(usize),
    /// Increment object `i % live`.
    InvokeMut(usize),
    /// Export a fresh object.
    Export,
    /// Explicitly revoke object `i % live`.
    Revoke(usize),
}

fn rref_op() -> impl Strategy<Value = RRefOp> {
    prop_oneof![
        (0usize..8).prop_map(RRefOp::Invoke),
        (0usize..8).prop_map(RRefOp::InvokeMut),
        Just(RRefOp::Export),
        (0usize..8).prop_map(RRefOp::Revoke),
    ]
}

/// Observable outcome of one op, erased to a backend-independent shape.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Outcome {
    Ok(u64),
    Revoked,
    Exported,
    Skipped,
}

/// Replays `ops`, then faults the domain, checks drain/poison, recovers,
/// and returns the full observable trace plus post-recovery facts.
fn run_rref_script(kind: BackendKind, ops: &[RRefOp]) -> (Vec<Outcome>, Vec<u64>) {
    let mgr = DomainManager::with_backend_kind(kind);
    let d = mgr.create_domain("scripted").unwrap();
    d.set_recovery(|_| ());
    let mut live: Vec<RRef<u64>> = Vec::new();
    let mut trace = Vec::new();
    for op in ops {
        match *op {
            RRefOp::Invoke(i) => {
                if live.is_empty() {
                    trace.push(Outcome::Skipped);
                } else {
                    let r = &live[i % live.len()];
                    trace.push(match r.invoke(|v| *v) {
                        Ok(v) => Outcome::Ok(v),
                        Err(RpcError::Revoked) => Outcome::Revoked,
                        Err(e) => panic!("unexpected pre-fault error: {e:?}"),
                    });
                }
            }
            RRefOp::InvokeMut(i) => {
                if live.is_empty() {
                    trace.push(Outcome::Skipped);
                } else {
                    let r = &live[i % live.len()];
                    trace.push(
                        match r.invoke_mut(|v| {
                            *v += 1;
                            *v
                        }) {
                            Ok(v) => Outcome::Ok(v),
                            Err(RpcError::Revoked) => Outcome::Revoked,
                            Err(e) => panic!("unexpected pre-fault error: {e:?}"),
                        },
                    );
                }
            }
            RRefOp::Export => {
                live.push(RRef::new(&d, live.len() as u64));
                trace.push(Outcome::Exported);
            }
            RRefOp::Revoke(i) => {
                if live.is_empty() {
                    trace.push(Outcome::Skipped);
                } else {
                    let idx = i % live.len();
                    live[idx].revoke();
                    trace.push(Outcome::Revoked);
                }
            }
        }
    }

    // Fault the domain with every surviving rref still exported.
    let gen_before = d.generation();
    let err = d.execute(|| panic!("scripted fault")).unwrap_err();
    assert_eq!(err, RpcError::Fault { domain: d.id() });

    // Drain/poison-on-recovery: recovery already ran (a recovery fn is
    // installed, so the panic path heals in place). Every pre-fault rref
    // — revoked or not — must now be poisoned, the table must be fully
    // drained, and the generation bumped.
    assert_eq!(d.state(), DomainState::Active, "[{kind}] recovered");
    assert_eq!(d.generation(), gen_before + 1, "[{kind}] generation bump");
    assert_eq!(
        d.exported_objects(),
        0,
        "[{kind}] table drained on recovery"
    );
    for r in &live {
        assert!(!r.is_alive(), "[{kind}] pre-fault rref outlived the fault");
        assert_eq!(
            r.invoke(|v| *v).unwrap_err(),
            RpcError::Poisoned { domain: d.id() },
            "[{kind}] pre-fault rref must be poisoned, not merely revoked"
        );
    }

    // Fresh exports on the recovered generation work.
    let post: Vec<u64> = (0..3)
        .map(|i| {
            let fresh = RRef::new(&d, 100 + i);
            fresh.invoke(|v| *v).unwrap()
        })
        .collect();
    (trace, post)
}

/// One step of a scripted pool workload over a recycle path.
#[derive(Debug, Clone, Copy)]
enum PoolOp {
    /// Take a buffer from the pool and hold it in flight.
    Take,
    /// Give in-flight buffer `i % held` back through the recycle path.
    Give(usize),
    /// Drop in-flight buffer `i % held` on the floor (a faulting worker).
    Leak(usize),
    /// Drain the recycle queue back into the pool.
    Reclaim,
}

fn pool_op() -> impl Strategy<Value = PoolOp> {
    prop_oneof![
        3 => Just(PoolOp::Take),
        3 => (0usize..8).prop_map(PoolOp::Give),
        1 => (0usize..8).prop_map(PoolOp::Leak),
        2 => Just(PoolOp::Reclaim),
    ]
}

/// Replays `ops` against a real [`PacketPool`] whose return path is an
/// sfi recycle channel under `kind`. Returns (taken, returned,
/// outstanding, leaked, dropped_by_path) at quiescence.
fn run_pool_script(kind: BackendKind, ops: &[PoolOp]) -> (u64, u64, u64, u64, u64) {
    let mgr = DomainManager::with_backend_kind(kind);
    let home: Domain = mgr.create_domain("pool-home").unwrap();
    let mut pool = PacketPool::new(256, 64);
    pool.prewarm(16);
    // Meter by capacity: these are empty buffers, but a charging backend
    // still bills the hand-off per crossing.
    let (tx, rx) = recycle_path_metered::<bytes::BytesMut>(&home, 8, |b| b.capacity());

    let mut in_flight: Vec<bytes::BytesMut> = Vec::new();
    let mut leaked = 0u64;
    let mut dropped_by_path = 0u64;
    for op in ops {
        match *op {
            PoolOp::Take => in_flight.push(pool.take()),
            PoolOp::Give(i) => {
                if !in_flight.is_empty() {
                    let buf = in_flight.remove(i % in_flight.len());
                    if !tx.give(buf) {
                        // Bounded path was full: the buffer dropped to the
                        // allocator, exactly like a leak.
                        dropped_by_path += 1;
                    }
                }
            }
            PoolOp::Leak(i) => {
                if !in_flight.is_empty() {
                    drop(in_flight.remove(i % in_flight.len()));
                    leaked += 1;
                }
            }
            PoolOp::Reclaim => {
                rx.reclaim(|buf| pool.put(buf));
            }
        }
    }
    // Quiesce: return everything still held, then drain the path.
    for buf in in_flight.drain(..) {
        if !tx.give(buf) {
            dropped_by_path += 1;
        }
        rx.reclaim(|b| pool.put(b));
    }
    rx.reclaim(|buf| pool.put(buf));

    let stats = pool.stats();
    (
        stats.taken,
        stats.returned,
        pool.outstanding(),
        leaked,
        dropped_by_path,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The rref lifecycle — exports, invocations, revocations, a fault,
    /// drain/poison, recovery — produces byte-identical observable
    /// traces under all three backends.
    #[test]
    fn rref_drain_and_poison_identical_across_backends(
        ops in proptest::collection::vec(rref_op(), 1..40)
    ) {
        let baseline = run_rref_script(BackendKind::TypedSfi, &ops);
        for kind in [BackendKind::MpkSim, BackendKind::CopyBoundary] {
            let got = run_rref_script(kind, &ops);
            prop_assert_eq!(
                &got, &baseline,
                "trace diverged under {}", kind
            );
        }
    }

    /// Pool conservation: `taken == returned + outstanding` holds at
    /// quiescence, outstanding equals exactly the buffers lost to leaks
    /// and full-queue drops, and all five counters are identical across
    /// backends — a charging backend bills crossings, it never eats or
    /// duplicates a buffer.
    #[test]
    fn pool_conservation_identical_across_backends(
        ops in proptest::collection::vec(pool_op(), 1..60)
    ) {
        let baseline = run_pool_script(BackendKind::TypedSfi, &ops);
        let (taken, returned, outstanding, leaked, dropped) = baseline;
        prop_assert_eq!(taken, returned + outstanding, "conservation");
        prop_assert_eq!(outstanding, leaked + dropped, "every missing buffer is accounted");
        for kind in [BackendKind::MpkSim, BackendKind::CopyBoundary] {
            let got = run_pool_script(kind, &ops);
            prop_assert_eq!(got, baseline, "pool accounting diverged under {}", kind);
        }
    }
}

/// Non-proptest pin: a charging backend actually observed the recycle
/// crossings the pool test exercises (so the "identical accounting"
/// result above is not vacuous — the hooks really fired).
#[test]
fn charging_backend_observes_recycle_crossings() {
    let ops = [PoolOp::Take, PoolOp::Give(0), PoolOp::Reclaim];
    for kind in [BackendKind::CopyBoundary, BackendKind::MpkSim] {
        let mgr = DomainManager::with_backend_kind(kind);
        let home = mgr.create_domain("pool-home").unwrap();
        let mut pool = PacketPool::new(256, 64);
        let (tx, rx) = recycle_path_metered::<bytes::BytesMut>(&home, 8, |b| b.capacity());
        for op in ops {
            match op {
                PoolOp::Take => assert!(tx.give(pool.take())),
                PoolOp::Reclaim => {
                    rx.reclaim(|b| pool.put(b));
                }
                _ => {}
            }
        }
        let totals = mgr.backend_totals();
        assert_eq!(totals.crossings, 2, "[{kind}] give + reclaim");
        assert_eq!(totals.bytes, 512, "[{kind}] 256-byte capacity each way");
        assert!(totals.model_cycles > 0, "[{kind}] model charged");
    }
}
