//! Summary statistics for cycle samples.
//!
//! Experiment harnesses collect raw per-iteration cycle counts and reduce
//! them here. The paper reports averages ("the recovery took 4389 cycles on
//! average"); we additionally keep percentiles because cycle distributions
//! on a multi-tasking host are long-tailed and the median is usually the
//! honest point estimate.

/// Summary of a set of `f64` samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected); 0 for a single sample.
    pub stddev: f64,
    /// Smallest sample.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub p50: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Largest sample.
    pub max: f64,
}

impl Summary {
    /// Computes a summary of `samples`.
    ///
    /// Returns `None` when `samples` is empty or contains a non-finite
    /// value — a non-finite cycle count always indicates a harness bug and
    /// must not be silently averaged away.
    pub fn of(samples: &[f64]) -> Option<Summary> {
        if samples.is_empty() || samples.iter().any(|s| !s.is_finite()) {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        let count = sorted.len();
        let mean = sorted.iter().sum::<f64>() / count as f64;
        let var = if count > 1 {
            sorted.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / (count - 1) as f64
        } else {
            0.0
        };
        Some(Summary {
            count,
            mean,
            stddev: var.sqrt(),
            min: sorted[0],
            p25: percentile_of_sorted(&sorted, 25.0),
            p50: percentile_of_sorted(&sorted, 50.0),
            p75: percentile_of_sorted(&sorted, 75.0),
            p99: percentile_of_sorted(&sorted, 99.0),
            max: sorted[count - 1],
        })
    }

    /// Computes a summary of integer cycle counts.
    pub fn of_cycles(samples: &[u64]) -> Option<Summary> {
        let f: Vec<f64> = samples.iter().map(|&s| s as f64).collect();
        Summary::of(&f)
    }

    /// Computes a summary after dropping the top `trim_fraction` of samples.
    ///
    /// Useful for cycle measurements where the far tail is scheduler noise
    /// (timer interrupts, preemption) unrelated to the measured code.
    /// `trim_fraction` must lie in `[0, 0.5)`.
    pub fn of_trimmed(samples: &[f64], trim_fraction: f64) -> Option<Summary> {
        assert!(
            (0.0..0.5).contains(&trim_fraction),
            "trim fraction {trim_fraction} outside [0, 0.5)"
        );
        if samples.is_empty() || samples.iter().any(|s| !s.is_finite()) {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        let keep = ((sorted.len() as f64) * (1.0 - trim_fraction)).ceil() as usize;
        let keep = keep.max(1);
        Summary::of(&sorted[..keep])
    }
}

/// Linear-interpolated percentile of an ascending-sorted slice.
///
/// # Panics
///
/// Panics if `sorted` is empty or `pct` is outside `[0, 100]`.
pub fn percentile_of_sorted(sorted: &[f64], pct: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty sample set");
    assert!(
        (0.0..=100.0).contains(&pct),
        "percentile {pct} out of range"
    );
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = pct / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn non_finite_is_none() {
        assert!(Summary::of(&[1.0, f64::NAN]).is_none());
        assert!(Summary::of(&[f64::INFINITY]).is_none());
    }

    #[test]
    fn single_sample() {
        let s = Summary::of(&[7.0]).unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.min, 7.0);
        assert_eq!(s.max, 7.0);
        assert_eq!(s.p50, 7.0);
    }

    #[test]
    fn known_values() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.p50, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        // Sample stddev of 1..5 is sqrt(2.5).
        assert!((s.stddev - 2.5f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn percentile_interpolates() {
        let sorted = [0.0, 10.0];
        assert_eq!(percentile_of_sorted(&sorted, 0.0), 0.0);
        assert_eq!(percentile_of_sorted(&sorted, 50.0), 5.0);
        assert_eq!(percentile_of_sorted(&sorted, 100.0), 10.0);
    }

    #[test]
    fn trim_drops_tail() {
        let mut v: Vec<f64> = (0..100).map(|i| i as f64).collect();
        v.push(1_000_000.0);
        let untrimmed = Summary::of(&v).unwrap();
        let trimmed = Summary::of_trimmed(&v, 0.02).unwrap();
        assert!(trimmed.max < untrimmed.max);
        assert!(trimmed.mean < untrimmed.mean);
    }

    #[test]
    #[should_panic(expected = "trim fraction")]
    fn trim_rejects_half() {
        Summary::of_trimmed(&[1.0], 0.5).unwrap();
    }

    #[test]
    fn of_cycles_matches_of() {
        let c = [1u64, 2, 3];
        let a = Summary::of_cycles(&c).unwrap();
        let b = Summary::of(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn unsorted_input_is_fine() {
        let s = Summary::of(&[5.0, 1.0, 3.0]).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.p50, 3.0);
    }
}
