//! Shared foundations for the `rust-beyond-safety` workspace.
//!
//! The paper's evaluation reports CPU cycles measured with the time-stamp
//! counter on an Intel Xeon E5530; every experiment crate in this workspace
//! measures the same way through [`cycles`]. The remaining modules provide
//! statistics ([`stats`], [`histogram`]), plain-text result tables
//! ([`table`]), and the [`exchange`] linearity marker used by the SFI layer
//! to constrain what may cross a protection-domain boundary.

pub mod cycles;
pub mod exchange;
pub mod fault;
pub mod histogram;
pub mod stats;
pub mod table;

pub use cycles::{cycles_per_ns, rdtsc, rdtscp_serialized, CycleTimer};
pub use exchange::Exchangeable;
pub use fault::{FaultKind, FaultPlan, FaultRule, FaultSite};
pub use histogram::LogHistogram;
pub use stats::Summary;
pub use table::Table;
