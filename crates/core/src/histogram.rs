//! Log-scaled histograms for cycle and latency distributions.
//!
//! Cycle counts span several orders of magnitude (a cache hit to a domain
//! recovery), so linear buckets are useless. [`LogHistogram`] buckets by
//! power of two with a configurable number of linear sub-buckets per
//! octave, HDR-histogram style: constant relative error, O(1) insert,
//! fixed memory.

/// A base-2 logarithmic histogram of `u64` values.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    /// Linear sub-buckets per power-of-two octave (precision knob).
    sub_buckets: u32,
    /// counts[octave * sub_buckets + sub] = number of samples.
    counts: Vec<u64>,
    total: u64,
    min: u64,
    max: u64,
    sum: u128,
    /// Sum of squared samples, kept so per-worker histograms can be
    /// merged and still yield an exact aggregate standard deviation.
    sum_sq: u128,
}

const OCTAVES: u32 = 64;

impl LogHistogram {
    /// Creates an empty histogram with `sub_buckets` linear sub-buckets per
    /// octave.
    ///
    /// # Panics
    ///
    /// Panics if `sub_buckets` is 0 or not a power of two (the bucket
    /// index computation relies on it).
    pub fn new(sub_buckets: u32) -> Self {
        assert!(
            sub_buckets.is_power_of_two(),
            "sub_buckets must be a power of two, got {sub_buckets}"
        );
        Self {
            sub_buckets,
            counts: vec![0; (OCTAVES * sub_buckets) as usize],
            total: 0,
            min: u64::MAX,
            max: 0,
            sum: 0,
            sum_sq: 0,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        let idx = self.bucket_index(value);
        self.counts[idx] += 1;
        self.total += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.sum += value as u128;
        self.sum_sq += (value as u128) * (value as u128);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Smallest recorded sample, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.total > 0).then_some(self.min)
    }

    /// Largest recorded sample, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.total > 0).then_some(self.max)
    }

    /// Mean of recorded samples, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.total > 0).then(|| self.sum as f64 / self.total as f64)
    }

    /// Upper bound of the bucket containing the `q`-quantile
    /// (`0.0 <= q <= 1.0`), or `None` if the histogram is empty.
    ///
    /// The answer has the relative error of the bucket width
    /// (≤ 1/`sub_buckets` of the value).
    pub fn value_at_quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        if self.total == 0 {
            return None;
        }
        let target = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(self.bucket_upper_bound(idx).min(self.max));
            }
        }
        Some(self.max)
    }

    /// Merges another histogram into this one.
    ///
    /// # Panics
    ///
    /// Panics if the two histograms have different `sub_buckets` settings.
    pub fn merge(&mut self, other: &LogHistogram) {
        assert_eq!(
            self.sub_buckets, other.sub_buckets,
            "cannot merge histograms with different precision"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
    }

    /// Sample standard deviation (Bessel-corrected), or `None` with
    /// fewer than two samples.
    ///
    /// Derived from the running `sum` / `sum_sq` moments, so it stays
    /// exact across [`LogHistogram::merge`] — unlike the percentiles,
    /// which carry bucket-width error.
    pub fn stddev(&self) -> Option<f64> {
        if self.total < 2 {
            return None;
        }
        let n = self.total as f64;
        let mean = self.sum as f64 / n;
        // E[x^2] - mean^2, scaled by n/(n-1); clamp tiny negative noise.
        let var = ((self.sum_sq as f64 / n) - mean * mean).max(0.0) * n / (n - 1.0);
        Some(var.sqrt())
    }

    /// Reduces the histogram to a [`crate::stats::Summary`], or `None`
    /// if empty.
    ///
    /// `count`, `mean`, `min`, `max` and `stddev` are exact (running
    /// moments); the percentiles come from [`Self::value_at_quantile`]
    /// and carry its bucket-width relative error. This is the reduction
    /// step for sharded runtimes: each worker records into its own
    /// histogram, the supervisor merges them, and one call yields the
    /// fleet-wide latency summary.
    pub fn summary(&self) -> Option<crate::stats::Summary> {
        if self.total == 0 {
            return None;
        }
        let q = |q: f64| self.value_at_quantile(q).expect("non-empty") as f64;
        Some(crate::stats::Summary {
            count: self.total as usize,
            mean: self.mean().expect("non-empty"),
            stddev: self.stddev().unwrap_or(0.0),
            min: self.min as f64,
            p25: q(0.25),
            p50: q(0.50),
            p75: q(0.75),
            p99: q(0.99),
            max: self.max as f64,
        })
    }

    /// Iterates over non-empty buckets as `(lower_bound, upper_bound, count)`.
    pub fn nonempty_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(idx, &c)| {
                (
                    self.bucket_lower_bound(idx),
                    self.bucket_upper_bound(idx),
                    c,
                )
            })
    }

    fn bucket_index(&self, value: u64) -> usize {
        let sb = self.sub_buckets;
        // Values below `sub_buckets` index linearly into octave zero region.
        if value < sb as u64 {
            return value as usize;
        }
        let msb = 63 - value.leading_zeros(); // position of the top set bit
        let shift = msb - sb.trailing_zeros(); // keep log2(sb) bits below the msb
        let octave = shift + 1;
        let sub = (value >> shift) as u32 - sb; // 0..sb within the octave
        (octave * sb + sub) as usize
    }

    fn bucket_lower_bound(&self, idx: usize) -> u64 {
        let sb = self.sub_buckets as u64;
        let octave = idx as u64 / sb;
        let sub = idx as u64 % sb;
        if octave == 0 {
            sub
        } else {
            (sb + sub) << (octave - 1)
        }
    }

    fn bucket_upper_bound(&self, idx: usize) -> u64 {
        let sb = self.sub_buckets as u64;
        let octave = idx as u64 / sb;
        if octave == 0 {
            self.bucket_lower_bound(idx)
        } else {
            // Compute `lower + width - 1` without overflowing at the top
            // bucket, where `lower + width` is exactly 2^64.
            self.bucket_lower_bound(idx) + ((1u64 << (octave - 1)) - 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = LogHistogram::new(16);
        assert_eq!(h.count(), 0);
        assert!(h.min().is_none());
        assert!(h.max().is_none());
        assert!(h.mean().is_none());
        assert!(h.value_at_quantile(0.5).is_none());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_precision() {
        LogHistogram::new(3);
    }

    #[test]
    fn exact_below_sub_buckets() {
        let mut h = LogHistogram::new(16);
        for v in 0..16u64 {
            h.record(v);
        }
        // Each small value lands in its own exact bucket.
        let buckets: Vec<_> = h.nonempty_buckets().collect();
        assert_eq!(buckets.len(), 16);
        for (i, (lo, hi, c)) in buckets.iter().enumerate() {
            assert_eq!(*lo, i as u64);
            assert_eq!(*hi, i as u64);
            assert_eq!(*c, 1);
        }
    }

    #[test]
    fn bucket_bounds_contain_value() {
        let h = LogHistogram::new(8);
        for v in [
            0u64,
            1,
            7,
            8,
            9,
            100,
            1023,
            1024,
            1025,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let idx = h.bucket_index(v);
            let lo = h.bucket_lower_bound(idx);
            let hi = h.bucket_upper_bound(idx);
            assert!(lo <= v && v <= hi, "value {v} not in [{lo},{hi}]");
        }
    }

    #[test]
    fn relative_error_bound() {
        let h = LogHistogram::new(32);
        for v in (1u64..100_000).step_by(37) {
            let idx = h.bucket_index(v);
            let lo = h.bucket_lower_bound(idx);
            let hi = h.bucket_upper_bound(idx);
            let width = hi - lo;
            assert!(
                width as f64 <= v as f64 / 16.0 + 1.0,
                "bucket too wide at {v}: {width}"
            );
        }
    }

    #[test]
    fn quantiles_ordered() {
        let mut h = LogHistogram::new(16);
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p10 = h.value_at_quantile(0.10).unwrap();
        let p50 = h.value_at_quantile(0.50).unwrap();
        let p99 = h.value_at_quantile(0.99).unwrap();
        assert!(p10 <= p50 && p50 <= p99);
        // Within bucket error of the true values.
        assert!((90..=115).contains(&p10), "{p10}");
        assert!((480..=540).contains(&p50), "{p50}");
        assert!((950..=1000).contains(&p99), "{p99}");
    }

    #[test]
    fn merge_combines() {
        let mut a = LogHistogram::new(16);
        let mut b = LogHistogram::new(16);
        a.record(10);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), Some(10));
        assert_eq!(a.max(), Some(1000));
        assert_eq!(a.mean(), Some(505.0));
    }

    #[test]
    #[should_panic(expected = "different precision")]
    fn merge_rejects_mismatched_precision() {
        let mut a = LogHistogram::new(16);
        let b = LogHistogram::new(8);
        a.merge(&b);
    }

    #[test]
    fn mean_is_exact() {
        let mut h = LogHistogram::new(4);
        h.record(1);
        h.record(2);
        h.record(3);
        assert_eq!(h.mean(), Some(2.0));
    }

    #[test]
    fn stddev_matches_summary_of() {
        let samples = [1u64, 2, 3, 4, 5];
        let mut h = LogHistogram::new(16);
        for &s in &samples {
            h.record(s);
        }
        let direct = crate::stats::Summary::of_cycles(&samples).unwrap();
        assert!((h.stddev().unwrap() - direct.stddev).abs() < 1e-9);

        let mut single = LogHistogram::new(16);
        single.record(7);
        assert!(single.stddev().is_none());
    }

    #[test]
    fn merged_shards_summarize_like_one_histogram() {
        // Simulate 4 workers each recording a disjoint slice of the same
        // sample stream, then merge — the moments must match a single
        // histogram that saw everything.
        let mut whole = LogHistogram::new(32);
        let mut shards: Vec<LogHistogram> = (0..4).map(|_| LogHistogram::new(32)).collect();
        for v in 1..=4000u64 {
            whole.record(v);
            shards[(v % 4) as usize].record(v);
        }
        let mut merged = LogHistogram::new(32);
        for s in &shards {
            merged.merge(s);
        }

        let a = whole.summary().unwrap();
        let b = merged.summary().unwrap();
        assert_eq!(a.count, b.count);
        assert_eq!(a.mean, b.mean);
        assert_eq!(a.min, b.min);
        assert_eq!(a.max, b.max);
        assert!((a.stddev - b.stddev).abs() < 1e-9);
        // Percentiles are bucketed identically, so they agree exactly.
        assert_eq!(a.p50, b.p50);
        assert_eq!(a.p99, b.p99);
    }

    #[test]
    fn summary_of_empty_is_none() {
        assert!(LogHistogram::new(8).summary().is_none());
    }
}
