//! Cycle-accurate timing via the x86 time-stamp counter.
//!
//! All quantitative results in the paper are reported in CPU cycles. On
//! x86_64 we read the TSC directly; `rdtscp` plus an `lfence` gives a
//! serialized read suitable for bracketing short regions (Intel's
//! recommended benchmarking discipline). On other architectures we fall
//! back to [`std::time::Instant`] scaled by a calibrated cycles-per-ns
//! factor so the rest of the workspace stays portable.
//!
//! Modern TSCs are *invariant*: they tick at a constant rate independent of
//! frequency scaling, so cycle counts here are really "reference cycles".
//! That matches how the paper reports its numbers (wall time expressed in
//! cycles of the nominal clock).

use std::sync::OnceLock;
use std::time::Instant;

/// Reads the time-stamp counter without serialization.
///
/// Suitable for long regions (microseconds and up) where out-of-order
/// leakage at the edges is noise. For short regions prefer
/// [`rdtscp_serialized`].
#[inline(always)]
pub fn rdtsc() -> u64 {
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: `_rdtsc` has no preconditions; it is available on every
        // x86_64 CPU this workspace targets.
        unsafe { core::arch::x86_64::_rdtsc() }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        fallback_cycles()
    }
}

/// Reads the time-stamp counter with serialization against earlier and
/// later instructions.
///
/// `rdtscp` waits for all previous instructions to retire, and the trailing
/// `lfence` keeps later instructions from starting before the read. This is
/// the bracketing read used by the per-call overhead experiments (E1/E2),
/// where the measured region is only tens of cycles long.
#[inline(always)]
pub fn rdtscp_serialized() -> u64 {
    #[cfg(target_arch = "x86_64")]
    {
        let mut aux = 0u32;
        // SAFETY: `__rdtscp` and `_mm_lfence` have no preconditions on
        // x86_64; `aux` is a valid out-pointer for the processor ID.
        unsafe {
            let t = core::arch::x86_64::__rdtscp(&mut aux);
            core::arch::x86_64::_mm_lfence();
            t
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        fallback_cycles()
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn fallback_cycles() -> u64 {
    use std::time::Duration;
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    let ns = Instant::now().saturating_duration_since(epoch).as_nanos() as f64;
    (ns * cycles_per_ns()) as u64
}

/// Returns the calibrated TSC rate in cycles per nanosecond.
///
/// Calibrated once per process by timing a busy loop of TSC reads against
/// [`Instant`]. The result is cached; repeated calls are a load.
pub fn cycles_per_ns() -> f64 {
    static RATE: OnceLock<f64> = OnceLock::new();
    *RATE.get_or_init(calibrate)
}

fn calibrate() -> f64 {
    // Three rounds, keep the median, to shrug off a descheduling blip.
    let mut rates = [0.0f64; 3];
    for rate in &mut rates {
        let wall0 = Instant::now();
        let t0 = rdtsc();
        // Spin for ~2ms of wall time: long enough to swamp Instant overhead,
        // short enough not to slow the test suite down.
        while wall0.elapsed().as_micros() < 2_000 {
            std::hint::spin_loop();
        }
        let t1 = rdtsc();
        let ns = wall0.elapsed().as_nanos() as f64;
        *rate = (t1.wrapping_sub(t0)) as f64 / ns;
    }
    rates.sort_by(|a, b| a.partial_cmp(b).expect("rates are finite"));
    rates[1]
}

/// Converts a cycle count to nanoseconds using the calibrated TSC rate.
pub fn cycles_to_ns(cycles: u64) -> f64 {
    cycles as f64 / cycles_per_ns()
}

/// A timer that measures elapsed cycles between construction and
/// [`CycleTimer::elapsed`], using serialized TSC reads.
///
/// # Examples
///
/// ```
/// let t = rbs_core::CycleTimer::start();
/// let v: u64 = (0..100).sum();
/// assert!(v > 0);
/// let cycles = t.elapsed();
/// assert!(cycles < 1_000_000_000);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct CycleTimer {
    start: u64,
}

impl CycleTimer {
    /// Starts a new timer.
    #[inline(always)]
    pub fn start() -> Self {
        Self {
            start: rdtscp_serialized(),
        }
    }

    /// Returns cycles elapsed since [`CycleTimer::start`].
    ///
    /// Saturates at zero if the TSC appears to run backwards (possible
    /// only across badly-synchronized sockets; we clamp rather than wrap).
    #[inline(always)]
    pub fn elapsed(&self) -> u64 {
        rdtscp_serialized().saturating_sub(self.start)
    }
}

/// Measures the cycles taken by `f`, returning `(cycles, result)`.
#[inline]
pub fn time_cycles<T>(f: impl FnOnce() -> T) -> (u64, T) {
    let t = CycleTimer::start();
    let out = f();
    (t.elapsed(), out)
}

/// Runs `f` `iters` times and returns the average cycles per run.
///
/// The whole batch is bracketed by one pair of serialized reads so the
/// measurement overhead is amortized, which is how the paper computes
/// per-invocation costs (total batch cycles divided by work items).
pub fn average_cycles(iters: u64, mut f: impl FnMut()) -> f64 {
    assert!(iters > 0, "average over zero iterations is undefined");
    let t = CycleTimer::start();
    for _ in 0..iters {
        f();
    }
    t.elapsed() as f64 / iters as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tsc_is_monotonic_within_thread() {
        let a = rdtscp_serialized();
        let b = rdtscp_serialized();
        assert!(b >= a, "serialized TSC reads must not go backwards");
    }

    #[test]
    fn calibration_is_plausible() {
        let rate = cycles_per_ns();
        // Any machine this runs on clocks between 0.5 and 6 GHz.
        assert!(rate > 0.3 && rate < 8.0, "implausible TSC rate {rate}");
    }

    #[test]
    fn calibration_is_cached() {
        assert_eq!(cycles_per_ns().to_bits(), cycles_per_ns().to_bits());
    }

    #[test]
    fn timer_measures_something() {
        let t = CycleTimer::start();
        let mut acc = 0u64;
        for i in 0..10_000u64 {
            acc = acc.wrapping_add(std::hint::black_box(i));
        }
        std::hint::black_box(acc);
        let c = t.elapsed();
        assert!(c > 0, "10k additions cannot take zero cycles");
    }

    #[test]
    fn cycles_to_ns_roundtrips_scale() {
        let ns = cycles_to_ns(1_000_000);
        // A million cycles is between 0.1ms and 5ms of wall time.
        assert!(ns > 100_000.0 && ns < 5_000_000.0, "{ns}");
    }

    #[test]
    fn average_cycles_amortizes() {
        let avg = average_cycles(1000, || {
            std::hint::black_box(1u64 + 1);
        });
        // An empty-ish closure costs far less than 10k cycles per iteration.
        assert!(avg < 10_000.0, "{avg}");
    }

    #[test]
    #[should_panic(expected = "zero iterations")]
    fn average_cycles_rejects_zero() {
        average_cycles(0, || {});
    }

    #[test]
    fn time_cycles_returns_result() {
        let (c, v) = time_cycles(|| 42);
        assert_eq!(v, 42);
        assert!(c < 1_000_000_000);
    }
}
