//! The [`Exchangeable`] marker for values that may cross protection-domain
//! boundaries.
//!
//! Singularity's Sing# confined zero-copy communication to a special
//! *exchange heap* of linearly-typed values. In Rust the analogous
//! constraint falls out of the ordinary trait system: a value may move
//! between protection domains iff it owns all of its reachable state
//! (`'static` — no borrows back into the sender's stack) and is safe to
//! hand to another thread (`Send`, since domains may run on distinct
//! threads).
//!
//! The SFI layer bounds every cross-domain argument and return type by
//! [`Exchangeable`]. The blanket impl makes the bound zero-effort for user
//! types, while the trait name keeps the *intent* (this value is about to
//! change protection domains) explicit in signatures — mirroring how the
//! paper leans on ownership transfer as the isolation mechanism itself.

/// Marker for types whose values may be moved across a protection-domain
/// boundary.
///
/// Blanket-implemented for every `Send + 'static` type. Notably this
/// excludes:
///
/// - `&T` / `&mut T` with non-static lifetimes: a borrow crossing domains
///   would let the *sender* retain access while the receiver runs, exactly
///   the aliasing SFI must rule out. (Static borrows of immutable data are
///   fine — both sides may read `&'static str` forever.)
/// - `Rc<T>`: not `Send`; reference counts would be racy and the cycle of
///   shared ownership would straddle the boundary.
///
/// `Arc<T>` *is* exchangeable when `T: Send + Sync`; this is Rust's "safe
/// read-only sharing" which the paper explicitly permits across domains.
pub trait Exchangeable: Send + 'static {}

impl<T: Send + 'static> Exchangeable for T {}

/// Asserts at compile time that `T` is [`Exchangeable`].
///
/// Useful in tests and examples to document why a type may or may not
/// cross domains:
///
/// ```
/// rbs_core::exchange::assert_exchangeable::<Vec<u8>>();
/// rbs_core::exchange::assert_exchangeable::<std::sync::Arc<String>>();
/// ```
///
/// Non-exchangeable types are rejected by the compiler:
///
/// ```compile_fail
/// // `Rc` is not `Send`, so it cannot cross a domain boundary.
/// rbs_core::exchange::assert_exchangeable::<std::rc::Rc<u8>>();
/// ```
///
/// ```compile_fail
/// // A borrowed slice is not `'static`: the sender would keep access.
/// fn f(slice: &[u8]) {
///     fn check<T: rbs_core::Exchangeable>(_t: &T) {}
///     check(&slice);
/// }
/// ```
pub fn assert_exchangeable<T: Exchangeable>() {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    #[test]
    fn owned_types_are_exchangeable() {
        assert_exchangeable::<u64>();
        assert_exchangeable::<String>();
        assert_exchangeable::<Vec<Vec<u8>>>();
        assert_exchangeable::<Option<Box<[u8]>>>();
    }

    #[test]
    fn shared_sync_types_are_exchangeable() {
        assert_exchangeable::<Arc<String>>();
        assert_exchangeable::<Arc<Mutex<Vec<u8>>>>();
    }

    #[test]
    fn static_borrows_are_exchangeable() {
        assert_exchangeable::<&'static str>();
    }
}
