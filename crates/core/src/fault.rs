//! Deterministic fault injection.
//!
//! Chaos testing is only useful when a failing run can be replayed: a
//! [`FaultPlan`] therefore makes every injection decision a *pure
//! function* of `(seed, site, stream, occurrence)`. No shared counters,
//! no RNG state — two threads consulting the same plan in any
//! interleaving see exactly the same faults, and re-running a seed
//! reproduces the whole failure schedule bit for bit.
//!
//! Terminology:
//!
//! - **site** — a named program location that consults the plan
//!   ([`FaultSite`]): an operator in a pipeline, a worker attaching to
//!   its domain, a channel send, a checkpoint encode.
//! - **stream** — the caller-chosen sub-identity at a site (typically a
//!   worker/shard index), so faults can target one worker.
//! - **occurrence** — the caller-maintained count of how many times
//!   *this stream* has reached the site. Callers own their counters;
//!   keeping them caller-local is what removes cross-thread ordering
//!   from the decision.
//!
//! A plan combines probabilistic rules (`rate_ppm` of occurrences fire)
//! and windowed rules (occurrences `[start, end)` always fire), which
//! covers both background fault rates and scripted crash loops.

use std::cell::RefCell;
use std::sync::Arc;

/// A named injection point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Inside pipeline execution, at the given stage index (runtimes
    /// that inject around the whole pipeline use stage 0).
    Operator(u16),
    /// A worker thread attaching to its protection domain at (re)spawn.
    DomainAttach,
    /// A cross-domain channel send on the dispatch path.
    ChannelSend,
    /// Checkpoint serialization ([`encode`](FaultSite::CheckpointEncode)
    /// of a captured snapshot).
    CheckpointEncode,
    /// A live upgrade pausing one worker's ingress and draining its
    /// queue (stream = shard index, occurrence = per-shard quiesce
    /// count). A kill here dies with work still queued.
    UpgradeQuiesce,
    /// A live upgrade restoring migrated state into the replacement
    /// worker (same stream/occurrence convention). A kill here dies
    /// after the old generation is gone but before the new one runs.
    UpgradeRestore,
}

impl FaultSite {
    /// Stable short name (used in reports and JSON).
    pub fn name(&self) -> &'static str {
        match self {
            FaultSite::Operator(_) => "operator",
            FaultSite::DomainAttach => "domain-attach",
            FaultSite::ChannelSend => "channel-send",
            FaultSite::CheckpointEncode => "checkpoint-encode",
            FaultSite::UpgradeQuiesce => "upgrade-quiesce",
            FaultSite::UpgradeRestore => "upgrade-restore",
        }
    }

    fn tag(&self) -> u64 {
        match self {
            FaultSite::Operator(stage) => 0x10_000 + u64::from(*stage),
            FaultSite::DomainAttach => 1,
            FaultSite::ChannelSend => 2,
            FaultSite::CheckpointEncode => 3,
            FaultSite::UpgradeQuiesce => 4,
            FaultSite::UpgradeRestore => 5,
        }
    }
}

/// What an injection does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic at the site (unwinds to the nearest domain boundary).
    Panic,
    /// Poison the owning domain's reference table (revoking every
    /// capability, including channels) without unwinding.
    PoisonTable,
    /// Force-close the channel the site is about to use.
    CloseChannel,
    /// Sleep long enough to look hung to a watchdog.
    Stall {
        /// Sleep duration in milliseconds.
        millis: u64,
    },
    /// A short artificial processing delay (latency, not a hang).
    Delay {
        /// Sleep duration in microseconds.
        micros: u64,
    },
}

impl FaultKind {
    /// Stable short name (used in reports and JSON).
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::PoisonTable => "poison-table",
            FaultKind::CloseChannel => "close-channel",
            FaultKind::Stall { .. } => "stall",
            FaultKind::Delay { .. } => "delay",
        }
    }
}

/// One injection rule of a [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRule {
    /// Site this rule applies to.
    pub site: FaultSite,
    /// Fault fired when the rule matches.
    pub kind: FaultKind,
    /// Probability of firing per occurrence, in parts per million
    /// (1_000_000 = always).
    pub rate_ppm: u32,
    /// When set, the rule only applies to this stream.
    pub stream: Option<u64>,
    /// When set, the rule only applies to occurrences in `[start, end)`.
    pub window: Option<(u64, u64)>,
}

/// SplitMix64: the statistically solid 64-bit mixer used to derive
/// per-decision hashes from the seed.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A seeded, immutable fault schedule.
///
/// Build once, wrap in an [`Arc`], hand to every component under test.
/// [`FaultPlan::decide`] is pure: it never mutates the plan, so the same
/// arguments always yield the same decision.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan (never fires) with the given seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            rules: Vec::new(),
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The rules, in evaluation order.
    pub fn rules(&self) -> &[FaultRule] {
        &self.rules
    }

    /// Adds a rule; builder style. Rules are evaluated in insertion
    /// order and the first one that fires wins.
    pub fn rule(mut self, rule: FaultRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Adds a probabilistic rule firing on `rate_ppm` of occurrences at
    /// `site` (all streams).
    pub fn inject(self, site: FaultSite, kind: FaultKind, rate_ppm: u32) -> Self {
        self.rule(FaultRule {
            site,
            kind,
            rate_ppm,
            stream: None,
            window: None,
        })
    }

    /// Adds a scripted rule: `stream`'s occurrences in `[start, end)` at
    /// `site` always fire. This is how a deterministic crash loop is
    /// written down.
    pub fn inject_window(
        self,
        site: FaultSite,
        kind: FaultKind,
        stream: u64,
        start: u64,
        end: u64,
    ) -> Self {
        self.rule(FaultRule {
            site,
            kind,
            rate_ppm: 1_000_000,
            stream: Some(stream),
            window: Some((start, end)),
        })
    }

    /// The injection decision for one occurrence of a site.
    ///
    /// Pure: depends only on the plan and the arguments, never on call
    /// order or thread interleaving.
    pub fn decide(&self, site: FaultSite, stream: u64, occurrence: u64) -> Option<FaultKind> {
        for (i, rule) in self.rules.iter().enumerate() {
            if rule.site != site {
                continue;
            }
            if let Some(s) = rule.stream {
                if s != stream {
                    continue;
                }
            }
            if let Some((start, end)) = rule.window {
                if occurrence < start || occurrence >= end {
                    continue;
                }
            }
            if rule.rate_ppm == 0 {
                continue;
            }
            if rule.rate_ppm >= 1_000_000 {
                return Some(rule.kind);
            }
            let h = splitmix64(
                self.seed
                    ^ splitmix64(site.tag())
                    ^ splitmix64(stream.wrapping_mul(0x2545_F491_4F6C_DD1D))
                    ^ splitmix64(occurrence.wrapping_add(i as u64) << 1),
            );
            if (h % 1_000_000) < u64::from(rule.rate_ppm) {
                return Some(rule.kind);
            }
        }
        None
    }

    /// Deterministic jitter in `[0, bound)` derived from the plan seed —
    /// for backoff randomization that must still replay bit-identically.
    pub fn jitter(&self, stream: u64, occurrence: u64, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        splitmix64(self.seed ^ splitmix64(stream) ^ occurrence.wrapping_mul(0x9E37_79B9)) % bound
    }
}

/// The panic payload used by injected panics, so tests and supervisors
/// can tell an injected fault from a genuine bug when they care.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedFault {
    /// The site the panic fired at.
    pub site: FaultSite,
}

/// Panics with an [`InjectedFault`] payload.
///
/// Sites call this for [`FaultKind::Panic`] decisions; the panic unwinds
/// to the enclosing domain boundary like any operator bug.
pub fn fire_panic(site: FaultSite) -> ! {
    std::panic::panic_any(InjectedFault { site })
}

/// Sleeps out a [`FaultKind::Stall`] or [`FaultKind::Delay`]; no-op for
/// other kinds.
pub fn fire_sleep(kind: FaultKind) {
    match kind {
        FaultKind::Stall { millis } => std::thread::sleep(std::time::Duration::from_millis(millis)),
        FaultKind::Delay { micros } => std::thread::sleep(std::time::Duration::from_micros(micros)),
        _ => {}
    }
}

thread_local! {
    static AMBIENT: RefCell<Vec<AmbientScope>> = const { RefCell::new(Vec::new()) };
}

struct AmbientScope {
    plan: Arc<FaultPlan>,
    stream: u64,
    counters: Vec<(FaultSite, u64)>,
}

/// Runs `f` with `plan` installed as the thread's ambient fault plan.
///
/// Library code that cannot be handed an explicit plan (e.g. the
/// checkpoint codec deep inside a call chain) consults the ambient plan
/// via [`ambient_decide`]. Scopes nest; the innermost plan wins. The
/// scope is thread-local on purpose: concurrent tests in one process
/// cannot perturb each other.
pub fn scoped<R>(plan: Arc<FaultPlan>, f: impl FnOnce() -> R) -> R {
    scoped_stream(plan, 0, f)
}

/// Like [`scoped`], but ambient decisions made inside `f` use `stream`
/// as their stream identity — this is how a worker thread makes its
/// shard index visible to injection sites buried in library code, so a
/// plan can target one worker out of many.
pub fn scoped_stream<R>(plan: Arc<FaultPlan>, stream: u64, f: impl FnOnce() -> R) -> R {
    AMBIENT.with(|a| {
        a.borrow_mut().push(AmbientScope {
            plan,
            stream,
            counters: Vec::new(),
        })
    });
    struct Pop;
    impl Drop for Pop {
        fn drop(&mut self) {
            AMBIENT.with(|a| {
                a.borrow_mut().pop();
            });
        }
    }
    let _pop = Pop;
    f()
}

/// Consults the ambient plan (if any) for the next occurrence of `site`
/// on this thread; occurrence counting is per scope and per site.
///
/// Returns `None` — at the cost of one thread-local read — when no scope
/// is active, so permanent call sites are effectively free in
/// production.
pub fn ambient_decide(site: FaultSite) -> Option<FaultKind> {
    AMBIENT.with(|a| {
        let mut scopes = a.borrow_mut();
        let scope = scopes.last_mut()?;
        let occurrence = match scope.counters.iter_mut().find(|(s, _)| *s == site) {
            Some((_, n)) => {
                *n += 1;
                *n - 1
            }
            None => {
                scope.counters.push((site, 1));
                0
            }
        };
        let plan = Arc::clone(&scope.plan);
        let stream = scope.stream;
        drop(scopes);
        plan.decide(site, stream, occurrence)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_fires() {
        let p = FaultPlan::new(1);
        for n in 0..1000 {
            assert_eq!(p.decide(FaultSite::Operator(0), 0, n), None);
        }
    }

    #[test]
    fn decisions_are_pure_and_seed_dependent() {
        let a = FaultPlan::new(42).inject(FaultSite::Operator(0), FaultKind::Panic, 100_000);
        let b = FaultPlan::new(42).inject(FaultSite::Operator(0), FaultKind::Panic, 100_000);
        let c = FaultPlan::new(43).inject(FaultSite::Operator(0), FaultKind::Panic, 100_000);
        let da: Vec<_> = (0..512)
            .map(|n| a.decide(FaultSite::Operator(0), 3, n))
            .collect();
        let db: Vec<_> = (0..512)
            .map(|n| b.decide(FaultSite::Operator(0), 3, n))
            .collect();
        let dc: Vec<_> = (0..512)
            .map(|n| c.decide(FaultSite::Operator(0), 3, n))
            .collect();
        assert_eq!(da, db, "same seed, same schedule");
        assert_ne!(da, dc, "different seed, different schedule");
    }

    #[test]
    fn rate_is_roughly_respected() {
        let p = FaultPlan::new(7).inject(FaultSite::ChannelSend, FaultKind::CloseChannel, 10_000);
        let fired = (0..100_000u64)
            .filter(|&n| p.decide(FaultSite::ChannelSend, 0, n).is_some())
            .count();
        // 1% of 100k = 1000; allow a generous band.
        assert!((500..2000).contains(&fired), "fired {fired} of 100k at 1%");
    }

    #[test]
    fn window_rules_are_exact() {
        let p = FaultPlan::new(0).inject_window(FaultSite::DomainAttach, FaultKind::Panic, 2, 5, 8);
        for n in 0..12 {
            let hit = p.decide(FaultSite::DomainAttach, 2, n).is_some();
            assert_eq!(hit, (5..8).contains(&n), "occurrence {n}");
            assert_eq!(
                p.decide(FaultSite::DomainAttach, 1, n),
                None,
                "other stream"
            );
        }
    }

    #[test]
    fn streams_are_independent() {
        let p = FaultPlan::new(9).inject(FaultSite::Operator(1), FaultKind::Panic, 500_000);
        let s0: Vec<_> = (0..64)
            .map(|n| p.decide(FaultSite::Operator(1), 0, n))
            .collect();
        let s1: Vec<_> = (0..64)
            .map(|n| p.decide(FaultSite::Operator(1), 1, n))
            .collect();
        assert_ne!(s0, s1, "streams draw from independent sequences");
    }

    #[test]
    fn sites_do_not_alias() {
        let p = FaultPlan::new(5)
            .inject(FaultSite::Operator(0), FaultKind::Panic, 300_000)
            .inject(FaultSite::ChannelSend, FaultKind::CloseChannel, 300_000);
        let op: Vec<_> = (0..64)
            .map(|n| p.decide(FaultSite::Operator(0), 0, n))
            .collect();
        let ch: Vec<_> = (0..64)
            .map(|n| p.decide(FaultSite::ChannelSend, 0, n))
            .collect();
        assert!(op.iter().flatten().all(|k| *k == FaultKind::Panic));
        assert!(ch.iter().flatten().all(|k| *k == FaultKind::CloseChannel));
        assert_ne!(
            op.iter().map(|d| d.is_some()).collect::<Vec<_>>(),
            ch.iter().map(|d| d.is_some()).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn first_matching_rule_wins() {
        let p = FaultPlan::new(1)
            .inject_window(FaultSite::Operator(0), FaultKind::Panic, 0, 0, 1)
            .inject_window(FaultSite::Operator(0), FaultKind::PoisonTable, 0, 0, 10);
        assert_eq!(
            p.decide(FaultSite::Operator(0), 0, 0),
            Some(FaultKind::Panic)
        );
        assert_eq!(
            p.decide(FaultSite::Operator(0), 0, 1),
            Some(FaultKind::PoisonTable)
        );
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let p = FaultPlan::new(77);
        for n in 0..100 {
            let j = p.jitter(3, n, 16);
            assert!(j < 16);
            assert_eq!(j, p.jitter(3, n, 16));
        }
        assert_eq!(p.jitter(0, 0, 0), 0);
    }

    #[test]
    fn injected_panic_payload_is_identifiable() {
        let err = std::panic::catch_unwind(|| fire_panic(FaultSite::Operator(2))).unwrap_err();
        let payload = err.downcast_ref::<InjectedFault>().expect("typed payload");
        assert_eq!(payload.site, FaultSite::Operator(2));
    }

    #[test]
    fn ambient_scope_counts_per_site() {
        let plan = Arc::new(FaultPlan::new(0).inject_window(
            FaultSite::CheckpointEncode,
            FaultKind::Panic,
            0,
            1,
            2,
        ));
        assert_eq!(
            ambient_decide(FaultSite::CheckpointEncode),
            None,
            "no scope"
        );
        scoped(plan, || {
            assert_eq!(
                ambient_decide(FaultSite::CheckpointEncode),
                None,
                "occurrence 0"
            );
            assert_eq!(
                ambient_decide(FaultSite::CheckpointEncode),
                Some(FaultKind::Panic),
                "occurrence 1"
            );
            assert_eq!(
                ambient_decide(FaultSite::CheckpointEncode),
                None,
                "occurrence 2"
            );
        });
        assert_eq!(
            ambient_decide(FaultSite::CheckpointEncode),
            None,
            "scope popped"
        );
    }

    #[test]
    fn ambient_scopes_nest_innermost_wins() {
        let outer = Arc::new(FaultPlan::new(0).inject(
            FaultSite::CheckpointEncode,
            FaultKind::Panic,
            1_000_000,
        ));
        let inner = Arc::new(FaultPlan::new(0));
        scoped(outer, || {
            scoped(inner, || {
                assert_eq!(ambient_decide(FaultSite::CheckpointEncode), None);
            });
            assert_eq!(
                ambient_decide(FaultSite::CheckpointEncode),
                Some(FaultKind::Panic)
            );
        });
    }

    #[test]
    fn ambient_stream_targets_one_worker() {
        let plan = Arc::new(FaultPlan::new(0).inject_window(
            FaultSite::Operator(0),
            FaultKind::Panic,
            2, // only stream 2
            0,
            u64::MAX,
        ));
        scoped_stream(Arc::clone(&plan), 1, || {
            assert_eq!(ambient_decide(FaultSite::Operator(0)), None);
        });
        scoped_stream(plan, 2, || {
            assert_eq!(
                ambient_decide(FaultSite::Operator(0)),
                Some(FaultKind::Panic)
            );
        });
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(FaultSite::Operator(3).name(), "operator");
        assert_eq!(FaultSite::DomainAttach.name(), "domain-attach");
        assert_eq!(FaultKind::Stall { millis: 1 }.name(), "stall");
        assert_eq!(FaultKind::Delay { micros: 1 }.name(), "delay");
    }
}
