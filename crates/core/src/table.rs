//! Aligned plain-text result tables.
//!
//! The `experiments` binary regenerates the paper's figures as text series;
//! [`Table`] renders them with aligned columns so the output is readable in
//! a terminal and trivially diffable across runs.

use std::fmt::Write as _;

/// A simple column-aligned text table.
///
/// # Examples
///
/// ```
/// let mut t = rbs_core::Table::new(&["packets/batch", "cycles"]);
/// t.row(&["1", "90"]);
/// t.row(&["256", "122"]);
/// let s = t.render();
/// assert!(s.contains("packets/batch"));
/// assert!(s.lines().count() >= 4);
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `header` is empty.
    pub fn new(header: &[&str]) -> Self {
        assert!(!header.is_empty(), "a table needs at least one column");
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} does not match header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
    }

    /// Appends a row of already-owned cells.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} does not match header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with a header rule, columns right-aligned except
    /// the first.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                if i == 0 {
                    let _ = write!(out, "{cell:<w$}");
                } else {
                    let _ = write!(out, "{cell:>w$}");
                }
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        let rule_len = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(rule_len));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Renders the table as tab-separated values (header first).
    pub fn render_tsv(&self) -> String {
        let mut out = self.header.join("\t");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join("\t"));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with `digits` decimal places, trimming to a compact form.
pub fn fmt_f64(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_header_rejected() {
        Table::new(&[]);
    }

    #[test]
    #[should_panic(expected = "does not match header width")]
    fn mismatched_row_rejected() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one"]);
    }

    #[test]
    fn alignment() {
        let mut t = Table::new(&["name", "val"]);
        t.row(&["x", "1"]);
        t.row(&["longer", "12345"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines are equally wide (trailing alignment).
        assert_eq!(lines[0].len(), lines[1].len());
        assert!(lines[3].starts_with("longer"));
        assert!(lines[3].ends_with("12345"));
    }

    #[test]
    fn tsv_roundtrip_structure() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["1", "2"]);
        let tsv = t.render_tsv();
        assert_eq!(tsv, "a\tb\n1\t2\n");
    }

    #[test]
    fn len_and_is_empty() {
        let mut t = Table::new(&["a"]);
        assert!(t.is_empty());
        t.row(&["x"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn row_owned_appends() {
        let mut t = Table::new(&["a", "b"]);
        t.row_owned(vec!["1".into(), "2".into()]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn fmt_f64_digits() {
        assert_eq!(fmt_f64(1.23456, 2), "1.23");
        assert_eq!(fmt_f64(1.0, 0), "1");
    }
}
