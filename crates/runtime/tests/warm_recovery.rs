//! Warm-recovery tests: crashed workers resume from verified snapshots
//! with exact, bounded state loss; corrupted snapshots are detected and
//! never restored (the chain falls back latest → previous → cold); an
//! injected encode fault cannot poison the store; and a clean shutdown
//! seals a final snapshot equal to the live state.
//!
//! Everything here needs the `fault-injection` feature (the workspace
//! test run enables it through `rbs-bench`).
#![cfg(feature = "fault-injection")]

use std::net::Ipv4Addr;
use std::sync::Arc;
use std::time::Duration;

use rbs_core::fault::{FaultKind, FaultPlan, FaultSite};
use rbs_netfx::headers::ethernet::MacAddr;
use rbs_netfx::operators::ChaosPoint;
use rbs_netfx::{FlowTracker, Packet, PacketBatch, PipelineSpec};
use rbs_runtime::{
    Buffered, RestartPolicy, RuntimeConfig, RuntimeReport, ShardedRuntime, SupervisorEventKind,
};

/// Flows per round. Every round's flows are distinct, so a worker's
/// tracked-flow count grows by exactly this much per processed batch —
/// which makes state loss exactly countable.
const FLOWS_PER_ROUND: u16 = 24;

fn udp(src_port: u16, dst_port: u16) -> Packet {
    Packet::build_udp(
        MacAddr::ZERO,
        MacAddr::ZERO,
        Ipv4Addr::new(10, 0, 0, 1),
        Ipv4Addr::new(10, 0, 0, 2),
        src_port,
        dst_port,
        16,
    )
}

fn wave(round: usize) -> PacketBatch {
    (0..FLOWS_PER_ROUND)
        .map(|i| udp(2000 + (round as u16) * FLOWS_PER_ROUND + i, 80))
        .collect()
}

/// The stateful pipeline under test: a chaos point in front of a flow
/// tracker whose table is the state that must survive crashes.
fn stateful_spec() -> PipelineSpec {
    PipelineSpec::new()
        .stage(|| ChaosPoint::new(0))
        .stage(|| FlowTracker::new(100_000))
}

fn config(workers: usize, interval: u64, full_every: u32, plan: FaultPlan) -> RuntimeConfig {
    RuntimeConfig {
        workers,
        queue_capacity: 8,
        snapshot_interval_ticks: interval,
        snapshot_full_every: full_every,
        restart: RestartPolicy::default(),
        faults: Some(Arc::new(plan)),
        ..RuntimeConfig::default()
    }
}

fn assert_conserved(report: &RuntimeReport) {
    assert_eq!(
        report.unaccounted_packets(),
        0,
        "offered == packets_in + lost + shed must hold: {report:#?}"
    );
    assert_eq!(report.packets_in, report.packets_out + report.drops);
}

fn run_rounds(rt: &mut ShardedRuntime, rounds: std::ops::Range<usize>) {
    for round in rounds {
        rt.dispatch(wave(round)).expect("dispatch");
        assert!(rt.drain(Duration::from_secs(30)), "round {round} drained");
    }
}

/// The acceptance scenario: a worker crashing on a scripted batch
/// recovers through a snapshot restore, and the state it loses is
/// exactly the flows accumulated since that snapshot — bounded by the
/// snapshot interval, never the whole table.
#[test]
fn crash_recovers_warm_with_exactly_bounded_state_loss() {
    const INTERVAL: u64 = 2;
    // One worker so every round's 24 flows land in one table. The 3rd
    // batch of each generation (occurrence 2) panics.
    let plan = FaultPlan::new(7).inject_window(FaultSite::Operator(0), FaultKind::Panic, 0, 2, 3);
    let mut rt = ShardedRuntime::new(stateful_spec(), config(1, INTERVAL, 2, plan)).unwrap();

    // Rounds 0..2: batch 0 (24 flows), snapshot@tick2 (24 flows),
    // batch 1 (48), batch 2 → panic at occurrence 2; gauge froze at 48.
    run_rounds(&mut rt, 0..3);

    // The next dispatch heals the slot. The newest snapshot (tick 2,
    // 24 flows) verifies; the 24 flows of batch 1 are the exact loss.
    rt.dispatch(PacketBatch::new()).unwrap();
    let warm: Vec<_> = rt
        .events()
        .iter()
        .filter_map(|e| match e.kind {
            SupervisorEventKind::WarmRestore {
                epoch,
                age_ticks,
                items_restored,
                items_lost,
            } => Some((epoch, age_ticks, items_restored, items_lost)),
            _ => None,
        })
        .collect();
    assert_eq!(
        warm,
        vec![(1, 2, 24, 24)],
        "restored epoch 1 (24 flows, 2 ticks old), lost exactly batch 1's 24 flows"
    );

    // Loss is bounded by the snapshot cadence: at most
    // interval × flows-per-tick flows can postdate the restored image
    // (plus the heal lag, visible in age_ticks).
    for &(_, age_ticks, _, items_lost) in &warm {
        assert!(
            items_lost <= age_ticks * u64::from(FLOWS_PER_ROUND),
            "loss {items_lost} exceeds the {age_ticks}-tick staleness bound"
        );
    }

    // Keep running: the replacement continues from the restored table.
    // Two rounds only — the scripted window fires at occurrence 2 of
    // *every* generation, and the replacement should outlive the test.
    run_rounds(&mut rt, 3..5);
    let report = rt.shutdown();
    assert_conserved(&report);
    assert_eq!(report.warm_restores, 1);
    assert_eq!(report.cold_restores, 0);
    assert_eq!(report.snapshot_rejects, 0);
    assert_eq!(report.state_items_lost, 24);
    assert_eq!(report.import_failures, 0);
    // Final state: 24 restored + rounds 3..5 (batch 2's packets were
    // lost with the crash, batch 1's flows were the accounted loss).
    let w = &report.workers[0];
    assert_eq!(w.state_items, 24 + 2 * u64::from(FLOWS_PER_ROUND));
    let latest = w.latest_snapshot.expect("final snapshot sealed");
    assert_eq!(
        latest.items, w.state_items,
        "shutdown sealed the live state"
    );
}

/// Scripted corruption of the newest snapshot: the checksum rejects it,
/// recovery falls back to the previous buffer, and the extra staleness
/// is accounted as extra loss.
#[test]
fn corrupt_latest_falls_back_to_previous() {
    // Snapshot every tick, all full images; crash at occurrence 3
    // (batch 3).
    let plan = FaultPlan::new(7).inject_window(FaultSite::Operator(0), FaultKind::Panic, 0, 3, 4);
    let mut rt = ShardedRuntime::new(stateful_spec(), config(1, 1, 1, plan)).unwrap();

    // tick1: snap(0 flows), batch0→24. tick2: snap(24), batch1→48.
    // tick3: snap(48), batch2→72. tick4: snap(72), batch3 → panic.
    run_rounds(&mut rt, 0..4);
    assert!(
        rt.corrupt_snapshot(0, Buffered::Latest),
        "latest buffer holds the tick-4 snapshot"
    );

    rt.dispatch(PacketBatch::new()).unwrap();
    let kinds: Vec<_> = rt
        .events()
        .iter()
        .filter_map(|e| match e.kind {
            SupervisorEventKind::SnapshotRejected { which, reason } => {
                Some(format!("reject {which}: {reason}"))
            }
            SupervisorEventKind::WarmRestore {
                epoch,
                age_ticks,
                items_restored,
                items_lost,
            } => Some(format!(
                "warm epoch={epoch} age={age_ticks} restored={items_restored} lost={items_lost}"
            )),
            SupervisorEventKind::ColdRestore { items_lost } => Some(format!("cold {items_lost}")),
            _ => None,
        })
        .collect();
    assert_eq!(
        kinds,
        vec![
            "reject latest: checksum-mismatch".to_owned(),
            // Previous buffer: tick-3 image, 48 flows; the crash gauge
            // held 72, so the extra tick of staleness costs 24 more.
            "warm epoch=3 age=2 restored=48 lost=24".to_owned(),
        ],
        "fallback chain: latest rejected, previous restored"
    );

    run_rounds(&mut rt, 4..6);
    let report = rt.shutdown();
    assert_conserved(&report);
    assert_eq!(report.snapshot_rejects, 1);
    assert_eq!(report.warm_restores, 1);
    assert_eq!(report.cold_restores, 0);
}

/// Both buffers corrupted: nothing restorable survives verification, so
/// recovery is cold — with the entire live table accounted as lost.
/// A corrupted snapshot is *never* restored.
#[test]
fn corrupt_both_buffers_falls_back_to_cold() {
    let plan = FaultPlan::new(7).inject_window(FaultSite::Operator(0), FaultKind::Panic, 0, 3, 4);
    let mut rt = ShardedRuntime::new(stateful_spec(), config(1, 1, 1, plan)).unwrap();

    run_rounds(&mut rt, 0..4);
    assert!(rt.corrupt_snapshot(0, Buffered::Latest));
    assert!(rt.corrupt_snapshot(0, Buffered::Previous));

    rt.dispatch(PacketBatch::new()).unwrap();
    let rejects = rt
        .events()
        .iter()
        .filter(|e| matches!(e.kind, SupervisorEventKind::SnapshotRejected { .. }))
        .count();
    let cold: Vec<_> = rt
        .events()
        .iter()
        .filter_map(|e| match e.kind {
            SupervisorEventKind::ColdRestore { items_lost } => Some(items_lost),
            _ => None,
        })
        .collect();
    assert_eq!(rejects, 2, "both buffers rejected");
    assert_eq!(cold, vec![72], "the whole live table was lost");
    assert!(
        !rt.events()
            .iter()
            .any(|e| matches!(e.kind, SupervisorEventKind::WarmRestore { .. })),
        "corrupted snapshots were never restored"
    );

    // The cold worker starts an empty table and keeps serving.
    run_rounds(&mut rt, 4..6);
    let report = rt.shutdown();
    assert_conserved(&report);
    assert_eq!(report.cold_restores, 1);
    assert_eq!(report.state_items_lost, 72);
    assert_eq!(
        report.workers[0].state_items,
        2 * u64::from(FLOWS_PER_ROUND),
        "post-recovery rounds only"
    );
}

/// The `CheckpointEncode` fault site, end to end: a panic injected into
/// snapshot serialization kills the worker at the domain boundary, but
/// the store's seal-before-commit discipline means both buffers still
/// hold the *previous* verified snapshot — recovery is warm from it,
/// and no garbage is ever restored.
#[test]
fn encode_fault_cannot_poison_the_store() {
    // Snapshot every tick; the second encode (occurrence 1) of the
    // first generation panics mid-snapshot.
    let plan =
        FaultPlan::new(7).inject_window(FaultSite::CheckpointEncode, FaultKind::Panic, 0, 1, 2);
    let mut rt = ShardedRuntime::new(stateful_spec(), config(1, 1, 1, plan)).unwrap();

    // tick1: snap ok (epoch 1, 0 flows), batch0→24.
    // tick2: snap → encode panic → worker dies; batch1 dies with it
    // (lost or shed, conservation covers both).
    run_rounds(&mut rt, 0..1);
    rt.dispatch(wave(1)).unwrap();
    assert!(rt.drain(Duration::from_secs(30)));

    // Heal: the failed snapshot never reached a buffer; epoch 1
    // verifies and restores.
    rt.dispatch(PacketBatch::new()).unwrap();
    let warm: Vec<_> = rt
        .events()
        .iter()
        .filter_map(|e| match e.kind {
            SupervisorEventKind::WarmRestore {
                epoch,
                items_restored,
                ..
            } => Some((epoch, items_restored)),
            _ => None,
        })
        .collect();
    assert_eq!(
        warm,
        vec![(1, 0)],
        "restored the pre-fault snapshot, not a half-written one"
    );
    assert_eq!(
        rt.events()
            .iter()
            .filter(|e| matches!(e.kind, SupervisorEventKind::SnapshotRejected { .. }))
            .count(),
        0,
        "nothing in the store ever failed verification"
    );

    // The window fires at encode occurrence 1 of every generation, so
    // later generations crash mid-snapshot too — but each one's *first*
    // snapshot succeeded, so every recovery stays warm and verified.
    run_rounds(&mut rt, 2..5);
    let report = rt.shutdown();
    assert_conserved(&report);
    assert!(report.faults >= 1, "the encode fault was a real fault");
    assert!(report.warm_restores >= 1);
    assert_eq!(report.cold_restores, 0);
    assert_eq!(report.snapshot_rejects, 0);
}

/// Clean shutdown's final act is sealing one more snapshot, so the
/// newest buffered image always equals the last live state — on every
/// worker, with no faults involved.
#[test]
fn clean_shutdown_seals_live_state() {
    let plan = FaultPlan::new(0); // no faults
    let mut rt = ShardedRuntime::new(stateful_spec(), config(2, 4, 2, plan)).unwrap();
    run_rounds(&mut rt, 0..5);

    let live: Vec<u64> = rt.snapshots().iter().map(|w| w.state_items).collect();
    let final_tick = rt.tick();
    let report = rt.shutdown();
    assert_conserved(&report);
    assert_eq!(report.warm_restores + report.cold_restores, 0);
    let mut total = 0;
    for (w, live_items) in report.workers.iter().zip(live) {
        let latest = w
            .latest_snapshot
            .expect("every worker sealed a final snapshot");
        assert_eq!(latest.items, live_items, "worker {}", w.index);
        assert_eq!(latest.items, w.state_items, "worker {}", w.index);
        assert_eq!(latest.tick, final_tick, "worker {}", w.index);
        total += latest.items;
    }
    assert_eq!(total, 5 * u64::from(FLOWS_PER_ROUND), "all flows tracked");
    assert!(report.snapshots_taken >= 2, "cadence snapshots plus finals");
}

/// With snapshotting disabled (the default), the journal carries no
/// restore events at all — recovery behaves exactly as it did before
/// warm recovery existed, so existing seeded chaos runs replay
/// unchanged.
#[test]
fn disabled_snapshots_leave_the_journal_unchanged() {
    let plan = FaultPlan::new(7).inject_window(FaultSite::Operator(0), FaultKind::Panic, 0, 1, 2);
    let mut rt = ShardedRuntime::new(stateful_spec(), config(1, 0, 2, plan)).unwrap();
    run_rounds(&mut rt, 0..3);
    rt.dispatch(PacketBatch::new()).unwrap();
    run_rounds(&mut rt, 3..5);
    let report = rt.shutdown();
    assert_conserved(&report);
    assert!(report.respawns >= 1, "the crash was healed");
    assert_eq!(report.snapshots_taken, 0);
    assert_eq!(report.warm_restores + report.cold_restores, 0);
    assert!(report.workers[0].latest_snapshot.is_none());
    assert!(!report.events.iter().any(|e| matches!(
        e.kind,
        SupervisorEventKind::WarmRestore { .. }
            | SupervisorEventKind::ColdRestore { .. }
            | SupervisorEventKind::SnapshotRejected { .. }
    )));
}

/// Determinism across the whole recovery machinery: same seed, same
/// snapshot cadence → identical restore journals and identical state
/// accounting, run to run.
#[test]
fn warm_recovery_replays_identically() {
    let run = || {
        let plan = FaultPlan::new(0xBEEF)
            .inject(FaultSite::Operator(0), FaultKind::Panic, 50_000)
            .inject(FaultSite::CheckpointEncode, FaultKind::Panic, 30_000);
        let mut rt = ShardedRuntime::new(stateful_spec(), config(3, 2, 3, plan)).unwrap();
        run_rounds(&mut rt, 0..12);
        rt.shutdown()
    };
    let (a, b) = (run(), run());
    assert_conserved(&a);
    assert_conserved(&b);
    let restores = |r: &RuntimeReport| {
        let mut v: Vec<_> = r
            .events
            .iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    SupervisorEventKind::WarmRestore { .. }
                        | SupervisorEventKind::ColdRestore { .. }
                        | SupervisorEventKind::SnapshotRejected { .. }
                )
            })
            .map(|e| (e.tick, e.worker, e.kind))
            .collect();
        v.sort_by_key(|(tick, worker, kind)| (*tick, *worker, kind.name()));
        v
    };
    assert_eq!(restores(&a), restores(&b), "restore journals diverged");
    assert_eq!(a.warm_restores, b.warm_restores);
    assert_eq!(a.cold_restores, b.cold_restores);
    assert_eq!(a.snapshot_rejects, b.snapshot_rejects);
    assert_eq!(a.state_items_lost, b.state_items_lost);
    assert_eq!(a.snapshots_taken, b.snapshots_taken);
    for (wa, wb) in a.workers.iter().zip(&b.workers) {
        assert_eq!(wa.state_items, wb.state_items, "worker {}", wa.index);
        assert_eq!(
            wa.latest_snapshot, wb.latest_snapshot,
            "worker {}",
            wa.index
        );
    }
}
