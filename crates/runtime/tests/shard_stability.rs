//! Property tests for the RSS shard map: the mapping must be total,
//! in-range, and — critically — *stable*: every packet of a flow lands on
//! the same worker, whatever its payload looks like.

use std::net::Ipv4Addr;

use proptest::prelude::*;
use rbs_netfx::flow::FiveTuple;
use rbs_netfx::headers::ethernet::MacAddr;
use rbs_netfx::headers::ipv4::IpProto;
use rbs_netfx::headers::tcp::TcpFlags;
use rbs_netfx::Packet;
use rbs_runtime::{shard_for, shard_of_packet};

fn tuple(src_ip: u32, dst_ip: u32, src_port: u16, dst_port: u16, udp: bool) -> FiveTuple {
    FiveTuple {
        src_ip: Ipv4Addr::from(src_ip),
        dst_ip: Ipv4Addr::from(dst_ip),
        src_port,
        dst_port,
        proto: if udp { IpProto::Udp } else { IpProto::Tcp },
    }
}

fn packet_of(t: &FiveTuple, payload_len: usize) -> Packet {
    match t.proto {
        IpProto::Udp => Packet::build_udp(
            MacAddr::ZERO,
            MacAddr::ZERO,
            t.src_ip,
            t.dst_ip,
            t.src_port,
            t.dst_port,
            payload_len,
        ),
        IpProto::Tcp => Packet::build_tcp(
            MacAddr::ZERO,
            MacAddr::ZERO,
            t.src_ip,
            t.dst_ip,
            t.src_port,
            t.dst_port,
            TcpFlags(TcpFlags::ACK),
            payload_len,
        ),
        _ => unreachable!("test generates only TCP/UDP tuples"),
    }
}

proptest! {
    #[test]
    fn shard_is_in_range_for_any_worker_count(
        src_ip in any::<u32>(),
        dst_ip in any::<u32>(),
        src_port in any::<u16>(),
        dst_port in any::<u16>(),
        udp in any::<bool>(),
        n in 1usize..=16,
    ) {
        let t = tuple(src_ip, dst_ip, src_port, dst_port, udp);
        prop_assert!(shard_for(&t, n) < n);
    }

    #[test]
    fn same_five_tuple_always_hits_same_worker(
        src_ip in any::<u32>(),
        dst_ip in any::<u32>(),
        src_port in any::<u16>(),
        dst_port in any::<u16>(),
        udp in any::<bool>(),
        n in 1usize..=16,
        payload_a in 0usize..256,
        payload_b in 0usize..256,
    ) {
        let t = tuple(src_ip, dst_ip, src_port, dst_port, udp);
        let shard = shard_for(&t, n);
        // Two packets of the flow with arbitrary (different) payloads
        // shard identically, and identically to their tuple.
        let pa = packet_of(&t, payload_a);
        let pb = packet_of(&t, payload_b);
        prop_assert_eq!(shard_of_packet(&pa, n), shard);
        prop_assert_eq!(shard_of_packet(&pb, n), shard);
        // The extractor agrees with the hand-built tuple.
        let extracted = FiveTuple::of(&pa).unwrap();
        prop_assert_eq!(shard_for(&extracted, n), shard);
    }

    #[test]
    fn repeated_hashing_is_deterministic(
        src_ip in any::<u32>(),
        dst_ip in any::<u32>(),
        src_port in any::<u16>(),
        dst_port in any::<u16>(),
        udp in any::<bool>(),
        n in 1usize..=16,
    ) {
        let t = tuple(src_ip, dst_ip, src_port, dst_port, udp);
        let first = shard_for(&t, n);
        for _ in 0..8 {
            prop_assert_eq!(shard_for(&t, n), first);
        }
    }
}
