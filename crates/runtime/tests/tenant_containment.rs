//! Tenant blast-radius containment under the full storm: a fault-looping
//! aggressor, background chaos, warm recovery, and mid-run tenant churn
//! all at once — while every victim tenant keeps its SLA and every
//! ledger balances to the packet.
//!
//! Also the churn half of the NAT/flowtrack reclamation audit: a removed
//! tenant's translation and tracking state must be gone when it returns
//! under a new epoch, and warm restores must never resurrect another
//! epoch's state.
//!
//! Everything here needs the `fault-injection` feature (the workspace
//! test run enables it through `rbs-bench`):
//!
//! ```text
//! cargo test -p rbs-runtime --features fault-injection --test tenant_containment
//! ```
#![cfg(feature = "fault-injection")]

use std::net::Ipv4Addr;
use std::sync::Arc;

use rbs_core::fault::{FaultKind, FaultPlan, FaultSite};
use rbs_netfx::flow::packet_flow_hash;
use rbs_netfx::headers::ethernet::MacAddr;
use rbs_netfx::{Packet, PacketBatch};
use rbs_runtime::{BreakerPhase, TenantConfig, TenantRuntime, TenantSpec};

fn http_packet(src_host: u8, sport: u16) -> Packet {
    let mut p = Packet::build_udp(
        MacAddr::ZERO,
        MacAddr::ZERO,
        Ipv4Addr::new(10, 0, 0, src_host),
        Ipv4Addr::new(192, 0, 2, 1),
        sport,
        80,
        16,
    );
    let hash = packet_flow_hash(&p);
    p.set_cached_flow_hash(hash);
    p
}

/// One round's traffic: `count` one-packet flows, distinct per round so
/// NAT and flowtrack state keep growing.
fn wave(round: u32, count: u32) -> PacketBatch {
    (0..count)
        .map(|i| {
            let n = round * count + i;
            http_packet((n % 23) as u8 + 1, (n % 52_000) as u16 + 1_024)
        })
        .collect()
}

fn population(n: usize, aggressor: usize) -> Vec<TenantSpec> {
    (0..n)
        .map(|i| {
            let spec = TenantSpec::new(format!("tenant-{i}")).rate(400, 800);
            if i == aggressor {
                spec.priority(1)
            } else {
                spec.priority(2)
            }
        })
        .collect()
}

fn silence() {
    std::panic::set_hook(Box::new(|_| {}));
}

/// The headline scenario: tenant 1 fault-loops forever, background chaos
/// salts everyone, snapshots and warm restores run on cadence, and
/// tenant 3 is removed and re-added mid-run — victims keep ≥ 99% goodput
/// and every packet is accounted.
#[test]
fn fault_loop_aggressor_is_contained_under_churn_and_chaos() {
    silence();
    let faults = FaultPlan::new(2026)
        .inject(FaultSite::Operator(0), FaultKind::Panic, 800)
        .inject_window(FaultSite::Operator(0), FaultKind::Panic, 1, 0, u64::MAX);
    let config = TenantConfig {
        tenants: population(4, 1),
        lanes: 2,
        table_size: 251,
        lane_capacity: 2_048,
        queue_hwm: 8,
        snapshot_every_ticks: 4,
        faults: Some(Arc::new(faults)),
        ..TenantConfig::default()
    };
    let mut rt = TenantRuntime::new(config).unwrap();
    let mut remapped_out = 0;
    let mut remapped_back = 0;
    for round in 0..60 {
        if round == 20 {
            remapped_out = rt.remove_tenant(3).unwrap();
        }
        if round == 40 {
            remapped_back = rt.add_tenant(3).unwrap();
        }
        rt.offer(wave(round, 96));
        rt.step();
    }
    assert_eq!(rt.phase(1), BreakerPhase::Open, "aggressor not contained");
    let report = rt.finish();

    assert_eq!(report.unaccounted_packets(), 0);
    for t in &report.tenants {
        assert_eq!(t.ledger.unaccounted(), 0, "{} leaks packets", t.name);
    }
    // Same-name re-add reverses the removal's remap exactly.
    assert_eq!(remapped_out, remapped_back);
    assert_eq!(report.rebuilds.len(), 2);

    let aggressor = &report.tenants[1];
    assert!(aggressor.opens >= 1, "breaker never opened");
    assert!(
        aggressor.ledger.shed_open > aggressor.ledger.lost,
        "an open breaker should shed far more than the loop destroys"
    );
    for idx in [0usize, 2] {
        let victim = &report.tenants[idx];
        assert!(
            victim.ledger.goodput_ppm() >= 990_000,
            "victim {} dropped to {} ppm",
            victim.name,
            victim.ledger.goodput_ppm()
        );
        assert_eq!(victim.opens, 0, "victim breaker tripped");
        assert_eq!(victim.ledger.shed(), 0, "victim was shed");
    }
    let _ = std::panic::take_hook();
}

/// Churn epoch isolation (the flowtrack/NAT half of the reclamation
/// audit): a tenant that accumulated translation + tracking state and
/// sealed snapshots comes back stateless under a fresh epoch, and the
/// state it grows afterwards is new-epoch state only.
#[test]
fn removed_tenant_returns_stateless_and_snapshots_do_not_cross_epochs() {
    silence();
    let config = TenantConfig {
        tenants: population(3, usize::MAX),
        lanes: 2,
        table_size: 251,
        lane_capacity: 4_096,
        snapshot_every_ticks: 2,
        ..TenantConfig::default()
    };
    let mut rt = TenantRuntime::new(config).unwrap();
    for round in 0..12 {
        rt.offer(wave(round, 96));
        rt.step();
    }
    let before = rt.state_items(1);
    assert!(before > 0, "no NAT/flowtrack state accumulated");
    assert!(rt.snapshots_taken(1) > 0, "no snapshots sealed");
    let offered_before = rt.ledger(1).offered;

    rt.remove_tenant(1).unwrap();
    assert_eq!(rt.state_items(1), 0, "removed tenant still holds state");
    rt.add_tenant(1).unwrap();
    assert_eq!(rt.epoch(1), 1);
    assert_eq!(
        rt.state_items(1),
        0,
        "re-added tenant inherited old-epoch state"
    );
    assert_eq!(
        rt.snapshots_taken(1),
        0,
        "old-epoch snapshots survived the churn"
    );

    // While it was absent, its flows re-homed to the survivors: nothing
    // new lands in its ledger between remove and add.
    assert_eq!(rt.ledger(1).offered, offered_before);

    for round in 12..24 {
        rt.offer(wave(round, 96));
        rt.step();
    }
    let regrown = rt.state_items(1);
    assert!(regrown > 0, "returned tenant processes no traffic");
    assert!(
        regrown <= before,
        "fresh epoch cannot hold more state than the original run"
    );
    let report = rt.finish();
    assert_eq!(report.unaccounted_packets(), 0);
    let _ = std::panic::take_hook();
}

/// Warm recovery stays within the epoch: a fault after re-add restores
/// only state sealed since the re-add.
#[test]
fn warm_restore_after_churn_carries_only_new_epoch_state() {
    silence();
    // Tenant 1 panics once, late in the run (well after churn).
    let faults =
        FaultPlan::new(5).inject_window(FaultSite::Operator(0), FaultKind::Panic, 1, 60, 61);
    let config = TenantConfig {
        tenants: population(3, usize::MAX),
        lanes: 2,
        table_size: 251,
        lane_capacity: 4_096,
        snapshot_every_ticks: 2,
        faults: Some(Arc::new(faults)),
        ..TenantConfig::default()
    };
    let mut rt = TenantRuntime::new(config).unwrap();
    for round in 0..12 {
        rt.offer(wave(round, 96));
        rt.step();
    }
    rt.remove_tenant(1).unwrap();
    rt.add_tenant(1).unwrap();
    let mut after_churn_peak = 0;
    for round in 12..40 {
        after_churn_peak = after_churn_peak.max(rt.state_items(1));
        rt.offer(wave(round, 96));
        rt.step();
    }
    let report = rt.finish();
    let t = &report.tenants[1];
    assert_eq!(t.faults, 1, "scripted fault did not fire exactly once");
    assert_eq!(t.warm_restores, 1, "fault was not warm-recovered");
    assert!(t.state_items_restored > 0, "warm restore came back empty");
    assert!(
        t.state_items_restored <= report.tenants[1].ledger.processed,
        "restored more items than the epoch ever processed"
    );
    assert_eq!(report.unaccounted_packets(), 0);
    let _ = std::panic::take_hook();
}

/// A flood aggressor is held to its admission contract: victims shed
/// nothing, the flood sheds at its own bucket, and when backlog builds
/// anyway the lane high-water mark sheds the flood's (lowest-priority)
/// batches first.
#[test]
fn flood_aggressor_sheds_at_admission_and_backpressure() {
    silence();
    let mut tenants = population(4, 1);
    // The flood tenant gets a tight admission contract and hammers it.
    tenants[1].rate_per_tick = 20;
    tenants[1].burst = 40;
    let config = TenantConfig {
        tenants,
        lanes: 2,
        table_size: 251,
        lane_capacity: 256,
        queue_hwm: 4,
        ..TenantConfig::default()
    };
    let mut rt = TenantRuntime::new(config).unwrap();
    for round in 0..40 {
        rt.offer(wave(round, 320));
        rt.step();
    }
    let report = rt.finish();
    assert_eq!(report.unaccounted_packets(), 0);
    let flood = &report.tenants[1];
    assert!(
        flood.ledger.shed_admission > 0,
        "flood never hit its bucket"
    );
    for idx in [0usize, 2, 3] {
        let victim = &report.tenants[idx];
        assert_eq!(
            victim.ledger.shed_backpressure, 0,
            "victim {} shed under backpressure while the flood ran",
            victim.name
        );
        assert_eq!(victim.ledger.lost, 0);
    }
    let _ = std::panic::take_hook();
}

/// The whole storm is replayable: two runs with identical configuration
/// produce identical ledgers, breaker journals, and rebuild records.
#[test]
fn chaotic_multi_tenant_run_is_deterministic() {
    silence();
    let run = || {
        let faults = FaultPlan::new(99)
            .inject(FaultSite::Operator(0), FaultKind::Panic, 3_000)
            .inject_window(FaultSite::Operator(0), FaultKind::Panic, 2, 10, 30);
        let config = TenantConfig {
            tenants: population(4, 2),
            lanes: 2,
            table_size: 251,
            lane_capacity: 2_048,
            queue_hwm: 8,
            snapshot_every_ticks: 4,
            faults: Some(Arc::new(faults)),
            ..TenantConfig::default()
        };
        let mut rt = TenantRuntime::new(config).unwrap();
        for round in 0..40 {
            if round == 15 {
                rt.remove_tenant(3).unwrap();
            }
            if round == 28 {
                rt.add_tenant(3).unwrap();
            }
            rt.offer(wave(round, 96));
            rt.step();
        }
        let report = rt.finish();
        (
            report
                .tenants
                .iter()
                .map(|t| (t.ledger, t.faults, t.respawns, t.opens, t.p99_delay_ticks))
                .collect::<Vec<_>>(),
            report.events,
            report.rebuilds,
        )
    };
    assert_eq!(run(), run());
    let _ = std::panic::take_hook();
}
